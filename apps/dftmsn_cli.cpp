// dftmsn command-line runner: run any scenario/protocol combination from
// the shell without writing C++.
//
//   dftmsn_cli [--protocol NAME] [--config FILE] [--reps N] [--jobs N]
//              [--faults PLAN] [--check-invariants] [--contacts-csv FILE]
//              [--list-params] [key=value ...]
//
// Examples:
//   dftmsn_cli --protocol OPT scenario.num_sinks=5 scenario.duration_s=10000
//   dftmsn_cli --protocol ZBR --reps 5 protocol.queue_capacity=50
//   dftmsn_cli --faults "crash@12500:frac=0.3" --check-invariants
//   dftmsn_cli --list-params
#include <iostream>
#include <string>
#include <vector>

#include "common/config_io.hpp"
#include "experiment/presets.hpp"
#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "trace/contact_probe.hpp"
#include "trace/recorder.hpp"

using namespace dftmsn;

namespace {

int usage(int code) {
  std::cout <<
      "usage: dftmsn_cli [options] [key=value ...]\n"
      "  --protocol NAME   OPT|NOOPT|NOSLEEP|ZBR|DIRECT|EPIDEMIC (default OPT)\n"
      "  --preset NAME     paper|air|flu|sparse|pressure scenario preset\n"
      "  --config FILE     load key=value assignments from FILE first\n"
      "  --reps N          replicated runs with seeds seed..seed+N-1 (default 1)\n"
      "  --jobs N          worker threads for replicated runs (default 1;\n"
      "                    0 = one per hardware thread; results are\n"
      "                    bit-identical for every N)\n"
      "  --faults PLAN     deterministic fault plan, e.g.\n"
      "                    \"crash@600:frac=0.3;loss@100:prob=0.5,for=50\"\n"
      "                    (= faults.plan; see docs/fault_injection.md)\n"
      "  --check-invariants  verify protocol invariants after every event;\n"
      "                    first violation aborts with exit code 3\n"
      "  --contacts-csv F  write a contact trace to F (single-run only)\n"
      "  --list-params     print every configurable key with its default\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  ProtocolKind kind = ProtocolKind::kOpt;
  int reps = 1;
  int jobs = 1;
  std::string contacts_csv;
  std::vector<std::string> overrides;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list-params") {
      for (const std::string& k : list_config_keys(config))
        std::cout << k << "\n";
      return 0;
    }
    if (arg == "--preset") {
      const std::string name = next();
      const auto preset = scenario_preset(name);
      if (!preset) {
        std::cerr << "unknown preset: " << name << " (";
        for (const std::string& p : scenario_preset_names())
          std::cerr << p << " ";
        std::cerr << ")\n";
        return 2;
      }
      config = *preset;
      continue;
    }
    if (arg == "--protocol") {
      const std::string name = next();
      const auto parsed = parse_protocol_kind(name);
      if (!parsed) {
        std::cerr << "unknown protocol: " << name << "\n";
        return 2;
      }
      kind = *parsed;
      continue;
    }
    if (arg == "--config") {
      try {
        load_config_file(config, next());
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
      continue;
    }
    if (arg == "--reps") {
      reps = std::atoi(next().c_str());
      if (reps < 1) {
        std::cerr << "--reps must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--jobs") {
      jobs = std::atoi(next().c_str());  // <= 0 means auto (all cores)
      continue;
    }
    if (arg == "--faults") {
      config.faults.plan = next();
      continue;
    }
    if (arg == "--check-invariants") {
      config.faults.check_invariants = true;
      continue;
    }
    if (arg == "--contacts-csv") {
      contacts_csv = next();
      continue;
    }
    overrides.push_back(arg);
  }

  try {
    apply_config_overrides(config, overrides);
    config.validate();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  std::cout << "protocol=" << protocol_kind_name(kind)
            << " sensors=" << config.scenario.num_sensors
            << " sinks=" << config.scenario.num_sinks
            << " field=" << config.scenario.field_m << "m"
            << " duration=" << config.scenario.duration_s << "s"
            << " reps=" << reps << "\n";

  try {
    if (reps == 1) {
      World world(config, kind);
      std::unique_ptr<CsvTraceSink> csv;
      std::unique_ptr<ContactProbe> probe;
      if (!contacts_csv.empty()) {
        csv = std::make_unique<CsvTraceSink>(contacts_csv);
        probe = std::make_unique<ContactProbe>(
            world.sim(), world.mobility(), config.radio.range_m, 1.0, *csv);
        probe->start();
      }
      world.run();
      if (probe) probe->finish();

      const Metrics& m = world.metrics();
      std::cout << "delivery_ratio=" << m.delivery_ratio()
                << " power_mw=" << world.mean_sensor_power_mw()
                << " delay_s=" << m.mean_delay_s()
                << " hops=" << m.mean_hops() << "\n"
                << "generated=" << m.generated()
                << " delivered=" << m.delivered_unique()
                << " data_tx=" << m.data_transmissions()
                << " collisions=" << world.channel().counters().collisions
                << " drops_overflow=" << m.drops(DropReason::kOverflow)
                << " drops_ftd=" << m.drops(DropReason::kFtdThreshold) << "\n";
      if (const FaultInjector* inj = world.fault_injector()) {
        const FaultInjector::Counters& fc = inj->counters();
        std::cout << "faults: crashes=" << fc.crashes
                  << " outages=" << fc.outages
                  << " recoveries=" << fc.recoveries
                  << " loss_bursts=" << fc.loss_bursts
                  << " pressure=" << fc.pressure_events
                  << " drops_node_failure="
                  << m.drops(DropReason::kNodeFailure)
                  << " frames_corrupted="
                  << world.channel().counters().faults_corrupted << "\n";
      }
      if (const InvariantChecker* chk = world.invariant_checker())
        std::cout << "invariants: sweeps=" << chk->sweeps_run()
                  << " (all passed)\n";
      if (csv) std::cout << "wrote " << contacts_csv << "\n";
      return 0;
    }

    if (!contacts_csv.empty()) {
      std::cerr << "--contacts-csv requires --reps 1\n";
      return 2;
    }
    const ReplicatedResult r = run_replicated(config, kind, reps, jobs);
    std::cout << "delivery_ratio=" << r.delivery_ratio.mean() << " +- "
              << r.delivery_ratio.ci95_half_width()
              << "\npower_mw=" << r.mean_power_mw.mean() << " +- "
              << r.mean_power_mw.ci95_half_width()
              << "\ndelay_s=" << r.mean_delay_s.mean() << " +- "
              << r.mean_delay_s.ci95_half_width() << "\n";
  } catch (const InvariantViolation& v) {
    std::cerr << v.what() << "\n";
    return 3;
  } catch (const std::exception& e) {  // e.g. a malformed --faults plan
    std::cerr << e.what() << "\n";
    return 2;
  }
  return 0;
}
