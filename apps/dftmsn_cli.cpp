// dftmsn command-line runner: run any scenario/protocol combination from
// the shell without writing C++.
//
//   dftmsn_cli [--protocol NAME] [--config FILE] [--reps N] [--jobs N]
//              [--faults PLAN] [--check-invariants] [--contacts-csv FILE]
//              [--list-params] [key=value ...]
//
// Examples:
//   dftmsn_cli --protocol OPT scenario.num_sinks=5 scenario.duration_s=10000
//   dftmsn_cli --protocol ZBR --reps 5 protocol.queue_capacity=50
//   dftmsn_cli --faults "crash@12500:frac=0.3" --check-invariants
//   dftmsn_cli --reps 8 --checkpoint-dir ckpt --checkpoint-every 2000
//              --watchdog-secs 30          (later: add --resume to continue)
//   dftmsn_cli --list-params
//
// Exit codes (full contract in docs/checkpoint_resume.md and
// docs/durability.md):
//   0  success (all replications completed; for --fsck: directory clean)
//   2  configuration / usage error (for --fsck: unrepairable damage)
//   3  protocol invariant violation (unsupervised runs)
//   4  interrupted (SIGINT/SIGTERM); checkpoints flushed, rerun with
//      --resume to continue
//   5  completed, but some replications were quarantined after
//      exhausting their retries (see the printed manifest)
//   7  --fsck applied repairs; the directory is resumable now
//   9  a scripted I/O crash-point (DFTMSN_IO_FAULTS / --io-faults)
//      terminated the process — test harnesses only
//
// Worker mode (`--worker FILE`, spawned by a supervising parent under
// --isolate=process; not for interactive use) reuses 0/2/3 with the same
// meanings and adds:
//   6  the replication failed (structured error in the result file)
// A worker killed by a signal (segv/abort fault plans, OOM, the parent's
// watchdog) has no exit code; the parent decodes the wait status instead.
//
// Dispatch worker mode (`--connect HOST:PORT`, docs/distributed_sweeps.md)
// exits 0 when the dispatcher reports the sweep done (or hangs up
// cleanly) and 2 on a connect or wire-protocol failure. Simulation
// failures are *reported* to the dispatcher inside result frames, never
// through this process's exit code.
#include <limits.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/config_io.hpp"
#include "experiment/fsck.hpp"
#include "experiment/presets.hpp"
#include "scenario/scenario.hpp"
#include "experiment/runner.hpp"
#include "experiment/supervisor.hpp"
#include "experiment/worker.hpp"
#include "experiment/world.hpp"
#include "snapshot/io_env.hpp"
#include "snapshot/snapshot_io.hpp"
#include "telemetry/json_value.hpp"
#include "telemetry/report.hpp"
#include "telemetry/status.hpp"
#include "telemetry/sampler.hpp"
#include "trace/contact_probe.hpp"
#include "trace/recorder.hpp"

using namespace dftmsn;

namespace {

int usage(int code) {
  std::cout <<
      "usage: dftmsn_cli [options] [key=value ...]\n"
      "  --protocol NAME   OPT|NOOPT|NOSLEEP|ZBR|DIRECT|EPIDEMIC (default OPT)\n"
      "  --preset NAME     paper|air|flu|sparse|pressure scenario preset\n"
      "  --scenario NAME   generate a trace-driven scenario-library world\n"
      "                    (dense-urban|sparse-rural|convoy|mass-event) and\n"
      "                    run it; the generated motion trace is written to\n"
      "                    --scenario-dir (see docs/scenarios.md)\n"
      "  --scenario-dir D  directory for generated trace files (default .)\n"
      "  --config FILE     load key=value assignments from FILE first\n"
      "  --reps N          replicated runs with seeds seed..seed+N-1 (default 1)\n"
      "  --jobs N          worker threads for replicated runs (default 1;\n"
      "                    0 = one per hardware thread; results are\n"
      "                    bit-identical for every N)\n"
      "  --faults PLAN     deterministic fault plan, e.g.\n"
      "                    \"crash@600:frac=0.3;loss@100:prob=0.5,for=50\"\n"
      "                    (= faults.plan; see docs/fault_injection.md)\n"
      "  --check-invariants  verify protocol invariants after every event;\n"
      "                    first violation aborts with exit code 3\n"
      "  --contacts-csv F  write a contact trace to F (single-run only)\n"
      "  --list-params     print every configurable key with its default\n"
      "telemetry (see docs/observability.md):\n"
      "  --report-json F   write one canonical JSON run report to F\n"
      "                    (config digest + dump, summary stats, drop/fault\n"
      "                    breakdowns, instrument registry; implies\n"
      "                    telemetry.enabled=true and is byte-identical at\n"
      "                    every --jobs value)\n"
      "  --profile         collect wall-clock subsystem timings into the\n"
      "                    report's trailing \"profile\" section (host\n"
      "                    noise; excluded from determinism comparisons)\n"
      "  --timeseries-csv F  sample per-node xi / queue fill / radio state\n"
      "                    every telemetry.sample_period_s sim seconds\n"
      "                    (default 60) into F (single-run only)\n"
      "  --trace-csv F     stream MAC handshake/sleep/data/drop trace\n"
      "                    events to F (single-run only)\n"
      "supervision (see docs/checkpoint_resume.md):\n"
      "  --checkpoint-dir D   write the checkpoints.dcc container +\n"
      "                    manifest.txt under D; enables the supervised\n"
      "                    runner\n"
      "  --checkpoint-every S checkpoint every S simulated seconds\n"
      "                    (default 0: only on SIGINT/SIGTERM)\n"
      "  --resume          skip replications the manifest marks completed,\n"
      "                    resume the rest from their checkpoints\n"
      "  --watchdog-secs S abort a replication making no progress for S\n"
      "                    wall seconds, then retry it (default 0: off)\n"
      "  --max-retries N   retries per replication before quarantine\n"
      "                    (default 2)\n"
      "  --isolate MODE    in-process (default) or process: run each\n"
      "                    replication attempt in a spawned worker process\n"
      "                    so the sweep survives segfaults/aborts; clean\n"
      "                    runs are bit-identical to in-process\n"
      "  --worker FILE     internal: run one replication attempt from a\n"
      "                    sealed request file (spawned by --isolate=process)\n"
      "distributed dispatch (see docs/distributed_sweeps.md):\n"
      "  --dispatch-port P serve the sweep as a lease-based work queue on\n"
      "                    TCP port P (0 = ephemeral port, announced as\n"
      "                    \"dispatch: listening on HOST:PORT\"); specs run\n"
      "                    on connected --connect workers; incompatible\n"
      "                    with --isolate process\n"
      "  --dispatch-bind A bind address for --dispatch-port\n"
      "                    (default 127.0.0.1)\n"
      "  --lease-secs S    lease duration per granted batch; heartbeats\n"
      "                    showing event progress extend it (default 30)\n"
      "  --batch-size N    specs granted per lease (default 1)\n"
      "  --connect H:P     run as a pull-mode dispatch worker against the\n"
      "                    dispatcher at H:P until the sweep is done\n"
      "live status (purely observational; see docs/observability.md):\n"
      "  --status-every S  atomically rewrite status.json every S wall\n"
      "                    seconds (in --checkpoint-dir, or the current\n"
      "                    directory without one)\n"
      "  --status-port P   serve GET /status, /healthz and /metrics\n"
      "                    (Prometheus text) on 127.0.0.1:P while the sweep\n"
      "                    runs (0 = ephemeral port, printed at start)\n"
      "  --trace-out F     append lifecycle spans (attempt/checkpoint/\n"
      "                    retry/spawn/sigkill/quarantine) to F in Chrome\n"
      "                    trace-event JSONL, viewable in Perfetto\n"
      "  --status DIR      print the progress table from DIR/status.json\n"
      "                    and exit (reader side; add --watch to refresh\n"
      "                    every second until the sweep finishes)\n"
      "durability (see docs/durability.md):\n"
      "  --fsck DIR        scan DIR's container/manifest/worker/trace\n"
      "                    files, repair torn tails and drop stale or\n"
      "                    corrupt entries; exit 0 clean, 7 repaired,\n"
      "                    2 unrepairable\n"
      "  --io-faults SPEC  deterministic I/O fault schedule, e.g.\n"
      "                    \"enospc@write#3\" or \"crash@rename#1\"\n"
      "                    (also read from $DFTMSN_IO_FAULTS; crash\n"
      "                    points _exit(9) — test harnesses only)\n";
  return code;
}

/// The worker must be this very binary: an --isolate=process sweep spawns
/// the executable that is already running, never a path from config.
std::string self_executable(const char* argv0) {
  char buf[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);  // non-procfs fallback
}

/// `--status DIR` reader: DIR/status.json is the whole interface — the
/// printing process never talks to the running sweep.
int run_status_reader(const std::string& dir, bool watch) {
  const std::string path = dir + "/status.json";
  for (;;) {
    telemetry::JsonValue doc;
    try {
      const std::vector<std::uint8_t> bytes = snapshot::read_file(path);
      doc = telemetry::parse_json(std::string(bytes.begin(), bytes.end()));
    } catch (const std::exception& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return 2;
    }
    if (watch) std::cout << "\033[2J\033[H";  // clear screen, cursor home
    std::cout << telemetry::render_status_table(doc) << std::flush;
    if (!watch) return 0;
    // The sweep is over once every spec reached a terminal phase.
    const double total = doc.number_or("specs_total", 0.0);
    double terminal = 0.0;
    if (const telemetry::JsonValue* phases = doc.find("phases");
        phases != nullptr) {
      terminal = phases->number_or("done", 0.0) +
                 phases->number_or("quarantined", 0.0) +
                 phases->number_or("interrupted", 0.0);
    }
    if (total > 0.0 && terminal >= total) return 0;
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  // Flag only: workers observe it at the next event boundary, flush a
  // final checkpoint, and unwind cleanly.
  g_stop.store(true);
}

}  // namespace

int main(int argc, char** argv) {
  // Arm the I/O fault schedule before anything can touch the disk. The
  // environment variable (not a flag) is the canonical carrier so an
  // --isolate=process parent's schedule reaches the workers it spawns;
  // scope=parent/worker tokens then pick which process a fault fires in.
  if (const char* spec = std::getenv("DFTMSN_IO_FAULTS");
      spec != nullptr && *spec != '\0') {
    try {
      snapshot::IoEnv::instance().set_schedule_spec(spec);
      // An exiting process — not an unwinding exception — is the honest
      // simulation of losing power at the scheduled boundary.
      snapshot::IoEnv::instance().set_crash_exits(true);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  Config config;
  ProtocolKind kind = ProtocolKind::kOpt;
  int reps = 1;
  int jobs = 1;
  std::string contacts_csv;
  std::string report_json;
  std::string timeseries_csv;
  std::string trace_csv;
  bool profile = false;
  SupervisorOptions sup;
  bool supervised = false;
  std::string status_read_dir;
  bool status_watch = false;
  std::string scenario_name;
  std::string scenario_dir = ".";
  std::vector<std::string> overrides;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--worker") {
      // Worker mode short-circuits everything else: the request file is
      // the whole contract (see worker_protocol.hpp).
      snapshot::IoEnv::instance().set_scope(snapshot::IoScope::kWorker);
      return run_worker(next());
    }
    if (arg == "--connect") {
      // Dispatch-worker mode short-circuits the same way: the wire
      // protocol (experiment/dispatch.hpp) is the whole contract.
      const std::string hostport = next();
      const std::size_t colon = hostport.rfind(':');
      const int port = colon == std::string::npos
                           ? -1
                           : std::atoi(hostport.c_str() + colon + 1);
      if (colon == std::string::npos || colon == 0 || port < 1 ||
          port > 65535) {
        std::cerr << "--connect needs HOST:PORT (port 1..65535)\n";
        return 2;
      }
      return run_dispatch_worker(hostport.substr(0, colon), port);
    }
    if (arg == "--fsck") {
      const std::string dir = next();
      try {
        return run_fsck(dir, std::cout).exit_code();
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    }
    if (arg == "--io-faults") {
      const std::string spec = next();
      try {
        snapshot::IoEnv::instance().set_schedule_spec(spec);
        snapshot::IoEnv::instance().set_crash_exits(true);
        // Spawned workers inherit the schedule through the environment.
        ::setenv("DFTMSN_IO_FAULTS", spec.c_str(), 1);
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
      continue;
    }
    if (arg == "--list-params") {
      for (const std::string& k : list_config_keys(config))
        std::cout << k << "\n";
      return 0;
    }
    if (arg == "--preset") {
      const std::string name = next();
      const auto preset = scenario_preset(name);
      if (!preset) {
        std::cerr << "unknown preset: " << name << " (";
        for (const std::string& p : scenario_preset_names())
          std::cerr << p << " ";
        std::cerr << ")\n";
        return 2;
      }
      config = *preset;
      continue;
    }
    if (arg == "--scenario") {
      scenario_name = next();
      if (!is_scenario_name(scenario_name)) {
        std::cerr << "unknown scenario: " << scenario_name << " (";
        for (const std::string& s : scenario_names()) std::cerr << s << " ";
        std::cerr << ")\n";
        return 2;
      }
      continue;
    }
    if (arg == "--scenario-dir") {
      scenario_dir = next();
      continue;
    }
    if (arg == "--protocol") {
      const std::string name = next();
      const auto parsed = parse_protocol_kind(name);
      if (!parsed) {
        std::cerr << "unknown protocol: " << name << "\n";
        return 2;
      }
      kind = *parsed;
      continue;
    }
    if (arg == "--config") {
      try {
        load_config_file(config, next());
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
      continue;
    }
    if (arg == "--reps") {
      reps = std::atoi(next().c_str());
      if (reps < 1) {
        std::cerr << "--reps must be >= 1\n";
        return 2;
      }
      continue;
    }
    if (arg == "--jobs") {
      jobs = std::atoi(next().c_str());  // <= 0 means auto (all cores)
      continue;
    }
    if (arg == "--faults") {
      config.faults.plan = next();
      continue;
    }
    if (arg == "--check-invariants") {
      config.faults.check_invariants = true;
      continue;
    }
    if (arg == "--contacts-csv") {
      contacts_csv = next();
      continue;
    }
    if (arg == "--report-json") {
      report_json = next();
      continue;
    }
    if (arg == "--profile") {
      profile = true;
      continue;
    }
    if (arg == "--timeseries-csv") {
      timeseries_csv = next();
      continue;
    }
    if (arg == "--trace-csv") {
      trace_csv = next();
      continue;
    }
    if (arg == "--checkpoint-dir") {
      sup.checkpoint_dir = next();
      supervised = true;
      continue;
    }
    if (arg == "--checkpoint-every") {
      sup.checkpoint_every_s = std::atof(next().c_str());
      supervised = true;
      continue;
    }
    if (arg == "--resume") {
      sup.resume = true;
      supervised = true;
      continue;
    }
    if (arg == "--watchdog-secs") {
      sup.watchdog_secs = std::atof(next().c_str());
      supervised = true;
      continue;
    }
    if (arg == "--max-retries") {
      sup.max_retries = std::atoi(next().c_str());
      if (sup.max_retries < 0) {
        std::cerr << "--max-retries must be >= 0\n";
        return 2;
      }
      supervised = true;
      continue;
    }
    if (arg == "--status-every") {
      sup.obs.status_every_s = std::atof(next().c_str());
      if (sup.obs.status_every_s <= 0.0) {
        std::cerr << "--status-every must be > 0\n";
        return 2;
      }
      supervised = true;
      continue;
    }
    if (arg == "--status-port") {
      sup.obs.status_port = std::atoi(next().c_str());
      if (sup.obs.status_port < 0 || sup.obs.status_port > 65535) {
        std::cerr << "--status-port must be 0..65535\n";
        return 2;
      }
      supervised = true;
      continue;
    }
    if (arg == "--trace-out") {
      sup.obs.trace_path = next();
      supervised = true;
      continue;
    }
    if (arg == "--status") {
      status_read_dir = next();
      continue;
    }
    if (arg == "--watch") {
      status_watch = true;
      continue;
    }
    if (arg == "--dispatch-port") {
      sup.dispatch.port = std::atoi(next().c_str());
      if (sup.dispatch.port < 0 || sup.dispatch.port > 65535) {
        std::cerr << "--dispatch-port must be 0..65535\n";
        return 2;
      }
      supervised = true;
      continue;
    }
    if (arg == "--dispatch-bind") {
      sup.dispatch.bind = next();
      supervised = true;
      continue;
    }
    if (arg == "--lease-secs") {
      sup.dispatch.lease_secs = std::atof(next().c_str());
      if (sup.dispatch.lease_secs <= 0.0) {
        std::cerr << "--lease-secs must be > 0\n";
        return 2;
      }
      supervised = true;
      continue;
    }
    if (arg == "--batch-size") {
      sup.dispatch.batch_size = std::atoi(next().c_str());
      if (sup.dispatch.batch_size < 1) {
        std::cerr << "--batch-size must be >= 1\n";
        return 2;
      }
      supervised = true;
      continue;
    }
    if (arg == "--isolate") {
      const std::string mode = next();
      if (mode == "in-process") {
        sup.isolate = IsolationMode::kInProcess;
      } else if (mode == "process") {
        sup.isolate = IsolationMode::kProcess;
      } else {
        std::cerr << "--isolate must be in-process or process\n";
        return 2;
      }
      supervised = true;
      continue;
    }
    overrides.push_back(arg);
  }
  if ((sup.resume || sup.checkpoint_every_s > 0) &&
      sup.checkpoint_dir.empty()) {
    std::cerr << "--resume/--checkpoint-every need --checkpoint-dir\n";
    return 2;
  }
  if (sup.dispatch.enabled() && sup.isolate == IsolationMode::kProcess) {
    std::cerr << "--dispatch-port runs specs on connected workers; it is "
                 "incompatible with --isolate process\n";
    return 2;
  }
  if (!status_read_dir.empty()) return run_status_reader(status_read_dir,
                                                         status_watch);
  if (status_watch) {
    std::cerr << "--watch needs --status DIR\n";
    return 2;
  }
  if (sup.obs.status_every_s > 0.0 && sup.obs.status_dir.empty())
    sup.obs.status_dir =
        sup.checkpoint_dir.empty() ? std::string(".") : sup.checkpoint_dir;

  try {
    if (!scenario_name.empty()) {
      // Like --preset, --scenario replaces the base config. The trace is
      // a function of the seed, so resolve the final seed first (a
      // scenario.seed=N override must regenerate the trace, not merely
      // reseed the traffic/placement streams against a stale one).
      Config probe = generate_scenario(scenario_name, config.scenario.seed)
                         .config;
      apply_config_overrides(probe, overrides);
      config = materialize_scenario(scenario_name, probe.scenario.seed,
                                    scenario_dir);
      std::cout << "scenario=" << scenario_name << " trace="
                << config.scenario.trace_path << "\n";
    }
    apply_config_overrides(config, overrides);
    config.validate();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  // A report needs the instrument registry; --profile needs the timers.
  // Both are set before the specs are built so every replication (and, in
  // the supervised path, every checkpoint's config digest) agrees.
  if (!report_json.empty()) config.telemetry.enabled = true;
  if (profile) config.telemetry.profile = true;

  std::cout << "protocol=" << protocol_kind_name(kind)
            << " sensors=" << config.scenario.num_sensors
            << " sinks=" << config.scenario.num_sinks
            << " field=" << config.scenario.field_m << "m"
            << " duration=" << config.scenario.duration_s << "s"
            << " reps=" << reps << "\n";

  if (supervised) {
    if (!contacts_csv.empty() || !timeseries_csv.empty() ||
        !trace_csv.empty()) {
      std::cerr << "--contacts-csv/--timeseries-csv/--trace-csv are not "
                   "available under supervision\n";
      return 2;
    }
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    sup.jobs = jobs;
    sup.stop = &g_stop;
    sup.obs.announce = &std::cout;
    if (sup.isolate == IsolationMode::kProcess)
      sup.worker_exe = self_executable(argv[0]);

    std::vector<RunSpec> specs(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      specs[static_cast<std::size_t>(r)].config = config;
      specs[static_cast<std::size_t>(r)].config.scenario.seed =
          config.scenario.seed + static_cast<std::uint64_t>(r);
      specs[static_cast<std::size_t>(r)].kind = kind;
    }

    SweepManifest manifest;
    try {
      manifest = run_specs_supervised(specs, sup);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }

    for (std::size_t i = 0; i < manifest.specs.size(); ++i) {
      const SpecRecord& r = manifest.specs[i];
      std::cout << "rep " << i << ": " << spec_status_name(r.status)
                << " retries=" << r.retries;
      if (!r.detail.empty()) std::cout << " (" << r.detail << ")";
      std::cout << "\n";
    }
    std::cout << "manifest: completed=" << manifest.completed()
              << " retried=" << manifest.retried()
              << " quarantined=" << manifest.quarantined()
              << " interrupted=" << manifest.interrupted() << "\n";

    const std::vector<RunResult> done = completed_results(manifest);
    if (!done.empty()) {
      const ReplicatedResult r = reduce_results(done);
      std::cout << "over " << r.replications << " completed replications:\n"
                << "delivery_ratio=" << r.delivery_ratio.mean() << " +- "
                << r.delivery_ratio.ci95_half_width()
                << "\npower_mw=" << r.mean_power_mw.mean() << " +- "
                << r.mean_power_mw.ci95_half_width()
                << "\ndelay_s=" << r.mean_delay_s.mean() << " +- "
                << r.mean_delay_s.ci95_half_width() << "\n";
    }
    if (!report_json.empty()) {
      telemetry::ReportInputs in;
      in.config = &config;
      in.kind = kind;
      in.runs = &done;
      // Each completed spec's registry rides in the manifest (captured
      // from its accepted attempt, whichever isolation mode ran it);
      // merging in spec order makes the instrument sections identical at
      // every --jobs value and across isolation modes.
      RunTelemetry tel;
      for (const SpecRecord& rec : manifest.specs)
        if (rec.status == SpecStatus::kCompleted)
          tel.registry.merge(rec.registry);
      in.telemetry = &tel;
      in.supervisor.supervised = true;
      in.supervisor.completed = manifest.completed();
      in.supervisor.retried = manifest.retried();
      in.supervisor.quarantined = manifest.quarantined();
      in.supervisor.interrupted = manifest.interrupted();
      in.supervisor.checkpoints = manifest.total_checkpoints();
      try {
        telemetry::write_report_json(report_json, in);
        std::cout << "wrote " << report_json << "\n";
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    }
    if (manifest.interrupted() > 0) {
      if (!sup.checkpoint_dir.empty())
        std::cout << "interrupted; rerun with --resume --checkpoint-dir "
                  << sup.checkpoint_dir << " to continue\n";
      return 4;
    }
    if (manifest.quarantined() > 0) return 5;
    return 0;
  }

  try {
    if (reps == 1) {
      World world(config, kind);
      std::unique_ptr<CsvTraceSink> csv;
      std::unique_ptr<ContactProbe> probe;
      if (!contacts_csv.empty()) {
        csv = std::make_unique<CsvTraceSink>(contacts_csv);
        probe = std::make_unique<ContactProbe>(
            world.sim(), world.mobility(), config.radio.range_m, 1.0, *csv);
        probe->start();
      }
      std::unique_ptr<CsvTraceSink> trace_sink;
      if (!trace_csv.empty()) {
        trace_sink = std::make_unique<CsvTraceSink>(trace_csv);
        world.set_trace_sink(trace_sink.get());
      }
      std::unique_ptr<CsvTraceSink> ts_sink;
      std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
      if (!timeseries_csv.empty()) {
        ts_sink = std::make_unique<CsvTraceSink>(timeseries_csv);
        const double period = config.telemetry.sample_period_s > 0.0
                                  ? config.telemetry.sample_period_s
                                  : 60.0;
        sampler = std::make_unique<telemetry::TimeSeriesSampler>(
            world.sim(), world.sensors(), world.metrics(), period, *ts_sink);
        sampler->start();
      }
      world.run();
      if (probe) probe->finish();

      const Metrics& m = world.metrics();
      std::cout << "delivery_ratio=" << m.delivery_ratio()
                << " power_mw=" << world.mean_sensor_power_mw()
                << " delay_s=" << m.mean_delay_s()
                << " hops=" << m.mean_hops() << "\n"
                << "generated=" << m.generated()
                << " delivered=" << m.delivered_unique()
                << " data_tx=" << m.data_transmissions()
                << " collisions=" << world.channel().counters().collisions
                << " drops_overflow=" << m.drops(DropReason::kOverflow)
                << " drops_ftd=" << m.drops(DropReason::kFtdThreshold) << "\n";
      if (const FaultInjector* inj = world.fault_injector()) {
        const FaultInjector::Counters& fc = inj->counters();
        std::cout << "faults: crashes=" << fc.crashes
                  << " outages=" << fc.outages
                  << " recoveries=" << fc.recoveries
                  << " loss_bursts=" << fc.loss_bursts
                  << " pressure=" << fc.pressure_events
                  << " drops_node_failure="
                  << m.drops(DropReason::kNodeFailure)
                  << " frames_corrupted="
                  << world.channel().counters().faults_corrupted << "\n";
      }
      if (const InvariantChecker* chk = world.invariant_checker())
        std::cout << "invariants: sweeps=" << chk->sweeps_run()
                  << " (all passed)\n";
      if (csv) std::cout << "wrote " << contacts_csv << "\n";
      if (trace_sink) std::cout << "wrote " << trace_csv << "\n";
      if (ts_sink)
        std::cout << "wrote " << timeseries_csv << " ("
                  << sampler->samples_taken() << " samples)\n";
      if (!report_json.empty()) {
        std::vector<RunResult> runs{reduce_world(world)};
        RunTelemetry tel;
        if (const telemetry::Registry* reg = world.registry())
          tel.registry.merge(*reg);
        if (const telemetry::Profiler* prof = world.profiler())
          tel.profile.merge(*prof);
        telemetry::ReportInputs in;
        in.config = &config;
        in.kind = kind;
        in.runs = &runs;
        in.telemetry = &tel;
        telemetry::write_report_json(report_json, in);
        std::cout << "wrote " << report_json << "\n";
      }
      return 0;
    }

    if (!contacts_csv.empty() || !timeseries_csv.empty() ||
        !trace_csv.empty()) {
      std::cerr << "--contacts-csv/--timeseries-csv/--trace-csv require "
                   "--reps 1\n";
      return 2;
    }
    // Expand the replication seeds exactly like run_replicated so the
    // printed aggregates are unchanged, but run them through run_specs
    // directly: the report needs the per-replication RunResults and the
    // per-slot telemetry capture (deterministic at every --jobs value).
    std::vector<RunSpec> specs(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      specs[static_cast<std::size_t>(r)].config = config;
      specs[static_cast<std::size_t>(r)].config.scenario.seed =
          config.scenario.seed + static_cast<std::uint64_t>(r);
      specs[static_cast<std::size_t>(r)].kind = kind;
    }
    std::vector<RunTelemetry> slots;
    const std::vector<RunResult> runs = run_specs(
        specs, jobs, report_json.empty() ? nullptr : &slots);
    const ReplicatedResult r = reduce_results(runs);
    std::cout << "delivery_ratio=" << r.delivery_ratio.mean() << " +- "
              << r.delivery_ratio.ci95_half_width()
              << "\npower_mw=" << r.mean_power_mw.mean() << " +- "
              << r.mean_power_mw.ci95_half_width()
              << "\ndelay_s=" << r.mean_delay_s.mean() << " +- "
              << r.mean_delay_s.ci95_half_width() << "\n";
    if (!report_json.empty()) {
      RunTelemetry tel;  // merged in replication order: jobs-independent
      for (const RunTelemetry& s : slots) {
        tel.registry.merge(s.registry);
        tel.profile.merge(s.profile);
      }
      telemetry::ReportInputs in;
      in.config = &config;
      in.kind = kind;
      in.runs = &runs;
      in.telemetry = &tel;
      telemetry::write_report_json(report_json, in);
      std::cout << "wrote " << report_json << "\n";
    }
  } catch (const InvariantViolation& v) {
    std::cerr << v.what() << "\n";
    return 3;
  } catch (const std::exception& e) {  // e.g. a malformed --faults plan
    std::cerr << e.what() << "\n";
    return 2;
  }
  return 0;
}
