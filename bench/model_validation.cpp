// MODEL-VAL: validates the simulator against the closed-form delivery
// models of the DIRECT scheme (and the epidemic upper-bound shape), in
// the spirit of the queueing analysis the authors performed for these
// two basic schemes in their prior work ([5]).
//
// The contact rates feeding the models are measured from the simulation
// itself (ContactProbe), so this is a self-consistency check: simulated
// DIRECT delivery must track the exponential-contact prediction.
#include <iostream>
#include <vector>

#include "analysis/delivery_models.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "experiment/world.hpp"
#include "trace/contact_analysis.hpp"
#include "trace/contact_probe.hpp"
#include "trace/recorder.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  print_banner(std::cout, "MODEL-VAL (ref [5] analysis)",
               "Simulated DIRECT/EPIDEMIC delivery vs closed-form "
               "exponential-contact models, per sink count.");

  ConsoleTable table(std::cout,
                     {"sinks", "lam_sink/h", "direct_sim%", "hetero_model%",
                      "meanfield%", "epidemic_sim%", "epi_model%"});

  const std::vector<int> sink_counts{1, 2, 3, 5};

  // The epidemic comparison runs are independent of the probe worlds
  // below, so fan them out across the worker pool up front.
  std::vector<RunSpec> epi_specs;
  for (const int sinks : sink_counts) {
    RunSpec s;
    s.config.scenario.num_sinks = sinks;
    s.config.scenario.duration_s = budget.duration_s;
    s.kind = ProtocolKind::kEpidemic;
    epi_specs.push_back(s);
  }
  const std::vector<RunResult> epi_runs = run_specs(epi_specs, budget.jobs);

  std::size_t si = 0;
  for (const int sinks : sink_counts) {
    Config c;
    c.scenario.num_sinks = sinks;
    c.scenario.duration_s = budget.duration_s;

    // Measure contact rates under the same mobility (protocol-agnostic).
    World probe_world(c, ProtocolKind::kDirect);
    TraceRecorder trace;
    ContactProbe probe(probe_world.sim(), probe_world.mobility(),
                       c.radio.range_m, 1.0, trace);
    probe.start();
    probe_world.run();
    probe.finish();
    const ContactStats stats =
        analyze_contacts(trace.events(), probe_world.first_sink_id());

    // Mean per-sensor sink-contact rate and pairwise sensor contact rate.
    double sink_eps = 0.0;
    for (const auto& [node, cnt] : stats.sink_contacts_per_node)
      sink_eps += static_cast<double>(cnt);
    const double lambda_sink =
        sink_eps / c.scenario.num_sensors / c.scenario.duration_s;
    std::size_t sensor_episodes = stats.contacts;
    for (const auto& [node, cnt] : stats.sink_contacts_per_node)
      sensor_episodes -= cnt;
    const double beta = estimate_pairwise_contact_rate(
        sensor_episodes, static_cast<std::size_t>(c.scenario.num_sensors),
        c.scenario.duration_s);

    const double direct_sim = probe_world.metrics().delivery_ratio();
    const double direct_model =
        direct_delivery_ratio(lambda_sink, c.scenario.duration_s);

    // Heterogeneous model: feed the measured per-node rates.
    const auto rates = sink_contact_rates(
        stats, probe_world.first_sink_id(), probe_world.first_sink_id(),
        c.scenario.duration_s);
    std::vector<double> lambdas;
    lambdas.reserve(rates.size());
    for (const auto& [node, rate] : rates) lambdas.push_back(rate);
    const double hetero_model =
        direct_delivery_ratio_heterogeneous(lambdas, c.scenario.duration_s);

    const RunResult& epi = epi_runs[si++];
    const double epi_model = epidemic_delivery_ratio(
        beta, lambda_sink,
        static_cast<std::size_t>(c.scenario.num_sensors),
        c.scenario.duration_s, 5.0);

    table.row({ConsoleTable::format(sinks, 0),
               ConsoleTable::format(lambda_sink * 3600.0, 2),
               ConsoleTable::format(direct_sim * 100.0, 2),
               ConsoleTable::format(hetero_model * 100.0, 2),
               ConsoleTable::format(direct_model * 100.0, 2),
               ConsoleTable::format(epi.delivery_ratio * 100.0, 2),
               ConsoleTable::format(epi_model * 100.0, 2)});
  }

  std::cout << "\nReading: direct_sim tracks the *heterogeneous* model fed\n"
               "with measured per-node sink-contact rates; the mean-field\n"
               "column (homogeneous rate) vastly overestimates it — the\n"
               "Jensen gap quantifies the per-node heterogeneity that makes\n"
               "relaying worthwhile. The epidemic model is a no-MAC upper\n"
               "bound: the measured epidemic ratio falls far below it —\n"
               "the cost of contention and buffers the paper's protocol\n"
               "is designed to manage.\n";
  return 0;
}
