// SCENARIO-SWEEP: protocol rankings across the scenario library.
//
// Runs every registered scenario (dense-urban / sparse-rural / convoy /
// mass-event, each a trace-driven world generated at seed 42) under the
// paper's four protocol variants and ranks the variants per scenario by
// delivery ratio — the cross-world generalization check behind the
// paper's single-field comparison. Output: a stdout table plus, with
// --out, the machine-readable BENCH_scenarios.json.
//
// Usage: scenario_sweep [--out FILE] [--dir DIR]
//   --out FILE   JSON output path (default: stdout table only)
//   --dir DIR    where generated trace files go (default .)
// Budget knobs (DFTMSN_BENCH_REPS / DFTMSN_BENCH_JOBS) as in runner.hpp;
// durations are scenario-defined, not budget-scaled.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "protocol/protocol_factory.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace dftmsn;

constexpr std::uint64_t kSeed = 42;
constexpr ProtocolKind kProtocols[] = {ProtocolKind::kOpt,
                                       ProtocolKind::kNoOpt,
                                       ProtocolKind::kNoSleep,
                                       ProtocolKind::kZbr};

struct ProtocolRow {
  std::string protocol;
  double delivery_ratio = 0.0;
  double mean_delay_s = 0.0;
  double mean_power_mw = 0.0;
  int rank = 0;
};

struct ScenarioBlock {
  std::string name;
  std::vector<ProtocolRow> rows;  // ranked, best delivery first
};

void write_json(const std::string& path,
                const std::vector<ScenarioBlock>& blocks, int replications) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"scenario_sweep\",\n  \"seed\": " << kSeed
      << ",\n  \"replications\": " << replications
      << ",\n  \"ranked_by\": \"delivery_ratio\",\n  \"scenarios\": [\n";
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    const ScenarioBlock& b = blocks[s];
    out << "    {\"name\": \"" << b.name << "\", \"protocols\": [\n";
    for (std::size_t i = 0; i < b.rows.size(); ++i) {
      const ProtocolRow& r = b.rows[i];
      out << "      {\"protocol\": \"" << r.protocol << "\", \"rank\": "
          << r.rank << ", \"delivery_ratio\": " << r.delivery_ratio
          << ", \"mean_delay_s\": " << r.mean_delay_s
          << ", \"mean_power_mw\": " << r.mean_power_mw << "}"
          << (i + 1 < b.rows.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (s + 1 < blocks.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else {
      std::cerr << "usage: scenario_sweep [--out FILE] [--dir DIR]\n";
      return 2;
    }
  }

  const BenchBudget budget = bench_budget_from_env();
  std::cout << "SCENARIO-SWEEP: protocol rankings per scenario (seed "
            << kSeed << ", " << budget.replications << " reps)\n";

  std::vector<ScenarioBlock> blocks;
  for (const std::string& name : scenario_names()) {
    const Config base = materialize_scenario(name, kSeed, dir);
    ScenarioBlock block;
    block.name = name;
    for (ProtocolKind kind : kProtocols) {
      const ReplicatedResult r =
          run_replicated(base, kind, budget.replications, budget.jobs);
      ProtocolRow row;
      row.protocol = protocol_kind_name(kind);
      row.delivery_ratio = r.delivery_ratio.mean();
      row.mean_delay_s = r.mean_delay_s.mean();
      row.mean_power_mw = r.mean_power_mw.mean();
      block.rows.push_back(row);
    }
    std::stable_sort(block.rows.begin(), block.rows.end(),
                     [](const ProtocolRow& a, const ProtocolRow& b) {
                       return a.delivery_ratio > b.delivery_ratio;
                     });
    for (std::size_t i = 0; i < block.rows.size(); ++i)
      block.rows[i].rank = static_cast<int>(i) + 1;

    std::cout << "\n-- " << name << " (" << scenario_description(name)
              << ")\n";
    std::cout << "  rank  protocol   delivery    delay_s   power_mw\n";
    for (const ProtocolRow& r : block.rows)
      std::printf("  %4d  %-8s  %8.4f  %9.1f  %9.4f\n", r.rank,
                  r.protocol.c_str(), r.delivery_ratio, r.mean_delay_s,
                  r.mean_power_mw);
    blocks.push_back(std::move(block));
  }

  if (!out_path.empty()) write_json(out_path, blocks, budget.replications);
  return 0;
}
