// SWEEP-D: reproduces the Sec. 5 node-density discussion — as density
// grows, nodes near the sinks become bottlenecks (bandwidth + buffer) and
// the delivery ratio degrades for the relaying protocols.
#include <iostream>
#include <vector>

#include "common/thread_pool.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  const std::vector<int> densities{50, 100, 150, 200};
  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kOpt, ProtocolKind::kNoOpt, ProtocolKind::kZbr};

  print_banner(std::cout, "SWEEP-D (Sec. 5, node density)",
               "Impact of sensor population on delivery ratio / power / "
               "delay (3 sinks).\nreps=" + std::to_string(budget.replications) +
               " duration=" + std::to_string(budget.duration_s) + "s" +
               " jobs=" + std::to_string(resolve_jobs(budget.jobs)));

  CsvWriter csv("density_sweep.csv",
                {"sensors", "protocol", "delivery_ratio", "power_mw",
                 "delay_s", "overhead_bits_per_delivery"});
  ConsoleTable table(std::cout, {"sensors", "protocol", "ratio%", "power_mW",
                                 "delay_s", "ovh_bits"});

  std::vector<SweepPoint> points;
  for (const int n : densities) {
    for (const ProtocolKind kind : protocols) {
      SweepPoint p;
      p.config.scenario.num_sensors = n;
      p.config.scenario.duration_s = budget.duration_s;
      p.kind = kind;
      points.push_back(p);
    }
  }
  const std::vector<ReplicatedResult> results =
      run_sweep(points, budget.replications, budget.jobs);

  std::size_t i = 0;
  for (const int n : densities) {
    for (const ProtocolKind kind : protocols) {
      const ReplicatedResult& r = results[i++];
      table.row({ConsoleTable::format(n, 0), protocol_kind_name(kind),
                 ConsoleTable::format(r.delivery_ratio.mean() * 100.0, 2),
                 ConsoleTable::format(r.mean_power_mw.mean(), 3),
                 ConsoleTable::format(r.mean_delay_s.mean(), 1),
                 ConsoleTable::format(r.overhead_bits_per_delivery.mean(), 0)});
      csv.row({static_cast<double>(n),
               static_cast<double>(static_cast<int>(kind)),
               r.delivery_ratio.mean(), r.mean_power_mw.mean(),
               r.mean_delay_s.mean(), r.overhead_bits_per_delivery.mean()});
    }
  }
  std::cout << "\nwrote density_sweep.csv\n";
  return 0;
}
