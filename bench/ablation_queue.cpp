// ABL-QUEUE: ablation of the FTD-sorted queue management (Sec. 3.1.2).
// The paper argues importance-aware ordering + drop policy is key under
// buffer pressure; we compare it against FIFO and random-drop disciplines
// in a pressured scenario (small buffers, faster data generation).
#include <iostream>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  print_banner(std::cout, "ABL-QUEUE (design ablation, Sec. 3.1.2)",
               "FTD-sorted vs FIFO vs random-drop buffers under pressure "
               "(queue 50, data every 60 s, 2 sinks).");

  CsvWriter csv("ablation_queue.csv",
                {"policy", "delivery_ratio", "delay_s", "drops_overflow"});
  ConsoleTable table(std::cout,
                     {"policy", "ratio%", "delay_s", "ovf_drops"});

  struct Row {
    const char* name;
    QueuePolicy policy;
  };
  for (const Row row : {Row{"ftd-sorted", QueuePolicy::kFtdSorted},
                        Row{"fifo", QueuePolicy::kFifo},
                        Row{"random-drop", QueuePolicy::kRandomDrop}}) {
    Config c;
    c.scenario.duration_s = budget.duration_s;
    c.scenario.num_sinks = 2;
    c.scenario.data_interval_s = 60.0;
    c.protocol.queue_capacity = 50;
    c.protocol.queue_policy = row.policy;

    Summary ratio, delay, ovf;
    for (int rep = 0; rep < budget.replications; ++rep) {
      c.scenario.seed = 1 + static_cast<std::uint64_t>(rep);
      const RunResult r = run_once(c, ProtocolKind::kOpt);
      ratio.add(r.delivery_ratio);
      delay.add(r.mean_delay_s);
      ovf.add(static_cast<double>(r.drops_overflow));
    }
    table.row({row.name, ConsoleTable::format(ratio.mean() * 100.0, 2),
               ConsoleTable::format(delay.mean(), 1),
               ConsoleTable::format(ovf.mean(), 0)});
    csv.row({static_cast<double>(static_cast<int>(row.policy)), ratio.mean(),
             delay.mean(), ovf.mean()});
  }
  std::cout << "\nwrote ablation_queue.csv\n";
  return 0;
}
