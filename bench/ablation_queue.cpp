// ABL-QUEUE: ablation of the FTD-sorted queue management (Sec. 3.1.2).
// The paper argues importance-aware ordering + drop policy is key under
// buffer pressure; we compare it against FIFO and random-drop disciplines
// in a pressured scenario (small buffers, faster data generation).
#include <iostream>
#include <vector>

#include "common/thread_pool.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  print_banner(std::cout, "ABL-QUEUE (design ablation, Sec. 3.1.2)",
               "FTD-sorted vs FIFO vs random-drop buffers under pressure "
               "(queue 50, data every 60 s, 2 sinks).");

  CsvWriter csv("ablation_queue.csv",
                {"policy", "delivery_ratio", "delay_s", "drops_overflow"});
  ConsoleTable table(std::cout,
                     {"policy", "ratio%", "delay_s", "ovf_drops"});

  struct Row {
    const char* name;
    QueuePolicy policy;
  };
  const std::vector<Row> rows{Row{"ftd-sorted", QueuePolicy::kFtdSorted},
                              Row{"fifo", QueuePolicy::kFifo},
                              Row{"random-drop", QueuePolicy::kRandomDrop}};

  std::vector<SweepPoint> points;
  for (const Row& row : rows) {
    SweepPoint p;
    p.config.scenario.duration_s = budget.duration_s;
    p.config.scenario.num_sinks = 2;
    p.config.scenario.data_interval_s = 60.0;
    p.config.scenario.seed = 1;
    p.config.protocol.queue_capacity = 50;
    p.config.protocol.queue_policy = row.policy;
    points.push_back(p);
  }
  std::vector<std::vector<RunResult>> raw;
  run_sweep(points, budget.replications, budget.jobs, &raw);

  for (std::size_t i = 0; i < rows.size(); ++i) {
    Summary ratio, delay, ovf;
    for (const RunResult& r : raw[i]) {
      ratio.add(r.delivery_ratio);
      delay.add(r.mean_delay_s);
      ovf.add(static_cast<double>(r.drops_overflow));
    }
    table.row({rows[i].name, ConsoleTable::format(ratio.mean() * 100.0, 2),
               ConsoleTable::format(delay.mean(), 1),
               ConsoleTable::format(ovf.mean(), 0)});
    csv.row({static_cast<double>(static_cast<int>(rows[i].policy)),
             ratio.mean(), delay.mean(), ovf.mean()});
  }
  std::cout << "\nwrote ablation_queue.csv\n";
  return 0;
}
