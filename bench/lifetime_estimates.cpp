// LIFETIME: turns the Fig. 2(b) power comparison into the quantity the
// paper's Sec. 4 motivation actually cares about — how long the sensors
// live on a wearable battery budget, per protocol.
#include <iostream>
#include <vector>

#include "analysis/lifetime.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "experiment/world.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  print_banner(std::cout, "LIFETIME (Sec. 4 motivation)",
               "Projected sensor lifetimes on a 2xAA budget (~21 kJ) from "
               "measured per-node power, per protocol (3 sinks).");

  const BatteryModel battery;
  ConsoleTable table(std::cout, {"protocol", "median_days", "p20_net_days",
                                 "min_days", "max_days"});

  for (const ProtocolKind kind :
       {ProtocolKind::kOpt, ProtocolKind::kNoOpt, ProtocolKind::kNoSleep,
        ProtocolKind::kZbr}) {
    Config c;
    c.scenario.duration_s = budget.duration_s;
    World world(c, kind);
    world.run();

    std::vector<double> watts;
    watts.reserve(world.sensors().size());
    for (auto& s : world.sensors()) {
      EnergyMeter meter = s->radio().meter();
      meter.finalize(world.sim().now());
      watts.push_back(meter.total_joules() / world.sim().now());
    }
    const LifetimeStats stats = estimate_lifetimes(battery, watts, 0.2);
    const auto days = [](double s) { return s / 86'400.0; };
    table.row({protocol_kind_name(kind),
               ConsoleTable::format(days(stats.median_s), 1),
               ConsoleTable::format(days(stats.network_lifetime_s), 1),
               ConsoleTable::format(days(stats.min_s), 1),
               ConsoleTable::format(days(stats.max_s), 1)});
  }

  std::cout << "\nReading: adaptive sleeping (OPT) turns an ~18-day\n"
               "always-on deployment into a multi-month one; the network\n"
               "lifetime column (20% deaths) shows the fairness of the\n"
               "energy load.\n";
  return 0;
}
