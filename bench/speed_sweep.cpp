// SWEEP-V: reproduces the Sec. 5 nodal-speed discussion — higher speed
// means more contact opportunities: delivery ratio rises, delay falls,
// and OPT's transmission overhead per delivered message shrinks.
#include <iostream>
#include <vector>

#include "common/thread_pool.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  const std::vector<double> speeds{1.0, 2.5, 5.0, 10.0};
  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kOpt, ProtocolKind::kNoOpt, ProtocolKind::kZbr};

  print_banner(std::cout, "SWEEP-V (Sec. 5, nodal speed)",
               "Impact of maximum nodal speed on delivery ratio / power / "
               "delay (3 sinks).\nreps=" + std::to_string(budget.replications) +
               " duration=" + std::to_string(budget.duration_s) + "s" +
               " jobs=" + std::to_string(resolve_jobs(budget.jobs)));

  CsvWriter csv("speed_sweep.csv",
                {"speed_max", "protocol", "delivery_ratio", "power_mw",
                 "delay_s", "overhead_bits_per_delivery"});
  ConsoleTable table(std::cout, {"v_max", "protocol", "ratio%", "power_mW",
                                 "delay_s", "ovh_bits"});

  std::vector<SweepPoint> points;
  for (const double v : speeds) {
    for (const ProtocolKind kind : protocols) {
      SweepPoint p;
      p.config.scenario.speed_max_mps = v;
      p.config.scenario.duration_s = budget.duration_s;
      p.kind = kind;
      points.push_back(p);
    }
  }
  const std::vector<ReplicatedResult> results =
      run_sweep(points, budget.replications, budget.jobs);

  std::size_t i = 0;
  for (const double v : speeds) {
    for (const ProtocolKind kind : protocols) {
      const ReplicatedResult& r = results[i++];
      table.row({ConsoleTable::format(v, 1), protocol_kind_name(kind),
                 ConsoleTable::format(r.delivery_ratio.mean() * 100.0, 2),
                 ConsoleTable::format(r.mean_power_mw.mean(), 3),
                 ConsoleTable::format(r.mean_delay_s.mean(), 1),
                 ConsoleTable::format(r.overhead_bits_per_delivery.mean(), 0)});
      csv.row({v, static_cast<double>(static_cast<int>(kind)),
               r.delivery_ratio.mean(), r.mean_power_mw.mean(),
               r.mean_delay_s.mean(), r.overhead_bits_per_delivery.mean()});
    }
  }
  std::cout << "\nwrote speed_sweep.csv\n";
  return 0;
}
