// FIG2: reproduces Fig. 2(a)-(c) of the paper — delivery ratio, average
// nodal power consumption rate, and average delivery delay as functions
// of the number of sink nodes, for OPT / NOSLEEP / NOOPT / ZBR.
//
// Environment knobs: DFTMSN_BENCH_REPS, DFTMSN_BENCH_DURATION,
// DFTMSN_BENCH_JOBS. Writes fig2_sinks.csv next to the binary's working
// directory.
#include <iostream>
#include <vector>

#include "common/thread_pool.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  const std::vector<int> sink_counts{1, 2, 3, 4, 5};
  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kOpt, ProtocolKind::kNoSleep, ProtocolKind::kNoOpt,
      ProtocolKind::kZbr};

  print_banner(std::cout, "FIG2 (Fig. 2a/2b/2c)",
               "Impact of the number of sink nodes on delivery ratio, "
               "average nodal power and delivery delay.\n"
               "reps=" + std::to_string(budget.replications) +
               " duration=" + std::to_string(budget.duration_s) + "s" +
               " jobs=" + std::to_string(resolve_jobs(budget.jobs)));

  CsvWriter csv("fig2_sinks.csv",
                {"sinks", "protocol", "delivery_ratio", "power_mw",
                 "delay_s", "overhead_bits_per_delivery", "collisions"});

  ConsoleTable table(std::cout,
                     {"sinks", "protocol", "ratio%", "power_mW", "delay_s",
                      "ovh_bits", "collisions"});

  std::vector<SweepPoint> points;
  for (const int sinks : sink_counts) {
    for (const ProtocolKind kind : protocols) {
      SweepPoint p;
      p.config.scenario.num_sinks = sinks;
      p.config.scenario.duration_s = budget.duration_s;
      p.kind = kind;
      points.push_back(p);
    }
  }
  const std::vector<ReplicatedResult> results =
      run_sweep(points, budget.replications, budget.jobs);

  std::size_t i = 0;
  for (const int sinks : sink_counts) {
    for (const ProtocolKind kind : protocols) {
      const ReplicatedResult& r = results[i++];
      table.row({ConsoleTable::format(sinks, 0), protocol_kind_name(kind),
                 ConsoleTable::format(r.delivery_ratio.mean() * 100.0, 2),
                 ConsoleTable::format(r.mean_power_mw.mean(), 3),
                 ConsoleTable::format(r.mean_delay_s.mean(), 1),
                 ConsoleTable::format(r.overhead_bits_per_delivery.mean(), 0),
                 ConsoleTable::format(r.collisions.mean(), 0)});
      csv.row({static_cast<double>(sinks),
               static_cast<double>(static_cast<int>(kind)),
               r.delivery_ratio.mean(), r.mean_power_mw.mean(),
               r.mean_delay_s.mean(), r.overhead_bits_per_delivery.mean(),
               r.collisions.mean()});
    }
  }
  std::cout << "\nwrote fig2_sinks.csv\n";
  return 0;
}
