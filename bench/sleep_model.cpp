// OPT-SLEEP: regenerates the Sec. 4.1 periodic-sleeping model (Eqs. 4-8):
// the T_i response surface over (ρ, α), the Eq. (7) break-even bound, and
// an end-to-end energy comparison of the three sleeping policies.
#include <iostream>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/sleep_controller.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  print_banner(std::cout, "OPT-SLEEP (Sec. 4.1, Eqs. 4-8)",
               "Sleeping-period response surface and the sleeping policies' "
               "end-to-end energy/delivery trade-off.");

  const Config base;
  const EnergyModel energy(base.power);

  std::cout << "Eq. (7) break-even T_min (switch 2 ms, mote powers): "
            << energy.min_sleep_for_saving(base.radio.switch_time_s) * 1e3
            << " ms (floored to " << base.sleep.t_min_floor_s << " s)\n\n";

  CsvWriter csv("sleep_model.csv", {"rho_successes", "alpha", "T_i"});
  ConsoleTable surface(std::cout, {"successes/S", "alpha", "T_i (s)"});
  for (int successes : {0, 2, 5, 8, 10}) {
    for (double alpha_frac : {0.0, 0.25, 0.5, 0.75}) {
      SleepController ctl(base.sleep, energy, base.radio.switch_time_s);
      for (int i = 0; i < base.sleep.history_cycles; ++i)
        ctl.record_cycle(i < successes);
      const auto important = static_cast<std::size_t>(
          alpha_frac * static_cast<double>(base.protocol.queue_capacity));
      const double t = ctl.sleep_period(important, base.protocol.queue_capacity);
      surface.row({ConsoleTable::format(successes, 0),
                   ConsoleTable::format(alpha_frac, 2),
                   ConsoleTable::format(t, 2)});
      csv.row({static_cast<double>(successes), alpha_frac, t});
    }
  }

  std::cout << "\nEnd-to-end (default scenario, " << budget.duration_s
            << " s, " << budget.replications << " reps, "
            << resolve_jobs(budget.jobs) << " jobs):\n";
  ConsoleTable e2e(std::cout, {"policy", "ratio%", "power_mW", "delay_s"});
  struct Policy {
    const char* name;
    ProtocolKind kind;
  };
  const std::vector<Policy> policies{
      Policy{"adaptive (OPT)", ProtocolKind::kOpt},
      Policy{"fixed (NOOPT)", ProtocolKind::kNoOpt},
      Policy{"none (NOSLEEP)", ProtocolKind::kNoSleep}};
  std::vector<SweepPoint> points;
  for (const Policy& p : policies) {
    SweepPoint pt;
    pt.config = base;
    pt.config.scenario.duration_s = budget.duration_s;
    pt.kind = p.kind;
    points.push_back(pt);
  }
  const std::vector<ReplicatedResult> results =
      run_sweep(points, budget.replications, budget.jobs);
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const ReplicatedResult& r = results[i];
    e2e.row({policies[i].name,
             ConsoleTable::format(r.delivery_ratio.mean() * 100.0, 2),
             ConsoleTable::format(r.mean_power_mw.mean(), 3),
             ConsoleTable::format(r.mean_delay_s.mean(), 1)});
  }

  std::cout << "\nwrote sleep_model.csv\n";
  return 0;
}
