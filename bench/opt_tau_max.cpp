// OPT-TAU: regenerates the Sec. 4.2 collision-avoidance model (Eqs. 9-13):
// the RTS collision probability γ as a function of τ_max for growing
// contender populations, the analytic model validated against Monte-Carlo,
// and the minimum τ_max meeting the H = 0.1 target.
#include <iostream>
#include <vector>

#include "core/listen_window_optimizer.hpp"
#include "experiment/sweep.hpp"
#include "sim/random.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  print_banner(std::cout, "OPT-TAU (Sec. 4.2, Eqs. 9-13)",
               "RTS collision probability vs. maximum listen window, and "
               "the optimized min tau_max per contender count.");

  CsvWriter csv("opt_tau_max.csv",
                {"contenders", "tau_max", "gamma_analytic", "gamma_mc"});
  RandomStream rng(2026);

  // Identical mid-gradient contenders (ξ = 0.5 each).
  ConsoleTable curve(std::cout,
                     {"m", "tau_max", "gamma", "gamma_mc"});
  for (int m : {2, 4, 6, 8}) {
    const std::vector<double> xis(static_cast<std::size_t>(m), 0.5);
    for (int tau : {4, 8, 16, 32, 64, 128}) {
      const double analytic =
          ListenWindowOptimizer::collision_probability(xis, tau);
      const double mc = ListenWindowOptimizer::collision_probability_mc(
          xis, tau, 40000, [&] { return rng.uniform01(); });
      curve.row({ConsoleTable::format(m, 0), ConsoleTable::format(tau, 0),
                 ConsoleTable::format(analytic, 4),
                 ConsoleTable::format(mc, 4)});
      csv.row({static_cast<double>(m), static_cast<double>(tau), analytic, mc});
    }
  }

  std::cout << "\nOptimized minimum tau_max (Eq. 13, target gamma <= 0.1):\n";
  ConsoleTable opt(std::cout, {"m", "min_tau_max", "gamma_at_opt"});
  for (int m = 2; m <= 10; ++m) {
    const std::vector<double> xis(static_cast<std::size_t>(m), 0.5);
    const int t = ListenWindowOptimizer::min_tau_max(xis, 0.1, 1024);
    opt.row({ConsoleTable::format(m, 0), ConsoleTable::format(t, 0),
             ConsoleTable::format(
                 ListenWindowOptimizer::collision_probability(xis, t), 4)});
  }

  std::cout << "\nGrasp probability favours low-xi senders (design goal of "
               "Eq. 9; xis = {0.2, 0.5, 0.8}, tau_max = 64):\n";
  ConsoleTable grasp(std::cout, {"xi", "P_grasp"});
  const std::vector<double> mixed{0.2, 0.5, 0.8};
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    grasp.row({ConsoleTable::format(mixed[i], 1),
               ConsoleTable::format(
                   ListenWindowOptimizer::grasp_probability(mixed, i, 64), 4)});
  }

  std::cout << "\nwrote opt_tau_max.csv\n";
  return 0;
}
