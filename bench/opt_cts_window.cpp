// OPT-W: regenerates the Sec. 4.3 CTS contention-window model (Eq. 14):
// collision probability γ_o vs. W for n repliers (analytic vs Monte-Carlo)
// and the minimum W meeting a 0.1 target.
#include <iostream>
#include <vector>

#include "core/cts_window_optimizer.hpp"
#include "experiment/sweep.hpp"
#include "sim/random.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

namespace {

double monte_carlo_gamma(int window, int repliers, int draws,
                         RandomStream& rng) {
  if (repliers <= 1) return 0.0;
  int collided = 0;
  std::vector<int> slots(static_cast<std::size_t>(repliers));
  for (int d = 0; d < draws; ++d) {
    for (int& s : slots) s = rng.uniform_int(1, window);
    bool dup = false;
    for (std::size_t i = 0; i < slots.size() && !dup; ++i)
      for (std::size_t j = i + 1; j < slots.size() && !dup; ++j)
        dup = slots[i] == slots[j];
    collided += dup ? 1 : 0;
  }
  return static_cast<double>(collided) / draws;
}

}  // namespace

int main() {
  print_banner(std::cout, "OPT-W (Sec. 4.3, Eq. 14)",
               "CTS collision probability vs. contention window size, and "
               "the optimized minimum W per replier count.");

  CsvWriter csv("opt_cts_window.csv",
                {"repliers", "window", "gamma_analytic", "gamma_mc",
                 "expected_survivors"});
  RandomStream rng(77);

  ConsoleTable curve(std::cout,
                     {"n", "W", "gamma", "gamma_mc", "E[survivors]"});
  for (int n : {2, 3, 5, 8}) {
    for (int w : {4, 8, 16, 32, 64}) {
      const double analytic = CtsWindowOptimizer::collision_probability(w, n);
      const double mc = monte_carlo_gamma(w, n, 40000, rng);
      const double surv = CtsWindowOptimizer::expected_survivors(w, n);
      curve.row({ConsoleTable::format(n, 0), ConsoleTable::format(w, 0),
                 ConsoleTable::format(analytic, 4),
                 ConsoleTable::format(mc, 4), ConsoleTable::format(surv, 3)});
      csv.row({static_cast<double>(n), static_cast<double>(w), analytic, mc,
               surv});
    }
  }

  std::cout << "\nOptimized minimum W (linear search, target gamma_o <= "
               "0.1):\n";
  ConsoleTable opt(std::cout, {"n", "min_W", "gamma_at_opt"});
  for (int n = 1; n <= 8; ++n) {
    const int w = CtsWindowOptimizer::min_window(n, 0.1, 4096);
    opt.row({ConsoleTable::format(n, 0), ConsoleTable::format(w, 0),
             ConsoleTable::format(
                 CtsWindowOptimizer::collision_probability(w, n), 4)});
  }

  std::cout << "\nwrote opt_cts_window.csv\n";
  return 0;
}
