// ABL-THRESH: ablation of the synchronous-phase redundancy knob R
// (Sec. 3.2.2) and the FTD drop threshold (Sec. 3.1.2): the
// delivery-vs-overhead trade-off they control.
#include <iostream>
#include <vector>

#include "common/thread_pool.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  print_banner(std::cout, "ABL-THRESH (design ablation, Sec. 3.2.2)",
               "Delivery threshold R and FTD drop threshold sweep: "
               "redundancy vs transmission overhead (2 sinks).");

  CsvWriter csv("ablation_threshold.csv",
                {"r_threshold", "drop_threshold", "delivery_ratio",
                 "power_mw", "data_tx", "drops_threshold"});
  ConsoleTable table(std::cout, {"R", "drop_thr", "ratio%", "power_mW",
                                 "data_tx", "thr_drops"});

  const std::vector<double> r_thresholds{0.5, 0.7, 0.9, 0.99};
  const std::vector<double> drop_thresholds{0.7, 0.9, 0.999};

  std::vector<SweepPoint> points;
  for (const double r_thr : r_thresholds) {
    for (const double drop_thr : drop_thresholds) {
      SweepPoint p;
      p.config.scenario.duration_s = budget.duration_s;
      p.config.scenario.num_sinks = 2;
      p.config.scenario.seed = 1;
      p.config.protocol.delivery_threshold_r = r_thr;
      p.config.protocol.ftd_drop_threshold = drop_thr;
      points.push_back(p);
    }
  }
  std::vector<std::vector<RunResult>> raw;
  run_sweep(points, budget.replications, budget.jobs, &raw);

  std::size_t i = 0;
  for (const double r_thr : r_thresholds) {
    for (const double drop_thr : drop_thresholds) {
      Summary ratio, power, tx, drops;
      for (const RunResult& res : raw[i++]) {
        ratio.add(res.delivery_ratio);
        power.add(res.mean_power_mw);
        tx.add(static_cast<double>(res.data_transmissions));
        drops.add(static_cast<double>(res.drops_threshold));
      }
      table.row({ConsoleTable::format(r_thr, 2),
                 ConsoleTable::format(drop_thr, 3),
                 ConsoleTable::format(ratio.mean() * 100.0, 2),
                 ConsoleTable::format(power.mean(), 3),
                 ConsoleTable::format(tx.mean(), 0),
                 ConsoleTable::format(drops.mean(), 0)});
      csv.row({r_thr, drop_thr, ratio.mean(), power.mean(), tx.mean(),
               drops.mean()});
    }
  }
  std::cout << "\nwrote ablation_threshold.csv\n";
  return 0;
}
