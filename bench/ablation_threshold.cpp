// ABL-THRESH: ablation of the synchronous-phase redundancy knob R
// (Sec. 3.2.2) and the FTD drop threshold (Sec. 3.1.2): the
// delivery-vs-overhead trade-off they control.
#include <iostream>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  print_banner(std::cout, "ABL-THRESH (design ablation, Sec. 3.2.2)",
               "Delivery threshold R and FTD drop threshold sweep: "
               "redundancy vs transmission overhead (2 sinks).");

  CsvWriter csv("ablation_threshold.csv",
                {"r_threshold", "drop_threshold", "delivery_ratio",
                 "power_mw", "data_tx", "drops_threshold"});
  ConsoleTable table(std::cout, {"R", "drop_thr", "ratio%", "power_mW",
                                 "data_tx", "thr_drops"});

  for (const double r_thr : {0.5, 0.7, 0.9, 0.99}) {
    for (const double drop_thr : {0.7, 0.9, 0.999}) {
      Config c;
      c.scenario.duration_s = budget.duration_s;
      c.scenario.num_sinks = 2;
      c.protocol.delivery_threshold_r = r_thr;
      c.protocol.ftd_drop_threshold = drop_thr;

      Summary ratio, power, tx, drops;
      for (int rep = 0; rep < budget.replications; ++rep) {
        c.scenario.seed = 1 + static_cast<std::uint64_t>(rep);
        const RunResult res = run_once(c, ProtocolKind::kOpt);
        ratio.add(res.delivery_ratio);
        power.add(res.mean_power_mw);
        tx.add(static_cast<double>(res.data_transmissions));
        drops.add(static_cast<double>(res.drops_threshold));
      }
      table.row({ConsoleTable::format(r_thr, 2),
                 ConsoleTable::format(drop_thr, 3),
                 ConsoleTable::format(ratio.mean() * 100.0, 2),
                 ConsoleTable::format(power.mean(), 3),
                 ConsoleTable::format(tx.mean(), 0),
                 ConsoleTable::format(drops.mean(), 0)});
      csv.row({r_thr, drop_thr, ratio.mean(), power.mean(), tx.mean(),
               drops.mean()});
    }
  }
  std::cout << "\nwrote ablation_threshold.csv\n";
  return 0;
}
