// FAULT-RES: graceful degradation under mass node failure. Kills a
// growing fraction of the sensors at the mid-point of the run (the
// ISSUE-2 acceptance scenario) and reports how delivery ratio, delay and
// power respond per protocol. The paper argues the FTD replication
// scheme tolerates node failures by construction (Sec. 3.1.2); this
// sweep quantifies it against the single-copy and flooding baselines.
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "stats/csv.hpp"

using namespace dftmsn;

int main() {
  const BenchBudget budget = bench_budget_from_env();
  const std::vector<double> kill_fracs{0.0, 0.1, 0.3, 0.5, 0.7};
  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kOpt, ProtocolKind::kZbr, ProtocolKind::kDirect,
      ProtocolKind::kEpidemic};

  print_banner(std::cout, "FAULT-RES (fault-injection resilience)",
               "Delivery under a die-off of a sensor fraction at T/2, "
               "invariant-checked.\nreps=" +
                   std::to_string(budget.replications) +
                   " duration=" + std::to_string(budget.duration_s) + "s" +
                   " jobs=" + std::to_string(resolve_jobs(budget.jobs)));

  CsvWriter csv("fault_resilience.csv",
                {"kill_frac", "protocol", "delivery_ratio", "power_mw",
                 "delay_s", "overhead_bits_per_delivery"});
  ConsoleTable table(std::cout, {"kill%", "protocol", "ratio%", "power_mW",
                                 "delay_s", "ovh_bits"});

  std::vector<SweepPoint> points;
  for (const double frac : kill_fracs) {
    for (const ProtocolKind kind : protocols) {
      SweepPoint p;
      p.config.scenario.duration_s = budget.duration_s;
      if (frac > 0.0)
        p.config.faults.plan = "crash@" +
                               std::to_string(budget.duration_s / 2.0) +
                               ":frac=" + std::to_string(frac);
      p.config.faults.check_invariants = true;
      p.kind = kind;
      points.push_back(p);
    }
  }
  const std::vector<ReplicatedResult> results =
      run_sweep(points, budget.replications, budget.jobs);

  std::size_t i = 0;
  for (const double frac : kill_fracs) {
    for (const ProtocolKind kind : protocols) {
      const ReplicatedResult& r = results[i++];
      table.row({ConsoleTable::format(frac * 100.0, 0),
                 protocol_kind_name(kind),
                 ConsoleTable::format(r.delivery_ratio.mean() * 100.0, 2),
                 ConsoleTable::format(r.mean_power_mw.mean(), 3),
                 ConsoleTable::format(r.mean_delay_s.mean(), 1),
                 ConsoleTable::format(r.overhead_bits_per_delivery.mean(), 0)});
      csv.row({frac, static_cast<double>(static_cast<int>(kind)),
               r.delivery_ratio.mean(), r.mean_power_mw.mean(),
               r.mean_delay_s.mean(), r.overhead_bits_per_delivery.mean()});
    }
  }
  std::cout << "\nwrote fault_resilience.csv\n";
  return 0;
}
