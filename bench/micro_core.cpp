// MICRO: google-benchmark micro-benches of the library's hot paths — the
// event queue, the FTD queue, the analytic optimizers, and a short
// end-to-end simulation slice.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/cts_window_optimizer.hpp"
#include "core/ftd.hpp"
#include "core/ftd_queue.hpp"
#include "core/listen_window_optimizer.hpp"
#include "core/receiver_selection.hpp"
#include "experiment/runner.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/registry.hpp"

namespace {

using namespace dftmsn;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RandomStream rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < n; ++i) q.schedule(rng.uniform01(), [] {});
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_FtdQueueInsertPressure(benchmark::State& state) {
  RandomStream rng(2);
  for (auto _ : state) {
    FtdQueue q(200);
    for (MessageId id = 1; id <= 1000; ++id) {
      Message m;
      m.id = id;
      q.insert(QueuedMessage{m, rng.uniform01(), 0.0});
    }
    benchmark::DoNotOptimize(q.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FtdQueueInsertPressure);

void BM_FtdQueueAvailableSpace(benchmark::State& state) {
  RandomStream rng(3);
  FtdQueue q(200);
  for (MessageId id = 1; id <= 200; ++id) {
    Message m;
    m.id = id;
    q.insert(QueuedMessage{m, rng.uniform01(), 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.available_space_for(0.5));
  }
}
BENCHMARK(BM_FtdQueueAvailableSpace);

void BM_ReceiverSelection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RandomStream rng(4);
  std::vector<Candidate> cands;
  for (int i = 0; i < n; ++i) {
    cands.push_back(Candidate{static_cast<NodeId>(i), rng.uniform01(), 5,
                              false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_receivers(0.1, 0.0, 0.9, cands));
  }
}
BENCHMARK(BM_ReceiverSelection)->Arg(4)->Arg(16);

void BM_TauMaxOptimizer(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> xis(m, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ListenWindowOptimizer::min_tau_max(xis, 0.1, 128));
  }
}
BENCHMARK(BM_TauMaxOptimizer)->Arg(2)->Arg(4)->Arg(8);

void BM_CtsWindowOptimizer(benchmark::State& state) {
  for (auto _ : state) {
    for (int n = 1; n <= 8; ++n)
      benchmark::DoNotOptimize(CtsWindowOptimizer::min_window(n, 0.1, 4096));
  }
}
BENCHMARK(BM_CtsWindowOptimizer);

void BM_FtdMath(benchmark::State& state) {
  const std::vector<double> xis{0.2, 0.4, 0.6, 0.8};
  for (auto _ : state) {
    for (std::size_t j = 0; j < xis.size(); ++j)
      benchmark::DoNotOptimize(receiver_copy_ftd(0.1, 0.3, xis, j));
    benchmark::DoNotOptimize(sender_ftd_after_multicast(0.1, xis));
  }
}
BENCHMARK(BM_FtdMath);

// Disabled-probe overhead: the whole cost must be one null check. The
// side-effect counter is the oracle — if the value expression ever runs
// on the disabled path the bench aborts, so "zero overhead when off" is
// checked as a correctness property, not inferred from timings.
void BM_TelemetryProbeDisabled(benchmark::State& state) {
  telemetry::Histogram* h = nullptr;
  std::uint64_t evaluated = 0;
  for (auto _ : state) {
    DFTMSN_PROBE_HIST(h, static_cast<double>(++evaluated));
    benchmark::DoNotOptimize(h);
  }
  if (evaluated != 0)
    state.SkipWithError("disabled probe evaluated its argument");
}
BENCHMARK(BM_TelemetryProbeDisabled);

void BM_TelemetryProbeEnabled(benchmark::State& state) {
  telemetry::Registry reg;
  telemetry::Histogram* h = reg.histogram("bench.value", 0.0, 1.0, 32);
  double v = 0.25;
  for (auto _ : state) {
    DFTMSN_PROBE_HIST(h, v);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryProbeEnabled);

void BM_EndToEndSimulationSlice(benchmark::State& state) {
  for (auto _ : state) {
    Config c;
    c.scenario.num_sensors = 30;
    c.scenario.num_sinks = 2;
    c.scenario.duration_s = 300.0;
    benchmark::DoNotOptimize(run_once(c, ProtocolKind::kOpt));
  }
}
BENCHMARK(BM_EndToEndSimulationSlice)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
