// SCHED-SCALE: scheduler + channel scale trajectory.
//
// Runs the paper scenario at constant node density for n = 100 / 1k /
// 10k / 100k sensors and reports wall-clock events/sec, so every later
// PR can prove (or refute) hot-path speedups against the committed
// BENCH_scheduler.json baseline (format: docs/performance.md).
//
// Usage: scheduler_scale [--out FILE] [--max-n N]
//   --out FILE   JSON output path (default: no JSON, stdout table only)
//   --max-n N    largest population to run (default 100000)
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "experiment/world.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Point {
  int n = 0;
  double sim_duration_s = 0.0;
  std::uint64_t events = 0;
  double build_wall_s = 0.0;
  double run_wall_s = 0.0;
  double events_per_sec = 0.0;
};

Point run_point(int n, double sim_duration_s) {
  using namespace dftmsn;
  Config c;
  // Constant density: the paper's 100 sensors / (150 m)^2 field, scaled.
  const double scale = std::sqrt(n / 100.0);
  c.scenario.num_sensors = n;
  c.scenario.num_sinks = std::max(1, (3 * n) / 100);
  c.scenario.field_m = 150.0 * scale;
  c.scenario.duration_s = sim_duration_s;
  c.scenario.seed = 42;

  Point p;
  p.n = n;
  p.sim_duration_s = sim_duration_s;

  const auto t0 = Clock::now();
  World world(c, ProtocolKind::kOpt);
  p.build_wall_s = seconds_since(t0);

  const auto t1 = Clock::now();
  world.run();
  p.run_wall_s = seconds_since(t1);

  p.events = world.sim().events_executed();
  p.events_per_sec =
      p.run_wall_s > 0 ? static_cast<double>(p.events) / p.run_wall_s : 0.0;
  return p;
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"scheduler_scale\",\n  \"protocol\": \"OPT\",\n"
      << "  \"seed\": 42,\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"n\": " << p.n << ", \"sim_duration_s\": " << p.sim_duration_s
        << ", \"events\": " << p.events << ", \"build_wall_s\": "
        << p.build_wall_s << ", \"run_wall_s\": " << p.run_wall_s
        << ", \"events_per_sec\": " << static_cast<std::uint64_t>(p.events_per_sec)
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  int max_n = 100'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--max-n" && i + 1 < argc) {
      max_n = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: scheduler_scale [--out FILE] [--max-n N]\n";
      return 2;
    }
  }

  // Sim horizons chosen so each point executes a few hundred thousand to a
  // few million events: enough to amortize startup, bounded wall-clock.
  const std::vector<std::pair<int, double>> schedule = {
      {100, 1000.0}, {1000, 200.0}, {10'000, 50.0}, {100'000, 10.0}};

  std::vector<Point> points;
  std::cout << "SCHED-SCALE: events/sec at constant density (OPT, seed 42)\n";
  std::cout << "       n     sim_s        events   build_s     run_s    events/s\n";
  for (const auto& [n, dur] : schedule) {
    if (n > max_n) continue;
    const Point p = run_point(n, dur);
    points.push_back(p);
    std::printf("%8d  %8.0f  %12llu  %8.2f  %8.2f  %10.0f\n", p.n,
                p.sim_duration_s, static_cast<unsigned long long>(p.events),
                p.build_wall_s, p.run_wall_s, p.events_per_sec);
  }
  if (!out_path.empty()) write_json(out_path, points);
  return 0;
}
