# Empty compiler generated dependencies file for dftmsn.
# This may be replaced when dependencies are built.
