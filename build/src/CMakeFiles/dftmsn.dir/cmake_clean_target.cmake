file(REMOVE_RECURSE
  "libdftmsn.a"
)
