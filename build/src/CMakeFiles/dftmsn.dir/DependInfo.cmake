
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/delivery_models.cpp" "src/CMakeFiles/dftmsn.dir/analysis/delivery_models.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/analysis/delivery_models.cpp.o.d"
  "/root/repo/src/analysis/lifetime.cpp" "src/CMakeFiles/dftmsn.dir/analysis/lifetime.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/analysis/lifetime.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/dftmsn.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/common/config.cpp.o.d"
  "/root/repo/src/common/config_io.cpp" "src/CMakeFiles/dftmsn.dir/common/config_io.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/common/config_io.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/dftmsn.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/common/logging.cpp.o.d"
  "/root/repo/src/core/cts_window_optimizer.cpp" "src/CMakeFiles/dftmsn.dir/core/cts_window_optimizer.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/core/cts_window_optimizer.cpp.o.d"
  "/root/repo/src/core/delivery_probability.cpp" "src/CMakeFiles/dftmsn.dir/core/delivery_probability.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/core/delivery_probability.cpp.o.d"
  "/root/repo/src/core/ftd.cpp" "src/CMakeFiles/dftmsn.dir/core/ftd.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/core/ftd.cpp.o.d"
  "/root/repo/src/core/ftd_queue.cpp" "src/CMakeFiles/dftmsn.dir/core/ftd_queue.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/core/ftd_queue.cpp.o.d"
  "/root/repo/src/core/listen_window_optimizer.cpp" "src/CMakeFiles/dftmsn.dir/core/listen_window_optimizer.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/core/listen_window_optimizer.cpp.o.d"
  "/root/repo/src/core/receiver_selection.cpp" "src/CMakeFiles/dftmsn.dir/core/receiver_selection.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/core/receiver_selection.cpp.o.d"
  "/root/repo/src/core/sleep_controller.cpp" "src/CMakeFiles/dftmsn.dir/core/sleep_controller.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/core/sleep_controller.cpp.o.d"
  "/root/repo/src/experiment/presets.cpp" "src/CMakeFiles/dftmsn.dir/experiment/presets.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/experiment/presets.cpp.o.d"
  "/root/repo/src/experiment/runner.cpp" "src/CMakeFiles/dftmsn.dir/experiment/runner.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/experiment/runner.cpp.o.d"
  "/root/repo/src/experiment/sweep.cpp" "src/CMakeFiles/dftmsn.dir/experiment/sweep.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/experiment/sweep.cpp.o.d"
  "/root/repo/src/experiment/world.cpp" "src/CMakeFiles/dftmsn.dir/experiment/world.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/experiment/world.cpp.o.d"
  "/root/repo/src/geom/vec2.cpp" "src/CMakeFiles/dftmsn.dir/geom/vec2.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/geom/vec2.cpp.o.d"
  "/root/repo/src/geom/zone_grid.cpp" "src/CMakeFiles/dftmsn.dir/geom/zone_grid.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/geom/zone_grid.cpp.o.d"
  "/root/repo/src/mobility/mobility_manager.cpp" "src/CMakeFiles/dftmsn.dir/mobility/mobility_manager.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/mobility/mobility_manager.cpp.o.d"
  "/root/repo/src/mobility/patrol_mobility.cpp" "src/CMakeFiles/dftmsn.dir/mobility/patrol_mobility.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/mobility/patrol_mobility.cpp.o.d"
  "/root/repo/src/mobility/random_waypoint.cpp" "src/CMakeFiles/dftmsn.dir/mobility/random_waypoint.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/mobility/random_waypoint.cpp.o.d"
  "/root/repo/src/mobility/zone_mobility.cpp" "src/CMakeFiles/dftmsn.dir/mobility/zone_mobility.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/mobility/zone_mobility.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/CMakeFiles/dftmsn.dir/net/frame.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/net/frame.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/dftmsn.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/net/message.cpp.o.d"
  "/root/repo/src/node/sensor_node.cpp" "src/CMakeFiles/dftmsn.dir/node/sensor_node.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/node/sensor_node.cpp.o.d"
  "/root/repo/src/node/sink_node.cpp" "src/CMakeFiles/dftmsn.dir/node/sink_node.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/node/sink_node.cpp.o.d"
  "/root/repo/src/phy/channel.cpp" "src/CMakeFiles/dftmsn.dir/phy/channel.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/phy/channel.cpp.o.d"
  "/root/repo/src/phy/energy_meter.cpp" "src/CMakeFiles/dftmsn.dir/phy/energy_meter.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/phy/energy_meter.cpp.o.d"
  "/root/repo/src/phy/energy_model.cpp" "src/CMakeFiles/dftmsn.dir/phy/energy_model.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/phy/energy_model.cpp.o.d"
  "/root/repo/src/phy/radio.cpp" "src/CMakeFiles/dftmsn.dir/phy/radio.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/phy/radio.cpp.o.d"
  "/root/repo/src/protocol/crosslayer_mac.cpp" "src/CMakeFiles/dftmsn.dir/protocol/crosslayer_mac.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/crosslayer_mac.cpp.o.d"
  "/root/repo/src/protocol/direct_strategy.cpp" "src/CMakeFiles/dftmsn.dir/protocol/direct_strategy.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/direct_strategy.cpp.o.d"
  "/root/repo/src/protocol/epidemic_strategy.cpp" "src/CMakeFiles/dftmsn.dir/protocol/epidemic_strategy.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/epidemic_strategy.cpp.o.d"
  "/root/repo/src/protocol/ftd_strategy.cpp" "src/CMakeFiles/dftmsn.dir/protocol/ftd_strategy.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/ftd_strategy.cpp.o.d"
  "/root/repo/src/protocol/history_strategy.cpp" "src/CMakeFiles/dftmsn.dir/protocol/history_strategy.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/history_strategy.cpp.o.d"
  "/root/repo/src/protocol/mac_common.cpp" "src/CMakeFiles/dftmsn.dir/protocol/mac_common.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/mac_common.cpp.o.d"
  "/root/repo/src/protocol/neighbor_table.cpp" "src/CMakeFiles/dftmsn.dir/protocol/neighbor_table.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/neighbor_table.cpp.o.d"
  "/root/repo/src/protocol/protocol_factory.cpp" "src/CMakeFiles/dftmsn.dir/protocol/protocol_factory.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/protocol_factory.cpp.o.d"
  "/root/repo/src/protocol/spray_strategy.cpp" "src/CMakeFiles/dftmsn.dir/protocol/spray_strategy.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/protocol/spray_strategy.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/dftmsn.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/dftmsn.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/dftmsn.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/stats/csv.cpp" "src/CMakeFiles/dftmsn.dir/stats/csv.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/stats/csv.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/CMakeFiles/dftmsn.dir/stats/metrics.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/stats/metrics.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/dftmsn.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/stats/summary.cpp.o.d"
  "/root/repo/src/trace/contact_analysis.cpp" "src/CMakeFiles/dftmsn.dir/trace/contact_analysis.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/trace/contact_analysis.cpp.o.d"
  "/root/repo/src/trace/contact_probe.cpp" "src/CMakeFiles/dftmsn.dir/trace/contact_probe.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/trace/contact_probe.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/CMakeFiles/dftmsn.dir/trace/recorder.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/trace/recorder.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/dftmsn.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/trace/trace.cpp.o.d"
  "/root/repo/src/traffic/poisson_source.cpp" "src/CMakeFiles/dftmsn.dir/traffic/poisson_source.cpp.o" "gcc" "src/CMakeFiles/dftmsn.dir/traffic/poisson_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
