file(REMOVE_RECURSE
  "CMakeFiles/dftmsn_cli.dir/dftmsn_cli.cpp.o"
  "CMakeFiles/dftmsn_cli.dir/dftmsn_cli.cpp.o.d"
  "dftmsn_cli"
  "dftmsn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dftmsn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
