# Empty dependencies file for dftmsn_cli.
# This may be replaced when dependencies are built.
