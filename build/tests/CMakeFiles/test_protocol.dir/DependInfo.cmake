
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocol/mac_adaptive_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol/mac_adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/mac_adaptive_test.cpp.o.d"
  "/root/repo/tests/protocol/mac_common_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol/mac_common_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/mac_common_test.cpp.o.d"
  "/root/repo/tests/protocol/mac_fuzz_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol/mac_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/mac_fuzz_test.cpp.o.d"
  "/root/repo/tests/protocol/mac_integration_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol/mac_integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/mac_integration_test.cpp.o.d"
  "/root/repo/tests/protocol/mac_nav_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol/mac_nav_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/mac_nav_test.cpp.o.d"
  "/root/repo/tests/protocol/neighbor_table_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol/neighbor_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/neighbor_table_test.cpp.o.d"
  "/root/repo/tests/protocol/strategies_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol/strategies_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/strategies_test.cpp.o.d"
  "/root/repo/tests/protocol/stress_test.cpp" "tests/CMakeFiles/test_protocol.dir/protocol/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dftmsn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
