file(REMOVE_RECURSE
  "CMakeFiles/test_protocol.dir/protocol/mac_adaptive_test.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/mac_adaptive_test.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/mac_common_test.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/mac_common_test.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/mac_fuzz_test.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/mac_fuzz_test.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/mac_integration_test.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/mac_integration_test.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/mac_nav_test.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/mac_nav_test.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/neighbor_table_test.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/neighbor_table_test.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/strategies_test.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/strategies_test.cpp.o.d"
  "CMakeFiles/test_protocol.dir/protocol/stress_test.cpp.o"
  "CMakeFiles/test_protocol.dir/protocol/stress_test.cpp.o.d"
  "test_protocol"
  "test_protocol.pdb"
  "test_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
