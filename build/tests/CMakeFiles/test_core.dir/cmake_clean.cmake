file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/cts_window_optimizer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cts_window_optimizer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/delivery_probability_test.cpp.o"
  "CMakeFiles/test_core.dir/core/delivery_probability_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ftd_queue_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ftd_queue_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ftd_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ftd_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/listen_window_optimizer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/listen_window_optimizer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/receiver_selection_test.cpp.o"
  "CMakeFiles/test_core.dir/core/receiver_selection_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sleep_controller_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sleep_controller_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
