
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cts_window_optimizer_test.cpp" "tests/CMakeFiles/test_core.dir/core/cts_window_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/cts_window_optimizer_test.cpp.o.d"
  "/root/repo/tests/core/delivery_probability_test.cpp" "tests/CMakeFiles/test_core.dir/core/delivery_probability_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/delivery_probability_test.cpp.o.d"
  "/root/repo/tests/core/ftd_queue_test.cpp" "tests/CMakeFiles/test_core.dir/core/ftd_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ftd_queue_test.cpp.o.d"
  "/root/repo/tests/core/ftd_test.cpp" "tests/CMakeFiles/test_core.dir/core/ftd_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ftd_test.cpp.o.d"
  "/root/repo/tests/core/listen_window_optimizer_test.cpp" "tests/CMakeFiles/test_core.dir/core/listen_window_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/listen_window_optimizer_test.cpp.o.d"
  "/root/repo/tests/core/receiver_selection_test.cpp" "tests/CMakeFiles/test_core.dir/core/receiver_selection_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/receiver_selection_test.cpp.o.d"
  "/root/repo/tests/core/sleep_controller_test.cpp" "tests/CMakeFiles/test_core.dir/core/sleep_controller_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sleep_controller_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dftmsn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
