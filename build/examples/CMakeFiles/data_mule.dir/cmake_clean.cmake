file(REMOVE_RECURSE
  "CMakeFiles/data_mule.dir/data_mule.cpp.o"
  "CMakeFiles/data_mule.dir/data_mule.cpp.o.d"
  "data_mule"
  "data_mule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_mule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
