# Empty dependencies file for data_mule.
# This may be replaced when dependencies are built.
