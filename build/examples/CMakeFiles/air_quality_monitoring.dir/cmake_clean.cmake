file(REMOVE_RECURSE
  "CMakeFiles/air_quality_monitoring.dir/air_quality_monitoring.cpp.o"
  "CMakeFiles/air_quality_monitoring.dir/air_quality_monitoring.cpp.o.d"
  "air_quality_monitoring"
  "air_quality_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_quality_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
