# Empty compiler generated dependencies file for flu_tracking.
# This may be replaced when dependencies are built.
