file(REMOVE_RECURSE
  "CMakeFiles/flu_tracking.dir/flu_tracking.cpp.o"
  "CMakeFiles/flu_tracking.dir/flu_tracking.cpp.o.d"
  "flu_tracking"
  "flu_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flu_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
