# Empty dependencies file for connectivity_report.
# This may be replaced when dependencies are built.
