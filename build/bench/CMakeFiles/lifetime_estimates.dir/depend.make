# Empty dependencies file for lifetime_estimates.
# This may be replaced when dependencies are built.
