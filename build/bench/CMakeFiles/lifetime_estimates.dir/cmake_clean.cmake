file(REMOVE_RECURSE
  "CMakeFiles/lifetime_estimates.dir/lifetime_estimates.cpp.o"
  "CMakeFiles/lifetime_estimates.dir/lifetime_estimates.cpp.o.d"
  "lifetime_estimates"
  "lifetime_estimates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
