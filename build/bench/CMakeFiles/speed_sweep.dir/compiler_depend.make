# Empty compiler generated dependencies file for speed_sweep.
# This may be replaced when dependencies are built.
