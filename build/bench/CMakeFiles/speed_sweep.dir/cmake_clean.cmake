file(REMOVE_RECURSE
  "CMakeFiles/speed_sweep.dir/speed_sweep.cpp.o"
  "CMakeFiles/speed_sweep.dir/speed_sweep.cpp.o.d"
  "speed_sweep"
  "speed_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
