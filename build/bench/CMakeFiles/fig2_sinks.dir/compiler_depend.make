# Empty compiler generated dependencies file for fig2_sinks.
# This may be replaced when dependencies are built.
