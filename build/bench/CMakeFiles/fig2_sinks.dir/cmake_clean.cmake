file(REMOVE_RECURSE
  "CMakeFiles/fig2_sinks.dir/fig2_sinks.cpp.o"
  "CMakeFiles/fig2_sinks.dir/fig2_sinks.cpp.o.d"
  "fig2_sinks"
  "fig2_sinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
