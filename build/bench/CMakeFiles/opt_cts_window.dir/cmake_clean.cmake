file(REMOVE_RECURSE
  "CMakeFiles/opt_cts_window.dir/opt_cts_window.cpp.o"
  "CMakeFiles/opt_cts_window.dir/opt_cts_window.cpp.o.d"
  "opt_cts_window"
  "opt_cts_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_cts_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
