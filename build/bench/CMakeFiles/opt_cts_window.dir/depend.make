# Empty dependencies file for opt_cts_window.
# This may be replaced when dependencies are built.
