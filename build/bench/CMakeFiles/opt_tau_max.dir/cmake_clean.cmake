file(REMOVE_RECURSE
  "CMakeFiles/opt_tau_max.dir/opt_tau_max.cpp.o"
  "CMakeFiles/opt_tau_max.dir/opt_tau_max.cpp.o.d"
  "opt_tau_max"
  "opt_tau_max.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_tau_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
