# Empty dependencies file for opt_tau_max.
# This may be replaced when dependencies are built.
