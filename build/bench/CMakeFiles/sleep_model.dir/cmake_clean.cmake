file(REMOVE_RECURSE
  "CMakeFiles/sleep_model.dir/sleep_model.cpp.o"
  "CMakeFiles/sleep_model.dir/sleep_model.cpp.o.d"
  "sleep_model"
  "sleep_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sleep_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
