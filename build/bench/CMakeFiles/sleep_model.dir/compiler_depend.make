# Empty compiler generated dependencies file for sleep_model.
# This may be replaced when dependencies are built.
