#!/bin/bash
# Regenerates bench_output.txt: every reproduced table/figure in sequence.
cd "$(dirname "$0")"
{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b" 2>&1
      echo
    fi
  done
  echo "BENCH_SUITE_DONE"
} > bench_output.txt 2>&1
