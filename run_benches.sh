#!/bin/bash
# Regenerates bench_output.txt: every reproduced table/figure in sequence.
cd "$(dirname "$0")"
{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b" 2>&1
      echo
    fi
  done
  echo "BENCH_SUITE_DONE"
} > bench_output.txt 2>&1

# Scheduler scaling trajectory: the machine-readable events/sec curve
# (format: docs/performance.md) next to the human-readable table that the
# loop above already dropped into bench_output.txt.
if [ -x build/bench/scheduler_scale ]; then
  build/bench/scheduler_scale --out BENCH_scheduler.json > /dev/null
fi

# Cross-scenario protocol rankings (format: docs/scenarios.md); trace
# files land in a scratch dir so reruns stay tidy.
if [ -x build/bench/scenario_sweep ]; then
  mkdir -p build/scenario_traces
  build/bench/scenario_sweep --dir build/scenario_traces \
      --out BENCH_scenarios.json > /dev/null
fi
