// Indexed checkpoint container ("DFTMSNCC" v1): one append-only file
// holding every spec's latest checkpoint, replacing the file-per-spec
// `spec_<i>.ckpt` layout.
//
// Layout:
//   header   8-byte magic "DFTMSNCC" + u32 version (12 bytes)
//   records  back to back, each:
//              u32 "RC01" | u32 kind | u64 spec | u64 seq |
//              u64 payload_len | payload | u64 FNV-1a digest
//            (digest covers the record header + payload)
//   tail     one kind=index record (payload: u64 count, then count x
//            (u64 spec, u64 offset) pairs sorted by spec) followed by a
//            16-byte footer: u64 index_offset + magic "DFTMSNCF"
//
// Updates append: a new checkpoint record overwrites the old index
// position, then a fresh index + footer go after it and the file is
// truncated to the exact end. The record a spec previously owned stays
// behind as a dead record until compaction. Crash tolerance falls out of
// the layout: a torn append damages only bytes past the last intact
// record, so recovery scans the records front to back, stops at the
// first one whose digest fails, and rebuilds the index from what
// survived — the previous checkpoint of the spec being written is one of
// the surviving records.
//
// Every read validates digests; every mutation runs under an exclusive
// flock(2) on a sibling `<path>.lock` file (never renamed, so the lock
// stays valid across in-place compaction), which serializes both
// concurrent sweep threads and isolated worker processes. Mutations go
// through the IoEnv primitives and are therefore both durable (fsync
// before the cut-over points) and fault-injectable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dftmsn::snapshot {

/// One live index entry, as recovered by container_scan.
struct ContainerEntry {
  std::uint64_t spec = 0;
  std::uint64_t seq = 0;          ///< write generation (monotonic per file)
  std::uint64_t offset = 0;       ///< record start, from file offset 0
  std::uint64_t payload_len = 0;
};

/// What a front-to-back validation scan found.
struct ContainerScanResult {
  bool exists = false;        ///< false: no file (all else defaulted)
  bool clean = false;         ///< footer + index present and consistent
  std::uint64_t file_size = 0;
  std::uint64_t valid_end = 0;   ///< offset after the last intact record
  std::uint64_t dead_bytes = 0;  ///< superseded record bytes (compactable)
  std::vector<ContainerEntry> entries;  ///< live entries, sorted by spec
};

/// Validates `path` front to back without modifying it. A torn tail
/// (bytes past valid_end that don't form intact records + footer) makes
/// clean=false; the entries recovered before the tear are still
/// returned. Throws SnapshotError (naming the path) only for damage a
/// scan cannot step over: a missing/oversized header or an unreadable
/// file. A nonexistent path is not an error (exists=false).
ContainerScanResult container_scan(const std::string& path);

/// Appends `payload` as spec's new checkpoint (creating the container if
/// needed), then rewrites the index + footer. Durable on return. May
/// compact in place when dead bytes dominate the file.
void container_put(const std::string& path, std::uint64_t spec,
                   const std::vector<std::uint8_t>& payload);

/// Returns spec's latest intact payload, or nullopt when the container
/// or the entry doesn't exist (including "lost to a torn tail" — the
/// caller starts that spec from scratch, which is the recovery).
std::optional<std::vector<std::uint8_t>> container_get(
    const std::string& path, std::uint64_t spec);

/// Drops spec's entry from the index (the record becomes dead bytes).
/// No-op when the container or entry is absent.
void container_erase(const std::string& path, std::uint64_t spec);

/// Rewrites the container to exactly its live records. No-op (and no
/// write) when the file is already clean and fully live.
void container_compact(const std::string& path);

/// Truncates a torn tail and rewrites the index + footer so a scan
/// reports clean. Returns true when the file was modified (--fsck's
/// "repaired" signal), false when it was already clean or absent.
bool container_repair(const std::string& path);

}  // namespace dftmsn::snapshot
