// Versioned binary snapshot encoding (checkpoint/resume substrate).
//
// A snapshot is a flat byte buffer of named, length-prefixed sections,
// each holding primitive fields written in a fixed order. The encoding is
// canonical: identical logical state always serializes to identical
// bytes (doubles are written as IEEE-754 bit patterns, unordered
// containers are serialized in sorted key order by their owners), so two
// snapshots can be compared with memcmp and a single FNV-1a digest
// fingerprints the whole simulation state.
//
// Components expose
//     void save_state(snapshot::Writer&) const;
// and, where their state is pure data (no scheduled event context),
//     void load_state(snapshot::Reader&);
// Event-coupled components (the MAC, traffic sources, the event queue
// itself) are save-only: their pending events cannot be re-materialized
// from bytes, so resume re-creates them by deterministic replay and the
// saved bytes serve as the replay-verification oracle (see
// docs/checkpoint_resume.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dftmsn::snapshot {

/// Malformed, truncated, or version-incompatible snapshot bytes.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

/// Replayed state diverged from the state recorded in a checkpoint —
/// either the snapshot is stale (code/config drift) or the simulation is
/// nondeterministic. `section` names the first diverging section.
class SnapshotMismatch : public std::runtime_error {
 public:
  SnapshotMismatch(const std::string& section, const std::string& detail);

  std::string section;
};

/// Incremental FNV-1a 64-bit hash (stable, dependency-free fingerprint).
class StateHash {
 public:
  void update(const void* data, std::size_t len);
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

class Writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);  ///< exact IEEE-754 bit pattern
  void boolean(bool v);
  void size(std::size_t v);  ///< widened to u64
  void str(const std::string& v);

  /// Opens a named, length-prefixed section; sections nest.
  void begin_section(const std::string& name);
  void end_section();

  /// Finished buffer. All sections must be closed.
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const;

  /// FNV-1a digest of bytes().
  [[nodiscard]] std::uint64_t digest() const;

 private:
  void raw(const void* data, std::size_t len);

  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> open_;  ///< offsets of unpatched section lengths
};

class Reader {
 public:
  explicit Reader(std::vector<std::uint8_t> bytes);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::size_t size();
  [[nodiscard]] std::string str();

  /// Enters the next section, which must carry exactly `name`.
  void begin_section(const std::string& name);
  /// Leaves the current section, which must be fully consumed.
  void end_section();

  [[nodiscard]] bool at_end() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void raw(void* out, std::size_t len);

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> limits_;  ///< end offsets of open sections
};

/// Lists the top-level section names of a serialized state buffer, in
/// order (diagnostics: locating the first diverging section).
std::vector<std::string> top_level_sections(
    const std::vector<std::uint8_t>& bytes);

/// Compares two state buffers; throws SnapshotMismatch naming the first
/// top-level section whose bytes differ (or a structural difference).
void require_identical(const std::vector<std::uint8_t>& expected,
                       const std::vector<std::uint8_t>& actual);

/// Wraps `payload` in a self-validating container: an 8-byte magic,
/// the payload, and a trailing FNV-1a digest of everything before it.
/// The worker-protocol request/result files reuse this shape (the
/// checkpoint container predates the helper and carries the same layout
/// with an embedded version field).
std::vector<std::uint8_t> seal_container(const char* magic8,
                                         const std::vector<std::uint8_t>& payload);

/// Validates digest (first) and magic, then returns the payload bytes.
/// Throws SnapshotError on truncation, corruption or a foreign magic.
std::vector<std::uint8_t> unseal_container(const char* magic8,
                                           const std::vector<std::uint8_t>& image);

/// Atomically writes `bytes` to `path` (temp file + rename), so a crash
/// mid-write can never leave a torn checkpoint behind.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Reads a whole file; throws SnapshotError if unreadable.
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace dftmsn::snapshot
