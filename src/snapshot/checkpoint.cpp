#include "snapshot/checkpoint.hpp"

#include <cstring>

#include "common/config_io.hpp"

namespace dftmsn {
namespace {

constexpr char kMagic[8] = {'D', 'F', 'T', 'M', 'S', 'N', 'C', 'K'};
// v2: world header gained a telemetry flag, the world stream a trailing
// registry section, and metrics drops are keyed on DropReason.
// v3: trace-driven mobility (MobilityKind::kTrace) serializes a new
// trace_mobility model section, and the registered config key set (which
// feeds the meta config digest) gained scenario.trace_path. Strict
// equality check: older files are rejected, not migrated.
constexpr std::uint32_t kFormatVersion = 3;
constexpr std::size_t kDigestBytes = 8;

}  // namespace

std::uint64_t config_digest(const Config& config, ProtocolKind kind) {
  snapshot::StateHash h;
  for (const std::string& kv : list_config_keys(config)) {
    h.update(kv.data(), kv.size());
    h.update("\n", 1);
  }
  const std::uint32_t k = static_cast<std::uint32_t>(kind);
  h.update(&k, sizeof(k));
  return h.value();
}

std::vector<std::uint8_t> make_checkpoint(const World& world) {
  // Magic + version sit outside the section structure so a reader can
  // reject a foreign file before trusting any embedded length field.
  snapshot::Writer w;
  for (const char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kFormatVersion);

  w.begin_section("meta");
  w.u64(config_digest(world.config(), world.kind()));
  w.u32(static_cast<std::uint32_t>(world.kind()));
  w.u64(world.config().scenario.seed);
  w.f64(world.sim().now());
  w.u64(world.sim().events_executed());
  w.end_section();

  const std::vector<std::uint8_t> state = world.serialize_state();
  w.begin_section("state");
  w.size(state.size());
  w.end_section();

  std::vector<std::uint8_t> image = w.bytes();
  image.insert(image.end(), state.begin(), state.end());

  snapshot::StateHash h;
  h.update(image.data(), image.size());
  const std::uint64_t digest = h.value();
  for (std::size_t i = 0; i < kDigestBytes; ++i)
    image.push_back(static_cast<std::uint8_t>(digest >> (8 * i)));
  return image;
}

void write_checkpoint(const std::string& path, const World& world) {
  snapshot::write_file_atomic(path, make_checkpoint(world));
}

CheckpointMeta read_checkpoint_meta(const std::vector<std::uint8_t>& image,
                                    std::vector<std::uint8_t>* state) {
  if (image.size() < sizeof(kMagic) + 4 + kDigestBytes)
    throw snapshot::SnapshotError("checkpoint: truncated file");

  // Check the trailing digest first: a torn write fails here with one
  // clear message rather than as some arbitrary downstream parse error.
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < kDigestBytes; ++i)
    stored |= static_cast<std::uint64_t>(
                  image[image.size() - kDigestBytes + i])
              << (8 * i);
  snapshot::StateHash h;
  h.update(image.data(), image.size() - kDigestBytes);
  if (h.value() != stored)
    throw snapshot::SnapshotError(
        "checkpoint: digest mismatch (torn or corrupt file)");

  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0)
    throw snapshot::SnapshotError("checkpoint: bad magic");

  std::vector<std::uint8_t> structured(
      image.begin() + static_cast<std::ptrdiff_t>(sizeof(kMagic)),
      image.end() - static_cast<std::ptrdiff_t>(kDigestBytes));
  snapshot::Reader r(std::move(structured));
  CheckpointMeta meta;
  meta.version = r.u32();
  if (meta.version != kFormatVersion)
    throw snapshot::SnapshotError(
        "checkpoint: unsupported format version " +
        std::to_string(meta.version) + " (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  r.begin_section("meta");
  meta.config_digest = r.u64();
  meta.protocol = r.u32();
  meta.seed = r.u64();
  meta.time = r.f64();
  meta.events = r.u64();
  r.end_section();

  r.begin_section("state");
  const std::size_t state_len = r.size();
  r.end_section();
  const std::size_t state_begin = sizeof(kMagic) + r.position();
  if (state_begin + state_len + kDigestBytes != image.size())
    throw snapshot::SnapshotError("checkpoint: state length mismatch");
  if (state)
    state->assign(image.begin() + static_cast<std::ptrdiff_t>(state_begin),
                  image.end() - static_cast<std::ptrdiff_t>(kDigestBytes));
  return meta;
}

CheckpointMeta read_checkpoint_file(const std::string& path,
                                    std::vector<std::uint8_t>* state) {
  try {
    return read_checkpoint_meta(snapshot::read_file(path), state);
  } catch (const snapshot::SnapshotError& e) {
    // Image-level validation doesn't know the file name; re-attach it so
    // a torn or corrupt checkpoint is reported against its path.
    throw snapshot::SnapshotError("checkpoint " + path + ": " + e.what());
  }
}

std::unique_ptr<World> resume_world(const Config& config, ProtocolKind kind,
                                    const std::vector<std::uint8_t>& image,
                                    bool verify,
                                    const std::atomic<bool>* abort,
                                    std::atomic<std::uint64_t>* progress) {
  std::vector<std::uint8_t> recorded;
  const CheckpointMeta meta = read_checkpoint_meta(image, &recorded);

  if (meta.config_digest != config_digest(config, kind))
    throw snapshot::SnapshotError(
        "checkpoint: config/protocol drift — checkpoint was written under "
        "different parameters; refusing to resume");
  if (meta.seed != config.scenario.seed)
    throw snapshot::SnapshotError("checkpoint: seed mismatch");

  auto world = std::make_unique<World>(config, kind);
  if (abort) world->sim().set_abort_flag(abort);
  if (progress) world->sim().set_progress_counter(progress);
  world->replay_to(meta.events, meta.time);
  if (verify) snapshot::require_identical(recorded, world->serialize_state());
  return world;
}

}  // namespace dftmsn
