// Shared field codecs for small value types that appear in several
// components' save_state/load_state implementations.
#pragma once

#include "geom/vec2.hpp"
#include "net/message.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn::snapshot {

inline void save(Writer& w, const Message& m) {
  w.u64(m.id);
  w.u32(m.source);
  w.f64(m.created);
  w.size(m.bits);
  w.u64(static_cast<std::uint64_t>(m.hops));
}

inline void load(Reader& r, Message& m) {
  m.id = r.u64();
  m.source = r.u32();
  m.created = r.f64();
  m.bits = r.size();
  m.hops = static_cast<int>(r.u64());
}

inline void save(Writer& w, const QueuedMessage& q) {
  save(w, q.msg);
  w.f64(q.ftd);
  w.f64(q.enqueued);
}

inline void load(Reader& r, QueuedMessage& q) {
  load(r, q.msg);
  q.ftd = r.f64();
  q.enqueued = r.f64();
}

inline void save(Writer& w, const Vec2& v) {
  w.f64(v.x);
  w.f64(v.y);
}

inline void load(Reader& r, Vec2& v) {
  v.x = r.f64();
  v.y = r.f64();
}

}  // namespace dftmsn::snapshot
