#include "snapshot/snapshot_io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "snapshot/io_env.hpp"

namespace dftmsn::snapshot {

SnapshotMismatch::SnapshotMismatch(const std::string& section,
                                   const std::string& detail)
    : std::runtime_error("snapshot: state mismatch in section '" + section +
                         "': " + detail),
      section(section) {}

void StateHash::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h_ ^= p[i];
    h_ *= 0x100000001b3ull;
  }
}

// --- Writer -----------------------------------------------------------

void Writer::raw(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

// All integers are written little-endian byte by byte so snapshots are
// host-endianness independent.
void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& v) {
  size(v.size());
  raw(v.data(), v.size());
}

void Writer::begin_section(const std::string& name) {
  str(name);
  open_.push_back(buf_.size());
  u64(0);  // length placeholder, patched by end_section
}

void Writer::end_section() {
  if (open_.empty()) throw SnapshotError("end_section without begin_section");
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t len = buf_.size() - (at + 8);
  for (int i = 0; i < 8; ++i)
    buf_[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
}

const std::vector<std::uint8_t>& Writer::bytes() const {
  if (!open_.empty()) throw SnapshotError("unclosed section in writer");
  return buf_;
}

std::uint64_t Writer::digest() const {
  StateHash h;
  const auto& b = bytes();
  h.update(b.data(), b.size());
  return h.value();
}

// --- Reader -----------------------------------------------------------

Reader::Reader(std::vector<std::uint8_t> bytes) : buf_(std::move(bytes)) {}

void Reader::raw(void* out, std::size_t len) {
  if (pos_ + len > buf_.size()) throw SnapshotError("truncated snapshot");
  if (!limits_.empty() && pos_ + len > limits_.back())
    throw SnapshotError("read past section end");
  std::memcpy(out, buf_.data() + pos_, len);
  pos_ += len;
}

std::uint8_t Reader::u8() {
  std::uint8_t v = 0;
  raw(&v, 1);
  return v;
}

std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::boolean() { return u8() != 0; }

std::size_t Reader::size() {
  const std::uint64_t v = u64();
  if (v > buf_.size()) throw SnapshotError("implausible size field");
  return static_cast<std::size_t>(v);
}

std::string Reader::str() {
  const std::size_t n = size();
  std::string out(n, '\0');
  raw(out.data(), n);
  return out;
}

void Reader::begin_section(const std::string& name) {
  const std::string found = str();
  if (found != name)
    throw SnapshotError("expected section '" + name + "', found '" + found +
                        "'");
  const std::uint64_t len = u64();
  if (pos_ + len > buf_.size())
    throw SnapshotError("section '" + name + "' overruns the buffer");
  limits_.push_back(pos_ + static_cast<std::size_t>(len));
}

void Reader::end_section() {
  if (limits_.empty()) throw SnapshotError("end_section without begin_section");
  if (pos_ != limits_.back())
    throw SnapshotError("section not fully consumed (" +
                        std::to_string(limits_.back() - pos_) +
                        " bytes left)");
  limits_.pop_back();
}

// --- buffer diagnostics ----------------------------------------------

std::vector<std::string> top_level_sections(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<std::string> names;
  Reader r(bytes);
  while (!r.at_end()) {
    // Each top-level item is str(name) + u64(len) + payload.
    names.push_back(r.str());
    const std::uint64_t len = r.u64();
    for (std::uint64_t i = 0; i < len; ++i) (void)r.u8();
  }
  return names;
}

void require_identical(const std::vector<std::uint8_t>& expected,
                       const std::vector<std::uint8_t>& actual) {
  if (expected == actual) return;
  // Locate the first diverging top-level section for the error message.
  Reader re(expected);
  Reader ra(actual);
  while (!re.at_end() && !ra.at_end()) {
    const std::string ne = re.str();
    const std::string na = ra.str();
    if (ne != na)
      throw SnapshotMismatch(ne, "section order diverged (found '" + na + "')");
    const std::uint64_t le = re.u64();
    const std::uint64_t la = ra.u64();
    std::size_t diff_at = 0;
    bool differs = le != la;
    const std::uint64_t common = le < la ? le : la;
    for (std::uint64_t i = 0; i < common; ++i) {
      const std::uint8_t be = re.u8();
      const std::uint8_t ba = ra.u8();
      if (!differs && be != ba) {
        differs = true;
        diff_at = static_cast<std::size_t>(i);
      }
    }
    for (std::uint64_t i = common; i < le; ++i) (void)re.u8();
    for (std::uint64_t i = common; i < la; ++i) (void)ra.u8();
    if (differs)
      throw SnapshotMismatch(
          ne, le != la
                  ? "section size changed (" + std::to_string(le) + " vs " +
                        std::to_string(la) + " bytes)"
                  : "first differing byte at offset " + std::to_string(diff_at));
  }
  throw SnapshotMismatch("<trailer>", "buffers differ in section count");
}

// --- sealed containers ------------------------------------------------

std::vector<std::uint8_t> seal_container(const char* magic8,
                                         const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> image;
  image.reserve(8 + payload.size() + 8);
  image.insert(image.end(), magic8, magic8 + 8);
  image.insert(image.end(), payload.begin(), payload.end());
  StateHash h;
  h.update(image.data(), image.size());
  const std::uint64_t digest = h.value();
  for (std::size_t i = 0; i < 8; ++i)
    image.push_back(static_cast<std::uint8_t>(digest >> (8 * i)));
  return image;
}

std::vector<std::uint8_t> unseal_container(const char* magic8,
                                           const std::vector<std::uint8_t>& image) {
  if (image.size() < 16) throw SnapshotError("container: truncated file");
  // Digest first: a torn write fails with one clear message instead of
  // as an arbitrary downstream parse error.
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < 8; ++i)
    stored |= static_cast<std::uint64_t>(image[image.size() - 8 + i])
              << (8 * i);
  StateHash h;
  h.update(image.data(), image.size() - 8);
  if (h.value() != stored)
    throw SnapshotError("container: digest mismatch (torn or corrupt file)");
  if (std::memcmp(image.data(), magic8, 8) != 0)
    throw SnapshotError("container: bad magic");
  return std::vector<std::uint8_t>(
      image.begin() + 8,
      image.end() - 8);
}

// --- files ------------------------------------------------------------

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  // Durability (fsync before rename, parent-dir fsync after) and fault
  // injection both live in the IoEnv layer; every persistence path that
  // calls this inherits them.
  IoEnv::instance().write_file_atomic_durable(path, bytes);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw SnapshotError("cannot open " + path);
  const std::streamsize n = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(bytes.data()), n);
  if (!in) throw SnapshotError("short read from " + path);
  return bytes;
}

}  // namespace dftmsn::snapshot
