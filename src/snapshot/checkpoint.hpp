// Checkpoint files: a versioned container around a World state snapshot.
//
// Layout: magic "DFTMSNCK" + u32 format version, then a "meta" section
// (config digest, protocol, seed, sim time, executed event count), then
// the World's serialized component state, then a trailing FNV-1a digest
// of everything before it (torn/corrupt file detection).
//
// Resume protocol (resume_world): rebuild the World from (config, kind) —
// the checkpoint stores a digest of the config, not the config itself,
// so a resume against drifted parameters is rejected loudly — then
// deterministically replay to the recorded event count, clamp the clock,
// and byte-compare the re-serialized state against the checkpoint. The
// comparison is what makes resume *verified*: any nondeterminism or code
// drift surfaces as a SnapshotMismatch naming the diverging component
// instead of silently producing different results.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "experiment/world.hpp"
#include "protocol/protocol_factory.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

/// Everything needed to locate and validate the run a checkpoint belongs
/// to, plus the replay target.
struct CheckpointMeta {
  std::uint32_t version = 1;
  std::uint64_t config_digest = 0;  ///< config_digest(config, kind)
  std::uint32_t protocol = 0;       ///< ProtocolKind as int
  std::uint64_t seed = 0;
  SimTime time = 0.0;               ///< sim clock at snapshot
  std::uint64_t events = 0;         ///< events executed at snapshot
};

/// Stable fingerprint of every registered config key plus the protocol
/// kind. faults.attempt is deliberately not a registered key, so retried
/// attempts of one replication share a digest.
std::uint64_t config_digest(const Config& config, ProtocolKind kind);

/// Serializes `world` into a complete checkpoint file image.
std::vector<std::uint8_t> make_checkpoint(const World& world);

/// Atomically writes make_checkpoint(world) to `path`.
void write_checkpoint(const std::string& path, const World& world);

/// Parses and validates a checkpoint image (magic, version, trailing
/// digest); returns the meta. `state` (optional) receives the embedded
/// World state bytes.
CheckpointMeta read_checkpoint_meta(const std::vector<std::uint8_t>& image,
                                    std::vector<std::uint8_t>* state = nullptr);

/// Reads + validates a checkpoint file.
CheckpointMeta read_checkpoint_file(const std::string& path,
                                    std::vector<std::uint8_t>* state = nullptr);

/// Rebuilds a World from (config, kind) and fast-forwards it to the
/// checkpoint. Throws SnapshotError if the checkpoint belongs to a
/// different (config, protocol, seed); when `verify` is set (default),
/// throws SnapshotMismatch if the replayed state is not byte-identical
/// to the recorded state. `abort`/`progress`, when non-null, are
/// installed on the simulator *before* replay starts, so a supervisor's
/// watchdog can observe and cancel a replay that itself hangs (e.g. an
/// ungated `hang@T` fault that replays along with everything else).
std::unique_ptr<World> resume_world(const Config& config, ProtocolKind kind,
                                    const std::vector<std::uint8_t>& image,
                                    bool verify = true,
                                    const std::atomic<bool>* abort = nullptr,
                                    std::atomic<std::uint64_t>* progress =
                                        nullptr);

}  // namespace dftmsn
