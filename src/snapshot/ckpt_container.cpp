#include "snapshot/ckpt_container.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include "snapshot/io_env.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn::snapshot {
namespace {

constexpr char kMagic[8] = {'D', 'F', 'T', 'M', 'S', 'N', 'C', 'C'};
constexpr char kFooterMagic[8] = {'D', 'F', 'T', 'M', 'S', 'N', 'C', 'F'};
constexpr char kRecMagic[4] = {'R', 'C', '0', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderSize = 12;   // magic + u32 version
constexpr std::uint64_t kRecHeaderSize = 32;  // magic,kind,spec,seq,len
constexpr std::uint64_t kRecOverhead = kRecHeaderSize + 8;  // + digest
constexpr std::uint64_t kFooterSize = 16;   // index offset + magic
constexpr std::uint32_t kKindCheckpoint = 1;
constexpr std::uint32_t kKindIndex = 2;
// Compact when superseded records waste more than both the live data and
// this floor — small containers are never worth rewriting.
constexpr std::uint64_t kCompactMinDeadBytes = 256 * 1024;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw SnapshotError("checkpoint container " + path + ": " + what);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Exclusive advisory lock on `<path>.lock`. flock is per open file
/// description, so two threads of one process exclude each other exactly
/// like two processes do. The lock file is created once and never
/// renamed; compaction can atomically replace the container under it.
class ContainerLock {
 public:
  explicit ContainerLock(const std::string& path) {
    const std::string lock_path = path + ".lock";
    fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0)
      fail(path, "cannot open lock file " + lock_path + ": " +
                     std::strerror(errno));
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      const int saved = errno;
      ::close(fd_);
      fail(path, "cannot lock " + lock_path + ": " + std::strerror(saved));
    }
  }
  ~ContainerLock() {
    if (fd_ >= 0) ::close(fd_);  // closing drops the flock
  }
  ContainerLock(const ContainerLock&) = delete;
  ContainerLock& operator=(const ContainerLock&) = delete;

 private:
  int fd_ = -1;
};

std::vector<std::uint8_t> read_whole(int fd, const std::string& path) {
  struct stat st{};
  if (::fstat(fd, &st) != 0)
    fail(path, std::string("fstat: ") + std::strerror(errno));
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::pread(fd, bytes.data() + done, bytes.size() - done,
                              static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path, std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) break;  // concurrent truncate: scan whatever we got
    done += static_cast<std::size_t>(n);
  }
  bytes.resize(done);
  return bytes;
}

std::uint64_t record_digest(const std::uint8_t* rec, std::uint64_t len) {
  StateHash h;
  h.update(rec, kRecHeaderSize + len);
  return h.value();
}

/// Everything scan_image recovers beyond the public ContainerScanResult.
struct ScanState {
  ContainerScanResult result;
  bool header_ok = false;  ///< false: rewrite the header before appending
  std::uint64_t data_end = kHeaderSize;  ///< after the last data record
  std::uint64_t next_seq = 1;
  std::uint64_t live_bytes = 0;
};

/// Front-to-back validation of an in-memory image. Never throws for
/// damage a crash can produce: record-level tears stop the scan (the
/// tail counts as torn), and a header shorter than kHeaderSize — a crash
/// inside the very first append — yields an empty recoverable state. A
/// *complete* header with wrong magic/version is a foreign file and
/// throws: stepping over it could destroy data this code doesn't
/// understand.
ScanState scan_image(const std::string& path,
                     const std::vector<std::uint8_t>& image) {
  ScanState s;
  s.result.exists = true;
  s.result.file_size = image.size();
  if (image.size() < kHeaderSize) {
    s.result.valid_end = 0;
    return s;
  }
  if (std::memcmp(image.data(), kMagic, 8) != 0) fail(path, "bad magic");
  if (get_u32(image.data() + 8) != kVersion)
    fail(path, "unsupported version " +
                   std::to_string(get_u32(image.data() + 8)));
  s.header_ok = true;

  // The index is authoritative for liveness when it is intact: an erase
  // drops an entry from the index while the dead record stays behind
  // until compaction. The record-by-record recovery map is the fallback
  // for a torn or index-less file (where a superseded-but-surviving
  // record is legitimately the best available checkpoint).
  std::map<std::uint64_t, ContainerEntry> recovered;   // spec -> latest
  std::map<std::uint64_t, ContainerEntry> by_offset;   // every data record
  std::uint64_t total_data = 0;
  std::uint64_t pos = kHeaderSize;
  std::uint64_t index_offset = 0;
  bool have_index = false;
  bool index_payload_ok = false;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> index_pairs;

  while (pos + kRecOverhead <= image.size()) {
    const std::uint8_t* rec = image.data() + pos;
    if (std::memcmp(rec, kRecMagic, 4) != 0) break;
    const std::uint32_t kind = get_u32(rec + 4);
    if (kind != kKindCheckpoint && kind != kKindIndex) break;
    const std::uint64_t spec = get_u64(rec + 8);
    const std::uint64_t seq = get_u64(rec + 16);
    const std::uint64_t len = get_u64(rec + 24);
    if (len > image.size() - pos - kRecOverhead) break;  // extends past EOF
    if (record_digest(rec, len) != get_u64(rec + kRecHeaderSize + len)) break;

    if (kind == kKindCheckpoint) {
      const ContainerEntry e{spec, seq, pos, len};
      by_offset.emplace(pos, e);
      auto [it, inserted] = recovered.emplace(spec, e);
      if (!inserted && seq >= it->second.seq) it->second = e;
      total_data += kRecOverhead + len;
      s.data_end = pos + kRecOverhead + len;
    } else {
      have_index = true;
      index_offset = pos;
      index_pairs.clear();
      index_payload_ok = false;
      const std::uint8_t* p = rec + kRecHeaderSize;
      if (len >= 8) {
        const std::uint64_t count = get_u64(p);
        if (len == 8 + count * 16) {
          index_payload_ok = true;
          for (std::uint64_t i = 0; i < count; ++i)
            index_pairs.emplace_back(get_u64(p + 8 + i * 16),
                                     get_u64(p + 16 + i * 16));
        }
      }
    }
    if (seq >= s.next_seq) s.next_seq = seq + 1;
    pos += kRecOverhead + len;
  }
  s.result.valid_end = pos;

  // Clean means: the file ends in exactly [index record][footer], the
  // footer points at that index record, and every index entry references
  // an intact record of the right spec.
  s.result.clean = false;
  if (have_index && index_payload_ok && pos + kFooterSize == image.size() &&
      index_offset + kRecOverhead <= pos) {
    const std::uint8_t* footer = image.data() + pos;
    if (get_u64(footer) == index_offset &&
        std::memcmp(footer + 8, kFooterMagic, 8) == 0) {
      bool match = true;
      std::vector<ContainerEntry> from_index;
      for (const auto& [spec, off] : index_pairs) {
        const auto it = by_offset.find(off);
        if (it == by_offset.end() || it->second.spec != spec) {
          match = false;
          break;
        }
        from_index.push_back(it->second);
      }
      if (match) {
        s.result.clean = true;
        s.result.valid_end = image.size();
        s.result.entries = std::move(from_index);
      }
    }
  }
  if (!s.result.clean)
    for (const auto& [spec, e] : recovered) s.result.entries.push_back(e);
  std::sort(s.result.entries.begin(), s.result.entries.end(),
            [](const ContainerEntry& a, const ContainerEntry& b) {
              return a.spec < b.spec;
            });

  for (const ContainerEntry& e : s.result.entries)
    s.live_bytes += kRecOverhead + e.payload_len;
  s.result.dead_bytes = total_data - s.live_bytes;
  return s;
}

std::vector<std::uint8_t> encode_record(std::uint32_t kind,
                                        std::uint64_t spec, std::uint64_t seq,
                                        const std::uint8_t* payload,
                                        std::uint64_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(kRecOverhead + len);
  out.insert(out.end(), kRecMagic, kRecMagic + 4);
  put_u32(out, kind);
  put_u64(out, spec);
  put_u64(out, seq);
  put_u64(out, len);
  out.insert(out.end(), payload, payload + len);
  StateHash h;
  h.update(out.data(), out.size());
  put_u64(out, h.value());
  return out;
}

/// index record (listing `entries`, which must be sorted) + footer, laid
/// out to start at `at`.
std::vector<std::uint8_t> encode_index_and_footer(
    const std::vector<ContainerEntry>& entries, std::uint64_t seq,
    std::uint64_t at) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, entries.size());
  for (const ContainerEntry& e : entries) {
    put_u64(payload, e.spec);
    put_u64(payload, e.offset);
  }
  std::vector<std::uint8_t> out =
      encode_record(kKindIndex, 0, seq, payload.data(), payload.size());
  put_u64(out, at);  // footer: offset of the index record we just wrote
  out.insert(out.end(), kFooterMagic, kFooterMagic + 8);
  return out;
}

std::vector<std::uint8_t> header_bytes() {
  std::vector<std::uint8_t> h(kMagic, kMagic + 8);
  put_u32(h, kVersion);
  return h;
}

/// Serializes exactly the live records of `image` into a fresh clean
/// container image (used by compaction).
std::vector<std::uint8_t> compacted_image(
    const ScanState& s, const std::vector<std::uint8_t>& image) {
  std::vector<std::uint8_t> out = header_bytes();
  std::vector<ContainerEntry> moved;
  std::uint64_t seq = 1;
  for (const ContainerEntry& e : s.result.entries) {
    const std::uint8_t* payload =
        image.data() + e.offset + kRecHeaderSize;
    const std::vector<std::uint8_t> rec = encode_record(
        kKindCheckpoint, e.spec, seq, payload, e.payload_len);
    moved.push_back({e.spec, seq, out.size(), e.payload_len});
    out.insert(out.end(), rec.begin(), rec.end());
    ++seq;
  }
  const std::vector<std::uint8_t> tail =
      encode_index_and_footer(moved, seq, out.size());
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

/// Read + scan under the caller's lock; returns the raw image too.
ScanState scan_locked(const std::string& path,
                      std::vector<std::uint8_t>* image_out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return ScanState{};  // exists=false
    fail(path, std::string("open: ") + std::strerror(errno));
  }
  std::vector<std::uint8_t> image;
  try {
    image = read_whole(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  ScanState s = scan_image(path, image);
  if (image_out != nullptr) *image_out = std::move(image);
  return s;
}

/// Writes index + footer at `at`, truncates to the exact end, fsyncs.
/// The caller has already written any data records below `at`.
void finish_tail(IoEnv& io, int fd, const std::string& path,
                 const std::vector<ContainerEntry>& entries,
                 std::uint64_t seq, std::uint64_t at) {
  const std::vector<std::uint8_t> tail =
      encode_index_and_footer(entries, seq, at);
  io.pwrite_all(fd, path, tail.data(), tail.size(), at);
  io.ftruncate_file(fd, path, at + tail.size());
  io.fsync_file(fd, path);
}

}  // namespace

ContainerScanResult container_scan(const std::string& path) {
  ContainerLock lock(path);
  return scan_locked(path, nullptr).result;
}

void container_put(const std::string& path, std::uint64_t spec,
                   const std::vector<std::uint8_t>& payload) {
  ContainerLock lock(path);
  IoEnv& io = IoEnv::instance();
  std::vector<std::uint8_t> image;
  ScanState s = scan_locked(path, &image);

  if (s.result.dead_bytes > kCompactMinDeadBytes &&
      s.result.dead_bytes > s.live_bytes) {
    io.write_file_atomic_durable(path, compacted_image(s, image));
    s = scan_locked(path, &image);
  }

  const int fd = io.open_rw(path);
  try {
    std::uint64_t at = s.data_end;
    if (!s.header_ok) {
      const std::vector<std::uint8_t> h = header_bytes();
      io.pwrite_all(fd, path, h.data(), h.size(), 0);
      at = kHeaderSize;
    }
    const std::uint64_t seq = s.next_seq;
    const std::vector<std::uint8_t> rec = encode_record(
        kKindCheckpoint, spec, seq, payload.data(), payload.size());
    io.pwrite_all(fd, path, rec.data(), rec.size(), at);

    std::vector<ContainerEntry> entries = s.result.entries;
    const ContainerEntry e{spec, seq, at, payload.size()};
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [&](const ContainerEntry& x) { return x.spec == spec; });
    if (it != entries.end())
      *it = e;
    else
      entries.insert(std::upper_bound(entries.begin(), entries.end(), e,
                                      [](const ContainerEntry& a,
                                         const ContainerEntry& b) {
                                        return a.spec < b.spec;
                                      }),
                     e);
    finish_tail(io, fd, path, entries, seq + 1, at + rec.size());
  } catch (...) {
    ::close(fd);
    throw;  // a torn append is recovered by the next scan
  }
  ::close(fd);
}

std::optional<std::vector<std::uint8_t>> container_get(
    const std::string& path, std::uint64_t spec) {
  ContainerLock lock(path);
  std::vector<std::uint8_t> image;
  const ScanState s = scan_locked(path, &image);
  if (!s.result.exists) return std::nullopt;
  for (const ContainerEntry& e : s.result.entries) {
    if (e.spec != spec) continue;
    const std::uint8_t* payload = image.data() + e.offset + kRecHeaderSize;
    return std::vector<std::uint8_t>(payload, payload + e.payload_len);
  }
  return std::nullopt;
}

void container_erase(const std::string& path, std::uint64_t spec) {
  ContainerLock lock(path);
  const ScanState s = scan_locked(path, nullptr);
  if (!s.result.exists) return;
  const bool present = std::any_of(
      s.result.entries.begin(), s.result.entries.end(),
      [&](const ContainerEntry& e) { return e.spec == spec; });
  if (!present && s.result.clean) return;

  std::vector<ContainerEntry> entries;
  for (const ContainerEntry& e : s.result.entries)
    if (e.spec != spec) entries.push_back(e);

  IoEnv& io = IoEnv::instance();
  const int fd = io.open_rw(path);
  try {
    finish_tail(io, fd, path, entries, s.next_seq, s.data_end);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void container_compact(const std::string& path) {
  ContainerLock lock(path);
  std::vector<std::uint8_t> image;
  const ScanState s = scan_locked(path, &image);
  if (!s.result.exists || (s.result.clean && s.result.dead_bytes == 0))
    return;
  IoEnv::instance().write_file_atomic_durable(path, compacted_image(s, image));
}

bool container_repair(const std::string& path) {
  ContainerLock lock(path);
  const ScanState s = scan_locked(path, nullptr);
  if (!s.result.exists || s.result.clean) return false;

  IoEnv& io = IoEnv::instance();
  const int fd = io.open_rw(path);
  try {
    if (!s.header_ok) {
      const std::vector<std::uint8_t> h = header_bytes();
      io.pwrite_all(fd, path, h.data(), h.size(), 0);
    }
    finish_tail(io, fd, path, s.result.entries, s.next_seq, s.data_end);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return true;
}

}  // namespace dftmsn::snapshot
