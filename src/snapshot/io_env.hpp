// Injectable I/O environment: every durable-state write in the system
// (checkpoint container appends, sweep manifests, worker request/result
// files, motion traces, JSON reports) goes through this layer instead of
// calling the filesystem directly.
//
// Two jobs:
//
//  1. Correct durability. The atomic-write protocol is
//         write tmp -> fsync tmp -> rename over target -> fsync parent dir
//     with the leftover `.tmp` unlinked on any failure. Plain
//     tmp+rename (the pre-hardening behaviour) survives a process crash
//     but not a power loss: without the fsyncs the rename can reach disk
//     before the data does, leaving a *named* file full of garbage.
//
//  2. Deterministic fault injection. A scripted schedule can fail the
//     Nth occurrence of any primitive (ENOSPC/EIO), tear a write after K
//     bytes, or "crash" the process at a chosen boundary (before/after a
//     write, fsync or rename) — so recovery code is tested against the
//     exact torn states a real crash can produce, reproducibly. See
//     docs/durability.md for the schedule grammar.
//
// The environment is process-global (IoEnv::instance()): persistence
// call sites stay free of plumbing, and a spawned worker process arms
// its own schedule from the DFTMSN_IO_FAULTS environment variable it
// inherits from the parent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace dftmsn::snapshot {

/// Exit code a scripted crash-point terminates the process with (exit
/// mode; see IoEnv::set_crash_exits). Distinct from every code in the
/// CLI/worker contract so harnesses can tell "died at the scheduled
/// boundary" from any real outcome.
inline constexpr int kInjectedCrashExit = 9;

/// A scripted crash-point fired in throw mode. Deliberately NOT derived
/// from SnapshotError: production retry paths catch std::exception, so
/// unit tests that want a crash to stop a persistence call mid-protocol
/// must catch this type explicitly at the top of the simulated "boot".
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& where)
      : std::runtime_error("injected crash at " + where) {}
};

/// The injectable primitives, in the order write_file_atomic uses them.
enum class IoOp : std::uint8_t {
  kOpen,      ///< open/create of a file opened for writing
  kWrite,     ///< one logical buffer write (whole file or one record)
  kFsync,     ///< fsync of a data file
  kRename,    ///< rename(tmp, target)
  kFsyncDir,  ///< fsync of the parent directory
};
const char* io_op_name(IoOp op);
inline constexpr std::size_t kIoOpCount = 5;

/// Which process a fault arms in (an --isolate=process sweep shares one
/// schedule string between the parent and every worker it spawns).
enum class IoScope : std::uint8_t { kAny, kParent, kWorker };

struct IoFault {
  enum class Kind : std::uint8_t {
    kEnospc,      ///< the op fails, message says ENOSPC
    kEio,         ///< the op fails, message says EIO
    kShortWrite,  ///< writes `bytes` bytes, then fails (kWrite only)
    kCrash,       ///< crash before the op (after `bytes` bytes for kWrite)
    kCrashAfter,  ///< crash after the op completed
  };
  Kind kind = Kind::kEio;
  IoOp op = IoOp::kWrite;
  std::uint64_t nth = 1;       ///< fires on the nth occurrence (1-based)
  std::uint64_t bytes = 0;     ///< short-write / torn-crash prefix length
  IoScope scope = IoScope::kAny;
  bool fired = false;          ///< each fault fires at most once
};

/// Parses the fault-schedule grammar; throws std::runtime_error naming
/// the offending token. Empty string -> empty schedule.
///   schedule := fault (';' fault)*
///   fault    := kind '@' op '#' N (':' arg (',' arg)*)?
///   kind     := enospc | eio | short | crash | crash-after
///   op       := open | write | fsync | rename | fsyncdir
///   arg      := bytes=K | scope=(any|parent|worker)
std::vector<IoFault> parse_io_fault_schedule(const std::string& spec);

class IoEnv {
 public:
  /// The process-wide environment all persistence call sites use.
  static IoEnv& instance();

  /// Replaces the schedule and zeroes all op counters.
  void set_schedule(std::vector<IoFault> faults);
  /// parse + set; throws on a malformed spec.
  void set_schedule_spec(const std::string& spec);
  /// Drops the schedule and zeroes counters (tests; default state).
  void reset();

  /// Crash faults terminate with _exit(kInjectedCrashExit) instead of
  /// throwing InjectedCrash. The CLI turns this on: an exiting process
  /// is the honest simulation of power loss (no unwinding, no cleanup).
  void set_crash_exits(bool on) { crash_exits_ = on; }
  /// This process's side of the parent/worker split (scope= filtering).
  void set_scope(IoScope s) { scope_ = s; }

  [[nodiscard]] std::uint64_t op_count(IoOp op) const;
  [[nodiscard]] bool armed() const;

  // --- durable file primitives (fault-injected) ------------------------
  // All throw SnapshotError with the path in the message on failure
  // (real or injected), except crash faults (InjectedCrash / _exit).

  /// The atomic+durable write protocol described above.
  void write_file_atomic_durable(const std::string& path,
                                 const std::vector<std::uint8_t>& bytes);

  /// open(2) for read/write, creating if absent. Returns the fd.
  int open_rw(const std::string& path);
  /// pwrite(2) the whole buffer at `offset` (EINTR/partial-safe).
  void pwrite_all(int fd, const std::string& path, const void* data,
                  std::size_t len, std::uint64_t offset);
  void fsync_file(int fd, const std::string& path);
  void ftruncate_file(int fd, const std::string& path, std::uint64_t len);
  void rename_file(const std::string& from, const std::string& to);
  /// fsync of `path`'s parent directory (directory entry durability).
  void fsync_parent_dir(const std::string& path);

 private:
  IoEnv() = default;

  /// What bump() found armed for this occurrence of an op.
  struct Fired {
    bool hit = false;
    IoFault::Kind kind = IoFault::Kind::kEio;
    std::uint64_t nth = 0;
    std::uint64_t bytes = 0;
  };
  /// Advances the op counter (unless `after`) and returns the matching
  /// unfired fault, if any. `after` re-checks the same occurrence for
  /// crash-after faults once the op itself has succeeded.
  Fired bump(IoOp op, bool after);
  /// bump(after) + crash if a crash-after fault fired.
  void after_op(IoOp op, const std::string& path);
  [[noreturn]] void crash(const std::string& where);

  mutable std::mutex mu_;
  std::vector<IoFault> faults_;
  std::uint64_t counts_[kIoOpCount] = {0, 0, 0, 0, 0};
  bool crash_exits_ = false;
  IoScope scope_ = IoScope::kParent;
};

}  // namespace dftmsn::snapshot
