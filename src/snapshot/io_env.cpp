#include "snapshot/io_env.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "snapshot/snapshot_io.hpp"

namespace dftmsn::snapshot {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path,
                       const std::string& detail) {
  throw SnapshotError("io: " + what + " " + path + ": " + detail);
}

[[noreturn]] void fail_errno(const std::string& what,
                             const std::string& path) {
  fail(what, path, std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[noreturn]] void bad_token(const std::string& spec, const std::string& tok,
                            const std::string& why) {
  throw std::runtime_error("io fault schedule \"" + spec + "\": " + why +
                           " in \"" + tok + "\"");
}

std::uint64_t parse_count(const std::string& spec, const std::string& tok,
                          const std::string& field, const std::string& s) {
  if (s.empty() || s.front() == '-') bad_token(spec, tok, "bad " + field);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end == s.c_str() || *end != '\0')
    bad_token(spec, tok, "bad " + field + " \"" + s + "\"");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* io_op_name(IoOp op) {
  switch (op) {
    case IoOp::kOpen: return "open";
    case IoOp::kWrite: return "write";
    case IoOp::kFsync: return "fsync";
    case IoOp::kRename: return "rename";
    case IoOp::kFsyncDir: return "fsyncdir";
  }
  return "?";
}

std::vector<IoFault> parse_io_fault_schedule(const std::string& spec) {
  std::vector<IoFault> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string tok = spec.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (tok.empty()) continue;

    IoFault f;
    const std::size_t at = tok.find('@');
    if (at == std::string::npos) bad_token(spec, tok, "missing '@'");
    const std::string kind = tok.substr(0, at);
    if (kind == "enospc") f.kind = IoFault::Kind::kEnospc;
    else if (kind == "eio") f.kind = IoFault::Kind::kEio;
    else if (kind == "short") f.kind = IoFault::Kind::kShortWrite;
    else if (kind == "crash") f.kind = IoFault::Kind::kCrash;
    else if (kind == "crash-after") f.kind = IoFault::Kind::kCrashAfter;
    else bad_token(spec, tok, "unknown fault kind \"" + kind + "\"");

    const std::size_t hash = tok.find('#', at);
    if (hash == std::string::npos) bad_token(spec, tok, "missing '#N'");
    const std::string op = tok.substr(at + 1, hash - at - 1);
    if (op == "open") f.op = IoOp::kOpen;
    else if (op == "write") f.op = IoOp::kWrite;
    else if (op == "fsync") f.op = IoOp::kFsync;
    else if (op == "rename") f.op = IoOp::kRename;
    else if (op == "fsyncdir") f.op = IoOp::kFsyncDir;
    else bad_token(spec, tok, "unknown op \"" + op + "\"");

    const std::size_t colon = tok.find(':', hash);
    const std::string n = tok.substr(
        hash + 1, colon == std::string::npos ? std::string::npos
                                             : colon - hash - 1);
    f.nth = parse_count(spec, tok, "occurrence", n);
    if (f.nth == 0) bad_token(spec, tok, "occurrence must be >= 1");

    std::size_t apos = colon == std::string::npos ? tok.size() : colon + 1;
    while (apos < tok.size()) {
      const std::size_t comma = tok.find(',', apos);
      const std::string arg = tok.substr(
          apos, comma == std::string::npos ? std::string::npos
                                           : comma - apos);
      apos = comma == std::string::npos ? tok.size() : comma + 1;
      if (arg.rfind("bytes=", 0) == 0) {
        f.bytes = parse_count(spec, tok, "bytes", arg.substr(6));
      } else if (arg.rfind("scope=", 0) == 0) {
        const std::string s = arg.substr(6);
        if (s == "any") f.scope = IoScope::kAny;
        else if (s == "parent") f.scope = IoScope::kParent;
        else if (s == "worker") f.scope = IoScope::kWorker;
        else bad_token(spec, tok, "unknown scope \"" + s + "\"");
      } else {
        bad_token(spec, tok, "unknown argument \"" + arg + "\"");
      }
    }
    if (f.kind == IoFault::Kind::kShortWrite && f.op != IoOp::kWrite)
      bad_token(spec, tok, "short faults only apply to write");
    if (f.kind == IoFault::Kind::kShortWrite && f.bytes == 0)
      bad_token(spec, tok, "short faults need bytes=K");
    out.push_back(f);
  }
  return out;
}

IoEnv& IoEnv::instance() {
  static IoEnv env;
  return env;
}

void IoEnv::set_schedule(std::vector<IoFault> faults) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = std::move(faults);
  for (std::uint64_t& c : counts_) c = 0;
}

void IoEnv::set_schedule_spec(const std::string& spec) {
  set_schedule(parse_io_fault_schedule(spec));
}

void IoEnv::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  for (std::uint64_t& c : counts_) c = 0;
  crash_exits_ = false;
  scope_ = IoScope::kParent;
}

std::uint64_t IoEnv::op_count(IoOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<std::size_t>(op)];
}

bool IoEnv::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const IoFault& f : faults_)
    if (!f.fired) return true;
  return false;
}

void IoEnv::crash(const std::string& where) {
  if (crash_exits_) ::_exit(kInjectedCrashExit);  // no unwinding: power loss
  throw InjectedCrash(where);
}

IoEnv::Fired IoEnv::bump(IoOp op, bool after) {
  Fired fired;
  std::lock_guard<std::mutex> lock(mu_);
  // The "before" pass advances the counter; the "after" pass re-checks
  // the same occurrence for crash-after faults once the op succeeded.
  const std::uint64_t n = after
                              ? counts_[static_cast<std::size_t>(op)]
                              : ++counts_[static_cast<std::size_t>(op)];
  for (IoFault& f : faults_) {
    if (f.fired || f.op != op || f.nth != n) continue;
    if (f.scope != IoScope::kAny && f.scope != scope_) continue;
    const bool is_after = f.kind == IoFault::Kind::kCrashAfter;
    if (is_after != after) continue;
    f.fired = true;
    fired.hit = true;
    fired.kind = f.kind;
    fired.nth = f.nth;
    fired.bytes = f.bytes;
    break;
  }
  return fired;
}

void IoEnv::after_op(IoOp op, const std::string& path) {
  const Fired f = bump(op, /*after=*/true);
  if (f.hit)
    crash("after " + std::string(io_op_name(op)) + " #" +
          std::to_string(f.nth) + " (" + path + ")");
}

int IoEnv::open_rw(const std::string& path) {
  const Fired f = bump(IoOp::kOpen, false);
  if (f.hit) {
    if (f.kind == IoFault::Kind::kCrash)
      crash("before open (" + path + ")");
    fail("open", path,
         f.kind == IoFault::Kind::kEnospc ? "injected ENOSPC"
                                          : "injected EIO");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) fail_errno("open", path);
  after_op(IoOp::kOpen, path);
  return fd;
}

void IoEnv::pwrite_all(int fd, const std::string& path, const void* data,
                       std::size_t len, std::uint64_t offset) {
  const Fired f = bump(IoOp::kWrite, false);
  std::size_t want = len;
  if (f.hit) {
    switch (f.kind) {
      case IoFault::Kind::kEnospc:
        fail("write", path, "injected ENOSPC");
      case IoFault::Kind::kEio:
        fail("write", path, "injected EIO");
      case IoFault::Kind::kShortWrite:
      case IoFault::Kind::kCrash:
        // Tear the write: only the first `bytes` bytes reach the file.
        want = static_cast<std::size_t>(
            f.bytes < len ? f.bytes : static_cast<std::uint64_t>(len));
        break;
      case IoFault::Kind::kCrashAfter:
        break;  // unreachable: bump(after=false) never matches these
    }
  }

  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < want) {
    const ssize_t n = ::pwrite(fd, p + done, want - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write", path);
    }
    done += static_cast<std::size_t>(n);
  }

  if (f.hit && f.kind == IoFault::Kind::kCrash)
    crash("mid-write (" + path + ", " + std::to_string(want) +
          " of " + std::to_string(len) + " bytes reached the file)");
  if (f.hit && f.kind == IoFault::Kind::kShortWrite)
    fail("write", path, "injected short write (" + std::to_string(want) +
                            " of " + std::to_string(len) + " bytes)");
  after_op(IoOp::kWrite, path);
}

void IoEnv::fsync_file(int fd, const std::string& path) {
  const Fired f = bump(IoOp::kFsync, false);
  if (f.hit) {
    if (f.kind == IoFault::Kind::kCrash)
      crash("before fsync (" + path + ")");
    fail("fsync", path,
         f.kind == IoFault::Kind::kEnospc ? "injected ENOSPC"
                                          : "injected EIO");
  }
  if (::fsync(fd) != 0) fail_errno("fsync", path);
  after_op(IoOp::kFsync, path);
}

void IoEnv::ftruncate_file(int fd, const std::string& path,
                           std::uint64_t len) {
  if (::ftruncate(fd, static_cast<off_t>(len)) != 0)
    fail_errno("ftruncate", path);
}

void IoEnv::rename_file(const std::string& from, const std::string& to) {
  const Fired f = bump(IoOp::kRename, false);
  if (f.hit) {
    if (f.kind == IoFault::Kind::kCrash)
      crash("before rename (" + to + ")");
    fail("rename", to,
         f.kind == IoFault::Kind::kEnospc ? "injected ENOSPC"
                                          : "injected EIO");
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) fail_errno("rename", to);
  after_op(IoOp::kRename, to);
}

void IoEnv::fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir(path);
  const Fired f = bump(IoOp::kFsyncDir, false);
  if (f.hit) {
    if (f.kind == IoFault::Kind::kCrash)
      crash("before fsyncdir (" + dir + ")");
    fail("fsync dir", dir,
         f.kind == IoFault::Kind::kEnospc ? "injected ENOSPC"
                                          : "injected EIO");
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail_errno("open dir", dir);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("fsync dir", dir);
  }
  ::close(fd);
  after_op(IoOp::kFsyncDir, dir);
}

void IoEnv::write_file_atomic_durable(const std::string& path,
                                      const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = -1;
  try {
    {
      const Fired f = bump(IoOp::kOpen, false);
      if (f.hit) {
        if (f.kind == IoFault::Kind::kCrash)
          crash("before open (" + tmp + ")");
        fail("open", tmp,
             f.kind == IoFault::Kind::kEnospc ? "injected ENOSPC"
                                              : "injected EIO");
      }
    }
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail_errno("open", tmp);
    after_op(IoOp::kOpen, tmp);
    pwrite_all(fd, tmp, bytes.data(), bytes.size(), 0);
    fsync_file(fd, tmp);
    ::close(fd);
    fd = -1;
  } catch (const InjectedCrash&) {
    // A crash leaves the torn tmp behind — exactly what a power loss
    // would. (Close the fd so throw-mode tests don't leak descriptors.)
    if (fd >= 0) ::close(fd);
    throw;
  } catch (...) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());  // error path: never leave .tmp litter behind
    throw;
  }
  try {
    rename_file(tmp, path);
  } catch (const InjectedCrash&) {
    throw;
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
  // After the rename the data is safe under the final name; a directory
  // fsync failure is reported but must not unlink the now-valid target.
  fsync_parent_dir(path);
}

}  // namespace dftmsn::snapshot
