// Seeded random streams. Each consumer gets its own named substream so
// adding a new random draw in one subsystem does not perturb another.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

/// One random stream: thin, convenience-wrapped mt19937_64.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  std::mt19937_64& engine() { return engine_; }

  /// Full engine state (the 312-word Mersenne twister vector + cursor,
  /// via the standard textual representation): round-trips exactly, so a
  /// restored stream continues the original draw sequence bit-for-bit.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  std::mt19937_64 engine_;
};

/// Root seed from which named substreams are derived. Substream seeds are
/// stable hashes of (root seed, name, index), so e.g. node 7's mobility
/// stream is the same regardless of how many other streams exist.
class RandomSource {
 public:
  explicit RandomSource(std::uint64_t root_seed) : root_(root_seed) {}

  /// Derives the deterministic substream for (name, index).
  [[nodiscard]] RandomStream stream(std::string_view name,
                                    std::uint64_t index = 0) const;

  [[nodiscard]] std::uint64_t root_seed() const { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace dftmsn
