#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace dftmsn {

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{at, next_seq_++, std::move(cb), cancelled});
  return EventHandle{std::move(cancelled)};
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  skip_cancelled();
  return heap_.empty() ? kTimeNever : heap_.top().at;
}

SimTime EventQueue::pop_and_run() {
  Popped p = pop();
  p.cb();
  return p.at;
}

EventQueue::Popped EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop on empty queue");
  // Copy the entry out before running: the callback may schedule new events
  // and reallocate the heap's storage.
  Entry entry = heap_.top();
  heap_.pop();
  *entry.cancelled = true;  // mark fired so stale handles report !pending()
  return Popped{entry.at, std::move(entry.cb)};
}

std::vector<std::pair<SimTime, EventSeq>> EventQueue::pending_schedule()
    const {
  std::vector<std::pair<SimTime, EventSeq>> out;
  auto copy = heap_;
  while (!copy.empty()) {
    const Entry& e = copy.top();
    if (!*e.cancelled) out.emplace_back(e.at, e.seq);
    copy.pop();
  }
  return out;  // heap pops in (time, seq) order: already ascending
}

void EventQueue::save_state(snapshot::Writer& w) const {
  w.begin_section("event_queue");
  w.u64(next_seq_);
  const auto pending = pending_schedule();
  w.size(pending.size());
  for (const auto& [at, seq] : pending) {
    w.f64(at);
    w.u64(seq);
  }
  w.end_section();
}

void EventQueue::skip_state(snapshot::Reader& r) {
  r.begin_section("event_queue");
  (void)r.u64();
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) {
    (void)r.f64();
    (void)r.u64();
  }
  r.end_section();
}

std::size_t EventQueue::size() const {
  // priority_queue lacks iteration; count via a copy. Diagnostic-only.
  auto copy = heap_;
  std::size_t live = 0;
  while (!copy.empty()) {
    if (!*copy.top().cancelled) ++live;
    copy.pop();
  }
  return live;
}

}  // namespace dftmsn
