#include "sim/random.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dftmsn {

double RandomStream::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double RandomStream::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("RandomStream::uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int RandomStream::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("RandomStream::uniform_int: lo > hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double RandomStream::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("RandomStream::exponential: mean <= 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool RandomStream::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return uniform01() < clamped;
}

void RandomStream::save_state(snapshot::Writer& w) const {
  std::ostringstream os;
  os << engine_;
  w.begin_section("rng");
  w.str(os.str());
  w.end_section();
}

void RandomStream::load_state(snapshot::Reader& r) {
  r.begin_section("rng");
  std::istringstream is(r.str());
  is >> engine_;
  if (!is) throw snapshot::SnapshotError("corrupt mt19937_64 state");
  r.end_section();
}

namespace {

/// FNV-1a 64-bit over the name bytes, then mixed with seed and index via
/// splitmix64 finalization steps.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

RandomStream RandomSource::stream(std::string_view name,
                                  std::uint64_t index) const {
  const std::uint64_t seed = mix(root_ ^ mix(fnv1a(name) ^ mix(index)));
  return RandomStream{seed};
}

}  // namespace dftmsn
