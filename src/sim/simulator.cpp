#include "sim/simulator.hpp"

#include <string>
#include <utility>

namespace dftmsn {

RunAborted::RunAborted(SimTime at, std::uint64_t events)
    : std::runtime_error("run aborted at t=" + std::to_string(at) + " after " +
                         std::to_string(events) + " events"),
      at(at),
      events(events) {}

EventHandle Simulator::schedule_in(SimTime delay, Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
  if (at < now_) throw std::invalid_argument("Simulator: schedule in the past");
  return queue_.schedule(at, std::move(cb));
}

void Simulator::check_abort() const {
  if (abort_requested()) throw RunAborted(now_, executed_);
}

void Simulator::after_event() {
  ++executed_;
  if (progress_) progress_->store(executed_, std::memory_order_relaxed);
  if (post_event_hook_) post_event_hook_();
}

void Simulator::dispatch(EventQueue::Popped& p) {
  // Advance the clock before invoking the callback so the event observes
  // its own timestamp via now().
  now_ = p.at;
  {
    telemetry::ScopedTimer timer(profiler_,
                                 telemetry::Subsystem::kEventDispatch);
    p.cb();
  }
  after_event();
}

void Simulator::run_until(SimTime end) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= end) {
    check_abort();
    EventQueue::Popped p = queue_.pop();
    dispatch(p);
  }
  check_abort();
  if (now_ < end) now_ = end;
}

void Simulator::run_all() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    check_abort();
    EventQueue::Popped p = queue_.pop();
    dispatch(p);
  }
}

void Simulator::run_until_executed(std::uint64_t target) {
  stopped_ = false;
  while (!stopped_ && executed_ < target && !queue_.empty()) {
    check_abort();
    EventQueue::Popped p = queue_.pop();
    dispatch(p);
  }
}

void Simulator::advance_clock_to(SimTime t) {
  if (t < now_)
    throw std::invalid_argument("Simulator: advance_clock_to in the past");
  now_ = t;
}

void Simulator::save_state(snapshot::Writer& w) const {
  w.begin_section("sim");
  w.f64(now_);
  w.u64(executed_);
  queue_.save_state(w);
  w.end_section();
}

void Simulator::load_state(snapshot::Reader& r) {
  r.begin_section("sim");
  now_ = r.f64();
  executed_ = r.u64();
  queue_.skip_state(r);
  r.end_section();
}

}  // namespace dftmsn
