#include "sim/simulator.hpp"

#include <utility>

namespace dftmsn {

EventHandle Simulator::schedule_in(SimTime delay, Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
  if (at < now_) throw std::invalid_argument("Simulator: schedule in the past");
  return queue_.schedule(at, std::move(cb));
}

void Simulator::run_until(SimTime end) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= end) {
    // Advance the clock before invoking the callback so the event observes
    // its own timestamp via now().
    EventQueue::Popped p = queue_.pop();
    now_ = p.at;
    p.cb();
    ++executed_;
    if (post_event_hook_) post_event_hook_();
  }
  if (now_ < end) now_ = end;
}

void Simulator::run_all() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    EventQueue::Popped p = queue_.pop();
    now_ = p.at;
    p.cb();
    ++executed_;
    if (post_event_hook_) post_event_hook_();
  }
}

}  // namespace dftmsn
