#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dftmsn {

namespace {

constexpr std::size_t kMinBuckets = 16;  // power of two

/// (at, seq) strict weak order shared by insertion and min searches.
bool entry_before(SimTime at_a, EventSeq seq_a, SimTime at_b, EventSeq seq_b) {
  if (at_a != at_b) return at_a < at_b;
  return seq_a < seq_b;
}

}  // namespace

CalendarQueue::CalendarQueue()
    : pool_(std::make_shared<detail::CancelPool>()),
      buckets_(kMinBuckets),
      mask_(kMinBuckets - 1) {}

EventHandle CalendarQueue::schedule(SimTime at, Callback cb) {
  if (!std::isfinite(at) || at < 0)
    throw std::invalid_argument("CalendarQueue: time must be finite and >= 0");

  const std::uint32_t slot = pool_->alloc();
  const std::uint32_t gen = pool_->slots[slot].gen;
  const EventSeq seq = next_seq_++;
  const std::uint64_t vb = vbucket_of(at);

  Bucket& b = buckets_[vb & mask_];
  // Mostly-append: events land in (at, seq) order far more often than not.
  auto pos = b.v.end();
  while (pos != b.v.begin() + static_cast<std::ptrdiff_t>(b.head) &&
         entry_before(at, seq, (pos - 1)->at, (pos - 1)->seq)) {
    --pos;
  }
  b.v.insert(pos, Entry{at, seq, vb, slot, std::move(cb)});

  if (vb < cursor_vb_) cursor_vb_ = vb;
  // The cache is a lower bound on every live entry even after its slot
  // dies, so beating it proves the newcomer is the global minimum. When
  // the cache is unset (after a pop left survivors) only an empty->one
  // transition may seed it; anything else waits for find_front().
  if (pool_->live == 1 ||
      (front_valid_ && entry_before(at, seq, front_at_, front_seq_))) {
    front_valid_ = true;
    front_bucket_ = vb & mask_;
    front_at_ = at;
    front_seq_ = seq;
    front_slot_ = slot;
  }

  if (pool_->live > 2 * buckets_.size()) resize(2 * buckets_.size());
  return EventHandle{pool_, slot, gen};
}

void CalendarQueue::prune_front(Bucket& b) const {
  while (!b.empty() && pool_->dead(b.front().slot)) {
    pool_->release(b.front().slot);
    b.pop_front();
  }
}

bool CalendarQueue::front_cache_valid() const {
  if (!front_valid_) return false;
  const Bucket& b = buckets_[front_bucket_];
  return !b.empty() && b.front().slot == front_slot_ &&
         !pool_->dead(front_slot_);
}

void CalendarQueue::find_front() const {
  assert(pool_->live > 0 && "find_front on empty queue");

  // Year scan: accept the first entry whose virtual bucket matches the
  // scan position. Entries below cursor_vb_ cannot exist (the cursor is
  // clamped on schedule and only advanced to popped positions), so the
  // first match is the global (at, seq) minimum.
  std::uint64_t vb = cursor_vb_;
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned, ++vb) {
    Bucket& b = buckets_[vb & mask_];
    prune_front(b);
    if (!b.empty() && b.front().vbucket == vb) {
      cursor_vb_ = vb;
      const Entry& e = b.front();
      front_valid_ = true;
      front_bucket_ = vb & mask_;
      front_at_ = e.at;
      front_seq_ = e.seq;
      front_slot_ = e.slot;
      return;
    }
  }

  // Nothing within a year of the cursor: direct search over bucket heads.
  const Entry* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    Bucket& b = buckets_[i];
    prune_front(b);
    if (b.empty()) continue;
    const Entry& e = b.front();
    if (!best || entry_before(e.at, e.seq, best->at, best->seq)) {
      best = &e;
      best_bucket = i;
    }
  }
  assert(best && "live counter out of sync with buckets");
  cursor_vb_ = best->vbucket;
  front_valid_ = true;
  front_bucket_ = best_bucket;
  front_at_ = best->at;
  front_seq_ = best->seq;
  front_slot_ = best->slot;
}

SimTime CalendarQueue::next_time() const {
  if (empty()) return kTimeNever;
  ensure_front();
  return front_at_;
}

CalendarQueue::Popped CalendarQueue::pop() {
  assert(!empty() && "pop on empty queue");
  ensure_front();

  Bucket& b = buckets_[front_bucket_];
  Entry entry = std::move(b.front());
  b.pop_front();
  // Retire the slot before running anything so stale handles report
  // !pending() and a cancel() from inside the callback is a no-op.
  pool_->release(entry.slot);
  cursor_vb_ = entry.vbucket;
  front_valid_ = false;

  if (buckets_.size() > kMinBuckets && pool_->live < buckets_.size() / 2)
    resize(buckets_.size() / 2);
  return Popped{entry.at, std::move(entry.cb)};
}

SimTime CalendarQueue::pop_and_run() {
  Popped p = pop();
  p.cb();
  return p.at;
}

void CalendarQueue::resize(std::size_t new_bucket_count) {
  // Gather the live entries in (at, seq) order; drop dead ones for good.
  std::vector<Entry> live;
  live.reserve(pool_->live);
  for (Bucket& b : buckets_) {
    for (std::size_t i = b.head; i < b.v.size(); ++i) {
      if (pool_->dead(b.v[i].slot)) {
        pool_->release(b.v[i].slot);
      } else {
        live.push_back(std::move(b.v[i]));
      }
    }
  }
  std::sort(live.begin(), live.end(), [](const Entry& a, const Entry& b) {
    return entry_before(a.at, a.seq, b.at, b.seq);
  });

  // Re-derive the bucket width from the observed spacing near the head
  // (Brown's rule of thumb: ~3x the mean gap keeps occupancy near one
  // event per bucket). Same-time bursts contribute zero gaps; fall back
  // to the full spread, then to the current width.
  if (live.size() >= 2) {
    const std::size_t sample = std::min<std::size_t>(live.size(), 25);
    double span = live[sample - 1].at - live[0].at;
    std::size_t gaps = sample - 1;
    if (span <= 0.0) {
      span = live.back().at - live.front().at;
      gaps = live.size() - 1;
    }
    if (span > 0.0) width_ = 3.0 * span / static_cast<double>(gaps);
    // Keep vbucket_of() comfortably inside 64 bits.
    const double max_at = live.back().at;
    if (max_at / width_ > 9.0e15) width_ = max_at / 9.0e15;
  }

  buckets_.assign(new_bucket_count, Bucket{});
  mask_ = new_bucket_count - 1;
  // Ascending insertion keeps every bucket sorted with plain appends.
  for (Entry& e : live) {
    e.vbucket = vbucket_of(e.at);
    buckets_[e.vbucket & mask_].v.push_back(std::move(e));
  }
  cursor_vb_ = live.empty() ? 0 : vbucket_of(live.front().at);
  front_valid_ = false;
}

std::vector<std::pair<SimTime, EventSeq>> CalendarQueue::pending_schedule()
    const {
  std::vector<std::pair<SimTime, EventSeq>> out;
  out.reserve(pool_->live);
  for (const Bucket& b : buckets_) {
    for (std::size_t i = b.head; i < b.v.size(); ++i) {
      if (!pool_->dead(b.v[i].slot)) out.emplace_back(b.v[i].at, b.v[i].seq);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CalendarQueue::save_state(snapshot::Writer& w) const {
  w.begin_section("event_queue");
  w.u64(next_seq_);
  const auto pending = pending_schedule();
  w.size(pending.size());
  for (const auto& [at, seq] : pending) {
    w.f64(at);
    w.u64(seq);
  }
  w.end_section();
}

void CalendarQueue::skip_state(snapshot::Reader& r) {
  r.begin_section("event_queue");
  (void)r.u64();
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) {
    (void)r.f64();
    (void)r.u64();
  }
  r.end_section();
}

}  // namespace dftmsn
