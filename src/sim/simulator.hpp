// The simulation clock + event loop. Owns nothing but time.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "snapshot/snapshot_io.hpp"
#include "telemetry/profiler.hpp"

namespace dftmsn {

/// Thrown out of a run_* loop when the installed abort flag is raised
/// (watchdog kill, SIGINT/SIGTERM). The clock and state are left at a
/// clean event boundary, so the caller may checkpoint before unwinding.
class RunAborted : public std::runtime_error {
 public:
  RunAborted(SimTime at, std::uint64_t events);

  SimTime at = 0.0;
  std::uint64_t events = 0;
};

/// Single-threaded discrete-event simulator. Components hold a reference
/// and schedule callbacks relative to now().
class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current simulation time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, Callback cb);

  /// Schedules `cb` at absolute time `at` (at >= now()).
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Runs events until the queue drains or the clock would pass `end`.
  /// The clock is left at min(end, last event time past end). Events at
  /// exactly `end` do fire.
  void run_until(SimTime end);

  /// Runs until the event queue is empty.
  void run_all();

  /// Runs until exactly `target` events have executed in total (i.e.
  /// events_executed() == target) or the queue drains. This is the
  /// checkpoint-replay primitive: an aborted run records its event count,
  /// and replaying to that exact count reproduces its state even when the
  /// cut fell between two events sharing a timestamp.
  void run_until_executed(std::uint64_t target);

  /// Stops a run_* loop after the current event returns.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (diagnostics/perf reporting).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  [[nodiscard]] EventQueue& queue() { return queue_; }

  /// Wall-clock profiler for event dispatch (telemetry). nullptr (the
  /// default) costs one pointer test per event; installing it never
  /// affects the simulated trajectory.
  void set_profiler(telemetry::Profiler* profiler) { profiler_ = profiler; }

  /// Observer invoked after every executed event (InvariantChecker).
  /// Runs outside the event queue so enabling it cannot perturb the
  /// event stream; the hook must not schedule or cancel events.
  void set_post_event_hook(std::function<void()> hook) {
    post_event_hook_ = std::move(hook);
  }

  // --- supervision hooks (checkpoint/watchdog layer) -------------------

  /// Installs a cooperative cancellation flag, polled between events: when
  /// it reads true, the run_* loop throws RunAborted at the next event
  /// boundary. nullptr uninstalls. The flag may be flipped from another
  /// thread (the sweep supervisor's watchdog).
  void set_abort_flag(const std::atomic<bool>* flag) { abort_flag_ = flag; }

  /// True once the installed abort flag reads true. Long-running event
  /// callbacks (e.g. the fault plan's `hang` primitive) poll this so the
  /// watchdog can cancel them mid-event.
  [[nodiscard]] bool abort_requested() const {
    return abort_flag_ && abort_flag_->load(std::memory_order_relaxed);
  }

  /// Mirror of events_executed() bumped with relaxed atomic stores, so a
  /// watchdog thread can observe event progress without data races.
  /// nullptr uninstalls.
  void set_progress_counter(std::atomic<std::uint64_t>* counter) {
    progress_ = counter;
  }

  /// Moves the clock forward to `t` without running events (t >= now()).
  /// Used after run_until_executed() to reproduce the clock position of a
  /// checkpoint written at a slice boundary past the last event.
  void advance_clock_to(SimTime t);

  // --- snapshot --------------------------------------------------------
  /// Clock, event counter and the live event schedule (times + sequence
  /// numbers; callbacks are replay-reconstructed, see snapshot_io.hpp).
  void save_state(snapshot::Writer& w) const;
  /// Restores clock and counter only (the data half of the state; the
  /// pending-event half comes back via replay).
  void load_state(snapshot::Reader& r);

 private:
  void check_abort() const;
  void after_event();

  void dispatch(EventQueue::Popped& p);

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  telemetry::Profiler* profiler_ = nullptr;
  std::function<void()> post_event_hook_;
  const std::atomic<bool>* abort_flag_ = nullptr;
  std::atomic<std::uint64_t>* progress_ = nullptr;
};

}  // namespace dftmsn
