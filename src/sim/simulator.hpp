// The simulation clock + event loop. Owns nothing but time.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace dftmsn {

/// Single-threaded discrete-event simulator. Components hold a reference
/// and schedule callbacks relative to now().
class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current simulation time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, Callback cb);

  /// Schedules `cb` at absolute time `at` (at >= now()).
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Runs events until the queue drains or the clock would pass `end`.
  /// The clock is left at min(end, last event time past end). Events at
  /// exactly `end` do fire.
  void run_until(SimTime end);

  /// Runs until the event queue is empty.
  void run_all();

  /// Stops a run_* loop after the current event returns.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (diagnostics/perf reporting).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  [[nodiscard]] EventQueue& queue() { return queue_; }

  /// Observer invoked after every executed event (InvariantChecker).
  /// Runs outside the event queue so enabling it cannot perturb the
  /// event stream; the hook must not schedule or cancel events.
  void set_post_event_hook(std::function<void()> hook) {
    post_event_hook_ = std::move(hook);
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::function<void()> post_event_hook_;
};

}  // namespace dftmsn
