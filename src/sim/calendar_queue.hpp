// O(1)-amortized calendar queue (Brown '88 / bucketed timing wheel) with
// deterministic (time, insertion-seq) total order and O(1) cancellation.
//
// Layout: a power-of-two array of buckets; an event at time `t` lives in
// bucket `vbucket(t) & mask` where `vbucket(t) = floor(t / width)` is its
// *virtual bucket* — an integer, so every ordering decision compares
// integers or (time, seq) pairs exactly and the pop sequence is a pure
// function of the schedule/cancel history, never of bucket geometry.
// Dequeue scans buckets from a cursor, accepting only entries whose
// virtual bucket matches the scan position (entries a "year" ahead wait);
// a full fruitless year falls back to a direct min search. The queue
// resizes (doubling / halving) on live-count thresholds and re-derives
// the bucket width from the observed event spacing.
//
// Cancellation: handles reference fixed slots in a pooled generation
// table instead of a per-event heap allocation. A slot is retired (its
// generation bumped) when its entry leaves the queue, so stale handles
// become inert no-ops — same semantics as the historical
// shared_ptr<bool> scheme at zero allocations per event.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

namespace detail {

/// One cancellation slot: `gen` invalidates stale handles after reuse,
/// `dead` marks a cancelled (or fired) event awaiting lazy removal.
struct CancelSlot {
  std::uint32_t gen = 0;
  std::uint8_t dead = 1;
};

/// Shared between the queue and every outstanding handle, so handles
/// stay safe to use after the queue is destroyed (kernel edge tests).
struct CancelPool {
  std::vector<CancelSlot> slots;
  std::vector<std::uint32_t> free_list;
  std::size_t live = 0;  ///< scheduled, not cancelled, not fired

  std::uint32_t alloc() {
    std::uint32_t idx;
    if (!free_list.empty()) {
      idx = free_list.back();
      free_list.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slots.size());
      slots.emplace_back();
    }
    slots[idx].dead = 0;
    ++live;
    return idx;
  }

  /// Retires a slot whose entry left the queue (fired, or cancelled and
  /// finally dropped): bumps the generation so outstanding handles go
  /// inert, then recycles the index.
  void release(std::uint32_t idx) {
    CancelSlot& s = slots[idx];
    if (!s.dead) {
      s.dead = 1;
      --live;
    }
    ++s.gen;
    free_list.push_back(idx);
  }

  [[nodiscard]] bool dead(std::uint32_t idx) const {
    return slots[idx].dead != 0;
  }
};

}  // namespace detail

class CalendarQueue;

/// Handle to a scheduled event; lets the owner cancel it before it fires.
/// Copyable; all copies refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const {
    return pool_ && pool_->slots[slot_].gen == gen_ &&
           pool_->slots[slot_].dead == 0;
  }

  /// Cancels the event; a cancelled event is silently skipped when popped.
  /// No-op on an empty, already-fired, or already-cancelled handle.
  void cancel() {
    if (!pool_) return;
    detail::CancelSlot& s = pool_->slots[slot_];
    if (s.gen == gen_ && s.dead == 0) {
      s.dead = 1;
      --pool_->live;
    }
  }

 private:
  friend class CalendarQueue;
  EventHandle(std::shared_ptr<detail::CancelPool> pool, std::uint32_t slot,
              std::uint32_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::CancelPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Calendar queue of (time, insertion-seq) ordered events. Same-time
/// events fire in insertion order, which makes runs bit-for-bit
/// reproducible; the pop sequence is identical to a binary heap's.
class CalendarQueue {
 public:
  using Callback = std::function<void()>;

  CalendarQueue();

  /// Schedules `cb` at absolute time `at` (finite, >= 0). Returns a
  /// cancellation handle.
  EventHandle schedule(SimTime at, Callback cb);

  /// True when no live (non-cancelled) event remains. O(1).
  [[nodiscard]] bool empty() const { return pool_->live == 0; }

  /// Time of the earliest live event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  SimTime pop_and_run();

  /// Pops the earliest live event without running it, so the caller can
  /// advance its clock first. Precondition: !empty().
  struct Popped {
    SimTime at;
    Callback cb;
  };
  Popped pop();

  /// Number of live events currently queued. O(1).
  [[nodiscard]] std::size_t size() const { return pool_->live; }

  /// Total events ever scheduled (diagnostic counter).
  [[nodiscard]] EventSeq scheduled_count() const { return next_seq_; }

  /// (time, sequence) of every live event, ascending — the schedulable
  /// identity of the queue without its (unserializable) callbacks.
  [[nodiscard]] std::vector<std::pair<SimTime, EventSeq>> pending_schedule()
      const;

  /// Snapshot: scheduled_count plus the pending (time, seq) schedule.
  /// Save-only: callbacks cannot be re-materialized from bytes, so resume
  /// reconstructs the queue by deterministic replay and these bytes act
  /// as the verification oracle (see snapshot_io.hpp). Byte-compatible
  /// with the historical binary-heap encoding.
  void save_state(snapshot::Writer& w) const;

  /// Consumes (and discards) a saved queue state from `r`, keeping the
  /// read cursor aligned for callers restoring surrounding state.
  static void skip_state(snapshot::Reader& r);

 private:
  struct Entry {
    SimTime at;
    EventSeq seq;
    std::uint64_t vbucket;  ///< floor(at / width_) at insertion time
    std::uint32_t slot;     ///< cancellation-pool slot
    Callback cb;
  };

  /// One bucket: entries sorted ascending by (at, seq), with a consumed
  /// prefix [0, head) so front removal is O(1) amortized even under
  /// large same-timestamp bursts.
  struct Bucket {
    std::vector<Entry> v;
    std::size_t head = 0;

    [[nodiscard]] bool empty() const { return head == v.size(); }
    [[nodiscard]] Entry& front() { return v[head]; }
    [[nodiscard]] const Entry& front() const { return v[head]; }
    void pop_front() {
      ++head;
      if (head == v.size()) {
        v.clear();
        head = 0;
      } else if (head >= 64 && head * 2 >= v.size()) {
        v.erase(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  [[nodiscard]] std::uint64_t vbucket_of(SimTime at) const {
    return static_cast<std::uint64_t>(at / width_);
  }

  /// Drops dead entries from the front of `b`, retiring their slots.
  void prune_front(Bucket& b) const;

  /// Locates the earliest live entry and caches it in front_*. O(1)
  /// amortized; precondition: !empty().
  void find_front() const;

  /// True while the cached front still names the live head of its bucket.
  [[nodiscard]] bool front_cache_valid() const;

  /// Ensures the front cache is valid. Precondition: !empty().
  void ensure_front() const {
    if (!front_cache_valid()) find_front();
  }

  void resize(std::size_t new_bucket_count);

  // Peeks (empty/next_time) prune lazily-cancelled entries and advance
  // the scan cursor, so the structural state is mutable behind the
  // logically-const read API — same pattern as the old heap's
  // skip_cancelled().
  std::shared_ptr<detail::CancelPool> pool_;
  mutable std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;           ///< buckets_.size() - 1 (power of two)
  double width_ = 1.0;             ///< bucket span in simulated seconds
  mutable std::uint64_t cursor_vb_ = 0;  ///< no live entry sits below this
  EventSeq next_seq_ = 0;

  // Front cache: the located minimum. While set, (front_at_, front_seq_)
  // is a lower bound on every live entry — even after the cached slot is
  // cancelled — which is what lets schedule() keep it current in O(1).
  mutable bool front_valid_ = false;
  mutable std::size_t front_bucket_ = 0;
  mutable SimTime front_at_ = 0.0;
  mutable EventSeq front_seq_ = 0;
  mutable std::uint32_t front_slot_ = 0;
};

}  // namespace dftmsn
