// Deterministic priority queue of timed events with cancellation support.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
/// Copyable; all copies refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const { return state_ && !*state_; }

  /// Cancels the event; a cancelled event is silently skipped when popped.
  /// No-op on an empty or already-fired handle.
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}

  std::shared_ptr<bool> state_;  ///< true once cancelled or fired
};

/// Min-heap of (time, insertion-seq) ordered events. Same-time events fire
/// in insertion order, which makes runs bit-for-bit reproducible.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. Returns a cancellation handle.
  EventHandle schedule(SimTime at, Callback cb);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  SimTime pop_and_run();

  /// Pops the earliest live event without running it, so the caller can
  /// advance its clock first. Precondition: !empty().
  struct Popped {
    SimTime at;
    Callback cb;
  };
  Popped pop();

  /// Number of live events currently queued (O(n): test/diagnostic use).
  [[nodiscard]] std::size_t size() const;

  /// Total events ever scheduled (diagnostic counter).
  [[nodiscard]] EventSeq scheduled_count() const { return next_seq_; }

  /// (time, sequence) of every live event, ascending — the schedulable
  /// identity of the queue without its (unserializable) callbacks.
  [[nodiscard]] std::vector<std::pair<SimTime, EventSeq>> pending_schedule()
      const;

  /// Snapshot: scheduled_count plus the pending (time, seq) schedule.
  /// Save-only: callbacks cannot be re-materialized from bytes, so resume
  /// reconstructs the queue by deterministic replay and these bytes act
  /// as the verification oracle (see snapshot_io.hpp).
  void save_state(snapshot::Writer& w) const;

  /// Consumes (and discards) a saved queue state from `r`, keeping the
  /// read cursor aligned for callers restoring surrounding state.
  static void skip_state(snapshot::Reader& r);

 private:
  struct Entry {
    SimTime at;
    EventSeq seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the top of the heap.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  EventSeq next_seq_ = 0;
};

}  // namespace dftmsn
