// Deterministic priority queue of timed events with cancellation support.
//
// Historically a binary heap; now an O(1)-amortized calendar queue with
// the same API, the same (time, insertion-seq) total order, and the same
// snapshot byte format. The kernel-facing name stays EventQueue; see
// sim/calendar_queue.hpp for the structure and docs/performance.md for
// the layout and the BENCH_scheduler.json trajectory guarding it.
#pragma once

#include "sim/calendar_queue.hpp"

namespace dftmsn {

using EventQueue = CalendarQueue;

}  // namespace dftmsn
