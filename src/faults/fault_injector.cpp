#include "faults/fault_injector.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace dftmsn {

FaultInjector::FaultInjector(Simulator& sim, Channel& channel, FaultPlan plan,
                             std::vector<std::unique_ptr<SensorNode>>& sensors,
                             std::vector<std::unique_ptr<SinkNode>>& sinks,
                             RandomStream rng, int attempt)
    : sim_(sim),
      plan_(std::move(plan)),
      sensors_(sensors),
      sinks_(sinks),
      rng_(rng),
      attempt_(attempt) {
  const NodeId total = static_cast<NodeId>(sensors_.size() + sinks_.size());
  bool any_loss = false;
  for (const FaultEvent& e : plan_.events) {
    if (!e.targets_fraction() && e.node >= total)
      throw std::invalid_argument("fault plan: node " +
                                  std::to_string(e.node) +
                                  " does not exist (population " +
                                  std::to_string(total) + ")");
    if (e.kind == FaultKind::kPressure && !e.targets_fraction() &&
        is_sink(e.node))
      throw std::invalid_argument(
          "fault plan: pressure targets must be sensors (node " +
          std::to_string(e.node) + " is a sink)");
    if (e.kind == FaultKind::kLoss) any_loss = true;
  }

  // The hook only draws randomness while a burst is active, so merely
  // installing it never perturbs a run.
  if (any_loss)
    channel.set_corruption_hook(
        [this](NodeId, NodeId) { return corrupts_reception(); });

  for (const FaultEvent& e : plan_.events)
    sim_.schedule_at(e.at, [this, &e] { apply(e); });
}

std::vector<NodeId> FaultInjector::resolve_targets(const FaultEvent& e) {
  if (!e.targets_fraction()) return {e.node};

  // frac= covers sensors only; sinks must be hit by explicit node=.
  const int n = static_cast<int>(sensors_.size());
  const int k = std::clamp(
      static_cast<int>(std::llround(e.frac * static_cast<double>(n))), 1, n);
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] =
      static_cast<NodeId>(i);
  // Partial Fisher-Yates: the first k slots end up a uniform k-subset.
  for (int j = 0; j < k; ++j)
    std::swap(ids[static_cast<std::size_t>(j)],
              ids[static_cast<std::size_t>(rng_.uniform_int(j, n - 1))]);
  ids.resize(static_cast<std::size_t>(k));
  return ids;
}

bool FaultInjector::take_down(NodeId id, bool preserve_state) {
  if (is_sink(id)) return sinks_.at(id - first_sink_id())->fail();
  return sensors_.at(id)->fail(preserve_state);
}

bool FaultInjector::bring_back(NodeId id) {
  if (is_sink(id)) return sinks_.at(id - first_sink_id())->restore();
  return sensors_.at(id)->restore();
}

void FaultInjector::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kCrash:
    case FaultKind::kOutage: {
      const bool preserve = e.kind == FaultKind::kOutage;
      std::vector<NodeId> downed;
      for (NodeId id : resolve_targets(e))
        if (take_down(id, preserve)) downed.push_back(id);
      (preserve ? counters_.outages : counters_.crashes) += downed.size();
      if (e.duration > 0 && !downed.empty())
        sim_.schedule_in(e.duration, [this, downed = std::move(downed)] {
          for (NodeId id : downed)
            if (bring_back(id)) ++counters_.recoveries;
        });
      break;
    }
    case FaultKind::kRecover:
      for (NodeId id : resolve_targets(e))
        if (bring_back(id)) ++counters_.recoveries;
      break;
    case FaultKind::kLoss:
      bursts_.push_back({sim_.now() + e.duration, e.prob});
      ++counters_.loss_bursts;
      break;
    case FaultKind::kPressure: {
      std::vector<NodeId> clamped = resolve_targets(e);
      for (NodeId id : clamped)
        counters_.pressure_evictions +=
            sensors_.at(id)->apply_buffer_pressure(e.capacity);
      ++counters_.pressure_events;
      // Overlapping pressure windows are not stacked: the first window to
      // end restores the configured capacity for its targets.
      sim_.schedule_in(e.duration, [this, clamped = std::move(clamped)] {
        for (NodeId id : clamped) sensors_.at(id)->release_buffer_pressure();
      });
      break;
    }
    case FaultKind::kHang: {
      if (e.attempts > 0 && attempt_ >= e.attempts) break;  // gated out
      ++counters_.hangs;
      // Stall inside the event, polling the simulator's abort flag so a
      // supervisor watchdog can reclaim the run. An optional 'for=' caps
      // the stall in *wall-clock* seconds (unattended runs self-heal).
      const auto started = std::chrono::steady_clock::now();
      while (!sim_.abort_requested()) {
        if (e.duration > 0) {
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - started;
          if (elapsed.count() >= e.duration) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      break;
    }
    case FaultKind::kDie:
      if (e.attempts > 0 && attempt_ >= e.attempts) break;  // gated out
      throw SimulatedCrash(sim_.now());
    case FaultKind::kSegv:
      if (e.attempts > 0 && attempt_ >= e.attempts) break;  // gated out
      // A real signal, not an exception: only a process boundary
      // (--isolate=process) survives this. In-process the run dies.
      std::raise(SIGSEGV);
      break;
    case FaultKind::kAbort:
      if (e.attempts > 0 && attempt_ >= e.attempts) break;  // gated out
      std::abort();
  }
}

bool FaultInjector::corrupts_reception() {
  const SimTime now = sim_.now();
  bursts_.erase(std::remove_if(bursts_.begin(), bursts_.end(),
                               [now](const LossBurst& b) {
                                 return b.until <= now;
                               }),
                bursts_.end());
  if (bursts_.empty()) return false;
  double survive = 1.0;
  for (const LossBurst& b : bursts_) survive *= 1.0 - b.prob;
  return rng_.uniform01() < 1.0 - survive;
}

void FaultInjector::save_state(snapshot::Writer& w) const {
  w.begin_section("fault_injector");
  w.u64(counters_.crashes);
  w.u64(counters_.outages);
  w.u64(counters_.recoveries);
  w.u64(counters_.loss_bursts);
  w.u64(counters_.pressure_events);
  w.u64(counters_.pressure_evictions);
  // counters_.hangs is deliberately NOT serialized: attempts=-gated hang
  // events fire on early attempts only, so the count is attempt-dependent
  // and would break the resume byte-compare for state that does not
  // influence the simulation trajectory.
  w.size(bursts_.size());
  for (const LossBurst& b : bursts_) {
    w.f64(b.until);
    w.f64(b.prob);
  }
  rng_.save_state(w);
  w.end_section();
}

}  // namespace dftmsn
