// Runtime verification of the paper's protocol invariants. Installed as
// the Simulator's post-event hook: it runs *outside* the event queue and
// never schedules, cancels or draws randomness, so enabling it cannot
// change a run's event stream — summaries stay bit-identical with the
// checker on or off.
//
// Invariants checked (see docs/fault_injection.md for derivations):
//   I1  event timestamps are non-decreasing          (every event)
//   I2  ξ_i = strategy.local_metric() ∈ [0, 1]        (full sweeps)
//   I3  ξ_i EWMA is monotone non-increasing between acknowledged data
//       transmissions (Eq. 1: only on_transmission_complete may raise ξ;
//       witnessed via CrossLayerMac::Stats::data_tx_ok)
//   I4  every queued copy's FTD F_i^M ∈ [0, 1]
//   I5  no queued copy carries FTD >= 1 — the enforceable form of "no
//       message is both delivered and still queued": a copy that reaches
//       FTD 1 is by Eq. 3 fully replicated/delivered and must have been
//       dropped as kDelivered (assumes α < 1; replication legitimately
//       keeps sub-threshold copies of already-delivered messages queued,
//       so the naive global phrasing is NOT an invariant)
//   I6  the data queue respects its capacity
//   I7  under the kFtdSorted discipline the queue is ordered by FTD
//
// A full sweep runs every `stride` events; I1 is checked on every event.
// The first violation throws InvariantViolation carrying the simulation
// time, node and (when applicable) message id.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "node/sensor_node.hpp"
#include "sim/simulator.hpp"

namespace dftmsn {

class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(const std::string& what, SimTime at, NodeId node,
                     MessageId message);

  SimTime at = 0.0;
  NodeId node = kInvalidNode;
  MessageId message = 0;  ///< 0 when no single message is implicated
};

class InvariantChecker {
 public:
  /// `stride` >= 1: full sweeps run on every stride-th executed event.
  InvariantChecker(Simulator& sim,
                   const std::vector<std::unique_ptr<SensorNode>>& sensors,
                   bool ftd_sorted_queue, int stride);

  /// Post-event hook body. Throws InvariantViolation on the first breach.
  void on_event();

  /// One full sweep over every sensor, unconditionally (tests; end of run).
  void check_now();

  [[nodiscard]] std::uint64_t sweeps_run() const { return sweeps_; }

 private:
  void check_sensor(const SensorNode& node, std::size_t index);
  [[noreturn]] void violate(const std::string& what, NodeId node,
                            MessageId message) const;

  Simulator& sim_;
  const std::vector<std::unique_ptr<SensorNode>>& sensors_;
  bool ftd_sorted_queue_;
  std::uint64_t stride_;
  std::uint64_t events_seen_ = 0;
  std::uint64_t sweeps_ = 0;
  SimTime last_event_time_ = 0.0;

  /// ξ observed at the last sweep, with the data_tx_ok count that
  /// justified it (I3: ξ may only rise when data_tx_ok rose).
  struct XiBaseline {
    double xi = 0.0;
    std::uint64_t data_tx_ok = 0;
  };
  std::vector<XiBaseline> baseline_;
};

}  // namespace dftmsn
