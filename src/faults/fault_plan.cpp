#include "faults/fault_plan.hpp"

#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>

namespace dftmsn {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void fail(const std::string& event, const std::string& why) {
  throw std::invalid_argument("fault plan: " + why + " in '" + event + "'");
}

std::optional<FaultKind> parse_kind(const std::string& name) {
  if (name == "crash") return FaultKind::kCrash;
  if (name == "recover") return FaultKind::kRecover;
  if (name == "outage") return FaultKind::kOutage;
  if (name == "loss") return FaultKind::kLoss;
  if (name == "pressure") return FaultKind::kPressure;
  if (name == "hang") return FaultKind::kHang;
  if (name == "die") return FaultKind::kDie;
  if (name == "segv") return FaultKind::kSegv;
  if (name == "abort") return FaultKind::kAbort;
  return std::nullopt;
}

double parse_number(const std::string& event, const std::string& v) {
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    fail(event, "bad number '" + v + "'");
  }
  if (used != v.size()) fail(event, "bad number '" + v + "'");
  // NaN compares false against every range check below, so it would sail
  // through "frac <= 0 || frac > 1" silently — reject non-finite here.
  if (!std::isfinite(out)) fail(event, "non-finite number '" + v + "'");
  return out;
}

FaultEvent parse_event(const std::string& text) {
  const auto at_pos = text.find('@');
  if (at_pos == std::string::npos) fail(text, "missing '@time'");
  const auto colon = text.find(':', at_pos);

  FaultEvent e;
  const std::string kind_name = trim(text.substr(0, at_pos));
  const auto kind = parse_kind(kind_name);
  if (!kind) fail(text, "unknown fault kind '" + kind_name + "'");
  e.kind = *kind;

  const bool argless_ok =
      e.kind == FaultKind::kHang || e.kind == FaultKind::kDie ||
      e.kind == FaultKind::kSegv || e.kind == FaultKind::kAbort;
  if (colon == std::string::npos && !argless_ok) fail(text, "missing ':args'");

  const std::string time_text =
      colon == std::string::npos
          ? trim(text.substr(at_pos + 1))
          : trim(text.substr(at_pos + 1, colon - at_pos - 1));
  e.at = parse_number(text, time_text);
  if (e.at < 0) fail(text, "negative time");

  bool have_target = false;
  std::set<std::string> seen_keys;
  std::string args = colon == std::string::npos ? "" : text.substr(colon + 1);
  std::size_t start = 0;
  while (start <= args.size()) {
    const auto comma = args.find(',', start);
    const std::string arg =
        trim(args.substr(start, comma == std::string::npos ? std::string::npos
                                                           : comma - start));
    start = comma == std::string::npos ? args.size() + 1 : comma + 1;
    if (arg.empty()) continue;

    const auto eq = arg.find('=');
    if (eq == std::string::npos) fail(text, "expected key=value, got '" + arg + "'");
    const std::string key = trim(arg.substr(0, eq));
    const std::string value = trim(arg.substr(eq + 1));
    if (!seen_keys.insert(key).second)
      fail(text, "duplicate argument '" + key + "'");

    if (key == "node") {
      const double id = parse_number(text, value);
      if (id < 0 || id != static_cast<double>(static_cast<NodeId>(id)))
        fail(text, "bad node id '" + value + "'");
      e.node = static_cast<NodeId>(id);
      have_target = true;
    } else if (key == "frac") {
      e.frac = parse_number(text, value);
      if (e.frac <= 0.0 || e.frac > 1.0) fail(text, "frac must lie in (0,1]");
      have_target = true;
    } else if (key == "for") {
      e.duration = parse_number(text, value);
      if (e.duration <= 0.0) fail(text, "'for' duration must be positive");
    } else if (key == "prob") {
      e.prob = parse_number(text, value);
      if (e.prob <= 0.0 || e.prob > 1.0) fail(text, "prob must lie in (0,1]");
    } else if (key == "capacity") {
      const double cap = parse_number(text, value);
      if (cap < 1.0) fail(text, "capacity must be >= 1");
      e.capacity = static_cast<std::size_t>(cap);
    } else if (key == "attempts") {
      const double k = parse_number(text, value);
      if (k < 1.0 || k != static_cast<double>(static_cast<int>(k)))
        fail(text, "bad attempts count '" + value + "'");
      e.attempts = static_cast<int>(k);
    } else {
      fail(text, "unknown argument '" + key + "'");
    }
  }

  // Cross-argument requirements per kind.
  switch (e.kind) {
    case FaultKind::kCrash:
      if (!have_target) fail(text, "crash needs node= or frac=");
      break;
    case FaultKind::kRecover:
      if (!have_target) fail(text, "recover needs node= or frac=");
      if (e.duration > 0) fail(text, "recover takes no 'for='");
      break;
    case FaultKind::kOutage:
      if (!have_target) fail(text, "outage needs node= or frac=");
      if (e.duration <= 0) fail(text, "outage needs for=DURATION");
      break;
    case FaultKind::kLoss:
      if (have_target) fail(text, "loss is channel-wide (no node=/frac=)");
      if (e.prob <= 0) fail(text, "loss needs prob=P");
      if (e.duration <= 0) fail(text, "loss needs for=DURATION");
      break;
    case FaultKind::kPressure:
      if (!have_target) fail(text, "pressure needs node= or frac=");
      if (e.capacity == 0) fail(text, "pressure needs capacity=N");
      if (e.duration <= 0) fail(text, "pressure needs for=DURATION");
      break;
    case FaultKind::kHang:
      if (have_target) fail(text, "hang is run-wide (no node=/frac=)");
      break;
    case FaultKind::kDie:
      if (have_target) fail(text, "die is run-wide (no node=/frac=)");
      if (e.duration > 0) fail(text, "die takes no 'for='");
      break;
    case FaultKind::kSegv:
      if (have_target) fail(text, "segv is run-wide (no node=/frac=)");
      if (e.duration > 0) fail(text, "segv takes no 'for='");
      break;
    case FaultKind::kAbort:
      if (have_target) fail(text, "abort is run-wide (no node=/frac=)");
      if (e.duration > 0) fail(text, "abort takes no 'for='");
      break;
  }
  if (e.attempts > 0 && e.kind != FaultKind::kHang &&
      e.kind != FaultKind::kDie && e.kind != FaultKind::kSegv &&
      e.kind != FaultKind::kAbort)
    fail(text, "attempts= only applies to hang/die/segv/abort");
  if (e.node != kInvalidNode && e.frac > 0.0)
    fail(text, "node= and frac= are mutually exclusive");
  return e;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kOutage: return "outage";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kPressure: return "pressure";
    case FaultKind::kHang: return "hang";
    case FaultKind::kDie: return "die";
    case FaultKind::kSegv: return "segv";
    case FaultKind::kAbort: return "abort";
  }
  return "?";
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto semi = spec.find(';', start);
    const std::string event =
        trim(spec.substr(start, semi == std::string::npos ? std::string::npos
                                                          : semi - start));
    start = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (event.empty()) continue;
    plan.events.push_back(parse_event(event));
  }
  return plan;
}

}  // namespace dftmsn
