#include "faults/invariant_checker.hpp"

#include <sstream>

namespace dftmsn {
namespace {

// Slack for I3: Eq. 1's decay multiplies by (1-α) exactly, but ξ travels
// through frames as a double and comparisons at the baseline boundary
// should not trip on representation noise.
constexpr double kEps = 1e-12;

std::string format_violation(const std::string& what, SimTime at, NodeId node,
                             MessageId message) {
  std::ostringstream os;
  os << "invariant violated at t=" << at;
  if (node != kInvalidNode) os << " node=" << node;
  if (message != 0) os << " msg=" << message;
  os << ": " << what;
  return os.str();
}

}  // namespace

InvariantViolation::InvariantViolation(const std::string& what, SimTime at_,
                                       NodeId node_, MessageId message_)
    : std::runtime_error(format_violation(what, at_, node_, message_)),
      at(at_),
      node(node_),
      message(message_) {}

InvariantChecker::InvariantChecker(
    Simulator& sim, const std::vector<std::unique_ptr<SensorNode>>& sensors,
    bool ftd_sorted_queue, int stride)
    : sim_(sim),
      sensors_(sensors),
      ftd_sorted_queue_(ftd_sorted_queue),
      stride_(stride < 1 ? 1 : static_cast<std::uint64_t>(stride)),
      baseline_(sensors.size()) {
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    baseline_[i].xi = sensors_[i]->mac().strategy().local_metric();
    baseline_[i].data_tx_ok = sensors_[i]->mac().stats().data_tx_ok;
  }
}

void InvariantChecker::violate(const std::string& what, NodeId node,
                               MessageId message) const {
  throw InvariantViolation(what, sim_.now(), node, message);
}

void InvariantChecker::on_event() {
  // I1 — cheap enough to verify on every single event.
  const SimTime now = sim_.now();
  if (now < last_event_time_)
    violate("event clock ran backwards (" + std::to_string(now) + " < " +
                std::to_string(last_event_time_) + ")",
            kInvalidNode, 0);
  last_event_time_ = now;

  if (++events_seen_ % stride_ == 0) check_now();
}

void InvariantChecker::check_now() {
  ++sweeps_;
  for (std::size_t i = 0; i < sensors_.size(); ++i)
    check_sensor(*sensors_[i], i);
}

void InvariantChecker::check_sensor(const SensorNode& node,
                                    std::size_t index) {
  const NodeId id = node.id();

  // I2 — the advertised metric stays a probability.
  const double xi = node.mac().strategy().local_metric();
  if (!(xi >= 0.0 && xi <= 1.0))
    violate("ξ = " + std::to_string(xi) + " outside [0,1]", id, 0);

  // I3 — ξ may only rise on an acknowledged data transmission.
  XiBaseline& base = baseline_[index];
  const std::uint64_t tx_ok = node.mac().stats().data_tx_ok;
  if (tx_ok == base.data_tx_ok && xi > base.xi + kEps)
    violate("ξ rose " + std::to_string(base.xi) + " -> " +
                std::to_string(xi) + " without an acknowledged transmission",
            id, 0);
  base.xi = xi;
  base.data_tx_ok = tx_ok;

  // I6 — occupancy within capacity.
  const FtdQueue& queue = node.queue();
  if (queue.size() > queue.capacity())
    violate("queue holds " + std::to_string(queue.size()) + " > capacity " +
                std::to_string(queue.capacity()),
            id, 0);

  double prev_ftd = -1.0;
  for (const QueuedMessage& qm : queue.items()) {
    // I4 — FTD stays a probability.
    if (!(qm.ftd >= 0.0 && qm.ftd <= 1.0))
      violate("queued FTD " + std::to_string(qm.ftd) + " outside [0,1]", id,
              qm.msg.id);
    // I5 — a fully-delivered copy must not linger in a buffer.
    if (qm.ftd >= 1.0)
      violate("delivered copy (FTD >= 1) still queued", id, qm.msg.id);
    // I7 — FTD-sorted discipline really is sorted, head = most important.
    if (ftd_sorted_queue_ && qm.ftd < prev_ftd - kEps)
      violate("queue out of FTD order (" + std::to_string(qm.ftd) +
                  " after " + std::to_string(prev_ftd) + ")",
              id, qm.msg.id);
    prev_ftd = qm.ftd;
  }
}

}  // namespace dftmsn
