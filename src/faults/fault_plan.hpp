// Deterministic, seed-driven fault schedules. A FaultPlan is a list of
// timed fault events (node crash/recover, transient radio outage, frame
// corruption bursts, buffer-pressure windows) parsed from a compact spec
// string, so every fault scenario is reproducible from (config, seed)
// alone and composes with the parallel experiment runner.
//
// Spec grammar (see docs/fault_injection.md):
//   plan   := event (';' event)*
//   event  := kind '@' time ':' arg (',' arg)*
//   arg    := key '=' value
//
//   crash@T:node=ID            crash one node (sensor or sink) at T
//   crash@T:frac=F[,for=D]     crash a deterministic fraction F of the
//                              sensors at T; 'for=D' recovers them at T+D
//   recover@T:node=ID          bring a crashed node back at T
//   outage@T:node=ID,for=D     radio down for D seconds (queue/traffic kept)
//   outage@T:frac=F,for=D      same, for a fraction of the sensors
//   loss@T:prob=P,for=D        corrupt each otherwise-clean reception with
//                              probability P during [T, T+D)
//   pressure@T:frac=F,capacity=N,for=D
//                              clamp the data-queue capacity of the chosen
//                              sensors to N slots during [T, T+D)
//   hang@T[:attempts=K][,for=D]
//                              the run stops making progress at T (the
//                              event spins until aborted, or for D wall-
//                              clock seconds) — exercises the supervisor
//                              watchdog. attempts=K fires only on the
//                              first K attempts of a supervised run.
//   die@T[:attempts=K]         the run aborts with a SimulatedCrash at T —
//                              exercises supervisor retry/quarantine.
//   segv@T[:attempts=K]        the process raises a real SIGSEGV at T —
//                              fatal in-process; survivable only under
//                              --isolate=process (crash containment drill).
//   abort@T[:attempts=K]       the process calls std::abort() (SIGABRT)
//                              at T — same containment drill via the
//                              abort path.
//
// Every argument key may appear at most once per event; duplicate keys,
// non-finite numbers and out-of-range values are rejected with an error
// naming the offending token.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace dftmsn {

enum class FaultKind {
  kCrash,     ///< node dies: radio off, timers dead, queue wiped, source muted
  kRecover,   ///< crashed node rejoins with an empty queue
  kOutage,    ///< transient radio outage; queue and traffic source survive
  kLoss,      ///< channel-wide frame corruption burst
  kPressure,  ///< queue capacity clamped (forces overflow evictions)
  kHang,      ///< run stops making progress (watchdog drill)
  kDie,       ///< run aborts with SimulatedCrash (retry/quarantine drill)
  kSegv,      ///< process raises SIGSEGV (process-isolation drill)
  kAbort,     ///< process calls std::abort (process-isolation drill)
};

const char* fault_kind_name(FaultKind k);

/// One scheduled fault. Target is either an explicit node id or a sensor
/// fraction (drawn deterministically from the world's "faults" substream).
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  SimTime at = 0.0;
  NodeId node = kInvalidNode;  ///< explicit target; kInvalidNode = use frac
  double frac = 0.0;           ///< fraction of sensors in (0,1]
  SimTime duration = 0.0;      ///< 'for=' window; 0 = permanent (crash only)
  double prob = 0.0;           ///< corruption probability (kLoss)
  std::size_t capacity = 0;    ///< clamped queue capacity (kPressure)
  int attempts = 0;            ///< kHang/kDie: fire on first K attempts (0 = always)

  [[nodiscard]] bool targets_fraction() const { return node == kInvalidNode; }
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Parses a plan spec. Empty spec yields an empty plan. Throws
/// std::invalid_argument with the offending event text on any malformed
/// kind, time, argument, or out-of-range value.
FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace dftmsn
