// Executes a FaultPlan against a live World through the ordinary event
// queue. Every fault fires as a scheduled simulation event, and every
// random choice (which sensors a frac= target hits, which receptions a
// loss burst corrupts) comes from the world's seeded "faults" substream —
// so the entire fault schedule is a pure function of (config, seed) and
// replays bit-identically under any --jobs value.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include <stdexcept>
#include <string>

#include "faults/fault_plan.hpp"
#include "node/sensor_node.hpp"
#include "node/sink_node.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

/// Thrown by a `die@T` fault event: a deliberate, deterministic stand-in
/// for a real mid-run process crash. The supervisor treats it exactly
/// like any other replication failure (retry, then quarantine).
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(SimTime at)
      : std::runtime_error("simulated crash (die fault) at t=" +
                           std::to_string(at)),
        at(at) {}
  SimTime at;
};

class FaultInjector {
 public:
  /// What the injector actually did (run diagnostics; deterministic).
  struct Counters {
    std::uint64_t crashes = 0;         ///< nodes taken down hard
    std::uint64_t outages = 0;         ///< nodes taken down transiently
    std::uint64_t recoveries = 0;      ///< nodes brought back
    std::uint64_t loss_bursts = 0;     ///< corruption windows opened
    std::uint64_t pressure_events = 0; ///< buffer-pressure windows opened
    std::uint64_t pressure_evictions = 0;  ///< copies evicted by clamps
    std::uint64_t hangs = 0;           ///< hang events that actually stalled
  };

  /// Validates the plan against the population (explicit node ids must
  /// exist; pressure targets must be sensors) and schedules every fault
  /// event. Call before the simulation starts running.
  ///
  /// `attempt` is the zero-based supervised-run attempt number: hang/die
  /// events carrying `attempts=K` fire only while attempt < K, so a
  /// retried run sails past the fault it crashed on. The gated event is
  /// still scheduled (same event sequence numbers) but no-ops at fire
  /// time without drawing randomness, keeping the pre-fault trajectory
  /// bit-identical across attempts.
  FaultInjector(Simulator& sim, Channel& channel, FaultPlan plan,
                std::vector<std::unique_ptr<SensorNode>>& sensors,
                std::vector<std::unique_ptr<SinkNode>>& sinks,
                RandomStream rng, int attempt = 0);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Snapshot: counters, active loss bursts and the faults rng.
  /// Save-only — scheduled fault events are restored by replay.
  void save_state(snapshot::Writer& w) const;

 private:
  void apply(const FaultEvent& e);
  /// Sensors hit by a frac= target: a deterministic partial shuffle of
  /// the sensor ids, drawn from the faults substream at fire time.
  std::vector<NodeId> resolve_targets(const FaultEvent& e);
  bool take_down(NodeId id, bool preserve_state);
  bool bring_back(NodeId id);
  bool corrupts_reception();

  [[nodiscard]] NodeId first_sink_id() const {
    return static_cast<NodeId>(sensors_.size());
  }
  [[nodiscard]] bool is_sink(NodeId id) const { return id >= first_sink_id(); }

  Simulator& sim_;
  FaultPlan plan_;
  std::vector<std::unique_ptr<SensorNode>>& sensors_;
  std::vector<std::unique_ptr<SinkNode>>& sinks_;
  RandomStream rng_;
  int attempt_ = 0;
  Counters counters_;

  struct LossBurst {
    SimTime until = 0.0;
    double prob = 0.0;
  };
  std::vector<LossBurst> bursts_;  ///< active corruption windows
};

}  // namespace dftmsn
