// Wearable sensor node: radio + FTD queue + cross-layer MAC + Poisson
// traffic source, wired together for one protocol variant.
#pragma once

#include <memory>

#include "common/config.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "protocol/crosslayer_mac.hpp"
#include "protocol/protocol_factory.hpp"
#include "sim/random.hpp"
#include "stats/metrics.hpp"
#include "traffic/poisson_source.hpp"

namespace dftmsn {

class SensorNode {
 public:
  /// Builds the full node and attaches it to `channel` under id `id`.
  SensorNode(NodeId id, Simulator& sim, Channel& channel,
             const EnergyModel& energy, const Config& config,
             ProtocolKind kind, NodeId first_sink_id, Metrics& metrics,
             MessageIdAllocator& ids, const RandomSource& rngs);

  /// Starts the MAC working cycle and the traffic source. Call once.
  void start();

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Radio& radio() { return radio_; }
  [[nodiscard]] const Radio& radio() const { return radio_; }
  [[nodiscard]] CrossLayerMac& mac() { return *mac_; }
  [[nodiscard]] const CrossLayerMac& mac() const { return *mac_; }
  [[nodiscard]] const FtdQueue& queue() const { return queue_; }

 private:
  NodeId id_;
  Metrics& metrics_;
  Radio radio_;
  FtdQueue queue_;
  std::unique_ptr<CrossLayerMac> mac_;
  std::unique_ptr<PoissonSource> source_;
};

}  // namespace dftmsn
