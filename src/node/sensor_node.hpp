// Wearable sensor node: radio + FTD queue + cross-layer MAC + Poisson
// traffic source, wired together for one protocol variant.
#pragma once

#include <memory>

#include "common/config.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "protocol/crosslayer_mac.hpp"
#include "protocol/protocol_factory.hpp"
#include "sim/random.hpp"
#include "stats/metrics.hpp"
#include "traffic/poisson_source.hpp"

namespace dftmsn {

class SensorNode {
 public:
  /// Builds the full node and attaches it to `channel` under id `id`.
  SensorNode(NodeId id, Simulator& sim, Channel& channel,
             const EnergyModel& energy, const Config& config,
             ProtocolKind kind, NodeId first_sink_id, Metrics& metrics,
             MessageIdAllocator& ids, const RandomSource& rngs);

  /// Starts the MAC working cycle and the traffic source. Call once.
  void start();

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Radio& radio() { return radio_; }
  [[nodiscard]] const Radio& radio() const { return radio_; }
  [[nodiscard]] CrossLayerMac& mac() { return *mac_; }
  [[nodiscard]] const CrossLayerMac& mac() const { return *mac_; }
  [[nodiscard]] const FtdQueue& queue() const { return queue_; }

  /// Mutable queue access for the FaultInjector (buffer pressure) and for
  /// tests that deliberately corrupt state (InvariantChecker proofs).
  [[nodiscard]] FtdQueue& mutable_queue() { return queue_; }

  // --- fault injection (FaultInjector) --------------------------------
  /// Takes the node down. `preserve_state` distinguishes a transient
  /// radio outage (queue and traffic source keep running; buffered data
  /// survives) from a hard crash (queue wiped as kNodeFailure drops,
  /// sensing muted). Returns false if the node was already down.
  bool fail(bool preserve_state);

  /// Brings a downed node back: radio up, MAC restarted, sensing resumed
  /// (if it had been muted). Returns false if the node was not down.
  bool restore();

  [[nodiscard]] bool down() const { return mac_->dead(); }

  /// Clamps the data queue to `capacity` slots; evictions are booked as
  /// overflow drops. Returns the number evicted.
  std::size_t apply_buffer_pressure(std::size_t capacity);

  /// Restores the configured queue capacity.
  void release_buffer_pressure();

  /// Snapshot of the whole node (radio, MAC+queue+strategy, source).
  /// Save-only: resume works by deterministic replay (snapshot_io.hpp).
  void save_state(snapshot::Writer& w) const;

 private:
  NodeId id_;
  Metrics& metrics_;
  std::size_t configured_capacity_;
  Radio radio_;
  FtdQueue queue_;
  std::unique_ptr<CrossLayerMac> mac_;
  std::unique_ptr<PoissonSource> source_;
};

}  // namespace dftmsn
