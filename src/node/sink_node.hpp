// High-end sink node: always awake, always a qualified receiver (ξ = 1,
// ample buffer), never initiates transmissions. Records message arrivals
// into the run metrics.
#pragma once

#include "common/config.hpp"
#include "common/types.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace dftmsn {

class SinkNode final : public ChannelListener {
 public:
  /// The caller must attach this node to the channel after construction:
  /// channel.attach(id, sink.radio(), sink).
  SinkNode(NodeId id, Simulator& sim, Channel& channel,
           const EnergyModel& energy, const Config& config, Metrics& metrics,
           RandomStream rng);

  [[nodiscard]] Radio& radio() { return radio_; }
  [[nodiscard]] NodeId id() const { return id_; }

  /// Total distinct DATA frames this sink heard (diagnostics).
  [[nodiscard]] std::uint64_t data_heard() const { return data_heard_; }

  // --- fault injection (FaultInjector) --------------------------------
  /// Takes the sink off the air: pending CTS/ACK replies are cancelled,
  /// the radio is forced down and the channel marks the node failed.
  /// Returns false if already down.
  bool fail();

  /// Brings the sink back online. Returns false if it was not down.
  bool restore();

  [[nodiscard]] bool down() const { return down_; }

  // --- ChannelListener ------------------------------------------------
  void on_frame_received(const Frame& frame) override;
  void on_collision() override {}
  void on_channel_busy() override {}
  void on_channel_idle() override {}

  /// Snapshot of the exchange context, timer-pending flags, rng and
  /// radio. Save-only: resume works by replay (see snapshot_io.hpp).
  void save_state(snapshot::Writer& w) const;

 private:
  void handle_rts(const Frame& frame);
  void handle_schedule(const Frame& frame);
  void handle_data(const Frame& frame);
  void send_cts();
  void send_ack();
  [[nodiscard]] bool can_transmit() const;
  void force_transmit(Frame frame);

  NodeId id_;
  Simulator& sim_;
  Channel& channel_;
  Radio radio_;
  const Config& cfg_;
  Metrics& metrics_;
  RandomStream rng_;
  double slot_s_;

  // Current exchange context (a sink only tracks one sender at a time;
  // overlapping senders in range would collide on the air anyway).
  NodeId current_sender_ = kInvalidNode;
  MessageId expected_message_ = 0;
  int ack_slot_ = 0;
  bool awaiting_data_ = false;
  EventHandle cts_timer_;
  EventHandle ack_timer_;
  EventHandle reset_timer_;
  std::uint64_t data_heard_ = 0;
  bool down_ = false;
};

}  // namespace dftmsn
