#include "node/sensor_node.hpp"

namespace dftmsn {
namespace {

QueueDiscipline to_discipline(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFtdSorted: return QueueDiscipline::kFtdSorted;
    case QueuePolicy::kFifo: return QueueDiscipline::kFifo;
    case QueuePolicy::kRandomDrop: return QueueDiscipline::kRandomDrop;
  }
  return QueueDiscipline::kFtdSorted;
}

}  // namespace

SensorNode::SensorNode(NodeId id, Simulator& sim, Channel& channel,
                       const EnergyModel& energy, const Config& config,
                       ProtocolKind kind, NodeId first_sink_id,
                       Metrics& metrics, MessageIdAllocator& ids,
                       const RandomSource& rngs)
    : id_(id),
      metrics_(metrics),
      configured_capacity_(config.protocol.queue_capacity),
      radio_(sim, energy, config.radio.switch_time_s),
      queue_(config.protocol.queue_capacity,
             to_discipline(config.protocol.queue_policy)) {
  mac_ = std::make_unique<CrossLayerMac>(
      id, sim, channel, radio_, queue_, make_strategy(kind, config), config,
      make_mac_options(kind, config), first_sink_id, metrics,
      rngs.stream("mac", id));

  source_ = std::make_unique<PoissonSource>(
      sim, ids, id, config.scenario.data_interval_s, config.radio.data_bits,
      rngs.stream("traffic", id), [this](Message m) {
        metrics_.on_generated(m);
        mac_->enqueue(m);
      });

  channel.attach(id, radio_, *mac_);
}

void SensorNode::start() {
  mac_->start();
  source_->start();
}

bool SensorNode::fail(bool preserve_state) {
  if (mac_->dead()) return false;
  mac_->crash(/*wipe_queue=*/!preserve_state);
  if (!preserve_state) source_->stop();
  return true;
}

bool SensorNode::restore() {
  if (!mac_->dead()) return false;
  mac_->recover();
  source_->resume();  // no-op after a mere outage (source never stopped)
  return true;
}

std::size_t SensorNode::apply_buffer_pressure(std::size_t capacity) {
  const auto evicted = queue_.set_capacity(capacity);
  for (const auto& drop : evicted) metrics_.on_dropped(drop.msg, drop.reason);
  return evicted.size();
}

void SensorNode::release_buffer_pressure() {
  queue_.set_capacity(configured_capacity_);
}

void SensorNode::save_state(snapshot::Writer& w) const {
  w.begin_section("sensor_node");
  w.u32(id_);
  radio_.save_state(w);
  mac_->save_state(w);  // includes the queue and the strategy
  source_->save_state(w);
  w.end_section();
}

}  // namespace dftmsn
