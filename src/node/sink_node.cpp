#include "node/sink_node.hpp"

#include <algorithm>

namespace dftmsn {

SinkNode::SinkNode(NodeId id, Simulator& sim, Channel& channel,
                   const EnergyModel& energy, const Config& config,
                   Metrics& metrics, RandomStream rng)
    : id_(id),
      sim_(sim),
      channel_(channel),
      radio_(sim, energy, config.radio.switch_time_s),
      cfg_(config),
      metrics_(metrics),
      rng_(rng),
      slot_s_(config.radio.control_tx_time()) {}

bool SinkNode::can_transmit() const {
  return radio_.state() == RadioState::kIdle && !channel_.busy(id_);
}

void SinkNode::force_transmit(Frame frame) {
  // Committed slotted reply: same semantics as CrossLayerMac — a sink's
  // CTS drawn into the same slot as a sensor's CTS collides.
  if (radio_.state() == RadioState::kRx) channel_.forget(id_);
  if (radio_.state() != RadioState::kIdle) return;
  channel_.transmit(id_, std::move(frame));
}

bool SinkNode::fail() {
  if (down_) return false;
  down_ = true;
  cts_timer_.cancel();
  ack_timer_.cancel();
  reset_timer_.cancel();
  current_sender_ = kInvalidNode;
  awaiting_data_ = false;
  radio_.force_down();
  channel_.set_node_failed(id_, true);
  channel_.forget(id_);
  return true;
}

bool SinkNode::restore() {
  if (!down_) return false;
  down_ = false;
  channel_.set_node_failed(id_, false);
  radio_.force_up();
  return true;
}

void SinkNode::on_frame_received(const Frame& frame) {
  if (frame.is<RtsFrame>()) {
    handle_rts(frame);
  } else if (frame.is<ScheduleFrame>()) {
    handle_schedule(frame);
  } else if (frame.is<DataFrame>()) {
    handle_data(frame);
  }
  // Preambles, CTSs and ACKs need no sink-side action.
}

void SinkNode::handle_rts(const Frame& frame) {
  const auto& rts = frame.as<RtsFrame>();
  // A sink is always qualified (ξ = 1 > any sensor's ξ; effectively
  // unbounded storage behind the backbone).
  current_sender_ = frame.sender;
  expected_message_ = rts.message_id;
  awaiting_data_ = false;

  const int w = std::max(1, rts.contention_window);
  const int slot = rng_.uniform_int(1, w);
  cts_timer_.cancel();
  cts_timer_ = sim_.schedule_in((slot - 1) * slot_s_, [this] { send_cts(); });

  // Forget the exchange if no SCHEDULE follows.
  reset_timer_.cancel();
  reset_timer_ = sim_.schedule_in((w + 6.0) * slot_s_, [this] {
    current_sender_ = kInvalidNode;
    awaiting_data_ = false;
  });
}

void SinkNode::send_cts() {
  if (current_sender_ == kInvalidNode) return;
  force_transmit(
      Frame{id_, cfg_.radio.control_bits,
            CtsFrame{current_sender_, 1.0, cfg_.protocol.queue_capacity}});
}

void SinkNode::handle_schedule(const Frame& frame) {
  if (frame.sender != current_sender_) return;
  const auto& sched = frame.as<ScheduleFrame>();
  for (std::size_t k = 0; k < sched.entries.size(); ++k) {
    if (sched.entries[k].receiver == id_) {
      ack_slot_ = static_cast<int>(k) + 1;
      awaiting_data_ = true;
      // Re-arm the give-up timer past the data + ACK exchange.
      reset_timer_.cancel();
      reset_timer_ = sim_.schedule_in(
          cfg_.radio.data_tx_time() +
              (static_cast<double>(sched.entries.size()) + 4.0) * slot_s_,
          [this] {
            current_sender_ = kInvalidNode;
            awaiting_data_ = false;
          });
      return;
    }
  }
  awaiting_data_ = false;
}

void SinkNode::handle_data(const Frame& frame) {
  const auto& data = frame.as<DataFrame>();
  // Any DATA frame that physically reaches a sink counts as delivered —
  // the sink sits on the backbone and dedupes by message id. (An
  // unscheduled sink does not ACK, so the sender's FTD bookkeeping is
  // unaffected; see DESIGN.md.)
  ++data_heard_;
  Message delivered = data.message;
  delivered.hops += 1;
  metrics_.on_delivered(delivered, sim_.now());

  if (awaiting_data_ && frame.sender == current_sender_) {
    awaiting_data_ = false;
    expected_message_ = data.message.id;
    ack_timer_.cancel();
    ack_timer_ =
        sim_.schedule_in((ack_slot_ - 1) * slot_s_, [this] { send_ack(); });
  }
}

void SinkNode::send_ack() {
  if (current_sender_ == kInvalidNode) return;
  force_transmit(Frame{id_, cfg_.radio.control_bits,
                       AckFrame{current_sender_, expected_message_}});
  current_sender_ = kInvalidNode;
}

void SinkNode::save_state(snapshot::Writer& w) const {
  w.begin_section("sink_node");
  w.u32(id_);
  w.u32(current_sender_);
  w.u64(expected_message_);
  w.i64(ack_slot_);
  w.boolean(awaiting_data_);
  w.boolean(cts_timer_.pending());
  w.boolean(ack_timer_.pending());
  w.boolean(reset_timer_.pending());
  w.u64(data_heard_);
  w.boolean(down_);
  rng_.save_state(w);
  radio_.save_state(w);
  w.end_section();
}

}  // namespace dftmsn
