// The paper's mobility model (Sec. 5): each sensor has a home zone inside
// a 5x5 grid; it moves with a uniformly random speed, bounces off zone
// boundaries with probability 1-p_exit, crosses with p_exit, and always
// re-enters its home zone when reaching a boundary shared with it.
#pragma once

#include "geom/zone_grid.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/random.hpp"

namespace dftmsn {

class ZoneMobility final : public MobilityModel {
 public:
  struct Params {
    double speed_min = 0.0;         ///< m/s (per-node speed drawn once)
    double speed_max = 5.0;         ///< m/s
    double exit_prob = 0.2;         ///< cross a non-home zone boundary
    double home_return_prob = 1.0;  ///< cross a boundary into the home zone
    double leg_mean_s = 30.0;       ///< mean travel time before re-picking direction
  };

  /// The node starts at `start` (must lie within the grid); its home zone
  /// is the zone containing `start`.
  ZoneMobility(const ZoneGrid& grid, Params params, Vec2 start,
               RandomStream rng);

  [[nodiscard]] Vec2 position() const override { return position_; }
  void step(double dt) override;

  [[nodiscard]] ZoneId home_zone() const { return home_zone_; }
  [[nodiscard]] ZoneId current_zone() const { return current_zone_; }

  /// The node's fixed travel speed. Drawn once per node (uniform in
  /// [speed_min, speed_max]): sensors are worn by *people*, whose
  /// activity levels differ persistently — this per-node heterogeneity
  /// is what gives different sensors different delivery probabilities
  /// (Sec. 5 of the paper; see DESIGN.md).
  [[nodiscard]] double speed() const { return speed_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  /// Picks a fresh uniform direction and a new leg duration.
  void repick_velocity();

  /// Picks a direction pointing from `position_` toward the interior of
  /// the current zone (used after bouncing off a boundary).
  void turn_into_current_zone();

  const ZoneGrid& grid_;
  Params params_;
  RandomStream rng_;
  Vec2 position_;
  double speed_;   ///< fixed per-node speed, m/s
  Vec2 velocity_;  ///< m/s vector
  ZoneId home_zone_;
  ZoneId current_zone_;
  double leg_remaining_s_ = 0.0;
};

}  // namespace dftmsn
