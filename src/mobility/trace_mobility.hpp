// Trace-driven mobility (MobilityKind::kTrace): replays one node's
// waypoint track from a motion trace, interpolating linearly between
// samples. Before the first sample and after the last the node stands
// still at that sample's position.
#pragma once

#include <cstddef>
#include <memory>

#include "mobility/mobility_model.hpp"
#include "mobility/motion_trace.hpp"

namespace dftmsn {

class TraceMobility final : public MobilityModel {
 public:
  /// `track` must be validated (non-empty, strictly ascending t); tracks
  /// are shared so a 100k-node trace is stored once, not per model.
  explicit TraceMobility(std::shared_ptr<const MotionTrack> track);

  [[nodiscard]] Vec2 position() const override;
  void step(double dt) override;

  /// Replay clock (sim seconds since construction); the interpolation
  /// cursor is exposed for tests.
  [[nodiscard]] double time() const { return t_; }
  [[nodiscard]] std::size_t segment() const { return seg_; }

  /// Snapshot: the clock and the cursor. The track itself is config-derived
  /// (rebuilt from scenario.trace_path by the World ctor), so the cursor
  /// state is canonical and byte-stable across save/replay/load.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  std::shared_ptr<const MotionTrack> track_;
  double t_ = 0.0;
  std::size_t seg_ = 0;  ///< largest i with track[i].t <= t_ (0 before first)
};

}  // namespace dftmsn
