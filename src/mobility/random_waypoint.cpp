#include "mobility/random_waypoint.hpp"

#include <algorithm>

namespace dftmsn {

RandomWaypoint::RandomWaypoint(const ZoneGrid& grid, Params params, Vec2 start,
                               RandomStream rng)
    : grid_(grid),
      params_(params),
      rng_(rng),
      position_(grid.clamp_to_field(start)) {
  pick_waypoint();
}

void RandomWaypoint::pick_waypoint() {
  waypoint_ = {rng_.uniform(0.0, grid_.field_edge()),
               rng_.uniform(0.0, grid_.field_edge())};
  speed_ = rng_.uniform(params_.speed_min, params_.speed_max);
  pause_remaining_s_ =
      params_.pause_max_s > 0 ? rng_.uniform(0.0, params_.pause_max_s) : 0.0;
}

void RandomWaypoint::step(double dt) {
  double budget = dt;
  while (budget > 0.0) {
    const Vec2 to_go = waypoint_ - position_;
    const double dist = to_go.norm();
    if (dist < 1e-9 || speed_ <= 0.0) {
      // At the waypoint: spend pause time, then pick the next one.
      if (pause_remaining_s_ > budget) {
        pause_remaining_s_ -= budget;
        return;
      }
      budget -= pause_remaining_s_;
      pick_waypoint();
      continue;
    }
    const double travel_time = dist / speed_;
    const double used = std::min(budget, travel_time);
    position_ += to_go.normalized() * (speed_ * used);
    budget -= used;
    if (used == travel_time) position_ = waypoint_;
  }
}

void RandomWaypoint::save_state(snapshot::Writer& w) const {
  w.begin_section("random_waypoint");
  snapshot::save(w, position_);
  snapshot::save(w, waypoint_);
  w.f64(speed_);
  w.f64(pause_remaining_s_);
  rng_.save_state(w);
  w.end_section();
}

void RandomWaypoint::load_state(snapshot::Reader& r) {
  r.begin_section("random_waypoint");
  snapshot::load(r, position_);
  snapshot::load(r, waypoint_);
  speed_ = r.f64();
  pause_remaining_s_ = r.f64();
  rng_.load_state(r);
  r.end_section();
}

}  // namespace dftmsn
