#include "mobility/zone_mobility.hpp"

#include <cmath>
#include <numbers>

namespace dftmsn {

ZoneMobility::ZoneMobility(const ZoneGrid& grid, Params params, Vec2 start,
                           RandomStream rng)
    : grid_(grid),
      params_(params),
      rng_(rng),
      position_(grid.clamp_to_field(start)),
      speed_(rng_.uniform(params.speed_min, params.speed_max)),
      home_zone_(grid.zone_of(position_)),
      current_zone_(home_zone_) {
  repick_velocity();
}

void ZoneMobility::repick_velocity() {
  const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  velocity_ = unit_from_angle(angle) * speed_;
  leg_remaining_s_ = rng_.exponential(params_.leg_mean_s);
}

void ZoneMobility::turn_into_current_zone() {
  // Aim at a random point strictly inside the current zone; this guarantees
  // the bounce direction re-enters the zone regardless of which edge (or
  // corner) was hit.
  const auto b = grid_.zone_bounds(current_zone_);
  const double margin_x = 0.25 * (b.max.x - b.min.x);
  const double margin_y = 0.25 * (b.max.y - b.min.y);
  const Vec2 target{rng_.uniform(b.min.x + margin_x, b.max.x - margin_x),
                    rng_.uniform(b.min.y + margin_y, b.max.y - margin_y)};
  velocity_ = (target - position_).normalized() * speed_;
  leg_remaining_s_ = rng_.exponential(params_.leg_mean_s);
}

void ZoneMobility::step(double dt) {
  leg_remaining_s_ -= dt;
  if (leg_remaining_s_ <= 0.0) repick_velocity();

  Vec2 next = position_ + velocity_ * dt;

  // Field boundary: clamp and turn back inside.
  const bool left_field = next.x < 0.0 || next.x > grid_.field_edge() ||
                          next.y < 0.0 || next.y > grid_.field_edge();
  next = grid_.clamp_to_field(next);

  const ZoneId next_zone = grid_.zone_of(next);
  if (next_zone != current_zone_) {
    const double cross_prob = (next_zone == home_zone_)
                                  ? params_.home_return_prob
                                  : params_.exit_prob;
    if (rng_.bernoulli(cross_prob)) {
      current_zone_ = next_zone;
      position_ = next;
    } else {
      // Bounce: stay put this step and head back into the zone interior.
      turn_into_current_zone();
    }
    return;
  }

  position_ = next;
  if (left_field) turn_into_current_zone();
}

void ZoneMobility::save_state(snapshot::Writer& w) const {
  w.begin_section("zone_mobility");
  snapshot::save(w, position_);
  w.f64(speed_);
  snapshot::save(w, velocity_);
  w.i64(home_zone_);
  w.i64(current_zone_);
  w.f64(leg_remaining_s_);
  rng_.save_state(w);
  w.end_section();
}

void ZoneMobility::load_state(snapshot::Reader& r) {
  r.begin_section("zone_mobility");
  snapshot::load(r, position_);
  speed_ = r.f64();
  snapshot::load(r, velocity_);
  home_zone_ = static_cast<ZoneId>(r.i64());
  current_zone_ = static_cast<ZoneId>(r.i64());
  leg_remaining_s_ = r.f64();
  rng_.load_state(r);
  r.end_section();
}

}  // namespace dftmsn
