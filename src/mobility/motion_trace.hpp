// Waypoint motion traces: the on-disk substrate of trace-driven mobility
// (MobilityKind::kTrace) and of the scenario library's generators.
//
// A trace holds one track per sensor node; a track is a strictly
// time-ascending sequence of (t, x, y) waypoint samples. TraceMobility
// interpolates linearly between consecutive samples and clamps before the
// first / after the last, so a track doubles as a compact polyline — no
// dense resampling is needed.
//
// File format (flat little-endian, compiler-friendly — see
// scripts/trace_compiler.py for the text front end and docs/scenarios.md
// for the full spec):
//   magic   "DFTMSNTR" (8 bytes)
//   u32     format version (currently 1)
//   u32     node count N
//   N ×   { u64 sample count S; S × { f64 t; f64 x; f64 y } }
//   u64     FNV-1a digest of every preceding byte (torn-file detection)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec2.hpp"

namespace dftmsn {

struct MotionSample {
  double t = 0.0;  ///< simulation time, seconds
  Vec2 pos;
};

/// One node's waypoint sequence, strictly ascending in t.
using MotionTrack = std::vector<MotionSample>;

struct MotionTrace {
  std::vector<MotionTrack> tracks;  ///< indexed by sensor node id

  /// Throws std::invalid_argument naming the offending node and sample
  /// index on the first malformed record: empty track, non-finite t/x/y,
  /// or out-of-order (non-increasing) timestamps.
  void validate() const;
};

/// Canonical byte image of a trace (the full file, digest included).
/// Identical traces encode to identical bytes, so generator determinism
/// can be asserted with a plain byte compare.
std::vector<std::uint8_t> encode_motion_trace(const MotionTrace& trace);

/// Parses and validates a trace image; throws snapshot::SnapshotError on
/// structural corruption and std::invalid_argument on malformed records.
MotionTrace decode_motion_trace(const std::vector<std::uint8_t>& image);

/// Atomically writes encode_motion_trace(trace) to `path`.
void save_motion_trace(const std::string& path, const MotionTrace& trace);

/// Reads + decodes a trace file; every error message names `path`.
MotionTrace load_motion_trace(const std::string& path);

}  // namespace dftmsn
