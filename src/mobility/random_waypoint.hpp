// Classic random-waypoint mobility (extension; not used by the paper's
// default scenario). Pick a uniform waypoint, travel at a uniform speed,
// optionally pause, repeat.
#pragma once

#include "geom/zone_grid.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/random.hpp"

namespace dftmsn {

class RandomWaypoint final : public MobilityModel {
 public:
  struct Params {
    double speed_min = 0.5;  ///< m/s; > 0 avoids the well-known RWP stall
    double speed_max = 5.0;  ///< m/s
    double pause_max_s = 0.0;
  };

  RandomWaypoint(const ZoneGrid& grid, Params params, Vec2 start,
                 RandomStream rng);

  [[nodiscard]] Vec2 position() const override { return position_; }
  void step(double dt) override;

  [[nodiscard]] Vec2 waypoint() const { return waypoint_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  void pick_waypoint();

  const ZoneGrid& grid_;
  Params params_;
  RandomStream rng_;
  Vec2 position_;
  Vec2 waypoint_;
  double speed_ = 0.0;
  double pause_remaining_s_ = 0.0;
};

}  // namespace dftmsn
