#include "mobility/patrol_mobility.hpp"

#include <algorithm>
#include <stdexcept>

namespace dftmsn {

PatrolMobility::PatrolMobility(std::vector<Vec2> waypoints, double speed_mps,
                               double dwell_s)
    : waypoints_(std::move(waypoints)),
      speed_(speed_mps),
      dwell_s_(dwell_s),
      position_(waypoints_.empty() ? Vec2{} : waypoints_.front()) {
  if (waypoints_.size() < 2)
    throw std::invalid_argument("PatrolMobility: need at least two waypoints");
  if (speed_mps <= 0)
    throw std::invalid_argument("PatrolMobility: speed must be positive");
  if (dwell_s < 0)
    throw std::invalid_argument("PatrolMobility: dwell must be non-negative");
}

void PatrolMobility::step(double dt) {
  double budget = dt;
  while (budget > 1e-12) {
    if (dwell_remaining_ > 0.0) {
      const double pause = std::min(dwell_remaining_, budget);
      dwell_remaining_ -= pause;
      budget -= pause;
      continue;
    }
    const Vec2 target = waypoints_[next_];
    const Vec2 to_go = target - position_;
    const double dist = to_go.norm();
    const double travel_time = dist / speed_;
    if (travel_time <= budget) {
      position_ = target;
      budget -= travel_time;
      next_ = (next_ + 1) % waypoints_.size();
      dwell_remaining_ = dwell_s_;
    } else {
      position_ += to_go.normalized() * (speed_ * budget);
      budget = 0.0;
    }
  }
}

void PatrolMobility::save_state(snapshot::Writer& w) const {
  w.begin_section("patrol_mobility");
  snapshot::save(w, position_);
  w.size(next_);
  w.f64(dwell_remaining_);
  w.end_section();
}

void PatrolMobility::load_state(snapshot::Reader& r) {
  r.begin_section("patrol_mobility");
  snapshot::load(r, position_);
  next_ = r.size();
  dwell_remaining_ = r.f64();
  r.end_section();
}

}  // namespace dftmsn
