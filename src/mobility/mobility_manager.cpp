#include "mobility/mobility_manager.hpp"

#include <stdexcept>

namespace dftmsn {

MobilityManager::MobilityManager(Simulator& sim, double step)
    : sim_(sim), step_(step) {
  if (step <= 0) throw std::invalid_argument("MobilityManager: step <= 0");
}

void MobilityManager::enable_spatial_index(double field_edge,
                                           double cell_edge) {
  if (!models_.empty())
    throw std::logic_error(
        "MobilityManager: enable_spatial_index before adding nodes");
  index_ = std::make_unique<SpatialIndex>(field_edge, cell_edge);
}

void MobilityManager::add_node(NodeId id, std::unique_ptr<MobilityModel> model) {
  if (id != models_.size())
    throw std::invalid_argument("MobilityManager: nodes must be added in id order");
  if (!model) throw std::invalid_argument("MobilityManager: null model");
  if (index_) index_->insert(id, model->position());
  models_.push_back(std::move(model));
}

void MobilityManager::start() {
  if (started_) return;
  started_ = true;
  sim_.schedule_in(step_, [this] { tick(); });
}

void MobilityManager::refresh_index() {
  if (!index_) return;
  for (NodeId id = 0; id < models_.size(); ++id)
    index_->update(id, models_[id]->position());
}

void MobilityManager::tick() {
  {
    telemetry::ScopedTimer timer(profiler_,
                                 telemetry::Subsystem::kMobilityUpdate);
    for (auto& m : models_) m->step(step_);
    refresh_index();
  }
  sim_.schedule_in(step_, [this] { tick(); });
}

Vec2 MobilityManager::position(NodeId id) const {
  return models_.at(id)->position();
}

std::vector<NodeId> MobilityManager::neighbors_of(NodeId id,
                                                  double range) const {
  std::vector<NodeId> out;
  neighbors_of(id, range, out);
  return out;
}

void MobilityManager::neighbors_of(NodeId id, double range,
                                   std::vector<NodeId>& out) const {
  out.clear();
  if (index_) {
    index_->collect_in_disc(index_->position(id), range, id, out);
    return;
  }
  const Vec2 p = position(id);
  const double r2 = range * range;
  for (NodeId other = 0; other < models_.size(); ++other) {
    if (other == id) continue;
    if (distance2(p, models_[other]->position()) <= r2) out.push_back(other);
  }
}

std::vector<NodeId> MobilityManager::neighbors_of_scan(NodeId id,
                                                       double range) const {
  const Vec2 p = position(id);
  const double r2 = range * range;
  std::vector<NodeId> out;
  for (NodeId other = 0; other < models_.size(); ++other) {
    if (other == id) continue;
    if (distance2(p, models_[other]->position()) <= r2) out.push_back(other);
  }
  return out;
}

bool MobilityManager::any_neighbor_within(NodeId id, double range) const {
  if (index_) return index_->any_in_disc(index_->position(id), range, id);
  const Vec2 p = position(id);
  const double r2 = range * range;
  for (NodeId other = 0; other < models_.size(); ++other) {
    if (other == id) continue;
    if (distance2(p, models_[other]->position()) <= r2) return true;
  }
  return false;
}

std::vector<NodeId> MobilityManager::nodes_in_range(const Vec2& p,
                                                    double range) const {
  std::vector<NodeId> out;
  if (index_) {
    index_->collect_in_disc(p, range, kInvalidNode, out);
    return out;
  }
  const double r2 = range * range;
  for (NodeId id = 0; id < models_.size(); ++id) {
    if (distance2(p, models_[id]->position()) <= r2) out.push_back(id);
  }
  return out;
}

double MobilityManager::distance_between(NodeId a, NodeId b) const {
  return distance(position(a), position(b));
}

void MobilityManager::save_state(snapshot::Writer& w) const {
  w.begin_section("mobility");
  w.boolean(started_);
  w.size(models_.size());
  for (const auto& m : models_) m->save_state(w);
  w.end_section();
}

void MobilityManager::load_state(snapshot::Reader& r) {
  r.begin_section("mobility");
  started_ = r.boolean();
  const std::size_t n = r.size();
  if (n != models_.size())
    throw snapshot::SnapshotError("mobility: node population mismatch");
  for (const auto& m : models_) m->load_state(r);
  // The index caches positions; re-sync it with the restored kinematics.
  refresh_index();
  r.end_section();
}

}  // namespace dftmsn
