#include "mobility/motion_trace.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "snapshot/snapshot_io.hpp"

namespace dftmsn {
namespace {

constexpr char kMagic[8] = {'D', 'F', 'T', 'M', 'S', 'N', 'T', 'R'};
constexpr std::uint32_t kTraceVersion = 1;
constexpr std::size_t kDigestBytes = 8;

[[noreturn]] void bad_record(std::size_t node, std::size_t sample,
                             const std::string& what) {
  throw std::invalid_argument("motion trace: node " + std::to_string(node) +
                              " sample " + std::to_string(sample) + ": " +
                              what);
}

/// Flat little-endian primitive emitter (the format is shared with the
/// Python compiler, which writes struct '<' packing — not the snapshot
/// section framing).
struct FlatWriter {
  std::vector<std::uint8_t> buf;

  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf.insert(buf.end(), b, b + n);
  }
  void u32(std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    raw(b, 4);
  }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    raw(b, 8);
  }
  void f64(double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    u64(u);
  }
};

struct FlatReader {
  const std::vector<std::uint8_t>& buf;
  std::size_t pos = 0;

  void raw(void* p, std::size_t n) {
    if (pos + n > buf.size())
      throw snapshot::SnapshotError("motion trace: truncated file");
    std::memcpy(p, buf.data() + pos, n);
    pos += n;
  }
  std::uint32_t u32() {
    std::uint8_t b[4];
    raw(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint8_t b[8];
    raw(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t u = u64();
    double v = 0.0;
    std::memcpy(&v, &u, sizeof(v));
    return v;
  }
};

}  // namespace

void MotionTrace::validate() const {
  for (std::size_t node = 0; node < tracks.size(); ++node) {
    const MotionTrack& track = tracks[node];
    if (track.empty())
      throw std::invalid_argument("motion trace: node " +
                                  std::to_string(node) + ": empty track");
    for (std::size_t i = 0; i < track.size(); ++i) {
      const MotionSample& s = track[i];
      if (!std::isfinite(s.t)) bad_record(node, i, "non-finite timestamp");
      if (!std::isfinite(s.pos.x) || !std::isfinite(s.pos.y))
        bad_record(node, i, "non-finite position");
      if (i > 0 && !(s.t > track[i - 1].t))
        bad_record(node, i,
                   "out-of-order timestamp (t=" + std::to_string(s.t) +
                       " after t=" + std::to_string(track[i - 1].t) + ")");
    }
  }
}

std::vector<std::uint8_t> encode_motion_trace(const MotionTrace& trace) {
  trace.validate();
  FlatWriter w;
  w.raw(kMagic, sizeof(kMagic));
  w.u32(kTraceVersion);
  w.u32(static_cast<std::uint32_t>(trace.tracks.size()));
  for (const MotionTrack& track : trace.tracks) {
    w.u64(track.size());
    for (const MotionSample& s : track) {
      w.f64(s.t);
      w.f64(s.pos.x);
      w.f64(s.pos.y);
    }
  }
  snapshot::StateHash h;
  h.update(w.buf.data(), w.buf.size());
  w.u64(h.value());
  return std::move(w.buf);
}

MotionTrace decode_motion_trace(const std::vector<std::uint8_t>& image) {
  if (image.size() < sizeof(kMagic) + 4 + 4 + kDigestBytes)
    throw snapshot::SnapshotError("motion trace: truncated file");

  // Digest first: a torn write fails with one clear message, not as a
  // downstream length-field parse error.
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < kDigestBytes; ++i)
    stored |= static_cast<std::uint64_t>(image[image.size() - kDigestBytes + i])
              << (8 * i);
  snapshot::StateHash h;
  h.update(image.data(), image.size() - kDigestBytes);
  if (h.value() != stored)
    throw snapshot::SnapshotError(
        "motion trace: digest mismatch (torn or corrupt file)");
  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0)
    throw snapshot::SnapshotError("motion trace: bad magic");

  FlatReader r{image};
  r.pos = sizeof(kMagic);
  const std::uint32_t version = r.u32();
  if (version != kTraceVersion)
    throw snapshot::SnapshotError(
        "motion trace: unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kTraceVersion) + ")");

  MotionTrace trace;
  const std::uint32_t nodes = r.u32();
  trace.tracks.resize(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const std::uint64_t count = r.u64();
    // An impossible count means a corrupt length field; fail before trying
    // to allocate it.
    if (count * 24 > image.size())
      throw snapshot::SnapshotError("motion trace: implausible sample count");
    trace.tracks[n].resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      MotionSample& s = trace.tracks[n][i];
      s.t = r.f64();
      s.pos.x = r.f64();
      s.pos.y = r.f64();
    }
  }
  if (r.pos != image.size() - kDigestBytes)
    throw snapshot::SnapshotError("motion trace: trailing garbage");
  trace.validate();
  return trace;
}

void save_motion_trace(const std::string& path, const MotionTrace& trace) {
  snapshot::write_file_atomic(path, encode_motion_trace(trace));
}

MotionTrace load_motion_trace(const std::string& path) {
  try {
    return decode_motion_trace(snapshot::read_file(path));
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace dftmsn
