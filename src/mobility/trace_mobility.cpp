#include "mobility/trace_mobility.hpp"

#include <stdexcept>

namespace dftmsn {

TraceMobility::TraceMobility(std::shared_ptr<const MotionTrack> track)
    : track_(std::move(track)) {
  if (!track_ || track_->empty())
    throw std::invalid_argument("TraceMobility: empty track");
}

Vec2 TraceMobility::position() const {
  const MotionTrack& tr = *track_;
  if (t_ <= tr.front().t) return tr.front().pos;        // before first sample
  if (seg_ + 1 >= tr.size()) return tr.back().pos;      // after last sample
  const MotionSample& a = tr[seg_];
  const MotionSample& b = tr[seg_ + 1];
  const double u = (t_ - a.t) / (b.t - a.t);
  return a.pos + (b.pos - a.pos) * u;
}

void TraceMobility::step(double dt) {
  t_ += dt;
  const MotionTrack& tr = *track_;
  while (seg_ + 1 < tr.size() && tr[seg_ + 1].t <= t_) ++seg_;
}

void TraceMobility::save_state(snapshot::Writer& w) const {
  w.begin_section("trace_mobility");
  w.f64(t_);
  w.u64(seg_);
  w.end_section();
}

void TraceMobility::load_state(snapshot::Reader& r) {
  r.begin_section("trace_mobility");
  t_ = r.f64();
  seg_ = static_cast<std::size_t>(r.u64());
  if (seg_ >= track_->size())
    throw snapshot::SnapshotError("trace_mobility: cursor beyond track");
  r.end_section();
}

}  // namespace dftmsn
