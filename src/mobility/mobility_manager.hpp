// Owns every node's mobility model, advances them on a fixed simulator
// tick, and answers position / neighbourhood queries for the channel —
// through a zone-grid spatial index when one is enabled, so hot queries
// scan neighboring cells instead of all n nodes.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "geom/spatial_index.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/simulator.hpp"
#include "telemetry/profiler.hpp"

namespace dftmsn {

class MobilityManager {
 public:
  /// `step` is the mobility tick in seconds.
  MobilityManager(Simulator& sim, double step);

  /// Switches neighbourhood queries to a uniform-grid spatial index with
  /// `cell_edge`-sized cells (typically the radio range). Must be called
  /// before the first add_node. Queries answer bit-identically to the
  /// brute-force scan (test-enforced; see neighbors_of_scan) — only
  /// their cost changes.
  void enable_spatial_index(double field_edge, double cell_edge);
  [[nodiscard]] bool spatial_index_enabled() const { return index_ != nullptr; }

  /// Registers a node's model; node ids must be added in order 0,1,2,...
  /// (they index the internal table).
  void add_node(NodeId id, std::unique_ptr<MobilityModel> model);

  /// Starts the periodic tick. Call once after all nodes are added.
  void start();

  [[nodiscard]] std::size_t node_count() const { return models_.size(); }

  [[nodiscard]] Vec2 position(NodeId id) const;

  /// Read-only access to a node's model (diagnostics / tests).
  [[nodiscard]] const MobilityModel& model(NodeId id) const {
    return *models_.at(id);
  }

  /// All nodes (other than `id`) within `range` metres of node `id`,
  /// ascending by id.
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId id,
                                                 double range) const;

  /// Allocation-free variant for hot paths: replaces `out`'s contents.
  void neighbors_of(NodeId id, double range, std::vector<NodeId>& out) const;

  /// Brute-force all-nodes reference scan — the oracle the spatial index
  /// is property-tested against. Diagnostic/test use only (O(n)).
  [[nodiscard]] std::vector<NodeId> neighbors_of_scan(NodeId id,
                                                      double range) const;

  /// True if any other node is within `range` of `id`; early-exits on
  /// the first hit (carrier-sense fast path).
  [[nodiscard]] bool any_neighbor_within(NodeId id, double range) const;

  /// All nodes within `range` of an arbitrary point.
  [[nodiscard]] std::vector<NodeId> nodes_in_range(const Vec2& p,
                                                   double range) const;

  /// Distance between two registered nodes.
  [[nodiscard]] double distance_between(NodeId a, NodeId b) const;

  /// Wall-clock profiler for the periodic tick (telemetry; nullptr =
  /// disabled, never perturbs the simulation).
  void set_profiler(telemetry::Profiler* profiler) { profiler_ = profiler; }

  /// Snapshot: the started flag plus every model's kinematic state, in id
  /// order. load_state requires the same population to be registered
  /// already (the periodic tick event itself is restored by replay).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  void tick();
  void refresh_index();

  Simulator& sim_;
  double step_;
  bool started_ = false;
  std::vector<std::unique_ptr<MobilityModel>> models_;
  std::unique_ptr<SpatialIndex> index_;  ///< null = brute-force queries
  telemetry::Profiler* profiler_ = nullptr;
};

}  // namespace dftmsn
