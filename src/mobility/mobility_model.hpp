// Abstract per-node mobility model, advanced in fixed steps by the
// MobilityManager.
#pragma once

#include "geom/vec2.hpp"
#include "snapshot/state_codec.hpp"

namespace dftmsn {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Current position of the node.
  [[nodiscard]] virtual Vec2 position() const = 0;

  /// Advances the node by `dt` seconds.
  virtual void step(double dt) = 0;

  /// Snapshot of the model's kinematic state (position, velocity, rng, ...).
  /// Config-derived parameters are rebuilt by the ctor, not serialized.
  /// The default (for stateless test doubles) is an empty section.
  virtual void save_state(snapshot::Writer& w) const {
    w.begin_section("mobility_model");
    w.end_section();
  }
  virtual void load_state(snapshot::Reader& r) {
    r.begin_section("mobility_model");
    r.end_section();
  }
};

/// A node that never moves (e.g., a sink deployed at a strategic location).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 position) : position_(position) {}

  [[nodiscard]] Vec2 position() const override { return position_; }
  void step(double) override {}

  void save_state(snapshot::Writer& w) const override {
    w.begin_section("static_mobility");
    snapshot::save(w, position_);
    w.end_section();
  }
  void load_state(snapshot::Reader& r) override {
    r.begin_section("static_mobility");
    snapshot::load(r, position_);
    r.end_section();
  }

 private:
  Vec2 position_;
};

}  // namespace dftmsn
