// Abstract per-node mobility model, advanced in fixed steps by the
// MobilityManager.
#pragma once

#include "geom/vec2.hpp"

namespace dftmsn {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Current position of the node.
  [[nodiscard]] virtual Vec2 position() const = 0;

  /// Advances the node by `dt` seconds.
  virtual void step(double dt) = 0;
};

/// A node that never moves (e.g., a sink deployed at a strategic location).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 position) : position_(position) {}

  [[nodiscard]] Vec2 position() const override { return position_; }
  void step(double) override {}

 private:
  Vec2 position_;
};

}  // namespace dftmsn
