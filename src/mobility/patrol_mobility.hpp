// Patrol mobility: a node endlessly cycling through a fixed circuit of
// waypoints at constant speed — the "managed mobile node" of the Data
// MULE architecture the paper surveys (Sec. 2, category 2). Used to model
// mule-carried sinks (buses, mail vans) in the data_mule example.
#pragma once

#include <vector>

#include "mobility/mobility_model.hpp"

namespace dftmsn {

class PatrolMobility final : public MobilityModel {
 public:
  /// Travels `waypoints[0] -> waypoints[1] -> ... -> waypoints[0] -> ...`
  /// at `speed_mps`, pausing `dwell_s` at each waypoint. Requires at
  /// least two waypoints and a positive speed.
  PatrolMobility(std::vector<Vec2> waypoints, double speed_mps,
                 double dwell_s = 0.0);

  [[nodiscard]] Vec2 position() const override { return position_; }
  void step(double dt) override;

  /// Index of the waypoint currently being approached.
  [[nodiscard]] std::size_t next_waypoint() const { return next_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  std::vector<Vec2> waypoints_;
  double speed_;
  double dwell_s_;
  Vec2 position_;
  std::size_t next_ = 1;
  double dwell_remaining_ = 0.0;
};

}  // namespace dftmsn
