// Partition of the square field into an NxN grid of zones (the paper uses
// 5x5 = 25). Zone ids are row-major, zone (0,0) at the field origin.
#pragma once

#include <stdexcept>

#include "geom/vec2.hpp"

namespace dftmsn {

using ZoneId = int;

class ZoneGrid {
 public:
  /// `field_edge` is the side of the square field in metres; `per_side`
  /// the number of zones along each axis.
  ZoneGrid(double field_edge, int per_side);

  [[nodiscard]] double field_edge() const { return field_edge_; }
  [[nodiscard]] int per_side() const { return per_side_; }
  [[nodiscard]] int zone_count() const { return per_side_ * per_side_; }
  [[nodiscard]] double zone_edge() const { return zone_edge_; }

  /// Zone containing point `p`. Points outside the field are clamped to
  /// the nearest zone (mobility keeps nodes inside, but float round-off at
  /// the boundary must not produce an invalid id).
  [[nodiscard]] ZoneId zone_of(const Vec2& p) const;

  /// Centre point of a zone.
  [[nodiscard]] Vec2 zone_center(ZoneId z) const;

  /// Axis-aligned bounds of a zone: [min, max) on each axis.
  struct Bounds {
    Vec2 min;
    Vec2 max;
  };
  [[nodiscard]] Bounds zone_bounds(ZoneId z) const;

  /// True if `p` lies inside zone `z` (boundary-inclusive on the low edge).
  [[nodiscard]] bool contains(ZoneId z, const Vec2& p) const;

  /// Clamps `p` into the field: [0, edge] on both axes.
  [[nodiscard]] Vec2 clamp_to_field(const Vec2& p) const;

 private:
  void check_zone(ZoneId z) const;

  double field_edge_;
  int per_side_;
  double zone_edge_;
};

}  // namespace dftmsn
