#include "geom/vec2.hpp"

namespace dftmsn {

Vec2 Vec2::normalized() const {
  const double n = norm();
  if (n == 0.0) return {};
  return {x / n, y / n};
}

double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

double distance2(const Vec2& a, const Vec2& b) { return (a - b).norm2(); }

Vec2 unit_from_angle(double radians) {
  return {std::cos(radians), std::sin(radians)};
}

}  // namespace dftmsn
