// Uniform-grid spatial index over node positions: disc queries touch only
// the cells overlapping the disc instead of every node (RTXP's "hot
// operations stay in the neighborhood" rule applied to the channel).
//
// Equivalence contract (test-enforced): for any field state, a disc query
// returns exactly the brute-force all-nodes scan result. That holds
// bitwise because (a) cached positions are copies of the doubles the
// models report, (b) membership uses the identical expression
// distance2(center, pos) <= range * range, and (c) cell coverage is
// conservative: clamping is monotone, so a node within `range` of the
// center always lies in a covered cell, including nodes straddling cell
// borders and pairs at exactly `range`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "geom/vec2.hpp"

namespace dftmsn {

class SpatialIndex {
 public:
  /// Cells are `cell_edge`-sized (clamped so the per-axis cell count
  /// stays in [1, 1024]) over a `field_edge` square. Positions slightly
  /// outside the field clamp into the border cells.
  SpatialIndex(double field_edge, double cell_edge);

  /// Registers node `id` at `p`. Ids must be added in order 0,1,2,...
  void insert(NodeId id, const Vec2& p);

  /// Moves node `id` to `p` (no-op bucket-wise if the cell is unchanged).
  void update(NodeId id, const Vec2& p);

  [[nodiscard]] std::size_t node_count() const { return pos_.size(); }
  [[nodiscard]] const Vec2& position(NodeId id) const { return pos_[id]; }
  [[nodiscard]] int cells_per_side() const { return per_side_; }

  /// Appends every node (other than `exclude`; pass kInvalidNode to keep
  /// all) with distance2(center, pos) <= range^2 to `out`, in ascending
  /// id order.
  void collect_in_disc(const Vec2& center, double range, NodeId exclude,
                       std::vector<NodeId>& out) const;

  /// True if any node other than `exclude` lies within `range` of
  /// `center`. Early-exits on the first hit.
  [[nodiscard]] bool any_in_disc(const Vec2& center, double range,
                                 NodeId exclude) const;

 private:
  [[nodiscard]] int axis_cell(double v) const;
  [[nodiscard]] std::int32_t cell_of(const Vec2& p) const;

  double cell_edge_;
  int per_side_;
  std::vector<std::vector<NodeId>> cells_;  ///< row-major cell buckets
  std::vector<std::int32_t> cell_index_;    ///< node id -> cell
  std::vector<Vec2> pos_;                   ///< node id -> cached position
};

}  // namespace dftmsn
