#include "geom/zone_grid.hpp"

#include <algorithm>
#include <cmath>

namespace dftmsn {

ZoneGrid::ZoneGrid(double field_edge, int per_side)
    : field_edge_(field_edge),
      per_side_(per_side),
      zone_edge_(field_edge / per_side) {
  if (field_edge <= 0) throw std::invalid_argument("ZoneGrid: field edge <= 0");
  if (per_side <= 0) throw std::invalid_argument("ZoneGrid: per_side <= 0");
}

ZoneId ZoneGrid::zone_of(const Vec2& p) const {
  const auto idx = [&](double v) {
    const int i = static_cast<int>(std::floor(v / zone_edge_));
    return std::clamp(i, 0, per_side_ - 1);
  };
  return idx(p.y) * per_side_ + idx(p.x);
}

void ZoneGrid::check_zone(ZoneId z) const {
  if (z < 0 || z >= zone_count())
    throw std::out_of_range("ZoneGrid: bad zone id");
}

Vec2 ZoneGrid::zone_center(ZoneId z) const {
  check_zone(z);
  const int col = z % per_side_;
  const int row = z / per_side_;
  return {(col + 0.5) * zone_edge_, (row + 0.5) * zone_edge_};
}

ZoneGrid::Bounds ZoneGrid::zone_bounds(ZoneId z) const {
  check_zone(z);
  const int col = z % per_side_;
  const int row = z / per_side_;
  return {{col * zone_edge_, row * zone_edge_},
          {(col + 1) * zone_edge_, (row + 1) * zone_edge_}};
}

bool ZoneGrid::contains(ZoneId z, const Vec2& p) const {
  return zone_of(p) == z;
}

Vec2 ZoneGrid::clamp_to_field(const Vec2& p) const {
  return {std::clamp(p.x, 0.0, field_edge_), std::clamp(p.y, 0.0, field_edge_)};
}

}  // namespace dftmsn
