#include "geom/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dftmsn {

SpatialIndex::SpatialIndex(double field_edge, double cell_edge) {
  if (field_edge <= 0)
    throw std::invalid_argument("SpatialIndex: field edge <= 0");
  if (cell_edge <= 0)
    throw std::invalid_argument("SpatialIndex: cell edge <= 0");
  per_side_ = std::clamp(
      static_cast<int>(std::ceil(field_edge / cell_edge)), 1, 1024);
  cell_edge_ = field_edge / per_side_;
  cells_.resize(static_cast<std::size_t>(per_side_) * per_side_);
}

int SpatialIndex::axis_cell(double v) const {
  const int i = static_cast<int>(std::floor(v / cell_edge_));
  return std::clamp(i, 0, per_side_ - 1);
}

std::int32_t SpatialIndex::cell_of(const Vec2& p) const {
  return axis_cell(p.y) * per_side_ + axis_cell(p.x);
}

void SpatialIndex::insert(NodeId id, const Vec2& p) {
  if (id != pos_.size())
    throw std::invalid_argument("SpatialIndex: nodes must insert in id order");
  const std::int32_t c = cell_of(p);
  pos_.push_back(p);
  cell_index_.push_back(c);
  cells_[static_cast<std::size_t>(c)].push_back(id);
}

void SpatialIndex::update(NodeId id, const Vec2& p) {
  pos_[id] = p;
  const std::int32_t c = cell_of(p);
  const std::int32_t old = cell_index_[id];
  if (c == old) return;
  auto& bucket = cells_[static_cast<std::size_t>(old)];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  cell_index_[id] = c;
  cells_[static_cast<std::size_t>(c)].push_back(id);
}

void SpatialIndex::collect_in_disc(const Vec2& center, double range,
                                   NodeId exclude,
                                   std::vector<NodeId>& out) const {
  const double r2 = range * range;
  const std::size_t first = out.size();
  const int x0 = axis_cell(center.x - range), x1 = axis_cell(center.x + range);
  const int y0 = axis_cell(center.y - range), y1 = axis_cell(center.y + range);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      for (const NodeId id : cells_[static_cast<std::size_t>(y) * per_side_ + x]) {
        if (id == exclude) continue;
        if (distance2(center, pos_[id]) <= r2) out.push_back(id);
      }
    }
  }
  // Brute force enumerates ascending ids; match it exactly.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

bool SpatialIndex::any_in_disc(const Vec2& center, double range,
                               NodeId exclude) const {
  const double r2 = range * range;
  const int x0 = axis_cell(center.x - range), x1 = axis_cell(center.x + range);
  const int y0 = axis_cell(center.y - range), y1 = axis_cell(center.y + range);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      for (const NodeId id : cells_[static_cast<std::size_t>(y) * per_side_ + x]) {
        if (id != exclude && distance2(center, pos_[id]) <= r2) return true;
      }
    }
  }
  return false;
}

}  // namespace dftmsn
