// 2-D vector math used by mobility and the channel range model.
#pragma once

#include <cmath>

namespace dftmsn {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

  [[nodiscard]] double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  [[nodiscard]] Vec2 normalized() const;
};

/// Euclidean distance between two points.
double distance(const Vec2& a, const Vec2& b);

/// Squared distance — preferred for range tests (no sqrt).
double distance2(const Vec2& a, const Vec2& b);

/// Unit vector at angle `radians` from the +x axis.
Vec2 unit_from_angle(double radians);

}  // namespace dftmsn
