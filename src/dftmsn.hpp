// Umbrella header: everything a downstream user of the dftmsn library
// normally needs. Individual subsystem headers remain available for
// finer-grained includes.
//
//   #include "dftmsn.hpp"
//
//   dftmsn::Config config;                 // paper-default scenario
//   auto result = dftmsn::run_once(config, dftmsn::ProtocolKind::kOpt);
#pragma once

// Configuration and identifiers.
#include "common/config.hpp"
#include "common/config_io.hpp"
#include "common/types.hpp"

// High-level experiment API.
#include "experiment/presets.hpp"
#include "experiment/runner.hpp"
#include "experiment/world.hpp"

// Building blocks for hand-assembled scenarios.
#include "mobility/mobility_manager.hpp"
#include "mobility/patrol_mobility.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/zone_mobility.hpp"
#include "node/sensor_node.hpp"
#include "node/sink_node.hpp"
#include "phy/channel.hpp"
#include "protocol/crosslayer_mac.hpp"
#include "protocol/protocol_factory.hpp"

// Analysis and tracing.
#include "analysis/delivery_models.hpp"
#include "analysis/lifetime.hpp"
#include "stats/metrics.hpp"
#include "stats/summary.hpp"
#include "trace/contact_analysis.hpp"
#include "trace/contact_probe.hpp"
#include "trace/recorder.hpp"
