// Wall-clock profiler: scoped RAII timers aggregated per subsystem.
//
// Unlike the Registry, profile data is *not* deterministic — it measures
// host wall-clock time and varies run to run, machine to machine. It is
// therefore kept out of the snapshot stream and reported in a separate
// `profile` section that determinism comparisons explicitly skip
// (scripts/validate_report.py --compare, the jobs-equivalence test).
// Enabling the profiler never perturbs the simulation trajectory: timers
// read the host clock only, never the sim clock, RNG or event queue.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace dftmsn::telemetry {

/// The hot paths the ROADMAP flags as profile-dominating at large n, plus
/// the checkpoint encode cost the supervisor pays per slice.
enum class Subsystem {
  kEventDispatch,   ///< executing one event callback (Simulator loop)
  kChannelScan,     ///< audience scan + lock bookkeeping in Channel::transmit
  kMobilityUpdate,  ///< one MobilityManager tick (positions + contact diff)
  kMacHandshake,    ///< CrossLayerMac frame handling (RTS/CTS/SCHED/DATA/ACK)
  kSnapshotEncode,  ///< World::save_state serialization
};
inline constexpr std::size_t kSubsystemCount = 5;

const char* subsystem_name(Subsystem s);

/// Aggregated wall-clock spend for one subsystem.
struct SubsystemStats {
  std::uint64_t calls = 0;
  double total_s = 0.0;
};

class Profiler {
 public:
  void add(Subsystem s, double seconds) {
    SubsystemStats& st = stats_[static_cast<std::size_t>(s)];
    ++st.calls;
    st.total_s += seconds;
  }

  [[nodiscard]] const SubsystemStats& stats(Subsystem s) const {
    return stats_[static_cast<std::size_t>(s)];
  }

  /// Element-wise accumulation (replication reduction).
  void merge(const Profiler& other) {
    for (std::size_t i = 0; i < kSubsystemCount; ++i) {
      stats_[i].calls += other.stats_[i].calls;
      stats_[i].total_s += other.stats_[i].total_s;
    }
  }

  [[nodiscard]] bool empty() const {
    for (const SubsystemStats& st : stats_)
      if (st.calls != 0) return false;
    return true;
  }

 private:
  std::array<SubsystemStats, kSubsystemCount> stats_{};
};

/// RAII timer. A null profiler makes construction and destruction a
/// pointer test each — the disabled path never reads the clock.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, Subsystem subsystem)
      : profiler_(profiler), subsystem_(subsystem) {
    if (profiler_) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (profiler_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      profiler_->add(subsystem_,
                     std::chrono::duration<double>(elapsed).count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* profiler_;
  Subsystem subsystem_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace dftmsn::telemetry
