// Deterministic sim-time sampler: emits periodic time-series rows through
// the existing TraceSink plumbing — per-node ξ (the forwarding strategy's
// local delivery-probability metric), data-queue fill, radio state and
// the cumulative unique-delivery count.
//
// Like ContactProbe it is a pure observer scheduled on the shared event
// queue: enabling it adds (read-only) events — so events_executed grows —
// but never changes any node's behaviour or random draws. It is opt-in
// via --timeseries-csv and deliberately NOT part of the --report-json
// path, which must stay bit-identical to an unsampled run.
#pragma once

#include <memory>
#include <vector>

#include "node/sensor_node.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "trace/trace.hpp"

namespace dftmsn::telemetry {

class TimeSeriesSampler {
 public:
  /// Samples every `period_s` of sim time, starting one period in.
  TimeSeriesSampler(Simulator& sim,
                    const std::vector<std::unique_ptr<SensorNode>>& sensors,
                    const Metrics& metrics, double period_s, TraceSink& sink);

  /// Starts sampling. Call once, after the nodes exist.
  void start();

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

 private:
  void sample();

  Simulator& sim_;
  const std::vector<std::unique_ptr<SensorNode>>& sensors_;
  const Metrics& metrics_;
  double period_s_;
  TraceSink& sink_;
  bool started_ = false;
  std::uint64_t samples_ = 0;
};

}  // namespace dftmsn::telemetry
