#include "telemetry/registry.hpp"

#include <cmath>
#include <stdexcept>

namespace dftmsn::telemetry {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  if (!(hi > lo) || !std::isfinite(lo) || !std::isfinite(hi))
    throw std::invalid_argument("telemetry: histogram needs finite hi > lo");
  if (buckets == 0)
    throw std::invalid_argument("telemetry: histogram needs >= 1 bucket");
  buckets_.assign(buckets, 0);
}

void Histogram::observe(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;  // FP edge at hi
    ++buckets_[idx];
  }
}

Counter* Registry::counter(const std::string& name) {
  return &counters_[name];
}

Gauge* Registry::gauge(const std::string& name) { return &gauges_[name]; }

Histogram* Registry::histogram(const std::string& name, double lo, double hi,
                               std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(lo, hi, buckets)).first;
    return &it->second;
  }
  Histogram& h = it->second;
  if (h.lo_ != lo || h.hi_ != hi || h.buckets_.size() != buckets)
    throw std::invalid_argument("telemetry: histogram '" + name +
                                "' re-registered with different buckets");
  return &h;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].value_ += c.value_;
  for (const auto& [name, g] : other.gauges_) gauges_[name].value_ = g.value_;
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    Histogram& mine = it->second;
    if (mine.lo_ != h.lo_ || mine.hi_ != h.hi_ ||
        mine.buckets_.size() != h.buckets_.size())
      throw std::invalid_argument("telemetry: merge of histogram '" + name +
                                  "' with different buckets");
    for (std::size_t i = 0; i < h.buckets_.size(); ++i)
      mine.buckets_[i] += h.buckets_[i];
    mine.underflow_ += h.underflow_;
    mine.overflow_ += h.overflow_;
    mine.sum_ += h.sum_;
    if (h.count_ > 0) {
      if (mine.count_ == 0) {
        mine.min_ = h.min_;
        mine.max_ = h.max_;
      } else {
        if (h.min_ < mine.min_) mine.min_ = h.min_;
        if (h.max_ > mine.max_) mine.max_ = h.max_;
      }
    }
    mine.count_ += h.count_;
  }
}

void Registry::save_state(snapshot::Writer& w) const {
  w.begin_section("telemetry");
  w.size(counters_.size());
  for (const auto& [name, c] : counters_) {
    w.str(name);
    w.u64(c.value_);
  }
  w.size(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    w.str(name);
    w.f64(g.value_);
  }
  w.size(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    w.str(name);
    w.f64(h.lo_);
    w.f64(h.hi_);
    w.size(h.buckets_.size());
    for (const std::uint64_t b : h.buckets_) w.u64(b);
    w.u64(h.underflow_);
    w.u64(h.overflow_);
    w.u64(h.count_);
    w.f64(h.sum_);
    w.f64(h.min_);
    w.f64(h.max_);
  }
  w.end_section();
}

void Registry::load_state(snapshot::Reader& r) {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  r.begin_section("telemetry");
  for (std::size_t i = 0, n = r.size(); i < n; ++i) {
    const std::string name = r.str();
    counters_[name].value_ = r.u64();
  }
  for (std::size_t i = 0, n = r.size(); i < n; ++i) {
    const std::string name = r.str();
    gauges_[name].value_ = r.f64();
  }
  for (std::size_t i = 0, n = r.size(); i < n; ++i) {
    const std::string name = r.str();
    const double lo = r.f64();
    const double hi = r.f64();
    const std::size_t buckets = r.size();
    Histogram h(lo, hi, buckets);
    for (std::size_t b = 0; b < buckets; ++b) h.buckets_[b] = r.u64();
    h.underflow_ = r.u64();
    h.overflow_ = r.u64();
    h.count_ = r.u64();
    h.sum_ = r.f64();
    h.min_ = r.f64();
    h.max_ = r.f64();
    histograms_.emplace(name, std::move(h));
  }
  r.end_section();
}

std::vector<std::uint8_t> Registry::serialize() const {
  snapshot::Writer w;
  save_state(w);
  return w.bytes();
}

}  // namespace dftmsn::telemetry
