#include "telemetry/status_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace dftmsn::telemetry {
namespace {

[[noreturn]] void sock_fail(const std::string& what) {
  throw std::runtime_error("status server: " + what + ": " +
                           std::strerror(errno));
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int code, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

StatusServer::StatusServer(int port, Handlers handlers)
    : handlers_(std::move(handlers)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) sock_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sock_fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sock_fail("listen");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    sock_fail("getsockname");
  port_ = static_cast<int>(ntohs(addr.sin_port));

  thread_ = std::thread([this] { serve(); });
}

StatusServer::~StatusServer() {
  quit_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void StatusServer::serve() {
  while (!quit_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // timeout or EINTR: re-check quit
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void StatusServer::handle_connection(int fd) {
  // One small request per connection; a peer that stalls mid-request is
  // dropped after a short poll so a misbehaving client cannot wedge the
  // listener (and with it, the sweep's shutdown).
  std::string req;
  char buf[2048];
  while (req.size() < 16 * 1024 &&
         req.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) return;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    req.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t eol = req.find("\r\n");
  if (eol == std::string::npos) return;
  const std::string line = req.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    write_all(fd, http_response(400, "Bad Request", "text/plain",
                                "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    write_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                                "only GET is served here\n"));
    return;
  }
  if (path == "/status") {
    write_all(fd, http_response(200, "OK", "application/json",
                                handlers_.status_json()));
    return;
  }
  if (path == "/metrics") {
    write_all(fd,
              http_response(200, "OK", "text/plain; version=0.0.4",
                            handlers_.metrics_text()));
    return;
  }
  if (path == "/healthz") {
    if (handlers_.healthy()) {
      write_all(fd, http_response(200, "OK", "application/json",
                                  "{\"status\": \"ok\"}\n"));
    } else {
      write_all(fd,
                http_response(503, "Service Unavailable", "application/json",
                              "{\"status\": \"unhealthy\"}\n"));
    }
    return;
  }
  write_all(fd, http_response(404, "Not Found", "text/plain",
                              "try /status, /healthz or /metrics\n"));
}

}  // namespace dftmsn::telemetry
