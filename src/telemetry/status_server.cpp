#include "telemetry/status_server.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>

#include "common/net_util.hpp"

namespace dftmsn::telemetry {
namespace {

// A single request may not exceed this, and a connection may not hold
// the listener's attention for longer than kConnDeadline overall — a
// slow-drip client that trickles one byte per poll is cut off exactly
// like a stalled one.
constexpr std::size_t kMaxRequestBytes = 16 * 1024;
constexpr double kConnDeadlineS = 2.0;

void write_all(int fd, const std::string& data) {
  try {
    net::write_full(fd, data.data(), data.size());
  } catch (const net::NetError&) {
    // peer went away; nothing useful to do
  }
}

std::string http_response(int code, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusServer::StatusServer(int port, Handlers handlers)
    : handlers_(std::move(handlers)) {
  try {
    listen_fd_ = net::listen_tcp("127.0.0.1", port, /*backlog=*/16);
    port_ = net::bound_port(listen_fd_);
  } catch (const net::NetError& e) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("status server: ") + e.what());
  }
  thread_ = std::thread([this] { serve(); });
}

StatusServer::~StatusServer() {
  quit_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void StatusServer::serve() {
  while (!quit_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int rc = 0;
    try {
      rc = net::poll_retry(&pfd, 1, /*timeout_ms=*/100);
    } catch (const net::NetError&) {
      return;  // listener fd is gone; shut the serving loop down
    }
    if (rc <= 0) continue;  // timeout: re-check quit
    int fd = -1;
    try {
      fd = net::accept_retry(listen_fd_);
    } catch (const net::NetError&) {
      return;
    }
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void StatusServer::handle_connection(int fd) {
  // One small request per connection, read under both a size cap and an
  // overall wall-clock deadline: a peer that stalls mid-request — or
  // drips one byte per poll round — is dropped so a misbehaving client
  // cannot wedge the listener (and with it, the sweep's shutdown).
  std::string req;
  char buf[2048];
  const double deadline = steady_now_s() + kConnDeadlineS;
  while (req.size() < kMaxRequestBytes &&
         req.find("\r\n\r\n") == std::string::npos) {
    const double remain = deadline - steady_now_s();
    if (remain <= 0.0) return;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    try {
      if (net::poll_retry(&pfd, 1,
                          static_cast<int>(remain * 1000.0) + 1) <= 0)
        continue;
    } catch (const net::NetError&) {
      return;
    }
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t eol = req.find("\r\n");
  if (eol == std::string::npos) return;
  const std::string line = req.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    write_all(fd, http_response(400, "Bad Request", "text/plain",
                                "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    write_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                                "only GET is served here\n"));
    return;
  }
  if (path == "/status") {
    write_all(fd, http_response(200, "OK", "application/json",
                                handlers_.status_json()));
    return;
  }
  if (path == "/metrics") {
    write_all(fd,
              http_response(200, "OK", "text/plain; version=0.0.4",
                            handlers_.metrics_text()));
    return;
  }
  if (path == "/healthz") {
    if (handlers_.healthy()) {
      write_all(fd, http_response(200, "OK", "application/json",
                                  "{\"status\": \"ok\"}\n"));
    } else {
      write_all(fd,
                http_response(503, "Service Unavailable", "application/json",
                              "{\"status\": \"unhealthy\"}\n"));
    }
    return;
  }
  write_all(fd, http_response(404, "Not Found", "text/plain",
                              "try /status, /healthz or /metrics\n"));
}

}  // namespace dftmsn::telemetry
