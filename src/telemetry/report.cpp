#include "telemetry/report.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/config_io.hpp"
#include "core/ftd_queue.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/snapshot_io.hpp"
#include "stats/summary.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/profiler.hpp"

namespace dftmsn::telemetry {
namespace {

void emit_summary(JsonWriter& j, const char* name, const Summary& s) {
  j.key(name);
  j.open_object();
  j.key("count"); j.num(static_cast<std::uint64_t>(s.count()));
  j.key("mean"); j.num(s.mean());
  j.key("stddev"); j.num(s.stddev());
  j.key("min"); j.num(s.count() == 0 ? 0.0 : s.min());
  j.key("max"); j.num(s.count() == 0 ? 0.0 : s.max());
  j.key("ci95"); j.num(s.ci95_half_width());
  j.close_object();
}

std::string digest_hex(std::uint64_t d) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(d));
  return buf;
}

}  // namespace

std::string render_report_json(const ReportInputs& inputs) {
  if (inputs.config == nullptr || inputs.runs == nullptr)
    throw std::invalid_argument("report: config and runs are required");
  const Config& cfg = *inputs.config;
  const std::vector<RunResult>& runs = *inputs.runs;
  const ReplicatedResult agg = reduce_results(runs);

  JsonWriter j;
  j.open_object();
  j.key("schema"); j.str("dftmsn-report-v1");
  j.key("protocol"); j.str(protocol_kind_name(inputs.kind));
  j.key("replications"); j.num(static_cast<std::uint64_t>(runs.size()));
  j.key("config_digest"); j.str(digest_hex(config_digest(cfg, inputs.kind)));

  j.key("config");
  j.open_object();
  for (const std::string& kv : list_config_keys(cfg)) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) continue;
    j.key(kv.substr(0, eq));
    j.str(kv.substr(eq + 1));  // values as strings: no reformat drift
  }
  j.close_object();

  j.key("summary");
  j.open_object();
  emit_summary(j, "delivery_ratio", agg.delivery_ratio);
  emit_summary(j, "mean_power_mw", agg.mean_power_mw);
  emit_summary(j, "mean_delay_s", agg.mean_delay_s);
  emit_summary(j, "overhead_bits_per_delivery", agg.overhead_bits_per_delivery);
  emit_summary(j, "collisions", agg.collisions);
  emit_summary(j, "fairness_jain", agg.fairness_jain);
  j.close_object();

  std::uint64_t generated = 0, delivered = 0, attempts = 0, failed = 0;
  std::uint64_t data_tx = 0, collisions = 0, events = 0;
  std::uint64_t d_over = 0, d_thresh = 0, d_deliv = 0, d_fail = 0;
  std::uint64_t f_inj = 0, f_corrupt = 0, f_sweeps = 0;
  for (const RunResult& r : runs) {
    generated += r.generated;
    delivered += r.delivered;
    attempts += r.attempts;
    failed += r.failed_attempts;
    data_tx += r.data_transmissions;
    collisions += r.collisions;
    events += r.events_executed;
    d_over += r.drops_overflow;
    d_thresh += r.drops_threshold;
    d_deliv += r.drops_delivered;
    d_fail += r.drops_node_failure;
    f_inj += r.faults_injected;
    f_corrupt += r.frames_fault_corrupted;
    f_sweeps += r.invariant_sweeps;
  }

  j.key("totals");
  j.open_object();
  j.key("generated"); j.num(generated);
  j.key("delivered"); j.num(delivered);
  j.key("attempts"); j.num(attempts);
  j.key("failed_attempts"); j.num(failed);
  j.key("data_transmissions"); j.num(data_tx);
  j.key("collisions"); j.num(collisions);
  j.key("events_executed"); j.num(events);
  j.close_object();

  j.key("drops");
  j.open_object();
  j.key(drop_reason_name(DropReason::kOverflow)); j.num(d_over);
  j.key(drop_reason_name(DropReason::kFtdThreshold)); j.num(d_thresh);
  j.key(drop_reason_name(DropReason::kDelivered)); j.num(d_deliv);
  j.key(drop_reason_name(DropReason::kNodeFailure)); j.num(d_fail);
  j.close_object();

  j.key("faults");
  j.open_object();
  j.key("injected"); j.num(f_inj);
  j.key("frames_corrupted"); j.num(f_corrupt);
  j.key("invariant_sweeps"); j.num(f_sweeps);
  j.close_object();

  j.key("supervisor");
  j.open_object();
  j.key("supervised"); j.boolean(inputs.supervisor.supervised);
  j.key("completed"); j.num(inputs.supervisor.completed);
  j.key("retried"); j.num(inputs.supervisor.retried);
  j.key("quarantined"); j.num(inputs.supervisor.quarantined);
  j.key("interrupted"); j.num(inputs.supervisor.interrupted);
  j.key("checkpoints"); j.num(inputs.supervisor.checkpoints);
  j.close_object();

  j.key("telemetry");
  j.open_object();
  j.key("counters");
  j.open_object();
  if (inputs.telemetry) {
    for (const auto& [name, c] : inputs.telemetry->registry.counters()) {
      j.key(name);
      j.num(c.value());
    }
  }
  j.close_object();
  j.key("gauges");
  j.open_object();
  if (inputs.telemetry) {
    for (const auto& [name, g] : inputs.telemetry->registry.gauges()) {
      j.key(name);
      j.num(g.value());
    }
  }
  j.close_object();
  j.key("histograms");
  j.open_object();
  if (inputs.telemetry) {
    for (const auto& [name, h] : inputs.telemetry->registry.histograms()) {
      j.key(name);
      j.open_object();
      j.key("lo"); j.num(h.lo());
      j.key("hi"); j.num(h.hi());
      j.key("count"); j.num(h.count());
      j.key("sum"); j.num(h.sum());
      j.key("min"); j.num(h.min());
      j.key("max"); j.num(h.max());
      j.key("underflow"); j.num(h.underflow());
      j.key("overflow"); j.num(h.overflow());
      j.key("buckets");
      j.open_array();
      for (const std::uint64_t b : h.buckets()) j.num(b);
      j.close_array();
      j.close_object();
    }
  }
  j.close_object();
  j.close_object();

  // Host wall-clock timings: nondeterministic by nature, so this section
  // comes last and only when profiling actually ran — determinism
  // comparisons strip the "profile" key and compare the rest bytewise.
  if (inputs.telemetry && !inputs.telemetry->profile.empty()) {
    j.key("profile");
    j.open_object();
    for (std::size_t i = 0; i < kSubsystemCount; ++i) {
      const auto s = static_cast<Subsystem>(i);
      const SubsystemStats& st = inputs.telemetry->profile.stats(s);
      j.key(subsystem_name(s));
      j.open_object();
      j.key("calls"); j.num(st.calls);
      j.key("total_s"); j.num(st.total_s);
      j.close_object();
    }
    j.close_object();
  }

  j.close_object();
  std::string out = j.take();
  out += '\n';
  return out;
}

void write_report_json(const std::string& path, const ReportInputs& inputs) {
  const std::string doc = render_report_json(inputs);
  snapshot::write_file_atomic(
      path, std::vector<std::uint8_t>(doc.begin(), doc.end()));
}

}  // namespace dftmsn::telemetry
