// Append-only lifecycle trace for supervised sweeps, in the Chrome
// trace-event JSON format (one event object per line). Perfetto and
// chrome://tracing accept a truncated event array, so the file opens
// with "[" and never needs a closing bracket — a supervisor that dies
// mid-sweep (the exact situation a trace exists to diagnose) still
// leaves a loadable file.
//
// Mapping: pid 1 is the sweep, tid = spec index, "B"/"E" spans bracket
// each replication attempt, "i" instants mark checkpoints, watchdog
// trips, worker spawns, SIGKILLs, retries and quarantines. Timestamps
// are wall microseconds since the trace was opened (steady clock).
//
// Determinism note: the trace carries wall-clock timestamps and is
// therefore *not* a canonical artifact — it never feeds back into a
// manifest, report, or trajectory (test-enforced along with the rest of
// the observability plane).
#pragma once

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dftmsn::telemetry {

class LifecycleTrace {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// Opens (truncates) the trace file and writes the array opener.
  /// Throws std::runtime_error when the path cannot be opened.
  explicit LifecycleTrace(const std::string& path);
  ~LifecycleTrace();

  LifecycleTrace(const LifecycleTrace&) = delete;
  LifecycleTrace& operator=(const LifecycleTrace&) = delete;

  /// Span open/close for one replication attempt of spec `spec`.
  void begin(std::size_t spec, const std::string& name,
             const Args& args = {});
  void end(std::size_t spec, const std::string& name);
  /// A point event (checkpoint, retry, sigkill, quarantine, ...).
  void instant(std::size_t spec, const std::string& name,
               const Args& args = {});

 private:
  void emit(char ph, std::size_t spec, const std::string& name,
            const Args& args);

  std::mutex mu_;
  std::FILE* f_ = nullptr;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace dftmsn::telemetry
