#include "telemetry/sampler.hpp"

#include <stdexcept>

namespace dftmsn::telemetry {

TimeSeriesSampler::TimeSeriesSampler(
    Simulator& sim, const std::vector<std::unique_ptr<SensorNode>>& sensors,
    const Metrics& metrics, double period_s, TraceSink& sink)
    : sim_(sim),
      sensors_(sensors),
      metrics_(metrics),
      period_s_(period_s),
      sink_(sink) {
  if (period_s <= 0)
    throw std::invalid_argument("TimeSeriesSampler: period <= 0");
}

void TimeSeriesSampler::start() {
  if (started_) return;
  started_ = true;
  sim_.schedule_in(period_s_, [this] { sample(); });
}

void TimeSeriesSampler::sample() {
  const SimTime now = sim_.now();
  for (const auto& node : sensors_) {
    const NodeId id = node->id();
    sink_.record(TraceEvent{TraceEventType::kSampleXi, now, id, kInvalidNode,
                            0, node->mac().strategy().local_metric()});
    sink_.record(TraceEvent{TraceEventType::kSampleBuffer, now, id,
                            kInvalidNode, 0,
                            static_cast<double>(node->queue().size())});
    sink_.record(
        TraceEvent{TraceEventType::kSampleRadio, now, id, kInvalidNode, 0,
                   static_cast<double>(node->radio().state())});
  }
  // One network-wide row per tick: cumulative unique deliveries.
  sink_.record(TraceEvent{TraceEventType::kSampleDeliveries, now, kInvalidNode,
                          kInvalidNode, 0,
                          static_cast<double>(metrics_.delivered_unique())});
  ++samples_;
  sim_.schedule_in(period_s_, [this] { sample(); });
}

}  // namespace dftmsn::telemetry
