// A deliberately small JSON reader for the documents this codebase
// itself emits (status.json, lifecycle trace lines). Full JSON grammar
// — objects, arrays, strings with escapes, numbers, booleans, null —
// but none of the streaming/SAX machinery a general library carries.
// Object member order is preserved (insertion order), matching the
// canonical emitters on the write side.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dftmsn::telemetry {

struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  /// First member with this key, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // Typed lookups with defaults — `find` + kind check in one call, for
  // readers that tolerate missing fields.
  [[nodiscard]] double number_or(const std::string& key, double def) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& def) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool def) const;
};

/// Parses one JSON document. Trailing content after the value (other
/// than whitespace) is an error. Throws std::runtime_error naming the
/// byte offset of the problem.
JsonValue parse_json(const std::string& text);

}  // namespace dftmsn::telemetry
