// Live sweep observability: the StatusBoard aggregates per-spec
// lifecycle state, executed-event throughput and an ETA estimate while
// a supervised sweep runs, and renders three views of it — the
// canonical status.json document ("dftmsn-status-v1"), Prometheus text
// exposition for /metrics, and a human progress table for
// `dftmsn_cli --status DIR`.
//
// Contract (shared with the rest of the telemetry layer, and enforced
// by tier1-status): the board only *observes*. The supervisor feeds it
// at state transitions and a sampling thread reads the same progress
// counters the watchdog already reads; nothing here is allowed to
// perturb a trajectory, a manifest byte, or a --report-json byte.
//
// All mutators and renderers are mutex-serialized: the supervisor's
// runner threads, the watchdog, the sampling thread and the HTTP
// listener all touch one board concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace dftmsn::telemetry {

struct JsonValue;

/// Per-spec lifecycle phase as the observability plane reports it —
/// finer-grained than the manifest's SpecStatus (which has no
/// running/checkpointed/retrying states because it only records
/// outcomes).
enum class SpecPhase : std::uint8_t {
  kPending,       ///< not started yet
  kRunning,       ///< an attempt is executing
  kCheckpointed,  ///< running, and at least one checkpoint landed
  kRetrying,      ///< last attempt failed; waiting out backoff / restarting
  kQuarantined,   ///< retries exhausted, gave up (terminal)
  kDone,          ///< completed, result accepted (terminal)
  kInterrupted,   ///< external stop (terminal for this sweep)
};
inline constexpr int kSpecPhaseCount = 7;
const char* spec_phase_name(SpecPhase p);

/// One spec's row in a snapshot.
struct SpecProgress {
  SpecPhase phase = SpecPhase::kPending;
  std::uint64_t events = 0;      ///< executed events, current attempt
  double sim_time_s = 0.0;       ///< virtual time reached, current attempt
  std::uint64_t checkpoints = 0; ///< checkpoints written, all attempts
  int retries = 0;               ///< restarts consumed
  std::string detail;            ///< last failure message; empty when clean
};

/// One connected pull-mode worker as the dispatcher reports it
/// (--dispatch-port sweeps only; see experiment/dispatch.hpp).
struct DispatchWorkerRow {
  std::string name;
  bool connected = false;
  std::uint64_t active_specs = 0;  ///< specs currently leased to it
};

/// Dispatcher lifecycle counters. The dispatcher owns the authoritative
/// tallies and pushes whole snapshots (it is single-threaded), so the
/// board never has to reconstruct them from events.
struct DispatchCounters {
  std::uint64_t batches_granted = 0;
  std::uint64_t results_accepted = 0;
  std::uint64_t duplicates_discarded = 0;
  std::uint64_t requeues = 0;        ///< transport requeues (lost lease/conn)
  std::uint64_t leases_expired = 0;
};

/// A consistent copy of the whole board (one lock, then render/inspect
/// without holding it).
struct StatusSnapshot {
  double wall_s = 0.0;            ///< wall clock of the last sample()
  std::uint64_t phase_counts[kSpecPhaseCount] = {};
  std::uint64_t events_executed = 0;
  double events_per_sec_ema = 0.0;  ///< 0 until two samples exist
  double progress = 0.0;            ///< [0,1] mean sim-time fraction
  double eta_s = -1.0;              ///< -1 while unknown
  bool healthy = true;
  std::uint64_t retries_total = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t worker_spawns = 0;
  std::uint64_t sigkills = 0;
  std::uint64_t checkpoints_total = 0;
  std::vector<SpecProgress> specs;
  /// Dispatch plane; rendered only when a dispatcher armed the board,
  /// so non-dispatched sweeps keep byte-identical status documents.
  bool dispatch_enabled = false;
  DispatchCounters dispatch;
  std::vector<DispatchWorkerRow> dispatch_workers;
};

class StatusBoard {
 public:
  /// Arms the board for a sweep of n specs; horizons[i] is spec i's
  /// simulated duration (the denominator of its progress fraction).
  void reset(std::size_t n, const std::vector<double>& horizons);

  // --- transitions (supervisor / watchdog threads) ---------------------
  void mark_running(std::size_t i, int attempt);
  /// `count` new checkpoints observed (phase becomes kCheckpointed while
  /// the attempt keeps running).
  void mark_checkpoint(std::size_t i, std::uint64_t count);
  /// Overwrites spec i's checkpoint count with the supervisor's
  /// authoritative tally (the sampler's delta accumulation can lag one
  /// poll interval at a terminal transition).
  void sync_checkpoints(std::size_t i, std::uint64_t total);
  void mark_retrying(std::size_t i, int retries, const std::string& reason);
  void mark_quarantined(std::size_t i, const std::string& reason);
  void mark_done(std::size_t i);
  void mark_interrupted(std::size_t i, const std::string& reason);
  /// Watchdog fired for spec i: counts a trip and holds /healthz at 503
  /// until the spec leaves the stalled state via retry or a terminal
  /// transition.
  void mark_watchdog(std::size_t i);
  void mark_worker_spawn(std::size_t i);
  void mark_sigkill(std::size_t i);

  // --- dispatch plane (dispatcher thread) ------------------------------
  /// Arms the dispatch section of status.json and /metrics. Called once
  /// by the dispatcher before it starts granting leases.
  void dispatch_enable();
  /// Upserts one worker row (keyed by name, insertion-ordered).
  void dispatch_worker(const std::string& name, bool connected,
                       std::uint64_t active_specs);
  /// Overwrites the dispatcher counter totals.
  void dispatch_update(const DispatchCounters& totals);

  // --- sampled data (sampling thread) ----------------------------------
  void update_progress(std::size_t i, std::uint64_t events, double sim_time_s);
  /// Folds a completed spec's instrument registry into the merged view
  /// /metrics exposes. Call once per completed spec.
  void absorb_registry(const Registry& r);

  /// Recomputes throughput EMA (alpha 0.25 over instantaneous
  /// events/sec), overall progress and ETA as of wall_s seconds since
  /// sweep start. Wall time is injected — not read from a clock — so
  /// the math is unit-testable on hand-computed inputs.
  void sample(double wall_s);

  [[nodiscard]] bool healthy() const;
  [[nodiscard]] StatusSnapshot snapshot() const;

  // --- renderers -------------------------------------------------------
  [[nodiscard]] std::string render_status_json() const;
  [[nodiscard]] std::string render_prometheus() const;

 private:
  struct Row {
    SpecProgress p;
    double horizon = 0.0;
    bool stalled = false;
  };

  [[nodiscard]] StatusSnapshot snapshot_locked() const;

  mutable std::mutex mu_;
  std::vector<Row> rows_;
  Registry merged_;
  double wall_ = 0.0;
  double last_wall_ = -1.0;
  std::uint64_t last_events_ = 0;
  double ema_ = -1.0;  ///< <0: unseeded
  double progress_ = 0.0;
  double eta_ = -1.0;
  std::uint64_t retries_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t spawns_ = 0;
  std::uint64_t sigkills_ = 0;
  bool dispatch_enabled_ = false;
  DispatchCounters dispatch_;
  std::vector<DispatchWorkerRow> dispatch_workers_;
};

/// Renders the human progress table `dftmsn_cli --status DIR` prints,
/// from a parsed status.json document (reader side only needs the file).
std::string render_status_table(const JsonValue& status);

}  // namespace dftmsn::telemetry
