#include "telemetry/json_value.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace dftmsn::telemetry {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.b = true;
      return v;
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.b = false;
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue{};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our emitters; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') fail("bad number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.num = v;
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->num : def;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->str : def;
}

bool JsonValue::bool_or(const std::string& key, bool def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->b : def;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace dftmsn::telemetry
