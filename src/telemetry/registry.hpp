// Metrics registry: named counters, gauges and fixed-bucket histograms
// collected per run. One Registry belongs to one World (no global state,
// so parallel replications never share instruments) and is filled only
// through pointers resolved once at wiring time — the hot-path probe is a
// single null check plus an array increment (see probes.hpp).
//
// Determinism contract: instruments are pure observers. Creating,
// observing or serializing them never touches the event queue or any
// random stream, so a run with telemetry enabled follows a bit-identical
// trajectory to the same run without it. Iteration and serialization
// order is the instrument name order (std::map), making the serialized
// form canonical: two registries with equal logical content produce equal
// bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "snapshot/snapshot_io.hpp"

namespace dftmsn::telemetry {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  friend class Registry;
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class Registry;
  double value_ = 0.0;
};

/// Fixed-bucket linear histogram over [lo, hi): `buckets` equal-width
/// bins plus explicit underflow/overflow bins, with running count, sum,
/// min and max. Bucket geometry is fixed at registration so merging two
/// runs' histograms is a plain element-wise sum.
class Histogram {
 public:
  void observe(double v);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// 0 when empty (JSON-friendly; the raw extremes are meaningless then).
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  friend class Registry;
  Histogram(double lo, double hi, std::size_t buckets);

  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Registry {
 public:
  /// Finds or creates the named instrument. Pointers stay valid for the
  /// Registry's lifetime (node-based storage), so callers resolve them
  /// once and probe through the pointer. Not thread-safe: each World owns
  /// its Registry and runs on one thread.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// Re-requesting an existing histogram with different bucket geometry
  /// throws std::invalid_argument (the merged form would be undefined).
  Histogram* histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Element-wise accumulation (replication reduction, in input order):
  /// counters and histogram bins add, gauges take `other`'s value (the
  /// later replication wins, deterministically). Histograms present in
  /// both registries must share bucket geometry.
  void merge(const Registry& other);

  /// Canonical snapshot: every instrument in name order. load_state
  /// replaces the whole registry content — callers that resolved
  /// instrument pointers before a load must re-resolve (names persist,
  /// map nodes do not).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

  /// Canonical byte form of save_state alone (tests, equality checks).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dftmsn::telemetry
