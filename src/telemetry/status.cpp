#include "telemetry/status.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "telemetry/json_value.hpp"
#include "telemetry/json_writer.hpp"

namespace dftmsn::telemetry {
namespace {

/// EMA weight of the newest instantaneous rate sample. 0.25 smooths the
/// sawtooth a checkpoint pause puts into instantaneous throughput while
/// still converging within a handful of samples.
constexpr double kEmaAlpha = 0.25;

/// Prometheus metric names admit [a-zA-Z0-9_:]; registry instrument
/// names use dots (mac.rts_tx), which map to underscores.
std::string prometheus_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

void prom_line(std::ostringstream& os, const std::string& name,
               const std::string& labels, const std::string& value) {
  os << name;
  if (!labels.empty()) os << '{' << labels << '}';
  os << ' ' << value << '\n';
}

void prom_header(std::ostringstream& os, const std::string& name,
                 const char* type, const char* help) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

const char* spec_phase_name(SpecPhase p) {
  switch (p) {
    case SpecPhase::kPending: return "pending";
    case SpecPhase::kRunning: return "running";
    case SpecPhase::kCheckpointed: return "checkpointed";
    case SpecPhase::kRetrying: return "retrying";
    case SpecPhase::kQuarantined: return "quarantined";
    case SpecPhase::kDone: return "done";
    case SpecPhase::kInterrupted: return "interrupted";
  }
  return "?";
}

void StatusBoard::reset(std::size_t n, const std::vector<double>& horizons) {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.assign(n, Row{});
  for (std::size_t i = 0; i < n && i < horizons.size(); ++i)
    rows_[i].horizon = horizons[i];
  merged_ = Registry();
  wall_ = 0.0;
  last_wall_ = -1.0;
  last_events_ = 0;
  ema_ = -1.0;
  progress_ = 0.0;
  eta_ = -1.0;
  retries_ = trips_ = spawns_ = sigkills_ = 0;
  dispatch_enabled_ = false;
  dispatch_ = DispatchCounters{};
  dispatch_workers_.clear();
}

void StatusBoard::dispatch_enable() {
  std::lock_guard<std::mutex> lock(mu_);
  dispatch_enabled_ = true;
}

void StatusBoard::dispatch_worker(const std::string& name, bool connected,
                                  std::uint64_t active_specs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (DispatchWorkerRow& w : dispatch_workers_) {
    if (w.name != name) continue;
    w.connected = connected;
    w.active_specs = active_specs;
    return;
  }
  dispatch_workers_.push_back({name, connected, active_specs});
}

void StatusBoard::dispatch_update(const DispatchCounters& totals) {
  std::lock_guard<std::mutex> lock(mu_);
  dispatch_ = totals;
}

void StatusBoard::mark_running(std::size_t i, int attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  Row& r = rows_[i];
  r.p.phase = SpecPhase::kRunning;
  r.p.retries = attempt;
  r.p.events = 0;
  r.p.sim_time_s = 0.0;
  r.stalled = false;
}

void StatusBoard::mark_checkpoint(std::size_t i, std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  Row& r = rows_[i];
  // Terminal rows hold the authoritative sync_checkpoints() tally; a
  // stale sampler delta arriving after it must not double-count.
  if (r.p.phase == SpecPhase::kDone || r.p.phase == SpecPhase::kQuarantined ||
      r.p.phase == SpecPhase::kInterrupted)
    return;
  r.p.checkpoints += count;
  if (r.p.phase == SpecPhase::kRunning) r.p.phase = SpecPhase::kCheckpointed;
}

void StatusBoard::sync_checkpoints(std::size_t i, std::uint64_t total) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  rows_[i].p.checkpoints = total;
}

void StatusBoard::mark_retrying(std::size_t i, int retries,
                                const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  Row& r = rows_[i];
  r.p.phase = SpecPhase::kRetrying;
  r.p.retries = retries;
  r.p.detail = reason;
  r.stalled = false;
  ++retries_;
}

void StatusBoard::mark_quarantined(std::size_t i, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  Row& r = rows_[i];
  r.p.phase = SpecPhase::kQuarantined;
  r.p.detail = reason;
  r.stalled = false;
}

void StatusBoard::mark_done(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  Row& r = rows_[i];
  r.p.phase = SpecPhase::kDone;
  r.p.detail.clear();
  r.p.sim_time_s = r.horizon;
  r.stalled = false;
}

void StatusBoard::mark_interrupted(std::size_t i, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  Row& r = rows_[i];
  r.p.phase = SpecPhase::kInterrupted;
  r.p.detail = reason;
  r.stalled = false;
}

void StatusBoard::mark_watchdog(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  rows_[i].stalled = true;
  ++trips_;
}

void StatusBoard::mark_worker_spawn(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  ++spawns_;
}

void StatusBoard::mark_sigkill(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  ++sigkills_;
}

void StatusBoard::update_progress(std::size_t i, std::uint64_t events,
                                  double sim_time_s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= rows_.size()) return;
  Row& r = rows_[i];
  // Terminal rows keep their final values; a stale sampler read of a
  // recycled slot must not rewind them.
  if (r.p.phase == SpecPhase::kDone || r.p.phase == SpecPhase::kQuarantined ||
      r.p.phase == SpecPhase::kInterrupted)
    return;
  r.p.events = events;
  r.p.sim_time_s = sim_time_s;
}

void StatusBoard::absorb_registry(const Registry& r) {
  std::lock_guard<std::mutex> lock(mu_);
  merged_.merge(r);
}

void StatusBoard::sample(double wall_s) {
  std::lock_guard<std::mutex> lock(mu_);
  wall_ = wall_s;

  std::uint64_t events = 0;
  double fraction_sum = 0.0;
  for (const Row& r : rows_) {
    events += r.p.events;
    if (r.p.phase == SpecPhase::kDone) {
      fraction_sum += 1.0;
    } else if (r.horizon > 0.0) {
      fraction_sum += std::clamp(r.p.sim_time_s / r.horizon, 0.0, 1.0);
    }
  }
  progress_ = rows_.empty() ? 0.0 : fraction_sum / double(rows_.size());

  if (last_wall_ >= 0.0 && wall_s > last_wall_) {
    // A retry resets a spec's per-attempt counter, so the total can step
    // backwards; a negative instantaneous rate is meaningless — clamp.
    const double delta =
        events >= last_events_ ? double(events - last_events_) : 0.0;
    const double inst = delta / (wall_s - last_wall_);
    ema_ = ema_ < 0.0 ? inst : kEmaAlpha * inst + (1.0 - kEmaAlpha) * ema_;
  }
  last_wall_ = wall_s;
  last_events_ = events;

  if (progress_ >= 1.0) {
    eta_ = 0.0;
  } else if (progress_ > 0.0 && wall_s > 0.0) {
    eta_ = wall_s * (1.0 - progress_) / progress_;
  } else {
    eta_ = -1.0;
  }
}

bool StatusBoard::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Row& r : rows_)
    if (r.stalled || r.p.phase == SpecPhase::kQuarantined) return false;
  return true;
}

StatusSnapshot StatusBoard::snapshot_locked() const {
  StatusSnapshot s;
  s.wall_s = wall_;
  s.events_per_sec_ema = ema_ < 0.0 ? 0.0 : ema_;
  s.progress = progress_;
  s.eta_s = eta_;
  s.retries_total = retries_;
  s.watchdog_trips = trips_;
  s.worker_spawns = spawns_;
  s.sigkills = sigkills_;
  s.healthy = true;
  s.specs.reserve(rows_.size());
  for (const Row& r : rows_) {
    s.specs.push_back(r.p);
    s.phase_counts[static_cast<std::size_t>(r.p.phase)]++;
    s.events_executed += r.p.events;
    s.checkpoints_total += r.p.checkpoints;
    if (r.stalled || r.p.phase == SpecPhase::kQuarantined) s.healthy = false;
  }
  s.dispatch_enabled = dispatch_enabled_;
  s.dispatch = dispatch_;
  s.dispatch_workers = dispatch_workers_;
  return s;
}

StatusSnapshot StatusBoard::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked();
}

std::string StatusBoard::render_status_json() const {
  const StatusSnapshot s = snapshot();

  JsonWriter j;
  j.open_object();
  j.key("schema"); j.str("dftmsn-status-v1");
  j.key("wall_s"); j.num(s.wall_s);
  j.key("healthy"); j.boolean(s.healthy);
  j.key("specs_total"); j.num(static_cast<std::uint64_t>(s.specs.size()));
  j.key("phases");
  j.open_object();
  for (int p = 0; p < kSpecPhaseCount; ++p) {
    j.key(spec_phase_name(static_cast<SpecPhase>(p)));
    j.num(s.phase_counts[p]);
  }
  j.close_object();
  j.key("events_executed"); j.num(s.events_executed);
  j.key("events_per_sec_ema"); j.num(s.events_per_sec_ema);
  j.key("progress"); j.num(s.progress);
  j.key("eta_s"); j.num(s.eta_s);
  j.key("retries_total"); j.num(s.retries_total);
  j.key("watchdog_trips"); j.num(s.watchdog_trips);
  j.key("worker_spawns"); j.num(s.worker_spawns);
  j.key("sigkills"); j.num(s.sigkills);
  j.key("checkpoints_total"); j.num(s.checkpoints_total);
  if (s.dispatch_enabled) {
    // Only dispatched sweeps carry this section: the validator ignores
    // unknown keys, and non-dispatched documents stay byte-identical to
    // pre-dispatch builds.
    j.key("dispatch");
    j.open_object();
    j.key("batches_granted"); j.num(s.dispatch.batches_granted);
    j.key("results_accepted"); j.num(s.dispatch.results_accepted);
    j.key("duplicates_discarded"); j.num(s.dispatch.duplicates_discarded);
    j.key("requeues"); j.num(s.dispatch.requeues);
    j.key("leases_expired"); j.num(s.dispatch.leases_expired);
    j.key("workers");
    j.open_array();
    for (const DispatchWorkerRow& w : s.dispatch_workers) {
      j.open_object();
      j.key("name"); j.str(w.name);
      j.key("connected"); j.boolean(w.connected);
      j.key("active_specs"); j.num(w.active_specs);
      j.close_object();
    }
    j.close_array();
    j.close_object();
  }
  j.key("specs");
  j.open_array();
  for (std::size_t i = 0; i < s.specs.size(); ++i) {
    const SpecProgress& p = s.specs[i];
    j.open_object();
    j.key("index"); j.num(static_cast<std::uint64_t>(i));
    j.key("phase"); j.str(spec_phase_name(p.phase));
    j.key("events"); j.num(p.events);
    j.key("sim_time_s"); j.num(p.sim_time_s);
    j.key("checkpoints"); j.num(p.checkpoints);
    j.key("retries"); j.num(p.retries);
    j.key("detail"); j.str(p.detail);
    j.close_object();
  }
  j.close_array();
  j.close_object();
  std::string out = j.take();
  out += '\n';
  return out;
}

std::string StatusBoard::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  const StatusSnapshot s = snapshot_locked();

  std::ostringstream os;
  prom_header(os, "dftmsn_up", "gauge", "1 while the sweep is running.");
  prom_line(os, "dftmsn_up", "", "1");
  prom_header(os, "dftmsn_healthy", "gauge",
              "1 when no spec is stalled or quarantined (healthz).");
  prom_line(os, "dftmsn_healthy", "", s.healthy ? "1" : "0");
  prom_header(os, "dftmsn_specs_total", "gauge",
              "Replication specs in this sweep.");
  prom_line(os, "dftmsn_specs_total", "",
            std::to_string(s.specs.size()));
  prom_header(os, "dftmsn_specs", "gauge",
              "Specs by lifecycle phase.");
  for (int p = 0; p < kSpecPhaseCount; ++p)
    prom_line(os, "dftmsn_specs",
              std::string("phase=\"") +
                  spec_phase_name(static_cast<SpecPhase>(p)) + "\"",
              std::to_string(s.phase_counts[p]));
  prom_header(os, "dftmsn_events_executed_total", "counter",
              "Executed simulation events across running attempts.");
  prom_line(os, "dftmsn_events_executed_total", "",
            std::to_string(s.events_executed));
  prom_header(os, "dftmsn_events_per_second", "gauge",
              "Throughput EMA over all specs.");
  prom_line(os, "dftmsn_events_per_second", "",
            json_format_double(s.events_per_sec_ema));
  prom_header(os, "dftmsn_progress_ratio", "gauge",
              "Mean sim-time fraction over all specs, 0..1.");
  prom_line(os, "dftmsn_progress_ratio", "", json_format_double(s.progress));
  prom_header(os, "dftmsn_eta_seconds", "gauge",
              "Estimated wall seconds to completion (-1 unknown).");
  prom_line(os, "dftmsn_eta_seconds", "", json_format_double(s.eta_s));
  prom_header(os, "dftmsn_retries_total", "counter",
              "Replication attempts that failed and were retried.");
  prom_line(os, "dftmsn_retries_total", "", std::to_string(s.retries_total));
  prom_header(os, "dftmsn_watchdog_trips_total", "counter",
              "Watchdog no-progress trips.");
  prom_line(os, "dftmsn_watchdog_trips_total", "",
            std::to_string(s.watchdog_trips));
  prom_header(os, "dftmsn_worker_spawns_total", "counter",
              "Isolated worker processes spawned.");
  prom_line(os, "dftmsn_worker_spawns_total", "",
            std::to_string(s.worker_spawns));
  prom_header(os, "dftmsn_worker_sigkills_total", "counter",
              "Workers SIGKILLed by the watchdog or stop path.");
  prom_line(os, "dftmsn_worker_sigkills_total", "",
            std::to_string(s.sigkills));
  prom_header(os, "dftmsn_checkpoints_total", "counter",
              "Checkpoints written across all specs and attempts.");
  prom_line(os, "dftmsn_checkpoints_total", "",
            std::to_string(s.checkpoints_total));

  if (s.dispatch_enabled) {
    prom_header(os, "dftmsn_dispatch_batches_granted_total", "counter",
                "Spec batches granted under a lease.");
    prom_line(os, "dftmsn_dispatch_batches_granted_total", "",
              std::to_string(s.dispatch.batches_granted));
    prom_header(os, "dftmsn_dispatch_results_accepted_total", "counter",
                "Worker results accepted (first per spec wins).");
    prom_line(os, "dftmsn_dispatch_results_accepted_total", "",
              std::to_string(s.dispatch.results_accepted));
    prom_header(os, "dftmsn_dispatch_duplicates_discarded_total", "counter",
                "Duplicate results discarded by spec id.");
    prom_line(os, "dftmsn_dispatch_duplicates_discarded_total", "",
              std::to_string(s.dispatch.duplicates_discarded));
    prom_header(os, "dftmsn_dispatch_requeues_total", "counter",
                "Specs requeued after a lost connection or lease.");
    prom_line(os, "dftmsn_dispatch_requeues_total", "",
              std::to_string(s.dispatch.requeues));
    prom_header(os, "dftmsn_dispatch_leases_expired_total", "counter",
                "Leases expired without completion.");
    prom_line(os, "dftmsn_dispatch_leases_expired_total", "",
              std::to_string(s.dispatch.leases_expired));
    prom_header(os, "dftmsn_dispatch_worker_connected", "gauge",
                "1 while the named pull worker is connected.");
    for (const DispatchWorkerRow& w : s.dispatch_workers)
      prom_line(os, "dftmsn_dispatch_worker_connected",
                "worker=\"" + w.name + "\"", w.connected ? "1" : "0");
    prom_header(os, "dftmsn_dispatch_worker_active_specs", "gauge",
                "Specs currently leased to the named worker.");
    for (const DispatchWorkerRow& w : s.dispatch_workers)
      prom_line(os, "dftmsn_dispatch_worker_active_specs",
                "worker=\"" + w.name + "\"",
                std::to_string(w.active_specs));
  }

  // The merged instrument registry of completed specs, under a
  // dftmsn_registry_ prefix (docs/observability.md lists the mapping).
  for (const auto& [name, c] : merged_.counters()) {
    const std::string m = "dftmsn_registry_" + prometheus_name(name) +
                          "_total";
    prom_header(os, m, "counter", "Registry counter (completed specs).");
    prom_line(os, m, "", std::to_string(c.value()));
  }
  for (const auto& [name, g] : merged_.gauges()) {
    const std::string m = "dftmsn_registry_" + prometheus_name(name);
    prom_header(os, m, "gauge", "Registry gauge (completed specs).");
    prom_line(os, m, "", json_format_double(g.value()));
  }
  for (const auto& [name, h] : merged_.histograms()) {
    const std::string m = "dftmsn_registry_" + prometheus_name(name);
    prom_header(os, m, "summary", "Registry histogram (completed specs).");
    prom_line(os, m + "_count", "", std::to_string(h.count()));
    prom_line(os, m + "_sum", "", json_format_double(h.sum()));
  }
  return os.str();
}

std::string render_status_table(const JsonValue& status) {
  std::ostringstream os;
  const double wall = status.number_or("wall_s", 0.0);
  const bool healthy = status.bool_or("healthy", true);
  const auto total = static_cast<std::uint64_t>(
      status.number_or("specs_total", 0.0));

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", wall);
  os << "sweep status @ " << buf << "s wall — "
     << (healthy ? "healthy" : "UNHEALTHY") << "\n";

  os << "specs: " << total;
  if (const JsonValue* phases = status.find("phases");
      phases != nullptr && phases->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, v] : phases->members) {
      if (v.kind != JsonValue::Kind::kNumber || v.num == 0.0) continue;
      os << "  " << name << '='
         << static_cast<std::uint64_t>(v.num);
    }
  }
  os << "\n";

  std::snprintf(buf, sizeof(buf), "%.1f",
                status.number_or("events_per_sec_ema", 0.0));
  os << "events: "
     << static_cast<std::uint64_t>(status.number_or("events_executed", 0.0))
     << "  rate: " << buf << "/s";
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * status.number_or("progress", 0.0));
  os << "  progress: " << buf;
  const double eta = status.number_or("eta_s", -1.0);
  if (eta >= 0.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", eta);
    os << "  eta: " << buf << "s";
  }
  os << "\n";
  os << "retries="
     << static_cast<std::uint64_t>(status.number_or("retries_total", 0.0))
     << " watchdog_trips="
     << static_cast<std::uint64_t>(status.number_or("watchdog_trips", 0.0))
     << " worker_spawns="
     << static_cast<std::uint64_t>(status.number_or("worker_spawns", 0.0))
     << " sigkills="
     << static_cast<std::uint64_t>(status.number_or("sigkills", 0.0))
     << " checkpoints="
     << static_cast<std::uint64_t>(
            status.number_or("checkpoints_total", 0.0))
     << "\n";

  const JsonValue* specs = status.find("specs");
  if (specs == nullptr || specs->kind != JsonValue::Kind::kArray) {
    return os.str();
  }
  os << " spec  phase         events      sim_time  ckpts  retries  detail\n";
  for (const JsonValue& row : specs->items) {
    if (row.kind != JsonValue::Kind::kObject) continue;
    std::snprintf(buf, sizeof(buf), "%5llu  %-12s  %-10llu  %-8.1f  %-5llu  %-7llu",
        static_cast<unsigned long long>(row.number_or("index", 0.0)),
        row.string_or("phase", "?").c_str(),
        static_cast<unsigned long long>(row.number_or("events", 0.0)),
        row.number_or("sim_time_s", 0.0),
        static_cast<unsigned long long>(row.number_or("checkpoints", 0.0)),
        static_cast<unsigned long long>(row.number_or("retries", 0.0)));
    os << buf;
    const std::string detail = row.string_or("detail", "");
    if (!detail.empty()) os << "  " << detail;
    os << "\n";
  }
  return os.str();
}

}  // namespace dftmsn::telemetry
