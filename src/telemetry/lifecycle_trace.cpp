#include "telemetry/lifecycle_trace.hpp"

#include <stdexcept>

#include "telemetry/json_writer.hpp"

namespace dftmsn::telemetry {

LifecycleTrace::LifecycleTrace(const std::string& path)
    : t0_(std::chrono::steady_clock::now()) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr)
    throw std::runtime_error("lifecycle trace: cannot open " + path);
  std::fputs("[\n", f_);
  std::fflush(f_);
}

LifecycleTrace::~LifecycleTrace() {
  if (f_ != nullptr) std::fclose(f_);
}

void LifecycleTrace::begin(std::size_t spec, const std::string& name,
                           const Args& args) {
  emit('B', spec, name, args);
}

void LifecycleTrace::end(std::size_t spec, const std::string& name) {
  emit('E', spec, name, {});
}

void LifecycleTrace::instant(std::size_t spec, const std::string& name,
                             const Args& args) {
  emit('i', spec, name, args);
}

void LifecycleTrace::emit(char ph, std::size_t spec, const std::string& name,
                          const Args& args) {
  const auto ts = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0_)
                      .count();
  // One compact object per line, trailing comma: valid as a prefix of a
  // JSON array, and each line minus the comma parses standalone (which
  // is how the tests and any JSONL tooling consume it).
  std::string line = "{\"name\": \"" + json_escape(name) +
                     "\", \"cat\": \"sweep\", \"ph\": \"" + ph +
                     "\", \"ts\": " + std::to_string(ts) +
                     ", \"pid\": 1, \"tid\": " + std::to_string(spec);
  if (ph == 'i') line += ", \"s\": \"t\"";  // instant scoped to its thread
  if (!args.empty()) {
    line += ", \"args\": {";
    bool first = true;
    for (const auto& [k, v] : args) {
      if (!first) line += ", ";
      first = false;
      line += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
    }
    line += "}";
  }
  line += "},\n";

  std::lock_guard<std::mutex> lock(mu_);
  if (f_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), f_);
  // Flushed per event: the trace must survive a SIGKILLed supervisor up
  // to the last transition, or it is useless for post-mortems.
  std::fflush(f_);
}

}  // namespace dftmsn::telemetry
