// Structured run reports: one canonical JSON document per invocation
// covering what ran (config digest + full key/value dump), what came out
// (Summary aggregates, totals, drop/fault breakdowns, supervisor health),
// and what the instruments saw (registry counters/gauges/histograms).
//
// Canonical form: keys are emitted in a fixed order, instrument maps in
// name order, doubles via "%.17g" (shortest round-trippable decimal), so
// two reports over the same runs are byte-identical — including across
// --jobs values, because nothing thread- or schedule-dependent is
// serialized. The one exception is the trailing "profile" section
// (wall-clock subsystem timings), which is host-noise by construction; it
// is emitted last and only when profiling ran, so consumers comparing
// reports drop that single key (scripts/validate_report.py --compare
// does exactly that).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "experiment/runner.hpp"
#include "protocol/mac_common.hpp"

namespace dftmsn::telemetry {

/// Supervisor outcome counts for the report's "supervisor" section. All
/// zero (supervised=false) for unsupervised batches.
struct SupervisorHealth {
  bool supervised = false;
  int completed = 0;
  int retried = 0;      ///< replications that needed >= 1 restart
  int quarantined = 0;
  int interrupted = 0;
  std::uint64_t checkpoints = 0;  ///< checkpoint files written, all attempts
};

/// Everything the report renders. Pointers are borrowed for the duration
/// of the render call; `telemetry` may be null (runs with instruments
/// off), in which case the "telemetry" section contains empty maps and no
/// "profile" section is emitted.
struct ReportInputs {
  const Config* config = nullptr;            ///< required
  ProtocolKind kind = ProtocolKind::kOpt;
  const std::vector<RunResult>* runs = nullptr;  ///< required; per-rep rows
  const RunTelemetry* telemetry = nullptr;   ///< optional, merged over runs
  SupervisorHealth supervisor;
};

/// Renders the canonical JSON document (trailing newline included).
/// Throws std::invalid_argument when config or runs is null.
[[nodiscard]] std::string render_report_json(const ReportInputs& inputs);

/// render_report_json + atomic file write.
void write_report_json(const std::string& path, const ReportInputs& inputs);

}  // namespace dftmsn::telemetry
