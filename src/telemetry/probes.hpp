// Probe macros: the zero-overhead-when-disabled instrumentation layer.
//
// A component that wants telemetry holds raw instrument pointers (resolved
// once from the Registry at wiring time, nullptr when telemetry is off)
// and probes through these macros. The disabled path is a single
// null-pointer test and — crucially — the value expression is NOT
// evaluated, so a probe whose argument calls a function costs nothing
// when telemetry is off (bench/micro_core.cpp pins this with a
// side-effect counter, not a timer).
#pragma once

#include "telemetry/registry.hpp"

/// Observe `value_expr` into histogram pointer `h` (may be nullptr).
#define DFTMSN_PROBE_HIST(h, value_expr)   \
  do {                                     \
    if (h) (h)->observe(value_expr);       \
  } while (0)

/// Bump counter pointer `c` (may be nullptr).
#define DFTMSN_PROBE_COUNT(c)              \
  do {                                     \
    if (c) (c)->inc();                     \
  } while (0)

/// Add `n_expr` to counter pointer `c` (may be nullptr).
#define DFTMSN_PROBE_COUNT_N(c, n_expr)    \
  do {                                     \
    if (c) (c)->inc(n_expr);               \
  } while (0)

/// Set gauge pointer `g` (may be nullptr) to `value_expr`.
#define DFTMSN_PROBE_GAUGE(g, value_expr)  \
  do {                                     \
    if (g) (g)->set(value_expr);           \
  } while (0)

/// Record a TraceEvent into sink pointer `s` (may be nullptr). The
/// braced-init arguments follow the TraceEvent field order.
#define DFTMSN_PROBE_TRACE(s, ...)                       \
  do {                                                   \
    if (s) (s)->record(::dftmsn::TraceEvent{__VA_ARGS__}); \
  } while (0)
