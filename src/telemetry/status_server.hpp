// A dependency-free, single-threaded HTTP/1.1 listener that exposes a
// running sweep's StatusBoard:
//
//   GET /status   application/json   the canonical status.json document
//   GET /healthz  application/json   200 while healthy, 503 when any
//                                    spec is stalled or quarantined
//   GET /metrics  text/plain         Prometheus text exposition
//
// Design constraints, in order: zero third-party dependencies (POSIX
// sockets only), zero influence on the sweep (the handlers only read
// the board), and a clean shutdown (the accept loop polls with a short
// timeout and re-checks a quit flag, so the destructor joins within one
// poll interval). Binds 127.0.0.1 only — this is an operator's local
// inspection port, not a service endpoint; port 0 asks the kernel for
// an ephemeral port (retrieve it with port()).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace dftmsn::telemetry {

class StatusServer {
 public:
  struct Handlers {
    std::function<std::string()> status_json;   ///< body of GET /status
    std::function<std::string()> metrics_text;  ///< body of GET /metrics
    std::function<bool()> healthy;              ///< GET /healthz 200/503
  };

  /// Binds and starts serving immediately. Throws std::runtime_error on
  /// any socket-layer failure (port in use, no permission, ...).
  StatusServer(int port, Handlers handlers);
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// The bound port (the kernel's pick when constructed with port 0).
  [[nodiscard]] int port() const { return port_; }

 private:
  void serve();
  void handle_connection(int fd);

  Handlers handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> quit_{false};
  std::thread thread_;
};

}  // namespace dftmsn::telemetry
