// Minimal ordered JSON emitter shared by every canonical JSON document
// this codebase writes (--report-json, status.json, the lifecycle
// trace). The caller controls key order exactly — that, plus the fixed
// double formatting below, is what makes a document canonical: two
// processes emitting the same logical content produce the same bytes.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace dftmsn::telemetry {

/// Shortest decimal that round-trips an IEEE-754 double. Non-finite
/// values (which valid inputs never produce, but an emitter must not
/// write broken JSON for) degrade to 0.
inline std::string json_format_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonWriter {
 public:
  void open_object() { punctuate(); out_ += '{'; depth_++; first_ = true; }
  void close_object() {
    depth_--;
    if (!first_) newline();
    out_ += '}';
    first_ = false;
  }
  void open_array() { punctuate(); out_ += '['; depth_++; first_ = true; }
  void close_array() {
    depth_--;
    if (!first_) newline();
    out_ += ']';
    first_ = false;
  }
  void key(const std::string& k) {
    punctuate();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\": ";
    first_ = true;  // the value that follows needs no comma/indent
    inline_value_ = true;
  }
  void str(const std::string& v) {
    punctuate();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    first_ = false;
  }
  void num(double v) {
    punctuate();
    out_ += json_format_double(v);
    first_ = false;
  }
  void num(std::uint64_t v) {
    punctuate();
    out_ += std::to_string(v);
    first_ = false;
  }
  void num(int v) { num(static_cast<std::uint64_t>(v < 0 ? 0 : v)); }
  void boolean(bool v) {
    punctuate();
    out_ += v ? "true" : "false";
    first_ = false;
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void punctuate() {
    if (inline_value_) {  // value directly after its key: stay on the line
      inline_value_ = false;
      first_ = false;
      return;
    }
    if (!first_) out_ += ',';
    if (depth_ > 0) newline();
    first_ = false;
  }
  void newline() {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
  }

  std::string out_;
  int depth_ = 0;
  bool first_ = true;
  bool inline_value_ = false;
};

}  // namespace dftmsn::telemetry
