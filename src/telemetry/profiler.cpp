#include "telemetry/profiler.hpp"

namespace dftmsn::telemetry {

const char* subsystem_name(Subsystem s) {
  switch (s) {
    case Subsystem::kEventDispatch: return "event_dispatch";
    case Subsystem::kChannelScan: return "channel_scan";
    case Subsystem::kMobilityUpdate: return "mobility_update";
    case Subsystem::kMacHandshake: return "mac_handshake";
    case Subsystem::kSnapshotEncode: return "snapshot_encode";
  }
  return "?";
}

}  // namespace dftmsn::telemetry
