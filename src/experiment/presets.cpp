#include "experiment/presets.hpp"

namespace dftmsn {

std::optional<Config> scenario_preset(const std::string& name) {
  Config c;  // the paper's Sec. 5 defaults
  if (name == "paper") return c;

  if (name == "air") {
    c.scenario.num_sensors = 120;
    c.scenario.num_sinks = 4;
    c.scenario.field_m = 200.0;
    c.scenario.data_interval_s = 90.0;
    return c;
  }
  if (name == "flu") {
    c.scenario.num_sinks = 2;
    c.scenario.duration_s = 10'000.0;
    return c;
  }
  if (name == "sparse") {
    c.scenario.num_sensors = 40;
    c.scenario.num_sinks = 1;
    c.scenario.field_m = 400.0;
    c.scenario.zones_per_side = 8;
    return c;
  }
  if (name == "pressure") {
    c.scenario.data_interval_s = 45.0;
    c.protocol.queue_capacity = 40;
    c.scenario.num_sinks = 2;
    return c;
  }
  return std::nullopt;
}

std::vector<std::string> scenario_preset_names() {
  return {"paper", "air", "flu", "sparse", "pressure"};
}

}  // namespace dftmsn
