// Wire format and process plumbing between a supervising sweep parent
// and its isolated replication workers (`dftmsn_cli --worker FILE`).
//
// The parent hands each worker one *request file* — the full Config
// (bit-exact encoding, see save_config_exact), the protocol kind, the
// attempt number and the paths the worker must use — and the worker
// hands back one *result file* with either the finished RunResult plus
// its telemetry registry, or a structured error. Both files are sealed
// containers (8-byte magic + payload + trailing FNV-1a digest, see
// seal_container), so a torn write or a half-dead worker can never feed
// the parent garbage: validation fails loudly and the parent retries.
// Protocol v3 carries the same sealed request/result images over TCP as
// length-framed, digest-checked wire frames (experiment/dispatch.hpp)
// so pull-mode workers (`--connect HOST:PORT`) speak the identical
// container format; a torn or tampered frame drops the connection.
//
// Progress crosses the process boundary through a small file-backed
// shared mapping (SharedProgress): the worker's simulator stores its
// executed-event count there and the parent's watchdog reads it exactly
// like an in-process slot — MAP_ANONYMOUS would not survive the exec.
// v2 widened the block from the original bare 8-byte counter to a
// 32-byte versioned record that also carries the attempt's virtual
// sim-time and checkpoint sequence, feeding the live status plane
// (telemetry/status.hpp) without any extra IPC.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "experiment/runner.hpp"
#include "protocol/mac_common.hpp"
#include "telemetry/registry.hpp"

namespace dftmsn {

// Worker process exit codes. 0/2 deliberately line up with the CLI's own
// ok/usage-error codes; 3 matches the CLI's invariant-violation code; 6
// is worker-specific (run failed, structured error in the result file).
inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitBadRequest = 2;
inline constexpr int kWorkerExitInvariant = 3;
inline constexpr int kWorkerExitRunFailed = 6;

/// Everything a worker needs to run one replication attempt.
struct WorkerRequest {
  Config config;
  ProtocolKind kind = ProtocolKind::kOpt;
  int attempt = 0;               ///< gates attempts=-qualified fault events
  /// Checkpoint container ("DFTMSNCC") the attempt reads/writes its
  /// entry in. Empty: no checkpointing. (v1 of this protocol carried a
  /// per-spec .ckpt file path here.)
  std::string checkpoint_path;
  std::uint64_t checkpoint_spec = 0;  ///< this attempt's container entry
  double checkpoint_every_s = 0.0;
  bool verify_on_resume = true;
  std::string result_path;       ///< where the worker writes its result
  std::string progress_path;     ///< SharedProgress file (empty: none)
};

/// What a worker reports back. On ok=false only `error` is meaningful.
struct WorkerResult {
  bool ok = false;
  std::string error;
  RunResult result;
  std::uint64_t checkpoints_written = 0;
  telemetry::Registry registry;  ///< empty when telemetry is disabled
};

std::vector<std::uint8_t> encode_worker_request(const WorkerRequest& req);
WorkerRequest decode_worker_request(const std::vector<std::uint8_t>& image);
void write_worker_request(const std::string& path, const WorkerRequest& req);
WorkerRequest read_worker_request(const std::string& path);

std::vector<std::uint8_t> encode_worker_result(const WorkerResult& res);
WorkerResult decode_worker_result(const std::vector<std::uint8_t>& image);
void write_worker_result(const std::string& path, const WorkerResult& res);
WorkerResult read_worker_result(const std::string& path);

/// What the parent found when it went to read a worker's result file.
enum class WorkerFileState : std::uint8_t {
  kOk,       ///< decoded cleanly, ok=true
  kError,    ///< decoded cleanly, ok=false (worker reported a failure)
  kMissing,  ///< no file (worker died before writing)
  kCorrupt,  ///< file exists but failed digest/decoding
};

/// Supervisor verdict for one finished worker.
struct WorkerExitDecision {
  bool accept = false;    ///< take the result; false = retry/quarantine path
  std::string detail;     ///< failure message for the manifest (retry path)
};

/// Maps a waitpid status + result-file state to the supervisor action.
/// `reported_error` is the error string out of a decoded error-result
/// (empty otherwise). Pure function — unit-testable against a table of
/// crafted wait statuses.
WorkerExitDecision decode_worker_exit(int wait_status, WorkerFileState file,
                                      const std::string& reported_error);

/// "SIGSEGV" for 11, "signal 42" for everything unnamed. Hand-mapped:
/// strsignal() is locale-dependent and not async-signal relevant here,
/// but its strings vary across libcs and would leak into manifest
/// golden comparisons.
std::string worker_signal_name(int sig);

/// Shared-progress block format v2: a 32-byte file the parent creates
/// and maps, the worker opens and maps, and both sides then touch only
/// through lock-free 8-byte atomics on the shared page.
///
///   offset 0   u32  magic "DPRG" (0x47525044 little-endian)
///   offset 4   u32  version (2)
///   offset 8   u64  executed events        (simulator progress counter)
///   offset 16  u64  sim-time, double bits  (virtual seconds reached)
///   offset 24  u64  checkpoint sequence    (checkpoints this attempt)
///
/// open() rejects a wrong size, magic or version with a one-line error
/// — a stale v1 file left by an older build fails loudly instead of
/// feeding the status plane garbage (same idiom as the checkpoint
/// format gate).
inline constexpr std::uint32_t kSharedProgressMagic = 0x47525044;  // "DPRG"
inline constexpr std::uint32_t kSharedProgressVersion = 2;
inline constexpr std::size_t kSharedProgressSize = 32;

class SharedProgress {
 public:
  /// Parent side: create/truncate the file, map it, write the header
  /// and zero the fields. Throws std::runtime_error on any syscall
  /// failure.
  static SharedProgress create(const std::string& path);
  /// Worker side: map an existing file created by create(). Throws
  /// std::runtime_error on syscall failure, wrong size, or a header
  /// from a different format version.
  static SharedProgress open(const std::string& path);

  SharedProgress(SharedProgress&& other) noexcept;
  SharedProgress& operator=(SharedProgress&& other) noexcept;
  SharedProgress(const SharedProgress&) = delete;
  SharedProgress& operator=(const SharedProgress&) = delete;
  ~SharedProgress();

  [[nodiscard]] std::atomic<std::uint64_t>* counter() {
    return &block_->events;
  }
  [[nodiscard]] const std::atomic<std::uint64_t>* counter() const {
    return &block_->events;
  }
  [[nodiscard]] std::atomic<std::uint64_t>* sim_time_bits() {
    return &block_->sim_time_bits;
  }
  [[nodiscard]] const std::atomic<std::uint64_t>* sim_time_bits() const {
    return &block_->sim_time_bits;
  }
  [[nodiscard]] std::atomic<std::uint64_t>* checkpoint_seq() {
    return &block_->checkpoint_seq;
  }
  [[nodiscard]] const std::atomic<std::uint64_t>* checkpoint_seq() const {
    return &block_->checkpoint_seq;
  }

  /// Convenience for the double-valued sim-time field.
  void store_sim_time(double t);
  [[nodiscard]] double load_sim_time() const;

 private:
  struct Block {
    std::uint32_t magic;
    std::uint32_t version;
    std::atomic<std::uint64_t> events;
    std::atomic<std::uint64_t> sim_time_bits;
    std::atomic<std::uint64_t> checkpoint_seq;
  };
  static_assert(sizeof(Block) == kSharedProgressSize,
                "shared progress block layout drifted");

  SharedProgress() = default;

  Block* block_ = nullptr;
};

}  // namespace dftmsn
