#include "experiment/dispatch.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <vector>

#include "common/net_util.hpp"
#include "snapshot/snapshot_io.hpp"
#include "telemetry/status.hpp"

namespace dftmsn {
namespace {

using snapshot::SnapshotError;

double bits_double(std::uint64_t u) {
  double v = 0.0;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

std::string sanitize(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

std::string blob_str(const std::vector<std::uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

std::vector<std::uint8_t> str_blob(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::vector<std::uint8_t> frame_payload(FrameType type,
                                        const snapshot::Writer& w) {
  const std::vector<std::uint8_t>& payload = w.bytes();
  std::vector<std::uint8_t> out;
  out.reserve(kDispatchFrameHeader + payload.size() + kDispatchFrameTrailer);
  put_u32(out, kDispatchFrameMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  snapshot::StateHash h;
  h.update(out.data(), out.size());
  put_u64(out, h.value());
  return out;
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kRequest: return "request";
    case FrameType::kGrant: return "grant";
    case FrameType::kNoWork: return "nowork";
    case FrameType::kResult: return "result";
    case FrameType::kHeartbeat: return "heartbeat";
  }
  return "?";
}

}  // namespace

std::vector<std::uint8_t> encode_hello_frame(const std::string& worker_name) {
  snapshot::Writer w;
  w.u32(kDispatchWireVersion);
  w.str(worker_name);
  return frame_payload(FrameType::kHello, w);
}

std::vector<std::uint8_t> encode_request_frame() {
  snapshot::Writer w;
  w.u8(0);
  return frame_payload(FrameType::kRequest, w);
}

std::vector<std::uint8_t> encode_grant_frame(
    std::uint64_t lease_id, double lease_secs,
    const std::vector<GrantItem>& items) {
  snapshot::Writer w;
  w.u64(lease_id);
  w.f64(lease_secs);
  w.u64(items.size());
  for (const GrantItem& it : items) {
    w.u64(it.spec);
    w.i64(it.attempt);
    w.str(blob_str(it.request));
  }
  return frame_payload(FrameType::kGrant, w);
}

std::vector<std::uint8_t> encode_nowork_frame(bool done) {
  snapshot::Writer w;
  w.u8(done ? 1 : 0);
  return frame_payload(FrameType::kNoWork, w);
}

std::vector<std::uint8_t> encode_result_frame(
    std::uint64_t lease_id, std::uint64_t spec, std::int64_t attempt,
    const std::vector<std::uint8_t>& sealed_result) {
  snapshot::Writer w;
  w.u64(lease_id);
  w.u64(spec);
  w.i64(attempt);
  w.str(blob_str(sealed_result));
  return frame_payload(FrameType::kResult, w);
}

std::vector<std::uint8_t> encode_heartbeat_frame(std::uint64_t lease_id,
                                                 std::uint64_t spec,
                                                 std::uint64_t events,
                                                 std::uint64_t sim_time_bits) {
  snapshot::Writer w;
  w.u64(lease_id);
  w.u64(spec);
  w.u64(events);
  w.u64(sim_time_bits);
  return frame_payload(FrameType::kHeartbeat, w);
}

std::size_t try_extract_frame(const std::uint8_t* data, std::size_t len,
                              const std::string& context, WireFrame* out) {
  if (len < kDispatchFrameHeader) return 0;
  if (get_u32(data) != kDispatchFrameMagic)
    throw SnapshotError(context + ": bad frame magic");
  const std::uint8_t type = data[4];
  if (type < 1 || type > 6)
    throw SnapshotError(context + ": unknown frame type " +
                        std::to_string(int(type)));
  const std::uint32_t plen = get_u32(data + 5);
  if (plen > kMaxDispatchPayload)
    throw SnapshotError(context + ": frame payload length " +
                        std::to_string(plen) + " exceeds cap");
  const std::size_t total =
      kDispatchFrameHeader + plen + kDispatchFrameTrailer;
  if (len < total) return 0;
  {
    snapshot::StateHash h;
    h.update(data, kDispatchFrameHeader + plen);
    if (h.value() != get_u64(data + kDispatchFrameHeader + plen))
      throw SnapshotError(context + ": frame digest mismatch (torn or "
                          "corrupt frame)");
  }

  WireFrame f;
  f.type = static_cast<FrameType>(type);
  snapshot::Reader r(std::vector<std::uint8_t>(
      data + kDispatchFrameHeader, data + kDispatchFrameHeader + plen));
  try {
    switch (f.type) {
      case FrameType::kHello:
        f.version = r.u32();
        f.worker_name = r.str();
        break;
      case FrameType::kRequest:
        (void)r.u8();
        break;
      case FrameType::kGrant: {
        f.lease_id = r.u64();
        f.lease_secs = r.f64();
        const std::uint64_t count = r.u64();
        if (count > (1u << 20))
          throw SnapshotError("grant item count " + std::to_string(count));
        f.items.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          GrantItem it;
          it.spec = r.u64();
          it.attempt = r.i64();
          it.request = str_blob(r.str());
          f.items.push_back(std::move(it));
        }
        break;
      }
      case FrameType::kNoWork:
        f.done = r.u8() != 0;
        break;
      case FrameType::kResult:
        f.lease_id = r.u64();
        f.spec = r.u64();
        f.attempt = r.i64();
        f.result = str_blob(r.str());
        break;
      case FrameType::kHeartbeat:
        f.lease_id = r.u64();
        f.spec = r.u64();
        f.events = r.u64();
        f.sim_time_bits = r.u64();
        break;
    }
    if (!r.at_end())
      throw SnapshotError("trailing payload bytes");
  } catch (const std::exception& e) {
    throw SnapshotError(context + ": bad " + frame_type_name(f.type) +
                        " frame: " + e.what());
  }
  *out = std::move(f);
  return total;
}

namespace {

enum class SState : std::uint8_t { kReady, kWaiting, kLeased, kTerminal };

struct ConnState {
  std::string name;
  bool said_hello = false;
  std::vector<std::uint8_t> buf;
};

struct LeaseState {
  int fd = -1;
  std::string worker;
  std::vector<std::size_t> outstanding;
  double deadline = 0.0;
  std::map<std::size_t, std::uint64_t> last_events;
};

}  // namespace

void run_dispatch_queue(std::size_t num_specs, const std::vector<char>& skip,
                        const DispatchOptions& opts,
                        const DispatchPolicy& policy,
                        telemetry::StatusBoard* board, DispatchCallbacks cb) {
  const int lfd = net::listen_tcp(opts.bind, opts.port, /*backlog=*/16);
  const int port = net::bound_port(lfd);
  if (opts.port_out != nullptr) opts.port_out->store(port);
  if (cb.announce)
    cb.announce("dispatch: listening on " + opts.bind + ":" +
                std::to_string(port));
  if (board != nullptr) board->dispatch_enable();

  const std::size_t n = num_specs;
  std::vector<SState> st(n, SState::kReady);
  std::vector<int> attempt(n, 0);
  std::vector<int> requeues(n, 0);
  std::vector<double> ready_at(n, 0.0);
  std::vector<char> ever_started(n, 0);
  std::deque<std::size_t> ready;
  std::size_t terminal = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < skip.size() && skip[i]) {
      st[i] = SState::kTerminal;
      ++terminal;
    } else {
      ready.push_back(i);
    }
  }

  std::map<int, ConnState> conns;
  std::map<std::uint64_t, LeaseState> leases;
  std::uint64_t next_lease_id = 1;
  telemetry::DispatchCounters counters;

  const auto journal_write = [&] {
    if (policy.lease_journal_path.empty()) return;
    std::ofstream out(policy.lease_journal_path,
                      std::ios::binary | std::ios::trunc);
    out << "dftmsn-dispatch-leases v1\n";
    for (const auto& [id, lease] : leases) {
      out << "lease " << id << " worker=" << lease.worker << " specs=";
      for (std::size_t k = 0; k < lease.outstanding.size(); ++k)
        out << (k ? "," : "") << lease.outstanding[k];
      out << "\n";
    }
  };

  const auto push_board = [&] {
    if (board != nullptr) board->dispatch_update(counters);
  };

  const auto worker_active = [&](int fd) {
    std::uint64_t active = 0;
    for (const auto& [id, lease] : leases)
      if (lease.fd == fd) active += lease.outstanding.size();
    return active;
  };

  const auto update_worker_row = [&](int fd, bool connected) {
    if (board == nullptr) return;
    const auto it = conns.find(fd);
    if (it == conns.end() || it->second.name.empty()) return;
    board->dispatch_worker(it->second.name, connected,
                           connected ? worker_active(fd) : 0);
  };

  // A batch lost in transit (dead/hung/partitioned worker): back on the
  // queue under its own bounded backoff. Transport losses deliberately
  // do not consume the sim retry budget — the spec never *failed*, its
  // worker did — so a dispatched sweep's manifest retries stay
  // identical to a clean local run's.
  const auto requeue_spec = [&](std::size_t i, const std::string& reason) {
    if (st[i] != SState::kLeased) return;
    ++requeues[i];
    ++counters.requeues;
    if (requeues[i] > policy.max_transport_requeues) {
      st[i] = SState::kTerminal;
      ++terminal;
      const std::string detail = sanitize(
          "dispatch: batch lost " + std::to_string(requeues[i]) +
          " times (last: " + reason + ")");
      if (cb.on_quarantined) cb.on_quarantined(i, attempt[i], detail);
      return;
    }
    st[i] = SState::kWaiting;
    ready_at[i] =
        now_s() + std::min(5.0, policy.retry_backoff_s *
                                    std::pow(2.0, requeues[i] - 1));
    if (cb.on_requeued) cb.on_requeued(i, requeues[i], reason);
  };

  const auto release_lease = [&](std::uint64_t id, const std::string& why,
                                 bool requeue) {
    const auto it = leases.find(id);
    if (it == leases.end()) return;
    const std::vector<std::size_t> outstanding = it->second.outstanding;
    leases.erase(it);
    if (requeue)
      for (const std::size_t i : outstanding) requeue_spec(i, why);
    journal_write();
  };

  const auto drop_conn = [&](int fd, const std::string& why) {
    update_worker_row(fd, false);
    std::vector<std::uint64_t> owned;
    for (const auto& [id, lease] : leases)
      if (lease.fd == fd) owned.push_back(id);
    for (const std::uint64_t id : owned) release_lease(id, why, true);
    ::close(fd);
    conns.erase(fd);
  };

  const auto send_frame = [&](int fd, const std::vector<std::uint8_t>& bytes) {
    try {
      net::write_full(fd, bytes.data(), bytes.size());
      return true;
    } catch (const net::NetError& e) {
      drop_conn(fd, e.what());
      return false;
    }
  };

  // Remove a spec from whatever lease still carries it (its own, or a
  // re-lease that raced a slow first worker).
  const auto detach_spec = [&](std::size_t i) {
    for (auto& [id, lease] : leases) {
      auto& v = lease.outstanding;
      v.erase(std::remove(v.begin(), v.end(), i), v.end());
    }
    for (auto it = leases.begin(); it != leases.end();) {
      if (it->second.outstanding.empty())
        it = leases.erase(it);
      else
        ++it;
    }
  };

  const auto handle_result = [&](int fd, WireFrame&& f,
                                 const std::string& ctx) {
    if (f.spec >= n)
      throw SnapshotError(ctx + ": result for unknown spec " +
                          std::to_string(f.spec));
    if (st[f.spec] == SState::kTerminal) {
      // Idempotent completion: the first accepted result won; a
      // resurrected or raced worker's duplicate is discarded by spec id.
      ++counters.duplicates_discarded;
      detach_spec(f.spec);
      journal_write();
      return;
    }
    // Validate before any state change: a torn sealed image inside a
    // digest-clean frame is still a protocol violation.
    WorkerResult wres;
    try {
      wres = decode_worker_result(f.result);
    } catch (const std::exception& e) {
      throw SnapshotError(ctx + ": undecodable result image for spec " +
                          std::to_string(f.spec) + ": " + e.what());
    }
    detach_spec(f.spec);
    const int a = static_cast<int>(
        std::clamp<std::int64_t>(f.attempt, 0, 1 << 20));
    if (wres.ok) {
      st[f.spec] = SState::kTerminal;
      ++terminal;
      ++counters.results_accepted;
      if (cb.on_completed) cb.on_completed(f.spec, a, std::move(wres));
    } else {
      // Worker-reported simulation failure: the normal retry /
      // quarantine path, with the local loop's detail formatting.
      const std::string detail =
          sanitize("attempt " + std::to_string(a) + ": " + wres.error);
      const int next_attempt = a + 1;
      attempt[f.spec] = next_attempt;
      if (next_attempt > policy.max_retries) {
        st[f.spec] = SState::kTerminal;
        ++terminal;
        if (cb.on_quarantined) cb.on_quarantined(f.spec, next_attempt, detail);
      } else {
        st[f.spec] = SState::kWaiting;
        ready_at[f.spec] =
            now_s() + std::min(5.0, policy.retry_backoff_s *
                                        std::pow(2.0, next_attempt - 1));
        if (cb.on_retrying) cb.on_retrying(f.spec, next_attempt, detail);
      }
    }
    journal_write();
    update_worker_row(fd, true);
  };

  const auto handle_request = [&](int fd) {
    std::vector<GrantItem> items;
    std::vector<std::size_t> granted;
    while (!ready.empty() &&
           granted.size() < static_cast<std::size_t>(
                                std::max(1, opts.batch_size))) {
      const std::size_t i = ready.front();
      ready.pop_front();
      if (st[i] != SState::kReady) continue;  // stale queue entry
      GrantItem it;
      it.spec = i;
      it.attempt = attempt[i];
      it.request = cb.make_request ? cb.make_request(i, attempt[i])
                                   : std::vector<std::uint8_t>();
      items.push_back(std::move(it));
      granted.push_back(i);
    }
    if (items.empty()) {
      send_frame(fd, encode_nowork_frame(terminal == n));
      return;
    }
    const std::uint64_t id = next_lease_id++;
    LeaseState lease;
    lease.fd = fd;
    lease.worker = conns.count(fd) ? conns[fd].name : std::string();
    lease.outstanding = granted;
    lease.deadline = now_s() + opts.lease_secs;
    for (const std::size_t i : granted) {
      st[i] = SState::kLeased;
      ever_started[i] = 1;
      lease.last_events[i] = 0;
      if (cb.on_started) cb.on_started(i, attempt[i]);
    }
    leases[id] = std::move(lease);
    ++counters.batches_granted;
    journal_write();
    if (send_frame(fd, encode_grant_frame(id, opts.lease_secs, items)))
      update_worker_row(fd, true);
  };

  const auto handle_heartbeat = [&](const WireFrame& f) {
    const auto it = leases.find(f.lease_id);
    if (it == leases.end()) return;  // expired lease: heartbeat is stale
    LeaseState& lease = it->second;
    const auto spec_it = std::find(lease.outstanding.begin(),
                                   lease.outstanding.end(),
                                   static_cast<std::size_t>(f.spec));
    if (spec_it == lease.outstanding.end()) return;
    // Only *progressing* heartbeats extend the lease: a SIGSTOPed or
    // wedged worker keeps the TCP stream alive but its event counter
    // freezes, so its lease still expires and the batch is reassigned.
    if (f.events > lease.last_events[f.spec]) {
      lease.last_events[f.spec] = f.events;
      lease.deadline = now_s() + opts.lease_secs;
      if (cb.on_progress)
        cb.on_progress(f.spec, f.events, bits_double(f.sim_time_bits));
    }
  };

  bool stopped = false;
  std::vector<std::uint8_t> rbuf(64 * 1024);
  for (;;) {
    if (policy.stop != nullptr && policy.stop->load()) {
      stopped = true;
      break;
    }
    const double now = now_s();

    // Waiting specs whose backoff elapsed go back on the queue.
    for (std::size_t i = 0; i < n; ++i)
      if (st[i] == SState::kWaiting && ready_at[i] <= now) {
        st[i] = SState::kReady;
        ready.push_back(i);
      }

    // Expired leases: the worker crashed, hung, or was partitioned —
    // whatever the cause, it lost the lease and the batch is requeued.
    {
      std::vector<std::uint64_t> expired;
      for (const auto& [id, lease] : leases)
        if (lease.deadline <= now) expired.push_back(id);
      for (const std::uint64_t id : expired) {
        ++counters.leases_expired;
        const int fd = leases[id].fd;
        release_lease(id, "lease expired", true);
        update_worker_row(fd, true);
      }
    }
    push_board();

    if (terminal == n) break;

    std::vector<pollfd> pfds;
    pfds.push_back({lfd, POLLIN, 0});
    for (const auto& [fd, conn] : conns) pfds.push_back({fd, POLLIN, 0});
    net::poll_retry(pfds.data(), pfds.size(), /*timeout_ms=*/50);

    if (pfds[0].revents & POLLIN) {
      const int fd = net::accept_retry(lfd);
      if (fd >= 0) conns.emplace(fd, ConnState{});
    }

    for (std::size_t k = 1; k < pfds.size(); ++k) {
      const int fd = pfds[k].fd;
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (conns.find(fd) == conns.end()) continue;  // dropped this round
      const ssize_t got = net::recv_some(fd, rbuf.data(), rbuf.size());
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
        drop_conn(fd, std::strerror(errno));
        continue;
      }
      if (got == 0) {
        drop_conn(fd, "connection closed");
        continue;
      }
      ConnState& conn = conns[fd];
      conn.buf.insert(conn.buf.end(), rbuf.data(), rbuf.data() + got);
      const std::string ctx =
          "dispatch connection '" +
          (conn.name.empty() ? "fd" + std::to_string(fd) : conn.name) + "'";
      try {
        for (;;) {
          WireFrame f;
          const std::size_t used =
              try_extract_frame(conn.buf.data(), conn.buf.size(), ctx, &f);
          if (used == 0) break;
          conn.buf.erase(conn.buf.begin(),
                         conn.buf.begin() + static_cast<std::ptrdiff_t>(used));
          if (!conn.said_hello) {
            if (f.type != FrameType::kHello ||
                f.version != kDispatchWireVersion)
              throw SnapshotError(ctx + ": expected hello (wire version " +
                                  std::to_string(kDispatchWireVersion) + ")");
            conn.said_hello = true;
            conn.name = f.worker_name.empty()
                            ? "fd" + std::to_string(fd)
                            : sanitize(f.worker_name);
            update_worker_row(fd, true);
            continue;
          }
          switch (f.type) {
            case FrameType::kRequest:
              handle_request(fd);
              break;
            case FrameType::kResult:
              handle_result(fd, std::move(f), ctx);
              break;
            case FrameType::kHeartbeat:
              handle_heartbeat(f);
              break;
            default:
              throw SnapshotError(ctx + ": unexpected " +
                                  std::string(frame_type_name(f.type)) +
                                  " frame from a worker");
          }
          if (conns.find(fd) == conns.end()) break;  // send failure dropped it
        }
      } catch (const std::exception& e) {
        // Torn/corrupt/hostile frame: named rejection, connection drop,
        // batches requeued. Never a crash, never a wrong accept.
        if (cb.announce)
          cb.announce(std::string("dispatch: dropping connection: ") +
                      e.what());
        drop_conn(fd, e.what());
      }
    }
  }

  if (stopped) {
    // External stop: surface every unfinished spec as interrupted, in
    // index order, exactly once.
    for (std::size_t i = 0; i < n; ++i) {
      if (st[i] == SState::kTerminal) continue;
      st[i] = SState::kTerminal;
      ++terminal;
      if (cb.on_interrupted)
        cb.on_interrupted(
            i, ever_started[i] ? "interrupted (dispatch stopped)"
                               : std::string());
    }
  }

  // Sweep over (or stopped): tell every connected worker, best-effort,
  // then tear the plane down.
  for (const auto& [fd, conn] : conns) {
    try {
      const auto bye = encode_nowork_frame(true);
      net::write_full(fd, bye.data(), bye.size());
    } catch (const net::NetError&) {
    }
  }
  for (const auto& [fd, conn] : conns) {
    if (board != nullptr && !conn.name.empty())
      board->dispatch_worker(conn.name, false, 0);
    ::close(fd);
  }
  conns.clear();
  leases.clear();
  push_board();
  ::close(lfd);
  if (!policy.lease_journal_path.empty())
    std::remove(policy.lease_journal_path.c_str());
}

}  // namespace dftmsn
