// Named scenario presets: the paper's default plus the application
// scenarios from its introduction, ready for the CLI (--preset) and for
// tests/examples.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"

namespace dftmsn {

/// Returns the preset named `name`, or nullopt if unknown. Names:
///   paper      — Sec. 5 default (100 sensors, 3 sinks, 150 m, 25 000 s)
///   air        — district-scale air-quality monitoring (denser traffic)
///   flu        — flu tracking (2 collection points, reporting windows)
///   sparse     — ultra-sparse wide-area deployment
///   pressure   — buffer/bandwidth pressure (small queues, fast traffic)
std::optional<Config> scenario_preset(const std::string& name);

/// All preset names, for help listings.
std::vector<std::string> scenario_preset_names();

}  // namespace dftmsn
