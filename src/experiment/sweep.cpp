#include "experiment/sweep.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dftmsn {

ConsoleTable::ConsoleTable(std::ostream& os, std::vector<std::string> columns,
                           int width)
    : os_(os), columns_(columns.size()), width_(width) {
  if (columns.empty()) throw std::invalid_argument("ConsoleTable: no columns");
  for (const auto& c : columns) os_ << std::setw(width_) << c;
  os_ << '\n';
  for (std::size_t i = 0; i < columns.size(); ++i)
    os_ << std::setw(width_) << std::string(width_ - 2, '-');
  os_ << '\n';
}

void ConsoleTable::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("ConsoleTable: row arity mismatch");
  for (const auto& c : cells) os_ << std::setw(width_) << c;
  os_ << '\n';
}

void ConsoleTable::row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(format(v, precision));
  row(cells);
}

std::string ConsoleTable::format(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& description) {
  os << "==== " << experiment_id << " ====\n" << description << "\n\n";
}

}  // namespace dftmsn
