// Self-healing sweep supervision on top of run_specs: periodic
// checkpoints, a wall-clock watchdog that detects hung replications, a
// bounded retry-with-backoff loop that restarts a failed replication from
// its last good checkpoint, quarantine of replications that keep failing,
// and graceful partial aggregation of whatever did complete.
//
// Determinism contract: supervision never changes a replication's
// trajectory. Checkpoints are written from, not fed back into, the
// running world; a retried replication bumps only Config::faults.attempt
// (an internal knob that gates `attempts=`-qualified fault events without
// perturbing the event or random streams); and every resume is
// byte-verified against the checkpoint it came from. A sweep that needed
// three retries therefore reports the same numbers as one that needed
// none — and the same numbers at every --jobs value.
//
// Failure taxonomy:
//   - SimulatedCrash / InvariantViolation / any std::exception out of a
//     replication -> retry from the last good checkpoint (or from
//     scratch), at most max_retries times, then quarantine.
//   - watchdog trip (no executed-event progress for watchdog_secs of
//     wall time) -> cooperative abort via the simulator's abort flag
//     (reaches even a mid-event `hang` fault), then same retry path.
//   - external stop (SIGINT/SIGTERM flag) -> flush one final checkpoint
//     at the clean event boundary the abort left us on, mark the
//     replication interrupted, and keep the manifest resumable.
//
// With IsolationMode::kProcess the same taxonomy applies across a
// process boundary: each attempt runs in a spawned worker process, a
// worker that dies by signal (segfault, abort, OOM kill) or reports an
// error is retried from the spec's on-disk checkpoint, and a hung or
// stopped worker is SIGKILLed by the watchdog instead of cooperatively
// aborted (see worker_protocol.hpp for the parent/worker wire format).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "experiment/dispatch.hpp"
#include "experiment/runner.hpp"
#include "telemetry/registry.hpp"

namespace dftmsn {

/// The live observability plane (telemetry/status.hpp). All of it is
/// read-only with respect to the sweep: enabling any field leaves
/// trajectories, manifest bytes and --report-json bit-identical at any
/// jobs value (tier1-status enforces this).
struct ObservabilityOptions {
  /// Seconds between atomic rewrites of status_dir/status.json.
  /// <= 0: no status file.
  double status_every_s = 0.0;
  /// Directory status.json lands in (required when status_every_s > 0;
  /// the CLI defaults it to the checkpoint dir).
  std::string status_dir;
  /// HTTP listener on 127.0.0.1 serving /status, /healthz, /metrics.
  /// -1: off. 0: ephemeral port (announced on `announce`).
  int status_port = -1;
  /// Append-only lifecycle trace in Chrome trace-event JSONL
  /// (Perfetto-viewable). Empty: off.
  std::string trace_path;
  /// Where "status: listening on 127.0.0.1:PORT" is printed (needed to
  /// discover an ephemeral port). nullptr: silent.
  std::ostream* announce = nullptr;

  [[nodiscard]] bool enabled() const {
    return status_every_s > 0.0 || status_port >= 0 || !trace_path.empty();
  }
};

/// Where a replication attempt executes.
enum class IsolationMode : std::uint8_t {
  /// In this process, on a pool thread (default). Fast, but a fault that
  /// raises a real signal (segv/abort plans, genuine memory bugs) takes
  /// the whole sweep down.
  kInProcess,
  /// In a spawned child process (`worker_exe --worker <request>`), one
  /// per attempt. The parent survives any worker death — segfault,
  /// abort, OOM kill — and retries from the last checkpoint. Clean runs
  /// are bit-identical to kInProcess (equivalence test-enforced).
  kProcess,
};

struct SupervisorOptions {
  /// Directory for the checkpoints.dcc container + manifest.txt. Empty:
  /// no checkpointing (failures retry from scratch, stop loses progress).
  std::string checkpoint_dir;
  /// Simulated seconds between periodic checkpoints. <= 0: checkpoint
  /// only on external stop.
  double checkpoint_every_s = 0.0;
  /// Wall-clock seconds without event progress before a replication is
  /// declared hung and aborted. <= 0: watchdog off.
  double watchdog_secs = 0.0;
  /// Retries per replication before quarantine.
  int max_retries = 2;
  /// Base wall-clock backoff before a retry; doubles per retry.
  double retry_backoff_s = 0.05;
  int jobs = 1;
  /// Reuse manifest.txt + checkpoints in checkpoint_dir: completed
  /// replications are skipped, unfinished ones resume from their last
  /// checkpoint.
  bool resume = false;
  /// Byte-compare every resumed world against its checkpoint (the
  /// nondeterminism trap). Leave on outside of benchmarks.
  bool verify_on_resume = true;
  /// External stop flag (SIGINT/SIGTERM handler sets it). nullptr: none.
  const std::atomic<bool>* stop = nullptr;
  /// Test hook: deterministically interrupt every replication after it
  /// has written this many periodic checkpoints (simulates a kill at a
  /// checkpoint boundary without signals). 0: off.
  int stop_after_checkpoints = 0;
  /// Where replication attempts execute (see IsolationMode).
  IsolationMode isolate = IsolationMode::kInProcess;
  /// Worker executable for kProcess (the CLI passes its own path, so the
  /// worker is always the very binary that built the sweep). Required
  /// when isolate == kProcess.
  std::string worker_exe;
  /// Directory for worker request/result/progress files when no
  /// checkpoint_dir is configured. Empty: a unique directory under the
  /// system temp dir, removed when the sweep ends.
  std::string scratch_dir;
  /// Live status/health/trace plane (purely observational).
  ObservabilityOptions obs;
  /// Lease-based TCP dispatch (experiment/dispatch.hpp). When enabled,
  /// specs run on connected pull-mode workers instead of pool threads;
  /// incompatible with IsolationMode::kProcess. Clean dispatched sweeps
  /// produce manifests and reports byte-identical to in-process runs.
  DispatchOptions dispatch;
};

enum class SpecStatus : std::uint8_t {
  kPending,      ///< never ran (stop arrived first)
  kCompleted,    ///< ran to horizon, result valid
  kQuarantined,  ///< failed max_retries + 1 times, gave up
  kInterrupted,  ///< external stop; checkpoint flushed if dir set
};
const char* spec_status_name(SpecStatus s);

struct SpecRecord {
  SpecStatus status = SpecStatus::kPending;
  int retries = 0;           ///< restarts consumed (0 = clean first run)
  std::uint64_t checkpoints = 0;  ///< checkpoint files written (all attempts)
  std::uint64_t config_digest = 0;
  std::string detail;        ///< last failure message; empty when clean
  RunResult result;          ///< valid only when status == kCompleted
  /// The completed run's instrument registry (empty when telemetry was
  /// off or the spec did not complete). Captured from the final —
  /// accepted — attempt only: a resume replays from event 0, so the
  /// registry of the attempt that reached the horizon always covers the
  /// whole run and retried prefixes are never double-counted.
  telemetry::Registry registry;
};

struct SweepManifest {
  std::vector<SpecRecord> specs;

  [[nodiscard]] int count(SpecStatus s) const;
  [[nodiscard]] int completed() const {
    return count(SpecStatus::kCompleted);
  }
  [[nodiscard]] int quarantined() const {
    return count(SpecStatus::kQuarantined);
  }
  [[nodiscard]] int interrupted() const {
    return count(SpecStatus::kInterrupted) + count(SpecStatus::kPending);
  }
  /// Replications that needed at least one restart.
  [[nodiscard]] int retried() const;
  /// Checkpoint files written across all specs and attempts.
  [[nodiscard]] std::uint64_t total_checkpoints() const;
};

/// Counters out of the streaming core (memory-behaviour test surface).
struct StreamStats {
  /// High-water mark of the index-order reorder buffer: the most
  /// terminal records ever held waiting for a lower index to finish.
  /// jobs=1 keeps this at 1 — nothing retains the whole sweep.
  std::size_t peak_buffered = 0;
};

/// Receives spec `i`'s terminal record, exactly once per spec, in strict
/// spec-index order (a reorder buffer holds out-of-order completions).
using SpecSink = std::function<void(std::size_t, SpecRecord&&)>;

/// Streaming core of supervised execution: runs every spec (thread pool,
/// process isolation, or the dispatch queue per opts), appends each
/// terminal record to checkpoint_dir/manifest.txt as it is emitted (one
/// block + fresh cumulative digest line per record, fsynced), and hands
/// it to `sink` instead of accumulating a SweepManifest. Peak memory is
/// O(reorder window), not O(specs).
StreamStats run_specs_streamed(const std::vector<RunSpec>& specs,
                               const SupervisorOptions& opts,
                               const SpecSink& sink);

/// Runs every spec under supervision, up to opts.jobs at a time. The
/// manifest has one record per spec, in input order; it is also written
/// to checkpoint_dir/manifest.txt (streamed, see run_specs_streamed)
/// when a dir is configured. Collecting wrapper over the streaming core.
SweepManifest run_specs_supervised(const std::vector<RunSpec>& specs,
                                   const SupervisorOptions& opts);

/// run_sweep under supervision: expands points × replications exactly
/// like run_sweep (replication r of point p runs seed base_seed + r), and
/// aggregates each point over its *completed* replications only.
struct SupervisedSweep {
  SweepManifest manifest;
  std::vector<ReplicatedResult> points;
};
SupervisedSweep run_sweep_supervised(const std::vector<SweepPoint>& points,
                                     int replications,
                                     const SupervisorOptions& opts);

/// The RunResults of completed specs, in spec order (partial aggregation
/// input for callers that flattened their own batch).
std::vector<RunResult> completed_results(const SweepManifest& manifest);

// --- manifest / checkpoint file layout ---------------------------------

std::string manifest_path(const std::string& checkpoint_dir);
/// The single indexed container every spec's checkpoint lives in
/// ("DFTMSNCC", see snapshot/ckpt_container.hpp); spec index = entry key.
std::string checkpoint_container_path(const std::string& checkpoint_dir);

/// Writes the manifest as a line-oriented text file (atomic rewrite).
/// RunResult doubles are stored as hexfloats so a resumed sweep reports
/// bit-identical aggregates.
void write_manifest(const std::string& path, const SweepManifest& manifest);

/// Loads a manifest written by write_manifest or streamed by
/// run_specs_streamed (interior cumulative digest lines are skipped;
/// later records for a spec win). Returns false if the file does not
/// exist; throws std::runtime_error if it exists but is malformed.
bool load_manifest(const std::string& path, SweepManifest* out);

/// Salvages a streamed manifest with a torn tail: truncates the file
/// back to its last line-aligned prefix that ends in a validating
/// cumulative digest line. Returns true when the file validates after
/// the call (*bytes_removed = 0 if it already did); false when no
/// validating prefix exists (the file stays untouched).
bool salvage_manifest_tail(const std::string& path,
                           std::size_t* bytes_removed);

}  // namespace dftmsn
