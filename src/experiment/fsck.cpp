#include "experiment/fsck.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <ostream>
#include <stdexcept>

#include "experiment/supervisor.hpp"
#include "experiment/worker_protocol.hpp"
#include "mobility/motion_trace.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/ckpt_container.hpp"

namespace dftmsn {
namespace {

namespace fs = std::filesystem;

void note(FsckReport& rep, std::ostream& log, const std::string& path,
          const std::string& cls, const std::string& detail,
          bool repaired = false) {
  rep.findings.push_back({path, cls, detail, repaired});
  if (repaired) rep.repaired = true;
  log << "fsck: " << cls << " " << path;
  if (!detail.empty()) log << " (" << detail << ")";
  log << "\n";
}

/// Deletes a file whose loss is safe (worker/trace/tmp artifacts are all
/// regenerated); reports whether the unlink took.
bool drop(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

void check_container(const std::string& path, const SweepManifest* manifest,
                     bool have_manifest, FsckReport& rep, std::ostream& log) {
  namespace sn = dftmsn::snapshot;
  sn::ContainerScanResult scan;
  try {
    scan = sn::container_scan(path);
  } catch (const std::exception& e) {
    // Foreign magic / unsupported version: repair would destroy data
    // this build doesn't understand.
    note(rep, log, path, "corrupt", e.what());
    rep.unrepairable = true;
    return;
  }
  if (!scan.exists) return;

  if (!scan.clean) {
    const std::uint64_t torn = scan.file_size - scan.valid_end;
    try {
      sn::container_repair(path);
      note(rep, log, path, "torn",
           "truncated " + std::to_string(torn) +
               " torn tail bytes, rebuilt index (" +
               std::to_string(scan.entries.size()) + " entries survive)",
           /*repaired=*/true);
    } catch (const std::exception& e) {
      note(rep, log, path, "torn", std::string("repair failed: ") + e.what());
      rep.unrepairable = true;
      return;
    }
  }

  // Entry-level validation: each surviving checkpoint must decode (its
  // own magic/version/digest) and, when a manifest names this sweep,
  // belong to it. Anything else is dropped — the spec re-runs.
  for (const sn::ContainerEntry& e : scan.entries) {
    const std::string what = path + " entry spec " + std::to_string(e.spec);
    std::string cls, detail;
    try {
      const auto payload = sn::container_get(path, e.spec);
      if (!payload) continue;  // lost with the torn tail; already reported
      const CheckpointMeta meta = read_checkpoint_meta(*payload);
      if (have_manifest) {
        if (e.spec >= manifest->specs.size()) {
          cls = "stale";
          detail = "spec index beyond manifest";
        } else if (meta.config_digest !=
                   manifest->specs[e.spec].config_digest) {
          cls = "stale";
          detail = "checkpoint config digest does not match manifest";
        }
      }
    } catch (const std::exception& ex) {
      cls = "corrupt";
      detail = ex.what();
    }
    if (cls.empty()) {
      note(rep, log, what, "valid", "");
      continue;
    }
    try {
      sn::container_erase(path, e.spec);
      note(rep, log, what, cls, detail + "; entry dropped, spec will re-run",
           /*repaired=*/true);
    } catch (const std::exception& ex) {
      note(rep, log, what, cls, detail + "; drop failed: " + ex.what());
      rep.unrepairable = true;
    }
  }
}

}  // namespace

FsckReport run_fsck(const std::string& dir, std::ostream& log) {
  FsckReport rep;
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    throw std::runtime_error("fsck: " + dir + " is not a directory");

  // Manifest first: its verdict feeds the container's staleness check.
  SweepManifest manifest;
  bool have_manifest = false;
  const std::string mpath = manifest_path(dir);
  if (fs::exists(mpath, ec)) {
    try {
      have_manifest = load_manifest(mpath, &manifest);
      if (have_manifest) note(rep, log, mpath, "valid", "");
    } catch (const std::exception& e) {
      // A streamed manifest killed mid-append has a torn tail; cutting
      // it back to the last validating cumulative digest line loses only
      // the block being appended (those specs simply re-run on resume).
      bool salvaged = false;
      std::size_t removed = 0;
      try {
        salvaged = salvage_manifest_tail(mpath, &removed) && removed > 0 &&
                   load_manifest(mpath, &manifest);
      } catch (const std::exception&) {
        salvaged = false;
      }
      if (salvaged) {
        have_manifest = true;
        note(rep, log, mpath, "torn",
             "truncated " + std::to_string(removed) +
                 " torn tail bytes back to the last validating digest line",
             /*repaired=*/true);
      } else {
        // Interior damage. The manifest is the only file holding
        // completed results; fsck never deletes it on its own.
        note(rep, log, mpath, "corrupt",
             std::string(e.what()) +
                 "; holds completed results, not auto-deleted — delete it "
                 "and re-run the sweep to rebuild");
        rep.unrepairable = true;
      }
    }
  }

  check_container(checkpoint_container_path(dir), &manifest, have_manifest,
                  rep, log);

  // Worker request/result files, shared-progress files, motion traces
  // and rename-staging leftovers. All are regenerated by the next run,
  // so "repair" for a bad one is deletion.
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec))
    if (entry.is_regular_file()) paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());  // deterministic report order

  for (const fs::path& p : paths) {
    const std::string path = p.string();
    const std::string ext = p.extension().string();
    std::string cls, detail;
    if (ext == ".tmp") {
      cls = "leftover";
      detail = "interrupted atomic-write staging file";
    } else if (ext == ".leases") {
      // Advisory dispatch lease journal (experiment/dispatch.hpp); the
      // dispatcher removes it on a clean return, so one on disk means
      // the parent died with leases outstanding. Leases are re-granted
      // from the manifest, never from this file.
      cls = "leftover";
      detail = "dispatch lease journal from an unclean shutdown";
    } else if (ext == ".req") {
      try {
        read_worker_request(path);
        note(rep, log, path, "valid", "");
        continue;
      } catch (const std::exception& e) {
        cls = "corrupt";
        detail = e.what();
      }
    } else if (ext == ".result") {
      try {
        read_worker_result(path);
        note(rep, log, path, "valid", "");
        continue;
      } catch (const std::exception& e) {
        cls = "corrupt";
        detail = e.what();
      }
    } else if (ext == ".progress") {
      // A v2 block is 32 bytes with a "DPRG" magic + version header;
      // anything else (including a stale 8-byte v1 counter) is damage.
      try {
        SharedProgress::open(path);
        note(rep, log, path, "valid", "");
        continue;
      } catch (const std::exception& e) {
        cls = "corrupt";
        detail = e.what();
      }
    } else if (ext == ".trc") {
      try {
        load_motion_trace(path);
        note(rep, log, path, "valid", "");
        continue;
      } catch (const std::exception& e) {
        cls = "corrupt";
        detail = e.what();
      }
    } else {
      continue;  // not a file kind this machinery owns
    }
    if (drop(path)) {
      note(rep, log, path, cls, detail + "; deleted (regenerated on next run)",
           /*repaired=*/true);
    } else {
      note(rep, log, path, cls, detail + "; delete failed");
      rep.unrepairable = true;
    }
  }

  log << "fsck: " << dir << ": "
      << (rep.unrepairable
              ? "unrepairable damage remains"
              : (rep.repaired ? "repaired" : "clean"))
      << "\n";
  return rep;
}

}  // namespace dftmsn
