#include "experiment/runner.hpp"

#include <cstdlib>
#include <string>

#include "common/thread_pool.hpp"
#include "experiment/world.hpp"

namespace dftmsn {

RunResult run_once(const Config& config, ProtocolKind kind,
                   RunTelemetry* telemetry_out) {
  World world(config, kind);
  world.run();
  if (telemetry_out) {
    if (const telemetry::Registry* reg = world.registry())
      telemetry_out->registry.merge(*reg);
    if (const telemetry::Profiler* prof = world.profiler())
      telemetry_out->profile.merge(*prof);
  }
  return reduce_world(world);
}

RunResult reduce_world(const World& world) {
  const Metrics& m = world.metrics();
  const Channel::Counters& ch = world.channel().counters();

  RunResult r;
  r.delivery_ratio = m.delivery_ratio();
  r.mean_power_mw = world.mean_sensor_power_mw();
  r.mean_delay_s = m.mean_delay_s();
  r.mean_hops = m.mean_hops();
  r.generated = m.generated();
  r.delivered = m.delivered_unique();
  r.collisions = ch.collisions;
  r.attempts = m.attempts();
  r.failed_attempts = m.failed_attempts();
  r.data_transmissions = m.data_transmissions();
  r.fairness_jain = m.jain_fairness_index();
  r.drops_overflow = m.drops(DropReason::kOverflow);
  r.drops_threshold = m.drops(DropReason::kFtdThreshold);
  r.drops_delivered = m.drops(DropReason::kDelivered);
  r.events_executed = world.sim().events_executed();
  r.drops_node_failure = m.drops(DropReason::kNodeFailure);
  r.frames_fault_corrupted = ch.faults_corrupted;
  if (const FaultInjector* inj = world.fault_injector()) {
    const FaultInjector::Counters& fc = inj->counters();
    r.faults_injected = fc.crashes + fc.outages + fc.recoveries +
                        fc.loss_bursts + fc.pressure_events;
  }
  if (const InvariantChecker* chk = world.invariant_checker())
    r.invariant_sweeps = chk->sweeps_run();
  if (m.delivered_unique() > 0) {
    r.overhead_bits_per_delivery =
        static_cast<double>(ch.data_bits_sent + ch.control_bits_sent) /
        static_cast<double>(m.delivered_unique());
  }
  return r;
}

std::vector<RunResult> run_specs(const std::vector<RunSpec>& specs,
                                 int jobs,
                                 std::vector<RunTelemetry>* telemetry_out) {
  std::vector<RunResult> results(specs.size());
  if (telemetry_out) {
    telemetry_out->clear();
    telemetry_out->resize(specs.size());
  }
  parallel_for(specs.size(), resolve_jobs(jobs), [&](std::size_t i) {
    results[i] = run_once(specs[i].config, specs[i].kind,
                          telemetry_out ? &(*telemetry_out)[i] : nullptr);
  });
  return results;
}

ReplicatedResult reduce_results(const std::vector<RunResult>& runs) {
  ReplicatedResult out;
  out.replications = static_cast<int>(runs.size());
  for (const RunResult& r : runs) {
    out.delivery_ratio.add(r.delivery_ratio);
    out.mean_power_mw.add(r.mean_power_mw);
    out.mean_delay_s.add(r.mean_delay_s);
    out.overhead_bits_per_delivery.add(r.overhead_bits_per_delivery);
    out.collisions.add(static_cast<double>(r.collisions));
    out.fairness_jain.add(r.fairness_jain);
  }
  return out;
}

ReplicatedResult run_replicated(Config config, ProtocolKind kind,
                                int replications, int jobs) {
  std::vector<SweepPoint> point(1);
  point[0].config = std::move(config);
  point[0].kind = kind;
  return run_sweep(point, replications, jobs).front();
}

std::vector<ReplicatedResult> run_sweep(
    const std::vector<SweepPoint>& points, int replications, int jobs,
    std::vector<std::vector<RunResult>>* raw) {
  if (replications < 0) replications = 0;

  // Flatten the (point × replication) grid into one batch so the pool
  // stays saturated even when a single point has few replications.
  std::vector<RunSpec> specs;
  specs.reserve(points.size() * static_cast<std::size_t>(replications));
  for (const SweepPoint& p : points) {
    const std::uint64_t base_seed = p.config.scenario.seed;
    for (int rep = 0; rep < replications; ++rep) {
      RunSpec s = p;
      s.config.scenario.seed = base_seed + static_cast<std::uint64_t>(rep);
      specs.push_back(std::move(s));
    }
  }

  const std::vector<RunResult> flat = run_specs(specs, jobs);

  std::vector<ReplicatedResult> out;
  out.reserve(points.size());
  if (raw) {
    raw->clear();
    raw->reserve(points.size());
  }
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    const auto first = flat.begin() +
        static_cast<std::ptrdiff_t>(pi * static_cast<std::size_t>(replications));
    std::vector<RunResult> runs(first, first + replications);
    out.push_back(reduce_results(runs));
    if (raw) raw->push_back(std::move(runs));
  }
  return out;
}

BenchBudget bench_budget_from_env() {
  BenchBudget b;
  if (const char* reps = std::getenv("DFTMSN_BENCH_REPS")) {
    const int v = std::atoi(reps);
    if (v > 0) b.replications = v;
  }
  if (const char* dur = std::getenv("DFTMSN_BENCH_DURATION")) {
    const double v = std::atof(dur);
    if (v > 0) b.duration_s = v;
  }
  if (const char* jobs = std::getenv("DFTMSN_BENCH_JOBS")) {
    b.jobs = std::atoi(jobs);  // <= 0 keeps the auto default
  }
  return b;
}

}  // namespace dftmsn
