#include "experiment/runner.hpp"

#include <cstdlib>
#include <string>

#include "experiment/world.hpp"

namespace dftmsn {

RunResult run_once(const Config& config, ProtocolKind kind) {
  World world(config, kind);
  world.run();

  const Metrics& m = world.metrics();
  const Channel::Counters& ch = world.channel().counters();

  RunResult r;
  r.delivery_ratio = m.delivery_ratio();
  r.mean_power_mw = world.mean_sensor_power_mw();
  r.mean_delay_s = m.mean_delay_s();
  r.mean_hops = m.mean_hops();
  r.generated = m.generated();
  r.delivered = m.delivered_unique();
  r.collisions = ch.collisions;
  r.attempts = m.attempts();
  r.failed_attempts = m.failed_attempts();
  r.data_transmissions = m.data_transmissions();
  r.drops_overflow = m.drops(DropReason::kOverflow);
  r.drops_threshold = m.drops(DropReason::kFtdThreshold);
  r.events_executed = world.sim().events_executed();
  if (m.delivered_unique() > 0) {
    r.overhead_bits_per_delivery =
        static_cast<double>(ch.data_bits_sent + ch.control_bits_sent) /
        static_cast<double>(m.delivered_unique());
  }
  return r;
}

ReplicatedResult run_replicated(Config config, ProtocolKind kind,
                                int replications) {
  ReplicatedResult out;
  out.replications = replications;
  const std::uint64_t base_seed = config.scenario.seed;
  for (int rep = 0; rep < replications; ++rep) {
    config.scenario.seed = base_seed + static_cast<std::uint64_t>(rep);
    const RunResult r = run_once(config, kind);
    out.delivery_ratio.add(r.delivery_ratio);
    out.mean_power_mw.add(r.mean_power_mw);
    out.mean_delay_s.add(r.mean_delay_s);
    out.overhead_bits_per_delivery.add(r.overhead_bits_per_delivery);
    out.collisions.add(static_cast<double>(r.collisions));
  }
  return out;
}

BenchBudget bench_budget_from_env() {
  BenchBudget b;
  if (const char* reps = std::getenv("DFTMSN_BENCH_REPS")) {
    const int v = std::atoi(reps);
    if (v > 0) b.replications = v;
  }
  if (const char* dur = std::getenv("DFTMSN_BENCH_DURATION")) {
    const double v = std::atof(dur);
    if (v > 0) b.duration_s = v;
  }
  return b;
}

}  // namespace dftmsn
