// Runs configured scenarios and reduces them to the paper's metrics,
// with replication over seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "protocol/mac_common.hpp"
#include "stats/summary.hpp"

namespace dftmsn {

/// Headline metrics of one finished run.
struct RunResult {
  double delivery_ratio = 0.0;       ///< Fig. 2(a)
  double mean_power_mw = 0.0;        ///< Fig. 2(b): avg nodal power rate
  double mean_delay_s = 0.0;         ///< Fig. 2(c): avg delivery delay
  double mean_hops = 0.0;
  double overhead_bits_per_delivery = 0.0;  ///< all bits sent / delivered msg
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
  std::uint64_t attempts = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t data_transmissions = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_threshold = 0;
  std::uint64_t events_executed = 0;
};

/// Mean ± CI over replicated runs.
struct ReplicatedResult {
  Summary delivery_ratio;
  Summary mean_power_mw;
  Summary mean_delay_s;
  Summary overhead_bits_per_delivery;
  Summary collisions;
  int replications = 0;
};

/// Builds a World from `config`, runs it to the horizon, reduces metrics.
RunResult run_once(const Config& config, ProtocolKind kind);

/// Runs `replications` seeds (config.scenario.seed + r) and aggregates.
ReplicatedResult run_replicated(Config config, ProtocolKind kind,
                                int replications);

/// Benchmark knobs shared by the bench/ binaries, overridable from the
/// environment so the full harness can be dialed down for smoke runs:
///   DFTMSN_BENCH_REPS      (default 3)  replications per point
///   DFTMSN_BENCH_DURATION  (default 25000) seconds of simulated time
struct BenchBudget {
  int replications = 3;
  double duration_s = 25'000.0;
};
BenchBudget bench_budget_from_env();

}  // namespace dftmsn
