// Runs configured scenarios and reduces them to the paper's metrics,
// with replication over seeds — serially or across a worker-thread pool.
//
// Determinism contract: every run is a pure function of its (config,
// protocol) pair — replication r always runs with seed base_seed + r and
// World shares no mutable state between instances — and all reductions
// happen on the calling thread in input-index order. Aggregates are
// therefore bit-identical for every jobs value, including jobs=1.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "protocol/mac_common.hpp"
#include "stats/summary.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/registry.hpp"

namespace dftmsn {

/// Headline metrics of one finished run.
struct RunResult {
  double delivery_ratio = 0.0;       ///< Fig. 2(a)
  double mean_power_mw = 0.0;        ///< Fig. 2(b): avg nodal power rate
  double mean_delay_s = 0.0;         ///< Fig. 2(c): avg delivery delay
  double mean_hops = 0.0;
  double overhead_bits_per_delivery = 0.0;  ///< all bits sent / delivered msg
  /// Jain index over per-source delivery ratios (0 = no data, 1 = fair).
  double fairness_jain = 0.0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
  std::uint64_t attempts = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t data_transmissions = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_threshold = 0;
  std::uint64_t drops_delivered = 0;  ///< copies retired because FTD hit 1
  std::uint64_t events_executed = 0;
  // Fault-injection diagnostics (all zero when no plan is configured;
  // deterministic, so they participate in cross-jobs equality checks).
  std::uint64_t faults_injected = 0;   ///< crashes+outages+recoveries+bursts+clamps
  std::uint64_t drops_node_failure = 0;
  std::uint64_t frames_fault_corrupted = 0;
  std::uint64_t invariant_sweeps = 0;  ///< full checker sweeps that passed
};

/// Mean ± CI over replicated runs.
struct ReplicatedResult {
  Summary delivery_ratio;
  Summary mean_power_mw;
  Summary mean_delay_s;
  Summary overhead_bits_per_delivery;
  Summary collisions;
  Summary fairness_jain;
  int replications = 0;
};

/// Telemetry captured from one run (or merged over many, in input
/// order): the instrument registry and — when profiling was on — the
/// wall-clock subsystem timings. Runs with telemetry disabled contribute
/// nothing (the registry stays empty).
struct RunTelemetry {
  telemetry::Registry registry;
  telemetry::Profiler profile;
};

/// Builds a World from `config`, runs it to the horizon, reduces metrics.
/// When `telemetry_out` is non-null the world's registry/profiler content
/// is merged into it before the world is torn down.
RunResult run_once(const Config& config, ProtocolKind kind,
                   RunTelemetry* telemetry_out = nullptr);

/// Reduces an already-run World to the headline metrics (the tail half of
/// run_once; the supervisor reuses it on worlds it drove — and possibly
/// resumed — itself).
class World;
RunResult reduce_world(const World& world);

/// Folds per-replication results into mean ± CI, in input order.
ReplicatedResult reduce_results(const std::vector<RunResult>& runs);

/// One independent simulation in a batch: a fully-specified scenario
/// (seed included in config.scenario.seed) and a protocol variant.
struct RunSpec {
  Config config;
  ProtocolKind kind = ProtocolKind::kOpt;
};

/// Runs every spec across up to `jobs` worker threads (jobs <= 1: serial
/// on the calling thread; jobs <= 0: one per hardware thread). Results
/// come back in input order, independent of scheduling. When
/// `telemetry_out` is non-null it is resized to specs.size() and slot i
/// receives spec i's telemetry — each worker writes only its own slot, so
/// the capture is race-free and, like the results, independent of jobs.
std::vector<RunResult> run_specs(const std::vector<RunSpec>& specs,
                                 int jobs = 1,
                                 std::vector<RunTelemetry>* telemetry_out =
                                     nullptr);

/// Expands `replications` seeds (config.scenario.seed + r for replication
/// r — never a function of thread count or finish order), runs them via
/// run_specs, and folds the results in replication order.
ReplicatedResult run_replicated(Config config, ProtocolKind kind,
                                int replications, int jobs = 1);

/// A grid point of a parameter sweep: the scenario at that point plus the
/// protocol to run it under (seed taken as the point's base seed).
using SweepPoint = RunSpec;

/// Replicates every grid point `replications` times and schedules the
/// whole (point × replication) batch over one shared pool, so narrow
/// grids still saturate the machine. out[i] aggregates points[i]'s
/// replications in seed order; optionally exposes each point's raw
/// per-replication RunResults via `raw` (indexed [point][replication]).
std::vector<ReplicatedResult> run_sweep(
    const std::vector<SweepPoint>& points, int replications, int jobs = 1,
    std::vector<std::vector<RunResult>>* raw = nullptr);

/// Benchmark knobs shared by the bench/ binaries, overridable from the
/// environment so the full harness can be dialed down for smoke runs:
///   DFTMSN_BENCH_REPS      (default 3)  replications per point
///   DFTMSN_BENCH_DURATION  (default 25000) seconds of simulated time
///   DFTMSN_BENCH_JOBS      (default 0 = one per hardware thread)
///                          worker threads for replicated runs/sweeps
struct BenchBudget {
  int replications = 3;
  double duration_s = 25'000.0;
  int jobs = 0;  ///< <= 0: auto (hardware concurrency)
};
BenchBudget bench_budget_from_env();

}  // namespace dftmsn
