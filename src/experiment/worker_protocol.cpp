#include "experiment/worker_protocol.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include "common/config_io.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {
namespace {

constexpr char kRequestMagic[] = "DFTMSNWQ";
constexpr char kResultMagic[] = "DFTMSNWR";
constexpr std::uint32_t kProtocolVersion = 3;  // v3: framed dispatch wire

// The six doubles go first as bit patterns, then the counters, in
// RunResult declaration order — the same order the manifest uses.
void save_run_result(const RunResult& r, snapshot::Writer& w) {
  w.begin_section("run_result");
  w.f64(r.delivery_ratio);
  w.f64(r.mean_power_mw);
  w.f64(r.mean_delay_s);
  w.f64(r.mean_hops);
  w.f64(r.overhead_bits_per_delivery);
  w.f64(r.fairness_jain);
  w.u64(r.generated);
  w.u64(r.delivered);
  w.u64(r.collisions);
  w.u64(r.attempts);
  w.u64(r.failed_attempts);
  w.u64(r.data_transmissions);
  w.u64(r.drops_overflow);
  w.u64(r.drops_threshold);
  w.u64(r.drops_delivered);
  w.u64(r.events_executed);
  w.u64(r.faults_injected);
  w.u64(r.drops_node_failure);
  w.u64(r.frames_fault_corrupted);
  w.u64(r.invariant_sweeps);
  w.end_section();
}

void load_run_result(RunResult& r, snapshot::Reader& rd) {
  rd.begin_section("run_result");
  r.delivery_ratio = rd.f64();
  r.mean_power_mw = rd.f64();
  r.mean_delay_s = rd.f64();
  r.mean_hops = rd.f64();
  r.overhead_bits_per_delivery = rd.f64();
  r.fairness_jain = rd.f64();
  r.generated = rd.u64();
  r.delivered = rd.u64();
  r.collisions = rd.u64();
  r.attempts = rd.u64();
  r.failed_attempts = rd.u64();
  r.data_transmissions = rd.u64();
  r.drops_overflow = rd.u64();
  r.drops_threshold = rd.u64();
  r.drops_delivered = rd.u64();
  r.events_executed = rd.u64();
  r.faults_injected = rd.u64();
  r.drops_node_failure = rd.u64();
  r.frames_fault_corrupted = rd.u64();
  r.invariant_sweeps = rd.u64();
  rd.end_section();
}

std::uint32_t check_version(snapshot::Reader& rd, const char* what) {
  const std::uint32_t v = rd.u32();
  if (v != kProtocolVersion)
    throw snapshot::SnapshotError(std::string(what) + ": protocol version " +
                                  std::to_string(v) + " (this build speaks " +
                                  std::to_string(kProtocolVersion) + ")");
  return v;
}

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("shared progress: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

std::vector<std::uint8_t> encode_worker_request(const WorkerRequest& req) {
  snapshot::Writer w;
  w.u32(kProtocolVersion);
  w.begin_section("request");
  save_config_exact(req.config, w);
  w.u32(static_cast<std::uint32_t>(req.kind));
  w.i64(req.attempt);
  w.str(req.checkpoint_path);
  w.u64(req.checkpoint_spec);
  w.f64(req.checkpoint_every_s);
  w.boolean(req.verify_on_resume);
  w.str(req.result_path);
  w.str(req.progress_path);
  w.end_section();
  return snapshot::seal_container(kRequestMagic, w.bytes());
}

WorkerRequest decode_worker_request(const std::vector<std::uint8_t>& image) {
  snapshot::Reader rd(snapshot::unseal_container(kRequestMagic, image));
  check_version(rd, "worker request");
  WorkerRequest req;
  rd.begin_section("request");
  load_config_exact(req.config, rd);
  req.kind = static_cast<ProtocolKind>(rd.u32());
  req.attempt = static_cast<int>(rd.i64());
  req.checkpoint_path = rd.str();
  req.checkpoint_spec = rd.u64();
  req.checkpoint_every_s = rd.f64();
  req.verify_on_resume = rd.boolean();
  req.result_path = rd.str();
  req.progress_path = rd.str();
  rd.end_section();
  return req;
}

void write_worker_request(const std::string& path, const WorkerRequest& req) {
  snapshot::write_file_atomic(path, encode_worker_request(req));
}

WorkerRequest read_worker_request(const std::string& path) {
  try {
    return decode_worker_request(snapshot::read_file(path));
  } catch (const snapshot::SnapshotError& e) {
    throw snapshot::SnapshotError("worker request " + path + ": " + e.what());
  }
}

std::vector<std::uint8_t> encode_worker_result(const WorkerResult& res) {
  snapshot::Writer w;
  w.u32(kProtocolVersion);
  w.begin_section("result");
  w.u8(res.ok ? 0 : 1);
  w.str(res.error);
  save_run_result(res.result, w);
  w.u64(res.checkpoints_written);
  res.registry.save_state(w);
  w.end_section();
  return snapshot::seal_container(kResultMagic, w.bytes());
}

WorkerResult decode_worker_result(const std::vector<std::uint8_t>& image) {
  snapshot::Reader rd(snapshot::unseal_container(kResultMagic, image));
  check_version(rd, "worker result");
  WorkerResult res;
  rd.begin_section("result");
  res.ok = rd.u8() == 0;
  res.error = rd.str();
  load_run_result(res.result, rd);
  res.checkpoints_written = rd.u64();
  res.registry.load_state(rd);
  rd.end_section();
  return res;
}

void write_worker_result(const std::string& path, const WorkerResult& res) {
  snapshot::write_file_atomic(path, encode_worker_result(res));
}

WorkerResult read_worker_result(const std::string& path) {
  try {
    return decode_worker_result(snapshot::read_file(path));
  } catch (const snapshot::SnapshotError& e) {
    throw snapshot::SnapshotError("worker result " + path + ": " + e.what());
  }
}

std::string worker_signal_name(int sig) {
  // Hand-mapped so manifest strings are identical across libcs.
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGTERM: return "SIGTERM";
    default: return "signal " + std::to_string(sig);
  }
}

WorkerExitDecision decode_worker_exit(int wait_status, WorkerFileState file,
                                      const std::string& reported_error) {
  if (WIFSIGNALED(wait_status))
    return {false,
            "worker killed by " + worker_signal_name(WTERMSIG(wait_status))};
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code == 0) {
      switch (file) {
        case WorkerFileState::kOk:
          return {true, ""};
        case WorkerFileState::kMissing:
          return {false, "worker exited 0 but wrote no result file"};
        case WorkerFileState::kCorrupt:
          return {false, "worker exited 0 but its result file is corrupt"};
        case WorkerFileState::kError:
          return {false, reported_error.empty()
                             ? "worker exited 0 with an error result"
                             : reported_error};
      }
    }
    // Nonzero exit: prefer the structured error the worker managed to
    // write; a bare exit code is the fallback diagnosis.
    return {false, reported_error.empty()
                       ? "worker exit code " + std::to_string(code)
                       : reported_error};
  }
  return {false, "worker wait status " + std::to_string(wait_status)};
}

// --- SharedProgress ----------------------------------------------------

static_assert(sizeof(std::atomic<std::uint64_t>) == 8,
              "shared progress mapping assumes an 8-byte atomic");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "cross-process progress needs a lock-free atomic");

namespace {

void* map_block(int fd) {
  void* addr = ::mmap(nullptr, kSharedProgressSize, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  if (addr == MAP_FAILED) sys_fail("mmap");
  return addr;
}

}  // namespace

SharedProgress SharedProgress::create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) sys_fail("open " + path);
  if (::ftruncate(fd, static_cast<off_t>(kSharedProgressSize)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("ftruncate " + path);
  }
  SharedProgress sp;
  try {
    sp.block_ = static_cast<Block*>(map_block(fd));
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);  // the mapping keeps the page alive
  sp.block_->magic = kSharedProgressMagic;
  sp.block_->version = kSharedProgressVersion;
  sp.block_->events.store(0, std::memory_order_relaxed);
  sp.block_->sim_time_bits.store(0, std::memory_order_relaxed);
  sp.block_->checkpoint_seq.store(0, std::memory_order_relaxed);
  return sp;
}

SharedProgress SharedProgress::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) sys_fail("open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("fstat " + path);
  }
  if (static_cast<std::size_t>(st.st_size) != kSharedProgressSize) {
    ::close(fd);
    throw std::runtime_error(
        "progress file " + path + ": " + std::to_string(st.st_size) +
        " bytes (a v" + std::to_string(kSharedProgressVersion) +
        " block is " + std::to_string(kSharedProgressSize) + ")");
  }
  SharedProgress sp;
  try {
    sp.block_ = static_cast<Block*>(map_block(fd));
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (sp.block_->magic != kSharedProgressMagic)
    throw std::runtime_error("progress file " + path +
                             ": not a shared-progress block (bad magic)");
  if (sp.block_->version != kSharedProgressVersion)
    throw std::runtime_error(
        "progress file " + path + ": version " +
        std::to_string(sp.block_->version) + " (this build speaks " +
        std::to_string(kSharedProgressVersion) + ")");
  return sp;
}

void SharedProgress::store_sim_time(double t) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &t, sizeof(bits));
  block_->sim_time_bits.store(bits, std::memory_order_relaxed);
}

double SharedProgress::load_sim_time() const {
  const std::uint64_t bits =
      block_->sim_time_bits.load(std::memory_order_relaxed);
  double t = 0.0;
  std::memcpy(&t, &bits, sizeof(t));
  return t;
}

SharedProgress::SharedProgress(SharedProgress&& other) noexcept
    : block_(other.block_) {
  other.block_ = nullptr;
}

SharedProgress& SharedProgress::operator=(SharedProgress&& other) noexcept {
  if (this != &other) {
    if (block_ != nullptr) ::munmap(block_, kSharedProgressSize);
    block_ = other.block_;
    other.block_ = nullptr;
  }
  return *this;
}

SharedProgress::~SharedProgress() {
  if (block_ != nullptr) ::munmap(block_, kSharedProgressSize);
}

}  // namespace dftmsn
