#include "experiment/worker.hpp"

#include <cmath>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <vector>

#include "experiment/world.hpp"
#include "experiment/worker_protocol.hpp"
#include "faults/invariant_checker.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/ckpt_container.hpp"

namespace dftmsn {
namespace {

/// Best-effort: a worker that cannot even write its result file still
/// exits with the right code; the parent then diagnoses from that alone.
void try_write_result(const std::string& path, const WorkerResult& res) {
  if (path.empty()) return;
  try {
    write_worker_result(path, res);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: cannot write result %s: %s\n", path.c_str(),
                 e.what());
  }
}

int fail_result(const std::string& result_path, const std::string& error,
                std::uint64_t checkpoints_written, int exit_code) {
  WorkerResult res;
  res.ok = false;
  res.error = error;
  res.checkpoints_written = checkpoints_written;
  try_write_result(result_path, res);
  return exit_code;
}

}  // namespace

int run_worker(const std::string& request_path) {
  WorkerRequest req;
  try {
    req = read_worker_request(request_path);
    req.config.validate();
  } catch (const std::exception& e) {
    // No trustworthy result path yet — stderr + exit code is the report.
    std::fprintf(stderr, "worker: bad request %s: %s\n", request_path.c_str(),
                 e.what());
    return kWorkerExitBadRequest;
  }

  std::uint64_t written = 0;
  try {
    Config cfg = req.config;
    cfg.faults.attempt = req.attempt;

    std::optional<SharedProgress> progress;
    if (!req.progress_path.empty())
      progress = SharedProgress::open(req.progress_path);
    std::atomic<std::uint64_t>* counter =
        progress ? progress->counter() : nullptr;

    // Resume from the spec's container entry when one is present and
    // belongs to this (config, protocol, seed). Unlike the in-process
    // loop — which keeps the last good image in memory across retries —
    // a fresh process can only trust the file: a torn tail simply hides
    // the entry (container_get recovers what precedes it), and a stale
    // or mismatched entry is erased so the fresh start owns the slot.
    std::unique_ptr<World> world;
    if (!req.checkpoint_path.empty()) {
      std::vector<std::uint8_t> image;
      try {
        auto entry = snapshot::container_get(req.checkpoint_path,
                                             req.checkpoint_spec);
        if (entry) image = std::move(*entry);
      } catch (const std::exception&) {
        image.clear();  // unreadable container: attempt from scratch
      }
      if (!image.empty()) {
        try {
          const CheckpointMeta meta = read_checkpoint_meta(image);
          if (meta.config_digest == config_digest(req.config, req.kind) &&
              meta.seed == cfg.scenario.seed)
            world = resume_world(cfg, req.kind, image, req.verify_on_resume,
                                 nullptr, counter);
        } catch (const snapshot::SnapshotMismatch&) {
          world.reset();
        } catch (const snapshot::SnapshotError&) {
          world.reset();
        }
        // Foreign digest falls through with world == nullptr too: either
        // way the entry cannot seed this run, so drop it before the
        // fresh start overwrites it at the next boundary.
        if (!world) {
          try {
            snapshot::container_erase(req.checkpoint_path,
                                      req.checkpoint_spec);
          } catch (const std::exception&) {
            // Best effort; the next container_put supersedes it anyway.
          }
        }
      }
    }
    if (!world) {
      world = std::make_unique<World>(cfg, req.kind);
      if (counter != nullptr) world->sim().set_progress_counter(counter);
    }

    // Same boundary arithmetic as the in-process supervisor: checkpoints
    // land on multiples of the period regardless of where a resume
    // started, so both modes write the same count for a clean run.
    const double horizon = cfg.scenario.duration_s;
    const double step =
        req.checkpoint_every_s > 0 ? req.checkpoint_every_s : horizon;
    if (progress) progress->store_sim_time(world->sim().now());
    while (world->sim().now() < horizon) {
      const double next = std::min(
          horizon, (std::floor(world->sim().now() / step) + 1.0) * step);
      world->run_until(next);
      // The sim-time and checkpoint-seq fields feed the parent's status
      // plane only — chunk-boundary granularity is plenty for a human
      // progress view, and the stores are free on the sim hot path.
      if (progress) progress->store_sim_time(world->sim().now());
      if (world->sim().now() >= horizon) break;
      if (!req.checkpoint_path.empty()) {
        snapshot::container_put(req.checkpoint_path, req.checkpoint_spec,
                                make_checkpoint(*world));
        ++written;
        if (progress)
          progress->checkpoint_seq()->store(written,
                                            std::memory_order_relaxed);
      }
    }

    WorkerResult res;
    res.ok = true;
    res.result = reduce_world(*world);
    res.checkpoints_written = written;
    if (world->registry() != nullptr) res.registry.merge(*world->registry());
    write_worker_result(req.result_path, res);
    return kWorkerExitOk;
  } catch (const InvariantViolation& e) {
    return fail_result(req.result_path, e.what(), written,
                       kWorkerExitInvariant);
  } catch (const std::exception& e) {
    // SimulatedCrash, snapshot errors out of checkpoint writes, ...
    return fail_result(req.result_path, e.what(), written,
                       kWorkerExitRunFailed);
  }
}

}  // namespace dftmsn
