#include "experiment/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/net_util.hpp"
#include "experiment/dispatch.hpp"
#include "experiment/world.hpp"
#include "experiment/worker_protocol.hpp"
#include "faults/invariant_checker.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/ckpt_container.hpp"

namespace dftmsn {
namespace {

/// Best-effort: a worker that cannot even write its result file still
/// exits with the right code; the parent then diagnoses from that alone.
void try_write_result(const std::string& path, const WorkerResult& res) {
  if (path.empty()) return;
  try {
    write_worker_result(path, res);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: cannot write result %s: %s\n", path.c_str(),
                 e.what());
  }
}

int fail_result(const std::string& result_path, const std::string& error,
                std::uint64_t checkpoints_written, int exit_code) {
  WorkerResult res;
  res.ok = false;
  res.error = error;
  res.checkpoints_written = checkpoints_written;
  try_write_result(result_path, res);
  return exit_code;
}

}  // namespace

int run_worker(const std::string& request_path) {
  WorkerRequest req;
  try {
    req = read_worker_request(request_path);
    req.config.validate();
  } catch (const std::exception& e) {
    // No trustworthy result path yet — stderr + exit code is the report.
    std::fprintf(stderr, "worker: bad request %s: %s\n", request_path.c_str(),
                 e.what());
    return kWorkerExitBadRequest;
  }

  std::uint64_t written = 0;
  try {
    Config cfg = req.config;
    cfg.faults.attempt = req.attempt;

    std::optional<SharedProgress> progress;
    if (!req.progress_path.empty())
      progress = SharedProgress::open(req.progress_path);
    std::atomic<std::uint64_t>* counter =
        progress ? progress->counter() : nullptr;

    // Resume from the spec's container entry when one is present and
    // belongs to this (config, protocol, seed). Unlike the in-process
    // loop — which keeps the last good image in memory across retries —
    // a fresh process can only trust the file: a torn tail simply hides
    // the entry (container_get recovers what precedes it), and a stale
    // or mismatched entry is erased so the fresh start owns the slot.
    std::unique_ptr<World> world;
    if (!req.checkpoint_path.empty()) {
      std::vector<std::uint8_t> image;
      try {
        auto entry = snapshot::container_get(req.checkpoint_path,
                                             req.checkpoint_spec);
        if (entry) image = std::move(*entry);
      } catch (const std::exception&) {
        image.clear();  // unreadable container: attempt from scratch
      }
      if (!image.empty()) {
        try {
          const CheckpointMeta meta = read_checkpoint_meta(image);
          if (meta.config_digest == config_digest(req.config, req.kind) &&
              meta.seed == cfg.scenario.seed)
            world = resume_world(cfg, req.kind, image, req.verify_on_resume,
                                 nullptr, counter);
        } catch (const snapshot::SnapshotMismatch&) {
          world.reset();
        } catch (const snapshot::SnapshotError&) {
          world.reset();
        }
        // Foreign digest falls through with world == nullptr too: either
        // way the entry cannot seed this run, so drop it before the
        // fresh start overwrites it at the next boundary.
        if (!world) {
          try {
            snapshot::container_erase(req.checkpoint_path,
                                      req.checkpoint_spec);
          } catch (const std::exception&) {
            // Best effort; the next container_put supersedes it anyway.
          }
        }
      }
    }
    if (!world) {
      world = std::make_unique<World>(cfg, req.kind);
      if (counter != nullptr) world->sim().set_progress_counter(counter);
    }

    // Same boundary arithmetic as the in-process supervisor: checkpoints
    // land on multiples of the period regardless of where a resume
    // started, so both modes write the same count for a clean run.
    const double horizon = cfg.scenario.duration_s;
    const double step =
        req.checkpoint_every_s > 0 ? req.checkpoint_every_s : horizon;
    if (progress) progress->store_sim_time(world->sim().now());
    while (world->sim().now() < horizon) {
      const double next = std::min(
          horizon, (std::floor(world->sim().now() / step) + 1.0) * step);
      world->run_until(next);
      // The sim-time and checkpoint-seq fields feed the parent's status
      // plane only — chunk-boundary granularity is plenty for a human
      // progress view, and the stores are free on the sim hot path.
      if (progress) progress->store_sim_time(world->sim().now());
      if (world->sim().now() >= horizon) break;
      if (!req.checkpoint_path.empty()) {
        snapshot::container_put(req.checkpoint_path, req.checkpoint_spec,
                                make_checkpoint(*world));
        ++written;
        if (progress)
          progress->checkpoint_seq()->store(written,
                                            std::memory_order_relaxed);
      }
    }

    WorkerResult res;
    res.ok = true;
    res.result = reduce_world(*world);
    res.checkpoints_written = written;
    if (world->registry() != nullptr) res.registry.merge(*world->registry());
    write_worker_result(req.result_path, res);
    return kWorkerExitOk;
  } catch (const InvariantViolation& e) {
    return fail_result(req.result_path, e.what(), written,
                       kWorkerExitInvariant);
  } catch (const std::exception& e) {
    // SimulatedCrash, snapshot errors out of checkpoint writes, ...
    return fail_result(req.result_path, e.what(), written,
                       kWorkerExitRunFailed);
  }
}

namespace {

/// Runs one leased spec in-process and reports its outcome as a
/// WorkerResult — the same structured ok/error split the file-based
/// worker writes, so the dispatcher's retry/quarantine decisions match
/// the local modes byte for byte. A heartbeat thread streams the spec's
/// live event counter back for the whole run; a frozen counter (SIGSTOP,
/// wedged sim) stops extending the lease even though frames keep (or
/// stop) flowing.
WorkerResult run_leased_spec(
    const GrantItem& item, std::uint64_t lease_id, double lease_secs,
    const std::function<void(const std::vector<std::uint8_t>&)>& send) {
  WorkerResult res;
  WorkerRequest req;
  try {
    req = decode_worker_request(item.request);
    req.config.validate();
  } catch (const std::exception& e) {
    res.ok = false;
    res.error = std::string("bad request image: ") + e.what();
    return res;
  }

  Config cfg = req.config;
  cfg.faults.attempt = req.attempt;

  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> time_bits{0};
  std::atomic<bool> hb_stop{false};
  const double period = std::clamp(lease_secs / 4.0, 0.05, 5.0);
  std::thread heartbeat([&] {
    for (;;) {
      // Sleep in short slices so shutdown is prompt.
      for (double waited = 0.0; waited < period && !hb_stop.load();
           waited += 0.01)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (hb_stop.load()) return;
      try {
        send(encode_heartbeat_frame(lease_id, item.spec, events.load(),
                                    time_bits.load()));
      } catch (const std::exception&) {
        return;  // socket gone; the main loop will notice on its own
      }
    }
  });

  try {
    World world(cfg, req.kind);
    world.sim().set_progress_counter(&events);
    const double horizon = cfg.scenario.duration_s;
    const double step = horizon > 0.0 ? horizon / 16.0 : 1.0;
    while (world.sim().now() < horizon) {
      const double next = std::min(
          horizon, (std::floor(world.sim().now() / step) + 1.0) * step);
      world.run_until(next);
      std::uint64_t bits = 0;
      const double t = world.sim().now();
      std::memcpy(&bits, &t, sizeof(bits));
      time_bits.store(bits);
    }
    res.ok = true;
    res.result = reduce_world(world);
    if (world.registry() != nullptr) res.registry.merge(*world.registry());
  } catch (const std::exception& e) {
    // InvariantViolation, SimulatedCrash, ... — a *reported* failure,
    // which consumes the spec's sim retry budget dispatcher-side.
    res.ok = false;
    res.error = e.what();
  }
  hb_stop.store(true);
  heartbeat.join();
  return res;
}

}  // namespace

int run_dispatch_worker(const std::string& host, int port) {
  int fd = -1;
  try {
    fd = net::connect_tcp(host, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: cannot connect to %s:%d: %s\n", host.c_str(),
                 port, e.what());
    return kWorkerExitBadRequest;
  }

  // The heartbeat thread and the main loop share the socket; frames must
  // not interleave mid-write.
  std::mutex send_mu;
  const auto send = [&](const std::vector<std::uint8_t>& bytes) {
    std::lock_guard<std::mutex> lock(send_mu);
    net::write_full(fd, bytes.data(), bytes.size());
  };

  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> chunk(64 * 1024);
  // Blocks until one whole frame arrived; false on clean dispatcher EOF.
  const auto read_frame = [&](WireFrame* out) {
    for (;;) {
      const std::size_t used =
          try_extract_frame(buf.data(), buf.size(), "dispatch stream", out);
      if (used > 0) {
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(used));
        return true;
      }
      const ssize_t got = net::recv_some(fd, chunk.data(), chunk.size());
      if (got == 0) return false;
      if (got < 0)
        throw net::NetError(std::string("recv: ") + std::strerror(errno));
      buf.insert(buf.end(), chunk.data(), chunk.data() + got);
    }
  };

  // Chaos-test hook: sever the connection (no goodbye, no flush beyond
  // what TCP already carried) after the Nth result frame.
  long drop_after = -1;
  if (const char* env = std::getenv("DFTMSN_DISPATCH_DROP_AFTER"))
    drop_after = std::atol(env);
  long results_sent = 0;

  try {
    send(encode_hello_frame("worker-" + std::to_string(::getpid())));
    for (;;) {
      send(encode_request_frame());
      WireFrame f;
      if (!read_frame(&f)) break;  // dispatcher gone: sweep is over for us
      if (f.type == FrameType::kNoWork) {
        if (f.done) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      if (f.type != FrameType::kGrant)
        throw snapshot::SnapshotError(
            "dispatch stream: expected grant or nowork");
      for (const GrantItem& item : f.items) {
        WorkerResult res =
            run_leased_spec(item, f.lease_id, f.lease_secs, send);
        send(encode_result_frame(f.lease_id, item.spec, item.attempt,
                                 encode_worker_result(res)));
        ++results_sent;
        if (drop_after >= 0 && results_sent >= drop_after) {
          ::shutdown(fd, SHUT_RDWR);
          ::close(fd);
          return kWorkerExitOk;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: dispatch failure: %s\n", e.what());
    ::close(fd);
    return kWorkerExitBadRequest;
  }
  ::close(fd);
  return kWorkerExitOk;
}

}  // namespace dftmsn
