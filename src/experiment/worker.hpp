// Child-process side of process-isolated supervision: executes exactly
// one replication attempt described by a worker request file and reports
// back through a sealed result file (see worker_protocol.hpp).
//
// The worker mirrors the in-process supervision loop — resume from the
// spec's checkpoint when one is present and valid, run with periodic
// boundary-aligned checkpoints, reduce at the horizon — so a clean run
// produces bit-identical results and checkpoint counts in either mode.
// It differs only where the process boundary forces it to: failures are
// reported as an error result + exit code instead of a thrown exception,
// and a stale/corrupt checkpoint is discarded inside the same attempt
// (the parent cannot hand the retry loop an in-memory image).
#pragma once

#include <string>

namespace dftmsn {

/// Runs one replication attempt from a request file. Returns the process
/// exit code (kWorkerExit*); never throws. Errors that occur after the
/// request was decoded are also reported through the result file so the
/// parent gets a structured message, not just an exit code.
int run_worker(const std::string& request_path);

}  // namespace dftmsn
