#include "experiment/supervisor.hpp"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/thread_pool.hpp"
#include "experiment/dispatch.hpp"
#include "experiment/worker_protocol.hpp"
#include "experiment/world.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/ckpt_container.hpp"
#include "snapshot/io_env.hpp"
#include "snapshot/snapshot_io.hpp"
#include "telemetry/lifecycle_trace.hpp"
#include "telemetry/status.hpp"
#include "telemetry/status_server.hpp"

extern char** environ;

namespace dftmsn {
namespace {

using Clock = std::chrono::steady_clock;

// Manifest doubles are stored as IEEE-754 bit patterns (decimal u64), so
// a resumed sweep folds bit-identical values into its aggregates.
std::uint64_t double_bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

double bits_double(std::uint64_t u) {
  double v = 0.0;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

std::string sanitize(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

bool from_hex(const std::string& s, std::vector<std::uint8_t>* out) {
  if (s.size() % 2 != 0) return false;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  out->clear();
  out->reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = nibble(s[i]);
    const int lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<std::uint8_t>(hi * 16 + lo));
  }
  return true;
}

bool parse_status(const std::string& s, SpecStatus* out) {
  if (s == "pending") *out = SpecStatus::kPending;
  else if (s == "completed") *out = SpecStatus::kCompleted;
  else if (s == "quarantined") *out = SpecStatus::kQuarantined;
  else if (s == "interrupted") *out = SpecStatus::kInterrupted;
  else return false;
  return true;
}

void put_result(std::ostream& os, const RunResult& r) {
  os << double_bits(r.delivery_ratio) << ' ' << double_bits(r.mean_power_mw)
     << ' ' << double_bits(r.mean_delay_s) << ' ' << double_bits(r.mean_hops)
     << ' ' << double_bits(r.overhead_bits_per_delivery) << ' '
     << double_bits(r.fairness_jain) << ' ' << r.generated
     << ' ' << r.delivered << ' ' << r.collisions << ' ' << r.attempts << ' '
     << r.failed_attempts << ' ' << r.data_transmissions << ' '
     << r.drops_overflow << ' ' << r.drops_threshold << ' '
     << r.drops_delivered << ' '
     << r.events_executed << ' ' << r.faults_injected << ' '
     << r.drops_node_failure << ' ' << r.frames_fault_corrupted << ' '
     << r.invariant_sweeps;
}

void put_spec_block(std::ostream& os, std::size_t i, const SpecRecord& r) {
  os << "spec " << i << ' ' << spec_status_name(r.status) << " retries="
     << r.retries << " checkpoints=" << r.checkpoints << " digest="
     << r.config_digest << " detail=" << sanitize(r.detail) << "\n";
  if (r.status == SpecStatus::kCompleted) {
    os << "result " << i << ' ';
    put_result(os, r.result);
    os << "\n";
    // v3 addition: the completed run's instrument registry, hex of its
    // canonical byte form, so a resumed sweep reports the same merged
    // telemetry a straight-through sweep would. Omitted when telemetry
    // was off (the registry is empty) — deterministically, so the line
    // set never depends on jobs or isolation mode.
    if (!r.registry.empty())
      os << "registry " << i << ' ' << to_hex(r.registry.serialize())
         << "\n";
  }
}

bool get_result(std::istream& is, RunResult* r) {
  std::uint64_t dr = 0, pw = 0, dl = 0, hp = 0, ov = 0, fj = 0;
  if (!(is >> dr >> pw >> dl >> hp >> ov >> fj >> r->generated >>
        r->delivered >> r->collisions >> r->attempts >> r->failed_attempts >>
        r->data_transmissions >> r->drops_overflow >> r->drops_threshold >>
        r->drops_delivered >>
        r->events_executed >> r->faults_injected >> r->drops_node_failure >>
        r->frames_fault_corrupted >> r->invariant_sweeps))
    return false;
  r->delivery_ratio = bits_double(dr);
  r->mean_power_mw = bits_double(pw);
  r->mean_delay_s = bits_double(dl);
  r->mean_hops = bits_double(hp);
  r->overhead_bits_per_delivery = bits_double(ov);
  r->fairness_jain = bits_double(fj);
  return true;
}

/// Per-spec supervision state shared between the worker running the spec
/// and the watchdog thread. progress/abort/active/watchdog_fired are the
/// cross-thread surface; the trailing fields are watchdog-thread scratch.
struct Slot {
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> active{false};
  std::atomic<bool> watchdog_fired{false};
  /// In-process mirrors of the SharedProgress v2 fields: virtual
  /// sim-time (double bits) and checkpoint sequence of the current
  /// attempt, read by the status sampler exactly like `progress`.
  std::atomic<std::uint64_t> sim_time_bits{0};
  std::atomic<std::uint64_t> ckpt_seq{0};
  /// Process isolation: the spawned worker's pid while one is running
  /// (-1 otherwise) — a hung or stopped worker cannot honor the abort
  /// flag, so the watchdog SIGKILLs it instead.
  std::atomic<long> child_pid{-1};
  /// Process isolation: the worker's progress fields live in a shared
  /// file mapping, not in this Slot; non-null while the mapping exists
  /// (the mapping itself outlives the watchdog thread, so a pointer read
  /// here is always safe to follow).
  std::atomic<const std::atomic<std::uint64_t>*> shared{nullptr};
  std::atomic<const std::atomic<std::uint64_t>*> shared_time{nullptr};
  std::atomic<const std::atomic<std::uint64_t>*> shared_seq{nullptr};

  bool seen = false;
  std::uint64_t last_progress = 0;
  Clock::time_point last_change{};
  /// Watchdog-thread scratch: last pid a SIGKILL was traced for, so the
  /// repeated kill of one stubborn child logs a single sigkill event.
  long last_killed_pid = -1;
};

/// Observability hooks threaded through the run functions. Both
/// pointers null when the plane is off — every call site checks, so an
/// observability-off sweep takes the exact same path it always did.
struct Obs {
  telemetry::StatusBoard* board = nullptr;
  telemetry::LifecycleTrace* trace = nullptr;
};

void run_one_supervised(const RunSpec& spec, std::size_t index,
                        const SupervisorOptions& opts, Slot& slot,
                        const Obs& obs, SpecRecord& rec) {
  const std::string ckpt =
      opts.checkpoint_dir.empty()
          ? std::string()
          : checkpoint_container_path(opts.checkpoint_dir);

  // Last good checkpoint, kept in memory: the retry path must not depend
  // on re-reading an entry a torn write may have damaged.
  std::vector<std::uint8_t> image;
  if (opts.resume && !ckpt.empty()) {
    try {
      auto entry = snapshot::container_get(ckpt, index);
      if (entry) {
        const CheckpointMeta meta = read_checkpoint_meta(*entry);
        if (meta.config_digest == rec.config_digest &&
            meta.seed == spec.config.scenario.seed)
          image = std::move(*entry);
      }
    } catch (const std::exception&) {
      // Missing, torn or foreign checkpoint: start the spec from scratch.
    }
  }

  int attempt = 0;
  for (;;) {
    if (opts.stop && opts.stop->load()) {
      rec.status = SpecStatus::kInterrupted;
      if (rec.detail.empty()) rec.detail = "stopped before start";
      if (obs.board) obs.board->mark_interrupted(index, rec.detail);
      if (obs.trace)
        obs.trace->instant(index, "interrupted", {{"reason", rec.detail}});
      return;
    }

    Config cfg = spec.config;
    // The only knob a retry turns: gates `attempts=`-qualified fault
    // events (see FaultInjector) without touching event or rng streams.
    cfg.faults.attempt = attempt;
    slot.watchdog_fired.store(false);
    slot.abort.store(false);
    slot.progress.store(0);
    slot.sim_time_bits.store(0);
    slot.ckpt_seq.store(0);
    if (obs.board) obs.board->mark_running(index, attempt);
    if (obs.trace)
      obs.trace->begin(index, "attempt",
                       {{"attempt", std::to_string(attempt)}});

    std::unique_ptr<World> world;
    std::string fail;
    bool drop_checkpoint = false;
    try {
      if (!image.empty()) {
        slot.active.store(true);  // replay is watchdog-monitored too
        world = resume_world(cfg, spec.kind, image, opts.verify_on_resume,
                             &slot.abort, &slot.progress);
      } else {
        world = std::make_unique<World>(cfg, spec.kind);
        world->sim().set_abort_flag(&slot.abort);
        world->sim().set_progress_counter(&slot.progress);
        slot.active.store(true);
      }

      const double horizon = cfg.scenario.duration_s;
      const double step =
          opts.checkpoint_every_s > 0 ? opts.checkpoint_every_s : horizon;
      int written = 0;
      while (world->sim().now() < horizon) {
        // Boundaries are multiples of the period, so a resumed run hits
        // the same ones an uninterrupted run would.
        const double next = std::min(
            horizon, (std::floor(world->sim().now() / step) + 1.0) * step);
        world->run_until(next);
        slot.sim_time_bits.store(double_bits(world->sim().now()),
                                 std::memory_order_relaxed);
        if (world->sim().now() >= horizon) break;
        if (!ckpt.empty()) {
          image = make_checkpoint(*world);
          snapshot::container_put(ckpt, index, image);
          ++written;
          ++rec.checkpoints;
          slot.ckpt_seq.store(static_cast<std::uint64_t>(written),
                              std::memory_order_relaxed);
          if (opts.stop_after_checkpoints > 0 &&
              written >= opts.stop_after_checkpoints) {
            slot.active.store(false);
            rec.status = SpecStatus::kInterrupted;
            rec.retries = attempt;
            rec.detail = "test hook: stopped after " +
                         std::to_string(written) + " checkpoints";
            if (obs.board) {
              obs.board->sync_checkpoints(index, rec.checkpoints);
              obs.board->mark_interrupted(index, rec.detail);
            }
            if (obs.trace) {
              obs.trace->end(index, "attempt");
              obs.trace->instant(index, "interrupted",
                                 {{"reason", rec.detail}});
            }
            return;
          }
        }
      }

      slot.active.store(false);
      slot.sim_time_bits.store(double_bits(world->sim().now()),
                               std::memory_order_relaxed);
      rec.result = reduce_world(*world);
      // The accepted attempt replayed (or ran) the whole trajectory from
      // event 0, so its registry covers the full run: one merge, no
      // double-counted retry prefixes.
      if (world->registry() != nullptr) rec.registry.merge(*world->registry());
      rec.status = SpecStatus::kCompleted;
      rec.retries = attempt;
      rec.detail.clear();
      if (!ckpt.empty()) {
        try {
          snapshot::container_erase(ckpt, index);
        } catch (const std::exception&) {
          // The result is already accepted; a failed cleanup of the
          // spent checkpoint entry must not turn into a retry.
        }
      }
      if (obs.board) {
        obs.board->update_progress(index, rec.result.events_executed, horizon);
        obs.board->sync_checkpoints(index, rec.checkpoints);
        obs.board->mark_done(index);
        obs.board->absorb_registry(rec.registry);
      }
      if (obs.trace) obs.trace->end(index, "attempt");
      return;
    } catch (const RunAborted& e) {
      slot.active.store(false);
      if (!slot.watchdog_fired.load() && opts.stop && opts.stop->load()) {
        // External stop: the abort unwound at a clean event boundary, so
        // flush one final checkpoint and leave the spec resumable.
        if (world && !ckpt.empty()) {
          try {
            snapshot::container_put(ckpt, index, make_checkpoint(*world));
            ++rec.checkpoints;
          } catch (const std::exception&) {
            // Keep whatever checkpoint was already on disk.
          }
        }
        rec.status = SpecStatus::kInterrupted;
        rec.retries = attempt;
        rec.detail = "interrupted at t=" + std::to_string(e.at);
        if (obs.board) {
          obs.board->sync_checkpoints(index, rec.checkpoints);
          obs.board->mark_interrupted(index, rec.detail);
        }
        if (obs.trace) {
          obs.trace->end(index, "attempt");
          obs.trace->instant(index, "interrupted", {{"reason", rec.detail}});
        }
        return;
      }
      fail = "watchdog: no event progress for " +
             std::to_string(opts.watchdog_secs) + "s wall (aborted at t=" +
             std::to_string(e.at) + " after " + std::to_string(e.events) +
             " events)";
    } catch (const snapshot::SnapshotMismatch& e) {
      slot.active.store(false);
      fail = e.what();
      drop_checkpoint = true;  // stale or nondeterministic: retry clean
    } catch (const snapshot::SnapshotError& e) {
      slot.active.store(false);
      fail = e.what();
      drop_checkpoint = true;
    } catch (const std::exception& e) {
      // SimulatedCrash, InvariantViolation, bad fault plans, ...
      slot.active.store(false);
      fail = e.what();
    }

    if (drop_checkpoint) image.clear();
    rec.detail =
        sanitize("attempt " + std::to_string(attempt) + ": " + fail);
    ++attempt;
    rec.retries = attempt;
    if (obs.trace) obs.trace->end(index, "attempt");
    if (attempt > opts.max_retries) {
      rec.status = SpecStatus::kQuarantined;
      if (obs.board) obs.board->mark_quarantined(index, rec.detail);
      if (obs.trace)
        obs.trace->instant(index, "quarantine",
                           {{"attempt", std::to_string(attempt - 1)},
                            {"reason", rec.detail}});
      return;
    }
    if (obs.board) obs.board->mark_retrying(index, attempt, rec.detail);
    if (obs.trace)
      obs.trace->instant(index, "retry",
                         {{"attempt", std::to_string(attempt - 1)},
                          {"reason", rec.detail}});
    const double backoff = std::min(
        5.0, opts.retry_backoff_s * std::pow(2.0, attempt - 1));
    if (backoff > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

/// One spec under process isolation: each attempt is a spawned worker
/// (`worker_exe --worker <request>`) that the parent reaps with waitpid
/// and judges by exit status + sealed result file. Retry state lives in
/// the spec's on-disk checkpoint instead of an in-memory image — the
/// worker adopts a valid checkpoint itself and discards a torn one, so
/// the parent only decides accept / retry / quarantine.
void run_one_isolated(const RunSpec& spec, std::size_t index,
                      const SupervisorOptions& opts,
                      const std::string& workdir, Slot& slot, const Obs& obs,
                      std::optional<SharedProgress>& progress_slot,
                      SpecRecord& rec) {
  const std::string ckpt =
      opts.checkpoint_dir.empty()
          ? std::string()
          : checkpoint_container_path(opts.checkpoint_dir);
  // Workers adopt any valid on-disk checkpoint; a non-resume sweep must
  // therefore clear leftovers the in-process path would simply ignore.
  if (!ckpt.empty() && !opts.resume) {
    try {
      snapshot::container_erase(ckpt, index);
    } catch (const std::exception&) {
      // An unreadable container cannot seed the worker either; leave the
      // damage for --fsck and run the spec from scratch.
    }
  }

  const std::string base = workdir + "/spec_" + std::to_string(index);
  const std::string req_path = base + ".req";
  const std::string result_path = base + ".result";
  const std::string progress_path = base + ".progress";

  progress_slot = SharedProgress::create(progress_path);
  std::atomic<std::uint64_t>* counter = progress_slot->counter();
  slot.shared.store(counter);
  slot.shared_time.store(progress_slot->sim_time_bits());
  slot.shared_seq.store(progress_slot->checkpoint_seq());

  const auto cleanup_worker_files = [&] {
    slot.shared.store(nullptr);
    slot.shared_time.store(nullptr);
    slot.shared_seq.store(nullptr);
    std::remove(req_path.c_str());
    std::remove(result_path.c_str());
    std::remove(progress_path.c_str());
  };

  int attempt = 0;
  for (;;) {
    if (opts.stop && opts.stop->load()) {
      rec.status = SpecStatus::kInterrupted;
      if (rec.detail.empty()) rec.detail = "stopped before start";
      cleanup_worker_files();
      if (obs.board) obs.board->mark_interrupted(index, rec.detail);
      if (obs.trace)
        obs.trace->instant(index, "interrupted", {{"reason", rec.detail}});
      return;
    }

    slot.watchdog_fired.store(false);
    slot.abort.store(false);
    counter->store(0);
    progress_slot->sim_time_bits()->store(0, std::memory_order_relaxed);
    progress_slot->checkpoint_seq()->store(0, std::memory_order_relaxed);
    if (obs.board) obs.board->mark_running(index, attempt);
    if (obs.trace)
      obs.trace->begin(index, "attempt",
                       {{"attempt", std::to_string(attempt)}});

    WorkerRequest req;
    req.config = spec.config;
    req.kind = spec.kind;
    req.attempt = attempt;
    req.checkpoint_path = ckpt;
    req.checkpoint_spec = index;
    req.checkpoint_every_s = opts.checkpoint_every_s;
    req.verify_on_resume = opts.verify_on_resume;
    req.result_path = result_path;
    req.progress_path = progress_path;

    std::string fail;
    std::remove(result_path.c_str());
    try {
      write_worker_request(req_path, req);

      pid_t pid = -1;
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(opts.worker_exe.c_str()));
      argv.push_back(const_cast<char*>("--worker"));
      argv.push_back(const_cast<char*>(req_path.c_str()));
      argv.push_back(nullptr);
      const int rc = ::posix_spawn(&pid, opts.worker_exe.c_str(), nullptr,
                                   nullptr, argv.data(), environ);
      if (rc != 0)
        throw std::runtime_error(std::string("cannot spawn worker ") +
                                 opts.worker_exe + ": " + std::strerror(rc));

      slot.child_pid.store(pid);
      slot.active.store(true);
      if (obs.board) obs.board->mark_worker_spawn(index);
      if (obs.trace)
        obs.trace->instant(index, "worker_spawn",
                           {{"pid", std::to_string(pid)},
                            {"attempt", std::to_string(attempt)}});
      // An abort that raced the pid publication (external stop between
      // spawn and store) could not kill the child — honor it here. The
      // symmetric watchdog-side race (pid read just before a worker exits
      // and the pid is reused) is accepted: the window is one poll
      // interval and the stray SIGKILL would need a same-pid recycle
      // within it.
      if (slot.abort.load())
        ::kill(pid, SIGKILL);

      int status = 0;
      pid_t waited = -1;
      do {
        waited = ::waitpid(pid, &status, 0);
      } while (waited < 0 && errno == EINTR);
      slot.active.store(false);
      slot.child_pid.store(-1);
      if (waited != pid)
        throw std::runtime_error(std::string("waitpid: ") +
                                 std::strerror(errno));

      WorkerResult wres;
      WorkerFileState fstate = WorkerFileState::kMissing;
      try {
        wres = read_worker_result(result_path);
        fstate = wres.ok ? WorkerFileState::kOk : WorkerFileState::kError;
      } catch (const std::exception&) {
        fstate = std::filesystem::exists(result_path)
                     ? WorkerFileState::kCorrupt
                     : WorkerFileState::kMissing;
      }
      // Checkpoint counts come only from decodable result files; a
      // SIGKILLed worker's partial writes are simply not counted.
      if (fstate == WorkerFileState::kOk || fstate == WorkerFileState::kError)
        rec.checkpoints += wres.checkpoints_written;

      if (!slot.watchdog_fired.load() && opts.stop && opts.stop->load()) {
        // External stop: the watchdog SIGKILLed the worker, so its last
        // periodic checkpoint (unlike the in-process path, no final one
        // can be flushed) keeps the spec resumable.
        rec.status = SpecStatus::kInterrupted;
        rec.retries = attempt;
        rec.detail = "interrupted (worker stopped)";
        cleanup_worker_files();
        if (obs.board) {
          obs.board->sync_checkpoints(index, rec.checkpoints);
          obs.board->mark_interrupted(index, rec.detail);
        }
        if (obs.trace) {
          obs.trace->end(index, "attempt");
          obs.trace->instant(index, "interrupted", {{"reason", rec.detail}});
        }
        return;
      }

      const WorkerExitDecision verdict =
          decode_worker_exit(status, fstate, wres.error);
      if (verdict.accept) {
        rec.result = wres.result;
        rec.registry.merge(wres.registry);
        rec.status = SpecStatus::kCompleted;
        rec.retries = attempt;
        rec.detail.clear();
        if (!ckpt.empty()) {
          try {
            snapshot::container_erase(ckpt, index);
          } catch (const std::exception&) {
            // Accepted result beats checkpoint cleanup; see above.
          }
        }
        cleanup_worker_files();
        if (obs.board) {
          obs.board->update_progress(index, rec.result.events_executed,
                                     spec.config.scenario.duration_s);
          obs.board->sync_checkpoints(index, rec.checkpoints);
          obs.board->mark_done(index);
          obs.board->absorb_registry(rec.registry);
        }
        if (obs.trace) obs.trace->end(index, "attempt");
        return;
      }
      fail = verdict.detail;
    } catch (const std::exception& e) {
      slot.active.store(false);
      slot.child_pid.store(-1);
      fail = e.what();
    }

    // A watchdog SIGKILL shows up to waitpid as a plain signal death; keep
    // the decoded verdict (signal name and all) inside the watchdog
    // message instead of overwriting it.
    if (slot.watchdog_fired.load())
      fail = "watchdog: no event progress for " +
             std::to_string(opts.watchdog_secs) + "s wall (" +
             (fail.empty() ? std::string("worker killed") : fail) + ")";

    rec.detail =
        sanitize("attempt " + std::to_string(attempt) + ": " + fail);
    ++attempt;
    rec.retries = attempt;
    if (obs.trace) obs.trace->end(index, "attempt");
    if (attempt > opts.max_retries) {
      rec.status = SpecStatus::kQuarantined;
      cleanup_worker_files();
      if (obs.board) obs.board->mark_quarantined(index, rec.detail);
      if (obs.trace)
        obs.trace->instant(index, "quarantine",
                           {{"attempt", std::to_string(attempt - 1)},
                            {"reason", rec.detail}});
      return;
    }
    if (obs.board) obs.board->mark_retrying(index, attempt, rec.detail);
    if (obs.trace)
      obs.trace->instant(index, "retry",
                         {{"attempt", std::to_string(attempt - 1)},
                          {"reason", rec.detail}});
    const double backoff = std::min(
        5.0, opts.retry_backoff_s * std::pow(2.0, attempt - 1));
    if (backoff > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

}  // namespace

const char* spec_status_name(SpecStatus s) {
  switch (s) {
    case SpecStatus::kPending: return "pending";
    case SpecStatus::kCompleted: return "completed";
    case SpecStatus::kQuarantined: return "quarantined";
    case SpecStatus::kInterrupted: return "interrupted";
  }
  return "?";
}

int SweepManifest::count(SpecStatus s) const {
  int n = 0;
  for (const SpecRecord& r : specs) n += (r.status == s) ? 1 : 0;
  return n;
}

int SweepManifest::retried() const {
  int n = 0;
  for (const SpecRecord& r : specs) n += (r.retries > 0) ? 1 : 0;
  return n;
}

std::uint64_t SweepManifest::total_checkpoints() const {
  std::uint64_t n = 0;
  for (const SpecRecord& r : specs) n += r.checkpoints;
  return n;
}

std::string manifest_path(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/manifest.txt";
}

std::string checkpoint_container_path(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/checkpoints.dcc";
}

void write_manifest(const std::string& path, const SweepManifest& manifest) {
  std::ostringstream os;
  os << "dftmsn-manifest v4\n";
  os << "specs " << manifest.specs.size() << "\n";
  for (std::size_t i = 0; i < manifest.specs.size(); ++i)
    put_spec_block(os, i, manifest.specs[i]);
  // v4 addition: a trailing whole-file FNV-1a digest line. The manifest
  // is the one text-format durable file; without this a single flipped
  // byte in a stored result would resume into silently wrong aggregates.
  std::string s = os.str();
  snapshot::StateHash h;
  h.update(s.data(), s.size());
  s += "digest " + std::to_string(h.value()) + "\n";
  snapshot::write_file_atomic(path,
                              std::vector<std::uint8_t>(s.begin(), s.end()));
}

namespace {

/// strtoull with the failure modes closed: empty field, leading junk,
/// trailing junk, sign, and overflow all throw via `bad`, naming the
/// offending line.
std::uint64_t parse_u64_field(
    const std::string& kv, std::size_t prefix, const std::string& line,
    const std::function<void(const std::string&)>& bad) {
  const char* s = kv.c_str() + prefix;
  if (*s == '\0' || *s == '-' || *s == '+')
    bad("bad number \"" + std::string(s) + "\" in: " + line);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0')
    bad("bad number \"" + std::string(s) + "\" in: " + line);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

bool load_manifest(const std::string& path, SweepManifest* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;

  const auto bad = [&path](const std::string& what) {
    throw std::runtime_error("manifest " + path + ": " + what);
  };

  // Digest first (same discipline as every binary format here): the
  // whole file must end with "digest <fnv>\n" covering everything before
  // that line, so torn writes and bit flips fail with one clear message
  // instead of parsing into wrong numbers.
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string whole = buf.str();
  if (whole.empty() || whole.back() != '\n')
    bad("truncated (no trailing newline)");
  std::size_t dpos = whole.rfind("digest ", whole.size() - 1);
  if (dpos == std::string::npos || (dpos != 0 && whole[dpos - 1] != '\n') ||
      whole.find('\n', dpos) != whole.size() - 1)
    bad("missing trailing digest line");
  {
    const std::string dline =
        whole.substr(dpos, whole.size() - 1 - dpos);  // sans newline
    const std::uint64_t stored = parse_u64_field(dline, 7, dline, bad);
    snapshot::StateHash h;
    h.update(whole.data(), dpos);
    if (h.value() != stored)
      bad("digest mismatch (torn or corrupt file)");
  }

  std::istringstream body(whole.substr(0, dpos));
  std::string line;
  // Strict version gate: older manifests (pre-registry v2, pre-digest
  // v3) are rejected rather than half-loaded — a stale manifest means
  // re-running the sweep, not silently resuming without telemetry.
  if (!std::getline(body, line) || line != "dftmsn-manifest v4")
    bad("unrecognized header");
  std::size_t n = 0;
  {
    if (!std::getline(body, line)) bad("missing spec count");
    std::istringstream is(line);
    std::string tag;
    if (!(is >> tag >> n) || tag != "specs") bad("missing spec count");
  }
  SweepManifest m;
  m.specs.resize(n);
  while (std::getline(body, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    // Streamed manifests carry a fresh cumulative digest line after
    // every appended block; all of them are covered by the trailing
    // digest already verified above, so the body parser skips them.
    if (tag == "digest") continue;
    std::size_t i = 0;
    is >> i;
    if (!is || i >= n) bad("malformed line: " + line);
    SpecRecord& r = m.specs[i];
    if (tag == "spec") {
      std::string status, kv;
      is >> status;
      if (!parse_status(status, &r.status)) bad("bad status: " + status);
      if (!(is >> kv) || kv.rfind("retries=", 0) != 0)
        bad("missing retries: " + line);
      const std::uint64_t retries = parse_u64_field(kv, 8, line, bad);
      if (retries > static_cast<std::uint64_t>(
                        std::numeric_limits<int>::max()))
        bad("retries out of range in: " + line);
      r.retries = static_cast<int>(retries);
      if (!(is >> kv) || kv.rfind("checkpoints=", 0) != 0)
        bad("missing checkpoints: " + line);
      r.checkpoints = parse_u64_field(kv, 12, line, bad);
      if (!(is >> kv) || kv.rfind("digest=", 0) != 0)
        bad("missing digest: " + line);
      r.config_digest = parse_u64_field(kv, 7, line, bad);
      std::string detail;
      std::getline(is, detail);
      const auto at = detail.find("detail=");
      r.detail = at == std::string::npos ? "" : detail.substr(at + 7);
    } else if (tag == "result") {
      if (!get_result(is, &r.result)) bad("malformed result: " + line);
    } else if (tag == "registry") {
      std::string hex;
      std::vector<std::uint8_t> bytes;
      if (!(is >> hex) || !from_hex(hex, &bytes))
        bad("malformed registry: " + line);
      try {
        snapshot::Reader rd(bytes);
        r.registry = telemetry::Registry();
        r.registry.load_state(rd);
      } catch (const std::exception& e) {
        bad("undecodable registry: " + std::string(e.what()));
      }
    } else {
      bad("unknown tag: " + tag);
    }
  }
  *out = std::move(m);
  return true;
}

bool salvage_manifest_tail(const std::string& path,
                           std::size_t* bytes_removed) {
  if (bytes_removed != nullptr) *bytes_removed = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string whole = buf.str();

  // Scan complete lines, tracking the hash of every byte consumed so
  // far. Each "digest <v>" line whose value matches the hash of the
  // bytes *before* it marks a self-consistent prefix a torn tail can be
  // cut back to.
  snapshot::StateHash h;
  std::size_t pos = 0;
  std::size_t good_end = 0;  // end offset of the last validating prefix
  while (pos < whole.size()) {
    const std::size_t nl = whole.find('\n', pos);
    if (nl == std::string::npos) break;  // torn final line
    const std::string line = whole.substr(pos, nl - pos);
    if (line.rfind("digest ", 0) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long v = std::strtoull(line.c_str() + 7, &end, 10);
      if (errno != ERANGE && end != line.c_str() + 7 && *end == '\0' &&
          h.value() == v)
        good_end = nl + 1;
    }
    h.update(whole.data() + pos, nl + 1 - pos);
    pos = nl + 1;
  }
  if (good_end == 0) return false;  // nothing validates: not salvageable
  if (good_end == whole.size()) return true;  // already clean

  auto& io = snapshot::IoEnv::instance();
  const int fd = io.open_rw(path);
  try {
    io.ftruncate_file(fd, path, good_end);
    io.fsync_file(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (bytes_removed != nullptr) *bytes_removed = whole.size() - good_end;
  return true;
}

namespace {

/// Streams a manifest: an atomic, durable all-pending scaffold up front,
/// then one appended block per terminal spec record, each append ending
/// with a fresh cumulative digest line and an fsync. The file is
/// loadable after every append (load_manifest takes the *last* digest
/// line; later spec records win), and a torn tail truncates back to the
/// previous digest line (salvage_manifest_tail / --fsck).
class ManifestWriter {
 public:
  ManifestWriter(std::string path, std::size_t num_specs,
                 const std::vector<std::uint64_t>& config_digests)
      : path_(std::move(path)) {
    std::ostringstream os;
    os << "dftmsn-manifest v4\n";
    os << "specs " << num_specs << "\n";
    for (std::size_t i = 0; i < num_specs; ++i)
      os << "spec " << i << " pending retries=0 checkpoints=0 digest="
         << config_digests[i] << " detail=\n";
    std::string s = os.str();
    hash_.update(s.data(), s.size());
    const std::string dline =
        "digest " + std::to_string(hash_.value()) + "\n";
    hash_.update(dline.data(), dline.size());
    s += dline;
    // The scaffold lands atomically before any spec runs: a SIGKILL
    // before the first completion still leaves a loadable manifest next
    // to whatever checkpoints made it to disk.
    snapshot::write_file_atomic(
        path_, std::vector<std::uint8_t>(s.begin(), s.end()));
    fd_ = snapshot::IoEnv::instance().open_rw(path_);
    offset_ = s.size();
  }
  ManifestWriter(const ManifestWriter&) = delete;
  ManifestWriter& operator=(const ManifestWriter&) = delete;
  ~ManifestWriter() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Appends spec i's terminal block + new cumulative digest line as one
  /// pwrite + fsync: a tear can only ever cost the block being written,
  /// never reach back past the previous digest line.
  void append(std::size_t i, const SpecRecord& r) {
    std::ostringstream os;
    put_spec_block(os, i, r);
    std::string s = os.str();
    hash_.update(s.data(), s.size());
    const std::string dline =
        "digest " + std::to_string(hash_.value()) + "\n";
    hash_.update(dline.data(), dline.size());
    s += dline;
    auto& io = snapshot::IoEnv::instance();
    io.pwrite_all(fd_, path_, s.data(), s.size(), offset_);
    io.fsync_file(fd_, path_);
    offset_ += s.size();
  }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t offset_ = 0;
  snapshot::StateHash hash_;
};

}  // namespace

StreamStats run_specs_streamed(const std::vector<RunSpec>& specs,
                               const SupervisorOptions& opts,
                               const SpecSink& sink) {
  const bool dispatched = opts.dispatch.enabled();
  if (dispatched && opts.isolate == IsolationMode::kProcess)
    throw std::runtime_error(
        "supervisor: dispatch mode runs specs on connected workers; "
        "process isolation is incompatible with --dispatch-port");

  std::vector<std::uint64_t> digests(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    digests[i] = config_digest(specs[i].config, specs[i].kind);

  const bool use_dir = !opts.checkpoint_dir.empty();
  if (use_dir) std::filesystem::create_directories(opts.checkpoint_dir);

  // Process isolation needs a directory for worker request/result/
  // progress files: the checkpoint dir when one is configured, the
  // caller's scratch dir otherwise, or a unique temp dir we clean up.
  const bool isolated = opts.isolate == IsolationMode::kProcess;
  std::string workdir;
  bool workdir_created = false;
  if (isolated) {
    if (opts.worker_exe.empty())
      throw std::runtime_error(
          "supervisor: process isolation needs a worker executable");
    if (use_dir) {
      workdir = opts.checkpoint_dir;
    } else if (!opts.scratch_dir.empty()) {
      workdir = opts.scratch_dir;
      std::filesystem::create_directories(workdir);
    } else {
      workdir = (std::filesystem::temp_directory_path() /
                 ("dftmsn-sup-" + std::to_string(::getpid())))
                    .string();
      workdir_created = !std::filesystem::exists(workdir);
      std::filesystem::create_directories(workdir);
    }
  }

  // Per-spec seed records. `carried[i]` starts as a fresh record holding
  // only the config digest; a resume fills in carried-over completions
  // (skip[i] = 1), which skip execution and re-emit through the reorder
  // buffer. Everything else reruns with a fresh retry budget (its
  // checkpoint, if any, is picked up by the worker).
  std::vector<SpecRecord> carried(specs.size());
  std::vector<char> skip(specs.size(), 0);
  for (std::size_t i = 0; i < specs.size(); ++i)
    carried[i].config_digest = digests[i];
  if (opts.resume && use_dir) {
    SweepManifest prev;
    if (load_manifest(manifest_path(opts.checkpoint_dir), &prev)) {
      if (prev.specs.size() != specs.size())
        throw std::runtime_error(
            "supervisor: manifest holds " +
            std::to_string(prev.specs.size()) + " specs but this sweep has " +
            std::to_string(specs.size()) + " — refusing to resume");
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (prev.specs[i].config_digest != digests[i])
          throw std::runtime_error(
              "supervisor: manifest was written by a different sweep "
              "(config digest mismatch at spec " + std::to_string(i) +
              ") — refusing to resume");
        if (prev.specs[i].status == SpecStatus::kCompleted) {
          carried[i] = std::move(prev.specs[i]);
          skip[i] = 1;
        }
      }
    }
  }

  // The streamed manifest: an all-pending scaffold before any spec runs
  // (a SIGKILL landing before the first completion must still leave a
  // resumable manifest), then one appended block per terminal record.
  std::optional<ManifestWriter> writer;
  if (use_dir)
    writer.emplace(manifest_path(opts.checkpoint_dir), specs.size(), digests);

  // Index-order reorder buffer: terminal records publish in completion
  // order but emit (manifest append + sink) in strict spec-index order,
  // so manifest bytes are identical at every jobs value and downstream
  // aggregation can fold incrementally. Peak memory is the out-of-order
  // window, not the whole sweep.
  StreamStats stats;
  std::mutex emit_mu;
  std::map<std::size_t, SpecRecord> buffered;
  std::size_t next_emit = 0;
  const auto publish = [&](std::size_t i, SpecRecord&& rec) {
    std::lock_guard<std::mutex> lock(emit_mu);
    buffered.emplace(i, std::move(rec));
    stats.peak_buffered = std::max(stats.peak_buffered, buffered.size());
    for (auto it = buffered.find(next_emit); it != buffered.end();
         it = buffered.find(next_emit)) {
      if (writer) writer->append(next_emit, it->second);
      if (sink) sink(next_emit, std::move(it->second));
      buffered.erase(it);
      ++next_emit;
    }
  };

  std::vector<Slot> slots(specs.size());
  // Shared-progress mappings live here — not on runner stacks — so the
  // watchdog can follow a Slot::shared pointer without racing a munmap;
  // the vector is destroyed only after the watchdog thread has joined.
  std::vector<std::optional<SharedProgress>> progress_maps(
      isolated ? specs.size() : 0);

  // --- observability plane (purely observational; see supervisor.hpp).
  // Declaration order matters: the server thread reads the board and is
  // a member declared last, so it is destroyed (and joined) first.
  std::unique_ptr<telemetry::StatusBoard> board;
  std::unique_ptr<telemetry::LifecycleTrace> ltrace;
  std::unique_ptr<telemetry::StatusServer> server;
  std::string status_dir;
  if (opts.obs.enabled()) {
    if (opts.obs.status_every_s > 0.0) {
      status_dir = opts.obs.status_dir.empty() ? opts.checkpoint_dir
                                               : opts.obs.status_dir;
      if (status_dir.empty())
        throw std::runtime_error(
            "supervisor: --status-every needs a status directory "
            "(or a checkpoint dir to default to)");
      std::filesystem::create_directories(status_dir);
    }
    board = std::make_unique<telemetry::StatusBoard>();
    std::vector<double> horizons(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
      horizons[i] = specs[i].config.scenario.duration_s;
    board->reset(specs.size(), horizons);
    // Resume carry-over: completed specs never re-run, so the board
    // learns about them here or never.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const SpecRecord& r = carried[i];
      if (r.status != SpecStatus::kCompleted) continue;
      board->update_progress(i, r.result.events_executed,
                             specs[i].config.scenario.duration_s);
      board->sync_checkpoints(i, r.checkpoints);
      board->mark_done(i);
      board->absorb_registry(r.registry);
    }
    if (!opts.obs.trace_path.empty())
      ltrace = std::make_unique<telemetry::LifecycleTrace>(opts.obs.trace_path);
    if (opts.obs.status_port >= 0) {
      telemetry::StatusServer::Handlers handlers;
      telemetry::StatusBoard* b = board.get();
      handlers.status_json = [b] { return b->render_status_json(); };
      handlers.metrics_text = [b] { return b->render_prometheus(); };
      handlers.healthy = [b] { return b->healthy(); };
      server = std::make_unique<telemetry::StatusServer>(
          opts.obs.status_port, std::move(handlers));
      // Flushed eagerly: harnesses discover an ephemeral port by polling
      // this line, and a block-buffered redirect would starve them.
      if (opts.obs.announce)
        *opts.obs.announce << "status: listening on 127.0.0.1:"
                           << server->port() << std::endl;
    }
  }
  const Obs obs{board.get(), ltrace.get()};

  std::atomic<bool> watchdog_quit{false};
  std::thread watchdog;
  // Dispatch mode has no slots to watch and no children to kill: lease
  // expiry is its hang detector, and the dispatcher polls opts.stop
  // itself.
  if (!dispatched && (opts.watchdog_secs > 0.0 || opts.stop)) {
    const auto poll = std::chrono::duration<double>(
        opts.watchdog_secs > 0.0
            ? std::clamp(opts.watchdog_secs / 4.0, 0.01, 0.25)
            : 0.05);
    watchdog = std::thread([&] {
      while (!watchdog_quit.load()) {
        const bool ext = opts.stop && opts.stop->load();
        const Clock::time_point now = Clock::now();
        for (std::size_t si = 0; si < slots.size(); ++si) {
          Slot& s = slots[si];
          // An isolated worker cannot observe the abort flag — SIGKILL
          // is the only lever the parent has on a hung or stopped child.
          // Repeated kills of one stubborn pid trace a single sigkill.
          const auto kill_child = [&s, si, &obs] {
            const long pid = s.child_pid.load();
            if (pid <= 0) return;
            ::kill(static_cast<pid_t>(pid), SIGKILL);
            if (pid == s.last_killed_pid) return;
            s.last_killed_pid = pid;
            if (obs.board) obs.board->mark_sigkill(si);
            if (obs.trace)
              obs.trace->instant(si, "sigkill",
                                 {{"pid", std::to_string(pid)}});
          };
          if (ext) {
            s.abort.store(true);
            kill_child();
            continue;
          }
          if (!s.active.load()) {
            s.seen = false;
            continue;
          }
          if (opts.watchdog_secs <= 0.0) continue;
          const std::atomic<std::uint64_t>* shared = s.shared.load();
          const std::uint64_t p =
              shared != nullptr ? shared->load() : s.progress.load();
          if (!s.seen || p != s.last_progress) {
            s.seen = true;
            s.last_progress = p;
            s.last_change = now;
            continue;
          }
          if (std::chrono::duration<double>(now - s.last_change).count() >
              opts.watchdog_secs) {
            // exchange() gives the trip *edge*: the flag is re-armed by
            // the runner at each attempt start, so one stall counts once
            // no matter how many polls see it.
            if (!s.watchdog_fired.exchange(true)) {
              if (obs.board) obs.board->mark_watchdog(si);
              if (obs.trace)
                obs.trace->instant(
                    si, "watchdog",
                    {{"stalled_s", std::to_string(opts.watchdog_secs)}});
            }
            s.abort.store(true);
            kill_child();
          }
        }
        std::this_thread::sleep_for(poll);
      }
    });
  }

  // Status sampling thread: mirrors live progress counters (the same
  // ones the watchdog reads) onto the board, recomputes EMA/ETA, and
  // atomically rewrites status.json on its cadence. Read-only with
  // respect to the sweep.
  std::atomic<bool> status_quit{false};
  std::thread status_thread;
  if (board) {
    status_thread = std::thread([&] {
      const Clock::time_point t0 = Clock::now();
      std::vector<std::uint64_t> last_seq(specs.size(), 0);
      double next_write = 0.0;  // first rewrite happens immediately
      const double period = opts.obs.status_every_s;
      const auto poll = std::chrono::duration<double>(
          period > 0.0 ? std::clamp(period / 2.0, 0.01, 0.25) : 0.25);
      for (;;) {
        const bool quitting = status_quit.load();
        for (std::size_t i = 0; i < slots.size(); ++i) {
          Slot& s = slots[i];
          if (!s.active.load()) continue;
          const std::atomic<std::uint64_t>* shared = s.shared.load();
          const std::atomic<std::uint64_t>* stime = s.shared_time.load();
          const std::atomic<std::uint64_t>* sseq = s.shared_seq.load();
          const std::uint64_t events =
              shared != nullptr ? shared->load() : s.progress.load();
          const std::uint64_t tbits =
              stime != nullptr ? stime->load() : s.sim_time_bits.load();
          const std::uint64_t seq =
              sseq != nullptr ? sseq->load() : s.ckpt_seq.load();
          board->update_progress(i, events, bits_double(tbits));
          if (seq > last_seq[i]) {
            board->mark_checkpoint(i, seq - last_seq[i]);
            if (obs.trace)
              obs.trace->instant(i, "checkpoint",
                                 {{"seq", std::to_string(seq)}});
          }
          last_seq[i] = seq;  // retries reset the sequence; track down too
        }
        const double wall =
            std::chrono::duration<double>(Clock::now() - t0).count();
        board->sample(wall);
        if (!status_dir.empty() && (quitting || wall >= next_write)) {
          const std::string doc = board->render_status_json();
          try {
            snapshot::write_file_atomic(
                status_dir + "/status.json",
                std::vector<std::uint8_t>(doc.begin(), doc.end()));
          } catch (const std::exception&) {
            // Status is best-effort; a full disk must not kill the sweep.
          }
          next_write = wall + period;
        }
        if (quitting) break;
        std::this_thread::sleep_for(poll);
      }
    });
  }

  // Seed carried-over completions into the reorder buffer: they emit
  // (in index order) without re-running.
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (skip[i]) publish(i, SpecRecord(carried[i]));

  const auto join_threads = [&] {
    status_quit.store(true);
    if (status_thread.joinable()) status_thread.join();
    watchdog_quit.store(true);
    if (watchdog.joinable()) watchdog.join();
  };

  try {
    if (dispatched) {
      // The dispatcher event loop drives the same lifecycle the local
      // loops do, through callbacks that mirror their manifest/board/
      // trace conventions exactly — a clean dispatched sweep is
      // byte-identical to an in-process one.
      DispatchPolicy policy;
      policy.max_retries = opts.max_retries;
      policy.retry_backoff_s = opts.retry_backoff_s;
      policy.stop = opts.stop;
      if (use_dir)
        policy.lease_journal_path = opts.checkpoint_dir + "/dispatch.leases";

      DispatchCallbacks cb;
      cb.make_request = [&](std::size_t i, int attempt) {
        WorkerRequest req;
        req.config = specs[i].config;
        req.kind = specs[i].kind;
        req.attempt = attempt;
        req.verify_on_resume = opts.verify_on_resume;
        return encode_worker_request(req);
      };
      cb.on_started = [&](std::size_t i, int attempt) {
        if (obs.board) obs.board->mark_running(i, attempt);
        if (obs.trace)
          obs.trace->begin(i, "attempt",
                           {{"attempt", std::to_string(attempt)}});
      };
      cb.on_completed = [&](std::size_t i, int attempt, WorkerResult&& w) {
        SpecRecord rec = std::move(carried[i]);
        rec.status = SpecStatus::kCompleted;
        rec.retries = attempt;
        rec.detail.clear();
        rec.result = w.result;
        rec.registry.merge(w.registry);
        if (obs.board) {
          obs.board->update_progress(i, rec.result.events_executed,
                                     specs[i].config.scenario.duration_s);
          obs.board->sync_checkpoints(i, rec.checkpoints);
          obs.board->mark_done(i);
          obs.board->absorb_registry(rec.registry);
        }
        if (obs.trace) obs.trace->end(i, "attempt");
        publish(i, std::move(rec));
      };
      cb.on_quarantined = [&](std::size_t i, int attempt,
                              const std::string& detail) {
        SpecRecord rec = std::move(carried[i]);
        rec.status = SpecStatus::kQuarantined;
        rec.retries = attempt;
        rec.detail = detail;
        if (obs.board) obs.board->mark_quarantined(i, detail);
        if (obs.trace) {
          obs.trace->end(i, "attempt");
          obs.trace->instant(
              i, "quarantine",
              {{"attempt", std::to_string(std::max(0, attempt - 1))},
               {"reason", detail}});
        }
        publish(i, std::move(rec));
      };
      cb.on_interrupted = [&](std::size_t i, const std::string& detail) {
        SpecRecord rec = std::move(carried[i]);
        rec.status = SpecStatus::kInterrupted;
        rec.detail = detail.empty() ? "stopped before start" : detail;
        if (obs.board) obs.board->mark_interrupted(i, rec.detail);
        if (obs.trace) {
          if (!detail.empty()) obs.trace->end(i, "attempt");
          obs.trace->instant(i, "interrupted", {{"reason", rec.detail}});
        }
        publish(i, std::move(rec));
      };
      cb.on_retrying = [&](std::size_t i, int attempt,
                           const std::string& detail) {
        carried[i].retries = attempt;
        carried[i].detail = detail;
        if (obs.board) obs.board->mark_retrying(i, attempt, detail);
        if (obs.trace) {
          obs.trace->end(i, "attempt");
          obs.trace->instant(i, "retry",
                             {{"attempt", std::to_string(attempt - 1)},
                              {"reason", detail}});
        }
      };
      cb.on_requeued = [&](std::size_t i, int count,
                           const std::string& reason) {
        if (obs.trace)
          obs.trace->instant(i, "requeue",
                             {{"count", std::to_string(count)},
                              {"reason", sanitize(reason)}});
      };
      cb.on_progress = [&](std::size_t i, std::uint64_t events, double t) {
        if (obs.board) obs.board->update_progress(i, events, t);
      };
      cb.announce = [&](const std::string& line) {
        if (opts.obs.announce) *opts.obs.announce << line << std::endl;
      };
      run_dispatch_queue(specs.size(), skip, opts.dispatch, policy,
                         board.get(), std::move(cb));
    } else {
      parallel_for(specs.size(), resolve_jobs(opts.jobs), [&](std::size_t i) {
        if (skip[i]) return;  // resumed as done, already seeded
        SpecRecord rec = carried[i];
        if (isolated)
          run_one_isolated(specs[i], i, opts, workdir, slots[i], obs,
                           progress_maps[i], rec);
        else
          run_one_supervised(specs[i], i, opts, slots[i], obs, rec);
        publish(i, std::move(rec));
      });
    }
  } catch (...) {
    join_threads();
    throw;
  }

  join_threads();
  if (workdir_created) {
    std::error_code ec;
    std::filesystem::remove_all(workdir, ec);  // best-effort scratch cleanup
  }
  return stats;
}

SweepManifest run_specs_supervised(const std::vector<RunSpec>& specs,
                                   const SupervisorOptions& opts) {
  SweepManifest manifest;
  manifest.specs.resize(specs.size());
  run_specs_streamed(specs, opts,
                     [&manifest](std::size_t i, SpecRecord&& rec) {
                       manifest.specs[i] = std::move(rec);
                     });
  return manifest;
}

std::vector<RunResult> completed_results(const SweepManifest& manifest) {
  std::vector<RunResult> out;
  for (const SpecRecord& r : manifest.specs)
    if (r.status == SpecStatus::kCompleted) out.push_back(r.result);
  return out;
}

SupervisedSweep run_sweep_supervised(const std::vector<SweepPoint>& points,
                                     int replications,
                                     const SupervisorOptions& opts) {
  if (replications < 0) replications = 0;
  std::vector<RunSpec> specs;
  specs.reserve(points.size() * static_cast<std::size_t>(replications));
  for (const SweepPoint& p : points) {
    const std::uint64_t base_seed = p.config.scenario.seed;
    for (int rep = 0; rep < replications; ++rep) {
      RunSpec s = p;
      s.config.scenario.seed = base_seed + static_cast<std::uint64_t>(rep);
      specs.push_back(std::move(s));
    }
  }

  SupervisedSweep out;
  out.manifest.specs.resize(specs.size());
  out.points.reserve(points.size());
  const std::size_t reps = static_cast<std::size_t>(replications);
  // Streaming aggregation: records arrive in strict spec-index order
  // (replication order within each point), so a point's aggregate folds
  // the moment its last replication emits — the fold only ever holds
  // one point's completed results, and is bit-identical to aggregating
  // after the fact (reduce_results folds in input order either way).
  std::vector<RunResult> fold;
  run_specs_streamed(specs, opts, [&](std::size_t i, SpecRecord&& rec) {
    if (rec.status == SpecStatus::kCompleted) fold.push_back(rec.result);
    out.manifest.specs[i] = std::move(rec);
    if (reps != 0 && (i + 1) % reps == 0) {
      out.points.push_back(reduce_results(fold));
      fold.clear();
    }
  });
  // replications == 0: no specs ran, every point aggregates over nothing.
  while (out.points.size() < points.size())
    out.points.push_back(reduce_results(std::vector<RunResult>()));
  return out;
}

}  // namespace dftmsn
