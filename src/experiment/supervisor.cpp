#include "experiment/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/thread_pool.hpp"
#include "experiment/world.hpp"
#include "snapshot/checkpoint.hpp"

namespace dftmsn {
namespace {

using Clock = std::chrono::steady_clock;

// Manifest doubles are stored as IEEE-754 bit patterns (decimal u64), so
// a resumed sweep folds bit-identical values into its aggregates.
std::uint64_t double_bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

double bits_double(std::uint64_t u) {
  double v = 0.0;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

std::string sanitize(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

bool parse_status(const std::string& s, SpecStatus* out) {
  if (s == "pending") *out = SpecStatus::kPending;
  else if (s == "completed") *out = SpecStatus::kCompleted;
  else if (s == "quarantined") *out = SpecStatus::kQuarantined;
  else if (s == "interrupted") *out = SpecStatus::kInterrupted;
  else return false;
  return true;
}

void put_result(std::ostream& os, const RunResult& r) {
  os << double_bits(r.delivery_ratio) << ' ' << double_bits(r.mean_power_mw)
     << ' ' << double_bits(r.mean_delay_s) << ' ' << double_bits(r.mean_hops)
     << ' ' << double_bits(r.overhead_bits_per_delivery) << ' '
     << double_bits(r.fairness_jain) << ' ' << r.generated
     << ' ' << r.delivered << ' ' << r.collisions << ' ' << r.attempts << ' '
     << r.failed_attempts << ' ' << r.data_transmissions << ' '
     << r.drops_overflow << ' ' << r.drops_threshold << ' '
     << r.drops_delivered << ' '
     << r.events_executed << ' ' << r.faults_injected << ' '
     << r.drops_node_failure << ' ' << r.frames_fault_corrupted << ' '
     << r.invariant_sweeps;
}

bool get_result(std::istream& is, RunResult* r) {
  std::uint64_t dr = 0, pw = 0, dl = 0, hp = 0, ov = 0, fj = 0;
  if (!(is >> dr >> pw >> dl >> hp >> ov >> fj >> r->generated >>
        r->delivered >> r->collisions >> r->attempts >> r->failed_attempts >>
        r->data_transmissions >> r->drops_overflow >> r->drops_threshold >>
        r->drops_delivered >>
        r->events_executed >> r->faults_injected >> r->drops_node_failure >>
        r->frames_fault_corrupted >> r->invariant_sweeps))
    return false;
  r->delivery_ratio = bits_double(dr);
  r->mean_power_mw = bits_double(pw);
  r->mean_delay_s = bits_double(dl);
  r->mean_hops = bits_double(hp);
  r->overhead_bits_per_delivery = bits_double(ov);
  r->fairness_jain = bits_double(fj);
  return true;
}

/// Per-spec supervision state shared between the worker running the spec
/// and the watchdog thread. progress/abort/active/watchdog_fired are the
/// cross-thread surface; the trailing fields are watchdog-thread scratch.
struct Slot {
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> active{false};
  std::atomic<bool> watchdog_fired{false};

  bool seen = false;
  std::uint64_t last_progress = 0;
  Clock::time_point last_change{};
};

void run_one_supervised(const RunSpec& spec, std::size_t index,
                        const SupervisorOptions& opts, Slot& slot,
                        SpecRecord& rec) {
  const std::string ckpt =
      opts.checkpoint_dir.empty()
          ? std::string()
          : spec_checkpoint_path(opts.checkpoint_dir, index);

  // Last good checkpoint, kept in memory: the retry path must not depend
  // on re-reading a file a torn write may have damaged.
  std::vector<std::uint8_t> image;
  if (opts.resume && !ckpt.empty()) {
    try {
      std::vector<std::uint8_t> file = snapshot::read_file(ckpt);
      const CheckpointMeta meta = read_checkpoint_meta(file);
      if (meta.config_digest == rec.config_digest &&
          meta.seed == spec.config.scenario.seed)
        image = std::move(file);
    } catch (const std::exception&) {
      // Missing, torn or foreign checkpoint: start the spec from scratch.
    }
  }

  int attempt = 0;
  for (;;) {
    if (opts.stop && opts.stop->load()) {
      rec.status = SpecStatus::kInterrupted;
      if (rec.detail.empty()) rec.detail = "stopped before start";
      return;
    }

    Config cfg = spec.config;
    // The only knob a retry turns: gates `attempts=`-qualified fault
    // events (see FaultInjector) without touching event or rng streams.
    cfg.faults.attempt = attempt;
    slot.watchdog_fired.store(false);
    slot.abort.store(false);
    slot.progress.store(0);

    std::unique_ptr<World> world;
    std::string fail;
    bool drop_checkpoint = false;
    try {
      if (!image.empty()) {
        slot.active.store(true);  // replay is watchdog-monitored too
        world = resume_world(cfg, spec.kind, image, opts.verify_on_resume,
                             &slot.abort, &slot.progress);
      } else {
        world = std::make_unique<World>(cfg, spec.kind);
        world->sim().set_abort_flag(&slot.abort);
        world->sim().set_progress_counter(&slot.progress);
        slot.active.store(true);
      }

      const double horizon = cfg.scenario.duration_s;
      const double step =
          opts.checkpoint_every_s > 0 ? opts.checkpoint_every_s : horizon;
      int written = 0;
      while (world->sim().now() < horizon) {
        // Boundaries are multiples of the period, so a resumed run hits
        // the same ones an uninterrupted run would.
        const double next = std::min(
            horizon, (std::floor(world->sim().now() / step) + 1.0) * step);
        world->run_until(next);
        if (world->sim().now() >= horizon) break;
        if (!ckpt.empty()) {
          image = make_checkpoint(*world);
          snapshot::write_file_atomic(ckpt, image);
          ++written;
          ++rec.checkpoints;
          if (opts.stop_after_checkpoints > 0 &&
              written >= opts.stop_after_checkpoints) {
            slot.active.store(false);
            rec.status = SpecStatus::kInterrupted;
            rec.retries = attempt;
            rec.detail = "test hook: stopped after " +
                         std::to_string(written) + " checkpoints";
            return;
          }
        }
      }

      slot.active.store(false);
      rec.result = reduce_world(*world);
      rec.status = SpecStatus::kCompleted;
      rec.retries = attempt;
      rec.detail.clear();
      if (!ckpt.empty()) std::remove(ckpt.c_str());
      return;
    } catch (const RunAborted& e) {
      slot.active.store(false);
      if (!slot.watchdog_fired.load() && opts.stop && opts.stop->load()) {
        // External stop: the abort unwound at a clean event boundary, so
        // flush one final checkpoint and leave the spec resumable.
        if (world && !ckpt.empty()) {
          try {
            snapshot::write_file_atomic(ckpt, make_checkpoint(*world));
            ++rec.checkpoints;
          } catch (const std::exception&) {
            // Keep whatever checkpoint was already on disk.
          }
        }
        rec.status = SpecStatus::kInterrupted;
        rec.retries = attempt;
        rec.detail = "interrupted at t=" + std::to_string(e.at);
        return;
      }
      fail = "watchdog: no event progress for " +
             std::to_string(opts.watchdog_secs) + "s wall (aborted at t=" +
             std::to_string(e.at) + " after " + std::to_string(e.events) +
             " events)";
    } catch (const snapshot::SnapshotMismatch& e) {
      slot.active.store(false);
      fail = e.what();
      drop_checkpoint = true;  // stale or nondeterministic: retry clean
    } catch (const snapshot::SnapshotError& e) {
      slot.active.store(false);
      fail = e.what();
      drop_checkpoint = true;
    } catch (const std::exception& e) {
      // SimulatedCrash, InvariantViolation, bad fault plans, ...
      slot.active.store(false);
      fail = e.what();
    }

    if (drop_checkpoint) image.clear();
    ++attempt;
    rec.retries = attempt;
    rec.detail = sanitize(fail);
    if (attempt > opts.max_retries) {
      rec.status = SpecStatus::kQuarantined;
      return;
    }
    const double backoff = std::min(
        5.0, opts.retry_backoff_s * std::pow(2.0, attempt - 1));
    if (backoff > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

}  // namespace

const char* spec_status_name(SpecStatus s) {
  switch (s) {
    case SpecStatus::kPending: return "pending";
    case SpecStatus::kCompleted: return "completed";
    case SpecStatus::kQuarantined: return "quarantined";
    case SpecStatus::kInterrupted: return "interrupted";
  }
  return "?";
}

int SweepManifest::count(SpecStatus s) const {
  int n = 0;
  for (const SpecRecord& r : specs) n += (r.status == s) ? 1 : 0;
  return n;
}

int SweepManifest::retried() const {
  int n = 0;
  for (const SpecRecord& r : specs) n += (r.retries > 0) ? 1 : 0;
  return n;
}

std::uint64_t SweepManifest::total_checkpoints() const {
  std::uint64_t n = 0;
  for (const SpecRecord& r : specs) n += r.checkpoints;
  return n;
}

std::string manifest_path(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/manifest.txt";
}

std::string spec_checkpoint_path(const std::string& checkpoint_dir,
                                 std::size_t index) {
  return checkpoint_dir + "/spec_" + std::to_string(index) + ".ckpt";
}

void write_manifest(const std::string& path, const SweepManifest& manifest) {
  std::ostringstream os;
  os << "dftmsn-manifest v2\n";
  os << "specs " << manifest.specs.size() << "\n";
  for (std::size_t i = 0; i < manifest.specs.size(); ++i) {
    const SpecRecord& r = manifest.specs[i];
    os << "spec " << i << ' ' << spec_status_name(r.status) << " retries="
       << r.retries << " checkpoints=" << r.checkpoints << " digest="
       << r.config_digest << " detail=" << sanitize(r.detail) << "\n";
    if (r.status == SpecStatus::kCompleted) {
      os << "result " << i << ' ';
      put_result(os, r.result);
      os << "\n";
    }
  }
  const std::string s = os.str();
  snapshot::write_file_atomic(path,
                              std::vector<std::uint8_t>(s.begin(), s.end()));
}

bool load_manifest(const std::string& path, SweepManifest* out) {
  std::ifstream in(path);
  if (!in) return false;

  const auto bad = [&path](const std::string& what) {
    throw std::runtime_error("manifest " + path + ": " + what);
  };

  std::string line;
  if (!std::getline(in, line) || line != "dftmsn-manifest v2")
    bad("unrecognized header");
  std::size_t n = 0;
  {
    if (!std::getline(in, line)) bad("missing spec count");
    std::istringstream is(line);
    std::string tag;
    if (!(is >> tag >> n) || tag != "specs") bad("missing spec count");
  }
  SweepManifest m;
  m.specs.resize(n);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag;
    std::size_t i = 0;
    is >> tag >> i;
    if (!is || i >= n) bad("malformed line: " + line);
    SpecRecord& r = m.specs[i];
    if (tag == "spec") {
      std::string status, kv;
      is >> status;
      if (!parse_status(status, &r.status)) bad("bad status: " + status);
      if (!(is >> kv) || kv.rfind("retries=", 0) != 0)
        bad("missing retries: " + line);
      r.retries = std::atoi(kv.c_str() + 8);
      if (!(is >> kv) || kv.rfind("checkpoints=", 0) != 0)
        bad("missing checkpoints: " + line);
      r.checkpoints = std::strtoull(kv.c_str() + 12, nullptr, 10);
      if (!(is >> kv) || kv.rfind("digest=", 0) != 0)
        bad("missing digest: " + line);
      r.config_digest = std::strtoull(kv.c_str() + 7, nullptr, 10);
      std::string detail;
      std::getline(is, detail);
      const auto at = detail.find("detail=");
      r.detail = at == std::string::npos ? "" : detail.substr(at + 7);
    } else if (tag == "result") {
      if (!get_result(is, &r.result)) bad("malformed result: " + line);
    } else {
      bad("unknown tag: " + tag);
    }
  }
  *out = std::move(m);
  return true;
}

SweepManifest run_specs_supervised(const std::vector<RunSpec>& specs,
                                   const SupervisorOptions& opts) {
  SweepManifest manifest;
  manifest.specs.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    manifest.specs[i].config_digest =
        config_digest(specs[i].config, specs[i].kind);

  const bool use_dir = !opts.checkpoint_dir.empty();
  if (use_dir) std::filesystem::create_directories(opts.checkpoint_dir);

  if (opts.resume && use_dir) {
    SweepManifest prev;
    if (load_manifest(manifest_path(opts.checkpoint_dir), &prev)) {
      if (prev.specs.size() != specs.size())
        throw std::runtime_error(
            "supervisor: manifest holds " +
            std::to_string(prev.specs.size()) + " specs but this sweep has " +
            std::to_string(specs.size()) + " — refusing to resume");
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (prev.specs[i].config_digest != manifest.specs[i].config_digest)
          throw std::runtime_error(
              "supervisor: manifest was written by a different sweep "
              "(config digest mismatch at spec " + std::to_string(i) +
              ") — refusing to resume");
        // Completed replications carry over verbatim; everything else
        // reruns with a fresh retry budget (its checkpoint, if any, is
        // picked up by the worker).
        if (prev.specs[i].status == SpecStatus::kCompleted)
          manifest.specs[i] = prev.specs[i];
      }
    }
  }

  // Write the starting manifest (all pending, minus any carried-over
  // completions) before any worker runs: a SIGKILL landing before the
  // first spec finishes must still leave a resumable manifest next to
  // whatever periodic checkpoints made it to disk.
  if (use_dir) write_manifest(manifest_path(opts.checkpoint_dir), manifest);

  std::mutex manifest_mu;
  const auto publish = [&](std::size_t i, const SpecRecord& rec) {
    std::lock_guard<std::mutex> lock(manifest_mu);
    manifest.specs[i] = rec;
    // Incremental rewrite after every finished spec: a hard kill of the
    // supervisor process itself loses at most the in-flight specs.
    if (use_dir)
      write_manifest(manifest_path(opts.checkpoint_dir), manifest);
  };

  std::vector<Slot> slots(specs.size());
  std::atomic<bool> watchdog_quit{false};
  std::thread watchdog;
  if (opts.watchdog_secs > 0.0 || opts.stop) {
    const auto poll = std::chrono::duration<double>(
        opts.watchdog_secs > 0.0
            ? std::clamp(opts.watchdog_secs / 4.0, 0.01, 0.25)
            : 0.05);
    watchdog = std::thread([&] {
      while (!watchdog_quit.load()) {
        const bool ext = opts.stop && opts.stop->load();
        const Clock::time_point now = Clock::now();
        for (Slot& s : slots) {
          if (ext) {
            s.abort.store(true);
            continue;
          }
          if (!s.active.load()) {
            s.seen = false;
            continue;
          }
          if (opts.watchdog_secs <= 0.0) continue;
          const std::uint64_t p = s.progress.load();
          if (!s.seen || p != s.last_progress) {
            s.seen = true;
            s.last_progress = p;
            s.last_change = now;
            continue;
          }
          if (std::chrono::duration<double>(now - s.last_change).count() >
              opts.watchdog_secs) {
            s.watchdog_fired.store(true);
            s.abort.store(true);
          }
        }
        std::this_thread::sleep_for(poll);
      }
    });
  }

  parallel_for(specs.size(), resolve_jobs(opts.jobs), [&](std::size_t i) {
    SpecRecord rec;
    {
      std::lock_guard<std::mutex> lock(manifest_mu);
      rec = manifest.specs[i];
    }
    if (rec.status == SpecStatus::kCompleted) return;  // resumed as done
    run_one_supervised(specs[i], i, opts, slots[i], rec);
    publish(i, rec);
  });

  watchdog_quit.store(true);
  if (watchdog.joinable()) watchdog.join();

  if (use_dir) {
    std::lock_guard<std::mutex> lock(manifest_mu);
    write_manifest(manifest_path(opts.checkpoint_dir), manifest);
  }
  return manifest;
}

std::vector<RunResult> completed_results(const SweepManifest& manifest) {
  std::vector<RunResult> out;
  for (const SpecRecord& r : manifest.specs)
    if (r.status == SpecStatus::kCompleted) out.push_back(r.result);
  return out;
}

SupervisedSweep run_sweep_supervised(const std::vector<SweepPoint>& points,
                                     int replications,
                                     const SupervisorOptions& opts) {
  if (replications < 0) replications = 0;
  std::vector<RunSpec> specs;
  specs.reserve(points.size() * static_cast<std::size_t>(replications));
  for (const SweepPoint& p : points) {
    const std::uint64_t base_seed = p.config.scenario.seed;
    for (int rep = 0; rep < replications; ++rep) {
      RunSpec s = p;
      s.config.scenario.seed = base_seed + static_cast<std::uint64_t>(rep);
      specs.push_back(std::move(s));
    }
  }

  SupervisedSweep out;
  out.manifest = run_specs_supervised(specs, opts);
  out.points.reserve(points.size());
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    std::vector<RunResult> done;
    for (int rep = 0; rep < replications; ++rep) {
      const SpecRecord& r =
          out.manifest
              .specs[pi * static_cast<std::size_t>(replications) +
                     static_cast<std::size_t>(rep)];
      if (r.status == SpecStatus::kCompleted) done.push_back(r.result);
    }
    out.points.push_back(reduce_results(done));
  }
  return out;
}

}  // namespace dftmsn
