// Table-formatting helpers shared by the bench binaries that regenerate
// the paper's figures (aligned console output + optional CSV mirror).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dftmsn {

/// Fixed-width console table. Construction prints the header.
class ConsoleTable {
 public:
  ConsoleTable(std::ostream& os, std::vector<std::string> columns,
               int width = 14);

  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  void row(const std::vector<double>& values, int precision = 4);

  static std::string format(double v, int precision);

 private:
  std::ostream& os_;
  std::size_t columns_;
  int width_;
};

/// Prints the standard bench banner (experiment id + paper reference).
void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& description);

}  // namespace dftmsn
