// Assembles one complete simulation: field + zones, mobility, channel,
// sinks, sensors running one protocol variant; runs it to the horizon.
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "faults/fault_injector.hpp"
#include "faults/invariant_checker.hpp"
#include "geom/zone_grid.hpp"
#include "mobility/mobility_manager.hpp"
#include "node/sensor_node.hpp"
#include "node/sink_node.hpp"
#include "phy/channel.hpp"
#include "protocol/mac_common.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/registry.hpp"
#include "trace/trace.hpp"
#include "traffic/poisson_source.hpp"

namespace dftmsn {

class World {
 public:
  /// Validates `config` and builds the full node population. Sensor ids
  /// are 0..num_sensors-1; sink ids follow.
  World(Config config, ProtocolKind kind);

  /// Runs the simulation to config.scenario.duration_s. Call once.
  void run();

  /// Runs only to `until` (incremental; for tests/examples that inspect
  /// intermediate state). Must not exceed the configured duration.
  void run_until(SimTime until);

  /// Fast-forwards a freshly built world to a checkpoint: replays to
  /// exactly `events` executed events (handles checkpoints cut between
  /// same-timestamp events), then clamps the clock to `time`. Call
  /// before any run_until on this instance.
  void replay_to(std::uint64_t events, SimTime time);

  /// Serializes the complete component state (simulator, mobility,
  /// channel, metrics, nodes, fault injector) in the canonical snapshot
  /// byte form. Two worlds with identical trajectories serialize to
  /// identical bytes — the resume verification oracle.
  [[nodiscard]] std::vector<std::uint8_t> serialize_state() const;
  void save_state(snapshot::Writer& w) const;

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] ProtocolKind kind() const { return kind_; }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Simulator& sim() const { return sim_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] const Channel& channel() const { return channel_; }
  [[nodiscard]] const MobilityManager& mobility() const { return mobility_; }
  [[nodiscard]] std::vector<std::unique_ptr<SensorNode>>& sensors() {
    return sensors_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<SinkNode>>& sinks() {
    return sinks_;
  }
  [[nodiscard]] NodeId first_sink_id() const {
    return static_cast<NodeId>(cfg_.scenario.num_sensors);
  }

  /// Mean radio power per *sensor* over the elapsed simulation time, in
  /// milliwatts (sinks are mains-powered and excluded).
  [[nodiscard]] double mean_sensor_power_mw() const;

  /// Non-null iff config.faults.plan is non-empty.
  [[nodiscard]] const FaultInjector* fault_injector() const {
    return injector_.get();
  }
  /// Non-null iff config.faults.check_invariants is set.
  [[nodiscard]] const InvariantChecker* invariant_checker() const {
    return checker_.get();
  }

  // --- telemetry ------------------------------------------------------
  /// Non-null iff config.telemetry.enabled: the per-run instrument
  /// registry (every World owns its own, so parallel runs never share).
  [[nodiscard]] telemetry::Registry* registry() { return registry_.get(); }
  [[nodiscard]] const telemetry::Registry* registry() const {
    return registry_.get();
  }
  /// Non-null iff config.telemetry.profile: wall-clock subsystem timings.
  [[nodiscard]] const telemetry::Profiler* profiler() const {
    return profiler_.get();
  }

  /// Fans a trace sink out to every sensor MAC (handshake / sleep / data
  /// / drop events). nullptr uninstalls. Pure observer.
  void set_trace_sink(TraceSink* sink);

 private:
  void ensure_started();

  Config cfg_;
  ProtocolKind kind_;
  Simulator sim_;
  EnergyModel energy_;
  RandomSource rngs_;
  ZoneGrid grid_;
  MobilityManager mobility_;
  Channel channel_;
  Metrics metrics_;
  MessageIdAllocator ids_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;
  std::vector<std::unique_ptr<SinkNode>> sinks_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<InvariantChecker> checker_;
  std::unique_ptr<telemetry::Registry> registry_;
  std::unique_ptr<telemetry::Profiler> profiler_;
  bool started_ = false;
};

}  // namespace dftmsn
