#include "experiment/world.hpp"

#include <stdexcept>

#include "mobility/zone_mobility.hpp"

namespace dftmsn {

World::World(Config config, ProtocolKind kind)
    : cfg_(std::move(config)),
      kind_(kind),
      energy_(cfg_.power),
      rngs_(cfg_.scenario.seed),
      grid_(cfg_.scenario.field_m, cfg_.scenario.zones_per_side),
      mobility_(sim_, cfg_.scenario.mobility_step_s),
      channel_(sim_, mobility_, cfg_.radio.range_m, cfg_.radio.bandwidth_bps),
      metrics_(cfg_.scenario.warmup_s) {
  cfg_.validate();

  const int n = cfg_.scenario.num_sensors;
  const int k = cfg_.scenario.num_sinks;

  // Sensors: random start (= home zone), zone-based mobility.
  RandomStream placement = rngs_.stream("placement");
  ZoneMobility::Params mob;
  mob.speed_min = cfg_.scenario.speed_min_mps;
  mob.speed_max = cfg_.scenario.speed_max_mps;
  mob.exit_prob = cfg_.scenario.zone_exit_prob;
  mob.home_return_prob = cfg_.scenario.home_return_prob;
  mob.leg_mean_s = cfg_.scenario.leg_mean_s;

  for (int i = 0; i < n; ++i) {
    const Vec2 start{placement.uniform(0.0, grid_.field_edge()),
                     placement.uniform(0.0, grid_.field_edge())};
    mobility_.add_node(
        static_cast<NodeId>(i),
        std::make_unique<ZoneMobility>(
            grid_, mob, start, rngs_.stream("mobility", static_cast<NodeId>(i))));
  }

  // Sinks: static, randomly scattered (Sec. 5).
  for (int s = 0; s < k; ++s) {
    const Vec2 pos{placement.uniform(0.0, grid_.field_edge()),
                   placement.uniform(0.0, grid_.field_edge())};
    mobility_.add_node(static_cast<NodeId>(n + s),
                       std::make_unique<StaticMobility>(pos));
  }

  // Nodes attach to the channel in id order: sensors first, then sinks.
  const NodeId first_sink = first_sink_id();
  for (int i = 0; i < n; ++i) {
    sensors_.push_back(std::make_unique<SensorNode>(
        static_cast<NodeId>(i), sim_, channel_, energy_, cfg_, kind_,
        first_sink, metrics_, ids_, rngs_));
  }
  for (int s = 0; s < k; ++s) {
    const NodeId id = static_cast<NodeId>(n + s);
    auto sink = std::make_unique<SinkNode>(id, sim_, channel_, energy_, cfg_,
                                           metrics_, rngs_.stream("sink", id));
    channel_.attach(id, sink->radio(), *sink);
    sinks_.push_back(std::move(sink));
  }

  // Fault injection + runtime verification (both off by default; both
  // deterministic: the injector draws only from the "faults" substream,
  // the checker draws nothing and schedules nothing).
  if (!cfg_.faults.plan.empty())
    injector_ = std::make_unique<FaultInjector>(
        sim_, channel_, parse_fault_plan(cfg_.faults.plan), sensors_, sinks_,
        rngs_.stream("faults"));
  if (cfg_.faults.check_invariants) {
    checker_ = std::make_unique<InvariantChecker>(
        sim_, sensors_,
        cfg_.protocol.queue_policy == QueuePolicy::kFtdSorted,
        cfg_.faults.invariant_stride);
    sim_.set_post_event_hook([this] { checker_->on_event(); });
  }
}

void World::run_until(SimTime until) {
  if (until > cfg_.scenario.duration_s)
    throw std::invalid_argument("World: run_until beyond configured duration");
  if (!started_) {
    started_ = true;
    mobility_.start();
    for (auto& s : sensors_) s->start();
  }
  sim_.run_until(until);
}

void World::run() { run_until(cfg_.scenario.duration_s); }

double World::mean_sensor_power_mw() const {
  if (sensors_.empty() || sim_.now() <= 0.0) return 0.0;
  double joules = 0.0;
  for (const auto& s : sensors_) {
    EnergyMeter meter = s->radio().meter();  // copy; finalize non-destructively
    meter.finalize(sim_.now());
    joules += meter.total_joules();
  }
  const double watts = joules / sim_.now() / static_cast<double>(sensors_.size());
  return watts * 1e3;
}

}  // namespace dftmsn
