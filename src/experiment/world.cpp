#include "experiment/world.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "mobility/motion_trace.hpp"
#include "mobility/patrol_mobility.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace_mobility.hpp"
#include "mobility/zone_mobility.hpp"

namespace dftmsn {

World::World(Config config, ProtocolKind kind)
    : cfg_(std::move(config)),
      kind_(kind),
      energy_(cfg_.power),
      rngs_(cfg_.scenario.seed),
      grid_(cfg_.scenario.field_m, cfg_.scenario.zones_per_side),
      mobility_(sim_, cfg_.scenario.mobility_step_s),
      channel_(sim_, mobility_, cfg_.radio.range_m, cfg_.radio.bandwidth_bps),
      metrics_(cfg_.scenario.warmup_s) {
  cfg_.validate();

  // Neighbourhood queries (carrier sense, receiver discovery, contact
  // probes) go through a radio-range-celled spatial index instead of the
  // O(n) all-nodes scan. Bit-identical results, test-enforced.
  mobility_.enable_spatial_index(cfg_.scenario.field_m, cfg_.radio.range_m);

  const int n = cfg_.scenario.num_sensors;
  const int k = cfg_.scenario.num_sinks;

  // Sensors: random start, mobility model per scenario.mobility. The
  // paper's default is zone-based; waypoint/patrol are extension models
  // (also the resume property matrix in docs/checkpoint_resume.md).
  RandomStream placement = rngs_.stream("placement");
  ZoneMobility::Params zone_params;
  zone_params.speed_min = cfg_.scenario.speed_min_mps;
  zone_params.speed_max = cfg_.scenario.speed_max_mps;
  zone_params.exit_prob = cfg_.scenario.zone_exit_prob;
  zone_params.home_return_prob = cfg_.scenario.home_return_prob;
  zone_params.leg_mean_s = cfg_.scenario.leg_mean_s;
  RandomWaypoint::Params rwp_params;
  rwp_params.speed_min = cfg_.scenario.speed_min_mps;
  rwp_params.speed_max = cfg_.scenario.speed_max_mps;

  // Trace-driven mobility replays scenario.trace_path: the file is loaded
  // once and its tracks shared with the per-node models.
  std::vector<std::shared_ptr<const MotionTrack>> tracks;
  if (cfg_.scenario.mobility == MobilityKind::kTrace) {
    MotionTrace trace = load_motion_trace(cfg_.scenario.trace_path);
    if (trace.tracks.size() < static_cast<std::size_t>(n))
      throw std::invalid_argument(
          cfg_.scenario.trace_path + ": trace has " +
          std::to_string(trace.tracks.size()) + " tracks but the scenario " +
          "needs " + std::to_string(n) + " sensors");
    tracks.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      tracks.push_back(std::make_shared<const MotionTrack>(
          std::move(trace.tracks[static_cast<std::size_t>(i)])));
  }

  for (int i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const Vec2 start{placement.uniform(0.0, grid_.field_edge()),
                     placement.uniform(0.0, grid_.field_edge())};
    switch (cfg_.scenario.mobility) {
      case MobilityKind::kZone:
        mobility_.add_node(id, std::make_unique<ZoneMobility>(
                                   grid_, zone_params, start,
                                   rngs_.stream("mobility", id)));
        break;
      case MobilityKind::kWaypoint:
        mobility_.add_node(id, std::make_unique<RandomWaypoint>(
                                   grid_, rwp_params, start,
                                   rngs_.stream("mobility", id)));
        break;
      case MobilityKind::kPatrol: {
        // A fixed per-node circuit: the start plus three waypoints drawn
        // from the node's mobility stream; speed drawn from the
        // configured range, floored away from zero (validate() requires
        // speed_max > 0 for patrol).
        RandomStream mrng = rngs_.stream("mobility", id);
        std::vector<Vec2> circuit{start};
        for (int wp = 0; wp < 3; ++wp)
          circuit.push_back({mrng.uniform(0.0, grid_.field_edge()),
                             mrng.uniform(0.0, grid_.field_edge())});
        const double speed = std::max(
            mrng.uniform(cfg_.scenario.speed_min_mps,
                         cfg_.scenario.speed_max_mps),
            0.05 * cfg_.scenario.speed_max_mps);
        mobility_.add_node(
            id, std::make_unique<PatrolMobility>(std::move(circuit), speed));
        break;
      }
      case MobilityKind::kTrace:
        // The placement draw above is deliberately kept (unused): sink
        // positions must not shift between mobility kinds.
        mobility_.add_node(id, std::make_unique<TraceMobility>(
                                   tracks[static_cast<std::size_t>(i)]));
        break;
    }
  }

  // Sinks: static, randomly scattered (Sec. 5).
  for (int s = 0; s < k; ++s) {
    const Vec2 pos{placement.uniform(0.0, grid_.field_edge()),
                   placement.uniform(0.0, grid_.field_edge())};
    mobility_.add_node(static_cast<NodeId>(n + s),
                       std::make_unique<StaticMobility>(pos));
  }

  // Nodes attach to the channel in id order: sensors first, then sinks.
  const NodeId first_sink = first_sink_id();
  for (int i = 0; i < n; ++i) {
    sensors_.push_back(std::make_unique<SensorNode>(
        static_cast<NodeId>(i), sim_, channel_, energy_, cfg_, kind_,
        first_sink, metrics_, ids_, rngs_));
  }
  for (int s = 0; s < k; ++s) {
    const NodeId id = static_cast<NodeId>(n + s);
    auto sink = std::make_unique<SinkNode>(id, sim_, channel_, energy_, cfg_,
                                           metrics_, rngs_.stream("sink", id));
    channel_.attach(id, sink->radio(), *sink);
    sinks_.push_back(std::move(sink));
  }

  // Fault injection + runtime verification (both off by default; both
  // deterministic: the injector draws only from the "faults" substream,
  // the checker draws nothing and schedules nothing).
  if (!cfg_.faults.plan.empty())
    injector_ = std::make_unique<FaultInjector>(
        sim_, channel_, parse_fault_plan(cfg_.faults.plan), sensors_, sinks_,
        rngs_.stream("faults"), cfg_.faults.attempt);
  if (cfg_.faults.check_invariants) {
    checker_ = std::make_unique<InvariantChecker>(
        sim_, sensors_,
        cfg_.protocol.queue_policy == QueuePolicy::kFtdSorted,
        cfg_.faults.invariant_stride);
    sim_.set_post_event_hook([this] { checker_->on_event(); });
  }

  // Telemetry: both halves are pure observers — the registry collects
  // through null-checked probe pointers, the profiler reads only the host
  // clock — so enabling either leaves the trajectory bit-identical.
  if (cfg_.telemetry.enabled) {
    registry_ = std::make_unique<telemetry::Registry>();
    metrics_.bind_telemetry(registry_.get());
  }
  if (cfg_.telemetry.profile) {
    profiler_ = std::make_unique<telemetry::Profiler>();
    sim_.set_profiler(profiler_.get());
    channel_.set_profiler(profiler_.get());
    mobility_.set_profiler(profiler_.get());
  }
  if (registry_ || profiler_) {
    for (auto& s : sensors_)
      s->mac().set_telemetry(registry_.get(), profiler_.get());
  }
}

void World::set_trace_sink(TraceSink* sink) {
  for (auto& s : sensors_) s->mac().set_trace(sink);
}

void World::ensure_started() {
  if (started_) return;
  started_ = true;
  mobility_.start();
  for (auto& s : sensors_) s->start();
}

void World::run_until(SimTime until) {
  if (until > cfg_.scenario.duration_s)
    throw std::invalid_argument("World: run_until beyond configured duration");
  ensure_started();
  sim_.run_until(until);
}

void World::run() { run_until(cfg_.scenario.duration_s); }

void World::replay_to(std::uint64_t events, SimTime time) {
  ensure_started();
  sim_.run_until_executed(events);
  sim_.advance_clock_to(time);
}

double World::mean_sensor_power_mw() const {
  if (sensors_.empty() || sim_.now() <= 0.0) return 0.0;
  double joules = 0.0;
  for (const auto& s : sensors_) {
    EnergyMeter meter = s->radio().meter();  // copy; finalize non-destructively
    meter.finalize(sim_.now());
    joules += meter.total_joules();
  }
  const double watts = joules / sim_.now() / static_cast<double>(sensors_.size());
  return watts * 1e3;
}

void World::save_state(snapshot::Writer& w) const {
  // Wall-clock cost of encoding the snapshot (the per-slice price the
  // checkpointing supervisor pays). The profiler itself is deliberately
  // NOT serialized: its content is host wall-clock, not simulation state.
  telemetry::ScopedTimer timer(profiler_.get(),
                               telemetry::Subsystem::kSnapshotEncode);
  // Each component writes its own top-level section, so a resume
  // verification mismatch names the first diverging component.
  w.begin_section("world");
  w.boolean(started_);
  w.size(sensors_.size());
  w.size(sinks_.size());
  w.boolean(injector_ != nullptr);
  w.boolean(registry_ != nullptr);
  w.end_section();
  sim_.save_state(w);
  mobility_.save_state(w);
  channel_.save_state(w);
  metrics_.save_state(w);
  ids_.save_state(w);
  for (const auto& s : sensors_) s->save_state(w);
  for (const auto& s : sinks_) s->save_state(w);
  if (injector_) injector_->save_state(w);
  if (registry_) registry_->save_state(w);
}

std::vector<std::uint8_t> World::serialize_state() const {
  snapshot::Writer w;
  save_state(w);
  return w.bytes();
}

}  // namespace dftmsn
