// Lease-based TCP work queue for supervised sweeps (worker protocol
// v3's framed wire variant).
//
// The dispatcher runs inside the sweep parent (`--dispatch-port`): it
// listens on a TCP socket (loopback by default, bindable for LAN) and
// hands out batches of replication specs under time-bounded leases.
// Pull-mode workers (`dftmsn_cli --connect HOST:PORT`) request work,
// heartbeat while running, and stream back results. Every message is
// one *frame*:
//
//   offset 0  u32   magic "DFW3" (0x33574644 little-endian)
//   offset 4  u8    frame type (FrameType)
//   offset 5  u32   payload length (hard-capped; a hostile length field
//                   cannot drive an allocation)
//   offset 9  payload — snapshot::Writer-encoded fields per type
//   tail      u64   FNV-1a digest of everything before it
//
// Spec configs and results cross the wire as the *same sealed container
// images* the file-based worker protocol uses (encode_worker_request /
// encode_worker_result), so both transports validate identical bytes.
// A torn, truncated or tampered frame throws and drops the connection —
// never a crash, never a silently wrong accept.
//
// Failure semantics (docs/distributed_sweeps.md):
//  - crash / hang / partition: the worker stops heartbeating (or its
//    heartbeats stop showing progress), the lease expires, and the
//    batch is requeued with bounded backoff. Transport losses do not
//    consume the spec's simulation retry budget.
//  - simulation failure (the worker *reports* an error result): the
//    normal retry/quarantine path, identical to the local modes.
//  - duplicates: completion is idempotent — the first accepted result
//    per spec wins; later results for a terminal spec are discarded by
//    spec id (a resurrected worker cannot double-publish).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "experiment/worker_protocol.hpp"

namespace dftmsn {

namespace telemetry {
class StatusBoard;
}

/// CLI-facing dispatcher knobs (a member of SupervisorOptions).
struct DispatchOptions {
  int port = -1;                  ///< -1: dispatch off; 0: ephemeral port
  std::string bind = "127.0.0.1";
  double lease_secs = 30.0;       ///< heartbeat-extended lease duration
  int batch_size = 1;             ///< specs granted per lease
  /// Test hook: the bound port is published here once listening (the
  /// CLI announces it on stdout instead).
  std::atomic<int>* port_out = nullptr;
  [[nodiscard]] bool enabled() const { return port >= 0; }
};

inline constexpr std::uint32_t kDispatchFrameMagic = 0x33574644;  // "DFW3"
inline constexpr std::size_t kDispatchFrameHeader = 9;
inline constexpr std::size_t kDispatchFrameTrailer = 8;
inline constexpr std::size_t kMaxDispatchPayload = 64u << 20;

/// Version a worker announces in its hello frame; must match the
/// dispatcher's build (the sealed payload images carry the worker
/// protocol version gate on top of this).
inline constexpr std::uint32_t kDispatchWireVersion = 3;

enum class FrameType : std::uint8_t {
  kHello = 1,      ///< worker -> dispatcher: version + worker name
  kRequest = 2,    ///< worker -> dispatcher: give me a batch
  kGrant = 3,      ///< dispatcher -> worker: lease + spec batch
  kNoWork = 4,     ///< dispatcher -> worker: nothing now (done=sweep over)
  kResult = 5,     ///< worker -> dispatcher: one spec's sealed result
  kHeartbeat = 6,  ///< worker -> dispatcher: liveness + progress
};

/// One spec of a lease grant: the sealed worker-request image plus the
/// identifiers the worker echoes back with its result.
struct GrantItem {
  std::uint64_t spec = 0;
  std::int64_t attempt = 0;
  std::vector<std::uint8_t> request;  ///< sealed encode_worker_request image
};

/// A decoded frame; only the fields of `type` are meaningful.
struct WireFrame {
  FrameType type = FrameType::kHello;
  // kHello
  std::uint32_t version = 0;
  std::string worker_name;
  // kGrant / kResult / kHeartbeat
  std::uint64_t lease_id = 0;
  double lease_secs = 0.0;
  std::vector<GrantItem> items;
  // kNoWork
  bool done = false;
  // kResult / kHeartbeat
  std::uint64_t spec = 0;
  std::int64_t attempt = 0;
  std::vector<std::uint8_t> result;  ///< sealed encode_worker_result image
  std::uint64_t events = 0;
  std::uint64_t sim_time_bits = 0;
};

std::vector<std::uint8_t> encode_hello_frame(const std::string& worker_name);
std::vector<std::uint8_t> encode_request_frame();
std::vector<std::uint8_t> encode_grant_frame(std::uint64_t lease_id,
                                             double lease_secs,
                                             const std::vector<GrantItem>& items);
std::vector<std::uint8_t> encode_nowork_frame(bool done);
std::vector<std::uint8_t> encode_result_frame(std::uint64_t lease_id,
                                              std::uint64_t spec,
                                              std::int64_t attempt,
                                              const std::vector<std::uint8_t>& sealed_result);
std::vector<std::uint8_t> encode_heartbeat_frame(std::uint64_t lease_id,
                                                 std::uint64_t spec,
                                                 std::uint64_t events,
                                                 std::uint64_t sim_time_bits);

/// Tries to extract one complete frame from the front of `data`.
/// Returns 0 when more bytes are needed, else the number of bytes
/// consumed with *out filled. Throws snapshot::SnapshotError naming
/// `context` on a damaged frame (bad magic/type/length/digest, torn
/// payload); the caller must drop the connection.
std::size_t try_extract_frame(const std::uint8_t* data, std::size_t len,
                              const std::string& context, WireFrame* out);

/// Retry/requeue policy the supervisor hands the dispatcher; mirrors
/// the local supervision loop so a dispatched sweep makes the identical
/// accept/retry/quarantine decisions.
struct DispatchPolicy {
  int max_retries = 2;          ///< simulation-failure retry budget
  double retry_backoff_s = 0.05;
  /// Transport losses (lost connection / expired lease) do not consume
  /// the sim retry budget; they have their own generous bound so a
  /// truly cursed spec still terminates.
  int max_transport_requeues = 32;
  const std::atomic<bool>* stop = nullptr;
  /// Advisory lease journal (fsck classifies leftovers); empty: none.
  std::string lease_journal_path;
};

/// Terminal + lifecycle callbacks out of the dispatcher event loop. All
/// callbacks fire on the dispatcher's (single) thread, in spec index
/// submission order for make_request and acceptance order otherwise.
struct DispatchCallbacks {
  /// Sealed worker-request image for (spec, attempt).
  std::function<std::vector<std::uint8_t>(std::size_t, int)> make_request;
  /// Spec granted under a lease; `attempt` is its sim attempt number.
  std::function<void(std::size_t, int)> on_started;
  /// Result accepted: spec completed on `attempt` with this decoded,
  /// digest-validated result. First accepted result per spec wins.
  std::function<void(std::size_t, int, WorkerResult&&)> on_completed;
  /// Terminal failure: sim retry budget (or the transport requeue
  /// bound) exhausted; `retries` and `detail` follow the local loop's
  /// manifest conventions.
  std::function<void(std::size_t, int, const std::string&)> on_quarantined;
  /// External stop: spec will not run. `detail` is empty for a spec
  /// that never started (callers substitute their "stopped before
  /// start" convention).
  std::function<void(std::size_t, const std::string&)> on_interrupted;
  /// A sim-failure retry is scheduled: next attempt number + detail.
  std::function<void(std::size_t, int, const std::string&)> on_retrying;
  /// A batch was requeued after a transport loss (trace bookkeeping
  /// only — transport losses do not touch manifest retries).
  std::function<void(std::size_t, int, const std::string&)> on_requeued;
  /// Heartbeat progress for a running spec: events, sim-time seconds.
  std::function<void(std::size_t, std::uint64_t, double)> on_progress;
  /// One human line (the "dispatch: listening on ..." announce).
  std::function<void(const std::string&)> announce;
};

/// Runs the dispatcher event loop on the calling thread until every
/// non-skipped spec is terminal (or stop is raised). `skip[i]` true
/// marks spec i already terminal (resume carry-over) — it is never
/// granted. Returns normally even when workers crash, hang or vanish;
/// throws net::NetError only if the listener cannot bind.
void run_dispatch_queue(std::size_t num_specs, const std::vector<char>& skip,
                        const DispatchOptions& opts,
                        const DispatchPolicy& policy,
                        telemetry::StatusBoard* board, DispatchCallbacks cb);

/// Worker side: connect to a dispatcher and pull spec batches until it
/// reports the sweep done. Runs specs in-process (no checkpointing —
/// fault recovery is the dispatcher's lease machinery), heartbeats
/// while running, and streams sealed results back. Returns a process
/// exit code: 0 clean, kWorkerExitBadRequest on connect/protocol
/// failure.
int run_dispatch_worker(const std::string& host, int port);

}  // namespace dftmsn
