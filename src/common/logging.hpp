// Minimal leveled logger. Simulation-grade: cheap when disabled, writes to
// stderr. Thread-safe: the level is atomic and emission is serialized, so
// concurrent Worlds (parallel experiment runs) may log freely — whole
// lines never interleave.
#pragma once

#include <sstream>
#include <string>

namespace dftmsn {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& text);

namespace detail {

inline void append_all(std::ostringstream&) {}

template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  append_all(os, rest...);
}

}  // namespace detail

/// Streams all arguments into one log line.
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

}  // namespace dftmsn
