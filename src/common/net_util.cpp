#include "common/net_util.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstdint>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dftmsn {
namespace net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

in_addr_t parse_addr(const std::string& host, const std::string& what) {
  if (host == "localhost") return htonl(INADDR_LOOPBACK);
  in_addr a{};
  if (::inet_pton(AF_INET, host.c_str(), &a) != 1)
    throw NetError(what + ": not a numeric IPv4 address: " + host);
  return a.s_addr;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int listen_tcp(const std::string& bind_addr, int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("listen_tcp: socket");
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  try {
    addr.sin_addr.s_addr = parse_addr(bind_addr, "listen_tcp");
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen_tcp: bind " + bind_addr + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen_tcp: listen");
  }
  return fd;
}

int bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("bound_port: getsockname");
  return static_cast<int>(ntohs(addr.sin_port));
}

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("connect_tcp: socket");
  set_cloexec(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  try {
    addr.sin_addr.s_addr = parse_addr(host, "connect_tcp");
  } catch (...) {
    ::close(fd);
    throw;
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    if (errno == EINTR) continue;
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("connect_tcp: connect " + host + ":" + std::to_string(port));
  }
}

int accept_retry(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_cloexec(fd);
      return fd;
    }
    switch (errno) {
      case EINTR:
        continue;
      case EAGAIN:
#if EAGAIN != EWOULDBLOCK
      case EWOULDBLOCK:
#endif
      case ECONNABORTED:
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        return -1;  // transient: caller polls again
      default:
        throw_errno("accept");
    }
  }
}

int poll_retry(pollfd* fds, nfds_t nfds, int timeout_ms) {
  for (;;) {
    const int n = ::poll(fds, nfds, timeout_ms);
    if (n >= 0) return n;
    if (errno != EINTR) throw_errno("poll");
  }
}

ssize_t recv_some(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0 || errno != EINTR) return n;
  }
}

bool read_full(int fd, void* buf, std::size_t len, double timeout_s) {
  std::uint8_t* out = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  const double deadline = now_s() + timeout_s;
  while (got < len) {
    const double remain = deadline - now_s();
    if (remain <= 0.0) throw NetError("read_full: timed out");
    pollfd p{fd, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::min(remain * 1000.0 + 1.0, 3600.0 * 1000.0));
    if (poll_retry(&p, 1, timeout_ms) == 0) continue;
    const ssize_t n = recv_some(fd, out + got, len - got);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("read_full: recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw NetError("read_full: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_full(int fd, const void* data, std::size_t len) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pw{fd, POLLOUT, 0};
        poll_retry(&pw, 1, 1000);
        continue;
      }
      throw_errno("write_full: send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace net
}  // namespace dftmsn
