#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dftmsn {
namespace {

// Relaxed is enough: the level is a filter, not a synchronization point.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes emission so concurrent worlds never interleave half-lines.
std::mutex g_emit_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& text) {
  if (level < log_level()) return;
  // Compose the full line first, then emit it under the lock in one
  // stream insertion, so lines from concurrent runs stay whole.
  std::string line;
  line.reserve(text.size() + 16);
  line += "[dftmsn:";
  line += level_name(level);
  line += "] ";
  line += text;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::cerr << line;
}

}  // namespace dftmsn
