#include "common/config_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace dftmsn {
namespace {

/// One addressable field: name + setter-from-string + getter-as-string.
/// Double-typed fields additionally carry bit-exact accessors: the string
/// form goes through default stream precision (6 significant digits), so
/// it cannot round-trip an arbitrary double — but the worker protocol
/// must hand a child process the parent's Config *bit for bit*, or the
/// child's trajectory (and checkpoint digests) would silently drift.
struct Field {
  std::string key;
  std::function<void(Config&, const std::string&)> set;
  std::function<std::string(const Config&)> get;
  std::function<double(const Config&)> get_f64;   ///< doubles only
  std::function<void(Config&, double)> set_f64;   ///< doubles only
};

double parse_double(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  double out = 0.0;
  // stod throws invalid_argument with an unhelpful "stod" message (and
  // out_of_range for overflow) — rewrap both so the error names the key
  // and the offending token.
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("config: bad number for " + key + ": '" + v +
                                "'");
  }
  if (used != v.size())
    throw std::invalid_argument("config: bad number for " + key + ": '" + v +
                                "'");
  if (!std::isfinite(out))
    throw std::invalid_argument("config: non-finite value for " + key +
                                ": '" + v + "'");
  return out;
}

long long parse_int(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  long long out = 0;
  try {
    out = std::stoll(v, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("config: bad integer for " + key + ": '" + v +
                                "'");
  }
  if (used != v.size())
    throw std::invalid_argument("config: bad integer for " + key + ": '" + v +
                                "'");
  return out;
}

bool parse_bool(const std::string& key, const std::string& v) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::invalid_argument("config: bad bool for " + key + ": " + v);
}

MobilityKind parse_mobility(const std::string& key, const std::string& v) {
  if (v == "zone") return MobilityKind::kZone;
  if (v == "waypoint") return MobilityKind::kWaypoint;
  if (v == "patrol") return MobilityKind::kPatrol;
  if (v == "trace") return MobilityKind::kTrace;
  throw std::invalid_argument("config: bad mobility kind for " + key + ": " +
                              v + " (zone|waypoint|patrol|trace)");
}

QueuePolicy parse_policy(const std::string& key, const std::string& v) {
  if (v == "ftd") return QueuePolicy::kFtdSorted;
  if (v == "fifo") return QueuePolicy::kFifo;
  if (v == "random") return QueuePolicy::kRandomDrop;
  throw std::invalid_argument("config: bad queue policy for " + key + ": " +
                              v + " (ftd|fifo|random)");
}

std::string policy_name(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::kFtdSorted: return "ftd";
    case QueuePolicy::kFifo: return "fifo";
    case QueuePolicy::kRandomDrop: return "random";
  }
  return "?";
}

template <typename T>
std::string to_str(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

#define DFTMSN_FIELD_D(path)                                              \
  Field {                                                                 \
    #path, [](Config& c, const std::string& v) {                          \
      c.path = parse_double(#path, v);                                    \
    },                                                                    \
        [](const Config& c) { return to_str(c.path); },                   \
        [](const Config& c) { return c.path; },                           \
        [](Config& c, double v) { c.path = v; }                           \
  }
#define DFTMSN_FIELD_I(path, type)                                        \
  Field {                                                                 \
    #path, [](Config& c, const std::string& v) {                          \
      c.path = static_cast<type>(parse_int(#path, v));                    \
    },                                                                    \
        [](const Config& c) { return to_str(c.path); }                    \
  }
#define DFTMSN_FIELD_B(path)                                              \
  Field {                                                                 \
    #path, [](Config& c, const std::string& v) {                          \
      c.path = parse_bool(#path, v);                                      \
    },                                                                    \
        [](const Config& c) { return c.path ? "true" : "false"; }         \
  }

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      DFTMSN_FIELD_D(radio.range_m),
      DFTMSN_FIELD_D(radio.bandwidth_bps),
      DFTMSN_FIELD_I(radio.data_bits, std::size_t),
      DFTMSN_FIELD_I(radio.control_bits, std::size_t),
      DFTMSN_FIELD_D(radio.switch_time_s),
      DFTMSN_FIELD_D(power.rx_w),
      DFTMSN_FIELD_D(power.tx_w),
      DFTMSN_FIELD_D(power.idle_w),
      DFTMSN_FIELD_D(power.sleep_w),
      DFTMSN_FIELD_D(power.switch_w),
      DFTMSN_FIELD_D(protocol.alpha),
      DFTMSN_FIELD_D(protocol.xi_timeout_s),
      DFTMSN_FIELD_D(protocol.xi_update_cooldown_s),
      DFTMSN_FIELD_D(protocol.ftd_drop_threshold),
      DFTMSN_FIELD_D(protocol.delivery_threshold_r),
      DFTMSN_FIELD_I(protocol.queue_capacity, std::size_t),
      DFTMSN_FIELD_I(protocol.idle_cycles_before_sleep, int),
      DFTMSN_FIELD_I(protocol.retry_gap_slots, int),
      DFTMSN_FIELD_I(protocol.max_retry_gap_slots, int),
      DFTMSN_FIELD_D(protocol.lone_retry_s),
      DFTMSN_FIELD_B(sleep.enabled),
      DFTMSN_FIELD_I(sleep.history_cycles, int),
      DFTMSN_FIELD_D(sleep.buffer_threshold_h),
      DFTMSN_FIELD_D(sleep.important_ftd),
      DFTMSN_FIELD_D(sleep.t_min_floor_s),
      DFTMSN_FIELD_B(contention.adaptive),
      DFTMSN_FIELD_I(contention.tau_max_slots, int),
      DFTMSN_FIELD_I(contention.tau_cap_slots, int),
      DFTMSN_FIELD_D(contention.rts_collision_target),
      DFTMSN_FIELD_I(contention.cts_window_slots, int),
      DFTMSN_FIELD_I(contention.cts_window_cap, int),
      DFTMSN_FIELD_D(contention.cts_collision_target),
      DFTMSN_FIELD_D(scenario.field_m),
      DFTMSN_FIELD_I(scenario.zones_per_side, int),
      DFTMSN_FIELD_I(scenario.num_sensors, int),
      DFTMSN_FIELD_I(scenario.num_sinks, int),
      DFTMSN_FIELD_D(scenario.speed_min_mps),
      DFTMSN_FIELD_D(scenario.speed_max_mps),
      DFTMSN_FIELD_D(scenario.zone_exit_prob),
      DFTMSN_FIELD_D(scenario.home_return_prob),
      DFTMSN_FIELD_D(scenario.leg_mean_s),
      DFTMSN_FIELD_D(scenario.mobility_step_s),
      DFTMSN_FIELD_D(scenario.data_interval_s),
      DFTMSN_FIELD_D(scenario.duration_s),
      DFTMSN_FIELD_D(scenario.warmup_s),
      DFTMSN_FIELD_I(scenario.seed, std::uint64_t),
      DFTMSN_FIELD_B(faults.check_invariants),
      DFTMSN_FIELD_I(faults.invariant_stride, int),
      DFTMSN_FIELD_B(telemetry.enabled),
      DFTMSN_FIELD_B(telemetry.profile),
      DFTMSN_FIELD_D(telemetry.sample_period_s),
      // The fault plan is a free-form string (validated by
      // parse_fault_plan at World construction, not here). Note the
      // assignment splitter takes the FIRST '=', so plan values
      // containing '=' (node=3,...) pass through intact.
      Field{"faults.plan",
            [](Config& c, const std::string& v) { c.faults.plan = v; },
            [](const Config& c) { return c.faults.plan; }},
      // Free-form path; existence/readability is checked at config-file
      // load time (below) and again when the World loads the trace.
      Field{"scenario.trace_path",
            [](Config& c, const std::string& v) { c.scenario.trace_path = v; },
            [](const Config& c) { return c.scenario.trace_path; }},
      // Enumerated fields need custom parsers.
      Field{"scenario.mobility",
            [](Config& c, const std::string& v) {
              c.scenario.mobility = parse_mobility("scenario.mobility", v);
            },
            [](const Config& c) {
              return std::string(mobility_kind_name(c.scenario.mobility));
            }},
      Field{"protocol.queue_policy",
            [](Config& c, const std::string& v) {
              c.protocol.queue_policy =
                  parse_policy("protocol.queue_policy", v);
            },
            [](const Config& c) {
              return policy_name(c.protocol.queue_policy);
            }},
  };
  return kFields;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

void apply_config_override(Config& config, const std::string& assignment) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos)
    throw std::invalid_argument("config: expected key=value, got '" +
                                assignment + "'");
  const std::string key = trim(assignment.substr(0, eq));
  const std::string value = trim(assignment.substr(eq + 1));
  for (const Field& f : fields()) {
    if (f.key == key) {
      f.set(config, value);
      return;
    }
  }
  throw std::invalid_argument("config: unknown key '" + key + "'");
}

void apply_config_overrides(Config& config,
                            const std::vector<std::string>& assignments) {
  for (const std::string& a : assignments) apply_config_override(config, a);
}

void load_config_file(Config& config, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    try {
      apply_config_override(config, line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(path + ":" + std::to_string(lineno) +
                                  ": " + e.what());
    }
  }
  // Fail fast: a file that parses but encodes a nonsensical combination
  // (negative duration, speed_max < speed_min, ...) should be rejected at
  // load time with the file named, not deep inside World construction.
  try {
    config.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
  // A trace-driven scenario whose trace file is missing or unreadable
  // must also fail here, naming the trace file — not later, deep inside
  // World construction on some worker thread.
  if (config.scenario.mobility == MobilityKind::kTrace) {
    std::ifstream trace(config.scenario.trace_path,
                        std::ios::in | std::ios::binary);
    if (!trace)
      throw std::invalid_argument(path + ": scenario.trace_path: cannot open '" +
                                  config.scenario.trace_path + "'");
  }
}

std::vector<std::string> list_config_keys(const Config& config) {
  std::vector<std::string> out;
  out.reserve(fields().size());
  for (const Field& f : fields()) out.push_back(f.key + "=" + f.get(config));
  return out;
}

void save_config_exact(const Config& config, snapshot::Writer& w) {
  w.begin_section("config");
  w.size(fields().size());
  for (const Field& f : fields()) {
    w.str(f.key);
    if (f.get_f64) {
      w.u8(1);  // bit-exact double
      w.f64(f.get_f64(config));
    } else {
      w.u8(0);  // string form (exact for ints, bools and enums)
      w.str(f.get(config));
    }
  }
  w.end_section();
}

void load_config_exact(Config& config, snapshot::Reader& r) {
  r.begin_section("config");
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string key = r.str();
    const Field* field = nullptr;
    for (const Field& f : fields())
      if (f.key == key) {
        field = &f;
        break;
      }
    if (field == nullptr)
      throw std::invalid_argument("config: unknown key '" + key +
                                  "' in exact-encoded config");
    const std::uint8_t tag = r.u8();
    if (tag == 1) {
      if (!field->set_f64)
        throw std::invalid_argument("config: key '" + key +
                                    "' is not double-typed");
      field->set_f64(config, r.f64());
    } else {
      field->set(config, r.str());
    }
  }
  r.end_section();
}

}  // namespace dftmsn
