// Small reusable worker-thread pool plus a deterministic parallel_for,
// used by the experiment layer to fan independent simulation runs across
// cores. Determinism contract: parallel_for executes `body(i)` exactly
// once for every index; callers that write result[i] from body(i) and
// reduce in index order afterwards get output bit-identical to a serial
// loop, regardless of the number of workers or scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dftmsn {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
/// Tasks must not throw out of the pool unobserved: exceptions escaping a
/// task are rethrown from wait_idle() (first one wins, others dropped).
class ThreadPool {
 public:
  /// Spawns `threads` workers (minimum 1).
  explicit ThreadPool(int threads);

  /// Joins all workers. Pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any task raised since the last wait.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t busy_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Number of hardware threads (>= 1 even when the runtime cannot tell).
int hardware_jobs();

/// Normalizes a user-supplied job count: values <= 0 mean "auto" and
/// resolve to hardware_jobs(); anything else is returned unchanged.
int resolve_jobs(int requested);

/// Runs body(0..n-1), each index exactly once, across at most `jobs`
/// worker threads. jobs <= 1 (or n <= 1) degrades to a plain serial loop
/// on the calling thread — the serial and parallel paths execute the very
/// same body, so per-index outputs are identical by construction. The
/// first exception thrown by any body is rethrown after all indices
/// complete or are abandoned.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body);

}  // namespace dftmsn
