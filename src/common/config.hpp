// Central configuration for protocol, radio, energy and scenario parameters.
//
// Defaults reproduce the paper's Sec. 5 setup (100 sensors, 3 sinks,
// 150x150 m field in 25 zones, 10 m range, 10 kbps, Berkeley-mote power
// numbers). Every deviation or inference is documented in DESIGN.md.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace dftmsn {

/// Radio/channel parameters (Layer 1/2 substrate).
struct RadioConfig {
  double range_m = 10.0;             ///< maximum transmission range
  double bandwidth_bps = 10'000.0;   ///< channel bandwidth
  std::size_t data_bits = 1000;      ///< data message size
  std::size_t control_bits = 50;     ///< control packet size (preamble/RTS/CTS/SCHEDULE/ACK)
  double switch_time_s = 0.002;      ///< radio on/off transition time

  /// Transmission time of one data message.
  [[nodiscard]] double data_tx_time() const {
    return static_cast<double>(data_bits) / bandwidth_bps;
  }
  /// Transmission time of one control packet; also the MAC slot length.
  [[nodiscard]] double control_tx_time() const {
    return static_cast<double>(control_bits) / bandwidth_bps;
  }
};

/// Power draw per radio state, in watts. Defaults follow the Berkeley mote
/// transceiver cited by the paper ([15]): rx 13.5 mW, tx 24.75 mW,
/// sleep 15 uW, idle listening = rx, switching = 4x listening.
struct PowerConfig {
  double rx_w = 13.5e-3;
  double tx_w = 24.75e-3;
  double idle_w = 13.5e-3;
  double sleep_w = 15e-6;
  double switch_w = 4.0 * 13.5e-3;
};

/// Buffer ordering/eviction policy. kFtdSorted is the paper's scheme;
/// the others exist for the ABL-QUEUE ablation bench.
enum class QueuePolicy { kFtdSorted, kFifo, kRandomDrop };

/// Parameters of the cross-layer protocol itself (Sec. 3).
struct ProtocolConfig {
  double alpha = 0.25;            ///< EWMA memory constant of Eq. (1)
  SimTime xi_timeout_s = 400.0;   ///< Δ: cadence of the Eq. (1) decay
  /// Minimum spacing between two Eq. (1) transmission updates. A contact
  /// drains many queued messages back-to-back; counting every one as an
  /// independent delivery observation drives ξ to ~1 in a single
  /// encounter (1-(1-α)^n). Rate-limiting makes ξ track delivery
  /// *opportunities* rather than batch sizes (see DESIGN.md).
  SimTime xi_update_cooldown_s = 30.0;
  double ftd_drop_threshold = 0.9;///< drop a message copy whose FTD exceeds this
  double delivery_threshold_r = 0.9;  ///< target aggregate delivery prob R (Sec. 3.2.2)
  std::size_t queue_capacity = 200;   ///< max buffered messages per sensor
  QueuePolicy queue_policy = QueuePolicy::kFtdSorted;
  int idle_cycles_before_sleep = 5;   ///< L: sleep if neither sender nor receiver in past L transmissions
  /// Failed attempts restart the asynchronous phase after a small
  /// slot-granular gap (Sec. 3.2.1 restarts immediately; the gap grows
  /// mildly with consecutive failures but stays deterministic so that
  /// colliding contenders re-contend synchronously and the σ draw — not
  /// timing jitter — resolves the collision).
  int retry_gap_slots = 2;
  int max_retry_gap_slots = 16;
  /// A sender with no node at all within radio range skips the futile
  /// frame exchange and retries after this pause (simulation fast path;
  /// energy is charged as if the preamble+RTS had been sent).
  SimTime lone_retry_s = 0.25;
};

/// Periodic-sleeping optimizer parameters (Sec. 4.1, Eqs. 4-8).
struct SleepConfig {
  bool enabled = true;
  int history_cycles = 10;      ///< S: window of recent cycles for ρ
  double buffer_threshold_h = 0.5; ///< H of Eq. (6): buffer-importance threshold
  double important_ftd = 0.5;   ///< F̄: messages with FTD below this count as important
  SimTime t_min_floor_s = 1.0;  ///< lower bound applied on top of Eq. (7)
};

/// Asynchronous-phase contention parameters (Sec. 4.2/4.3).
struct ContentionConfig {
  bool adaptive = true;        ///< optimize τ_max and W (OPT); false = fixed (NOOPT)
  /// Fixed/initial windows. Deliberately small "unoptimized defaults":
  /// NOOPT keeps them and pays for it in RTS/CTS collisions (exactly the
  /// effect Sec. 5 reports); the adaptive variants outgrow them quickly.
  int tau_max_slots = 8;       ///< fixed/initial maximum listen window, in slots
  int tau_cap_slots = 128;     ///< search cap for the τ_max optimizer
  double rts_collision_target = 0.1;  ///< H of Eq. (13)
  int cts_window_slots = 4;    ///< fixed/initial contention window W, in slots
  int cts_window_cap = 64;     ///< search cap for the W optimizer
  double cts_collision_target = 0.1;  ///< target γ_o for Eq. (14)
};

/// Sensor mobility model selection. kZone is the paper's model; waypoint
/// and patrol are synthetic extension scenarios, and kTrace replays a
/// waypoint trace file (scenario.trace_path; see docs/scenarios.md). The
/// resume property matrix in docs/checkpoint_resume.md covers all four.
enum class MobilityKind { kZone, kWaypoint, kPatrol, kTrace };

const char* mobility_kind_name(MobilityKind k);

/// Scenario-level parameters (field, population, traffic, horizon).
struct ScenarioConfig {
  double field_m = 150.0;       ///< square field edge
  int zones_per_side = 5;       ///< 5x5 = 25 zones
  int num_sensors = 100;
  int num_sinks = 3;
  /// Sensor mobility model: "zone" (paper default), "waypoint", "patrol",
  /// or "trace" (replay trace_path).
  MobilityKind mobility = MobilityKind::kZone;
  /// Motion trace file replayed when mobility == kTrace (binary format:
  /// src/mobility/motion_trace.hpp; compile text traces with
  /// scripts/trace_compiler.py). Must name a readable file.
  std::string trace_path;
  double speed_min_mps = 0.0;
  double speed_max_mps = 5.0;
  double zone_exit_prob = 0.2;  ///< leave the zone when hitting its boundary
  double home_return_prob = 1.0;///< re-enter home zone when hitting its boundary
  double leg_mean_s = 30.0;     ///< mean straight-line travel time per leg
  SimTime mobility_step_s = 0.5;
  SimTime data_interval_s = 120.0;  ///< mean Poisson inter-arrival of sensed data
  SimTime duration_s = 25'000.0;
  SimTime warmup_s = 0.0;       ///< messages generated before this are ignored by metrics
  std::uint64_t seed = 1;
};

/// Fault-injection and runtime-verification parameters. The plan string
/// rides inside the Config so it reaches every replicated/parallel run
/// unchanged (determinism: plan + seed fully determine the fault
/// schedule; see docs/fault_injection.md for the grammar).
struct FaultConfig {
  /// Fault plan spec, e.g. "crash@600:frac=0.3;outage@200:node=5,for=100".
  /// Empty = no faults.
  std::string plan;
  /// Run the InvariantChecker after every `invariant_stride`-th event.
  bool check_invariants = false;
  int invariant_stride = 1;
  /// Zero-based supervised-run attempt number, set by the supervisor on
  /// retries so attempts=-gated hang/die events stop firing. Internal:
  /// not a registered config key (the config digest must stay identical
  /// across attempts of the same replication).
  int attempt = 0;
};

/// Observability parameters (src/telemetry/). All off by default.
/// Registry collection and profiling are pure observers: enabling them
/// never changes the simulated trajectory (test-enforced against the
/// golden-metrics pins). The time-series sampler does add read-only
/// events to the queue — events_executed grows — which is why it is a
/// separate opt-in and not implied by `enabled`.
struct TelemetryConfig {
  bool enabled = false;  ///< collect registry instruments (counters/histograms)
  bool profile = false;  ///< wall-clock subsystem profiler (output is
                         ///< host-dependent, excluded from determinism checks)
  double sample_period_s = 0.0;  ///< >0: TimeSeriesSampler period (CLI wires
                                 ///< it to a trace sink)
};

/// Everything a run needs.
struct Config {
  RadioConfig radio;
  PowerConfig power;
  ProtocolConfig protocol;
  SleepConfig sleep;
  ContentionConfig contention;
  ScenarioConfig scenario;
  FaultConfig faults;
  TelemetryConfig telemetry;

  /// Validates cross-field invariants; throws std::invalid_argument on
  /// nonsensical combinations (negative durations, empty field, ...).
  void validate() const;
};

}  // namespace dftmsn
