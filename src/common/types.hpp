// Fundamental identifiers and time types shared by every dftmsn subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace dftmsn {

/// Simulation time in seconds. The kernel uses a double so that sub-ms MAC
/// timing (control slots) and multi-hour scenario horizons coexist without
/// unit juggling.
using SimTime = double;

inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

/// Identifies a node (sensor or sink) within one simulation.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Globally unique identifier of a data message (not of a copy: all copies
/// of the same sensed datum share one MessageId).
using MessageId = std::uint64_t;

/// Monotone sequence number used by the event queue for deterministic
/// tie-breaking of same-timestamp events.
using EventSeq = std::uint64_t;

}  // namespace dftmsn
