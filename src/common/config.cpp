#include "common/config.hpp"

#include <stdexcept>
#include <string>

namespace dftmsn {
namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("Config: " + what);
}

}  // namespace

const char* mobility_kind_name(MobilityKind k) {
  switch (k) {
    case MobilityKind::kZone: return "zone";
    case MobilityKind::kWaypoint: return "waypoint";
    case MobilityKind::kPatrol: return "patrol";
    case MobilityKind::kTrace: return "trace";
  }
  return "?";
}

void Config::validate() const {
  require(radio.range_m > 0, "radio range must be positive");
  require(radio.bandwidth_bps > 0, "bandwidth must be positive");
  require(radio.data_bits > 0, "data message must be non-empty");
  require(radio.control_bits > 0, "control packet must be non-empty");
  require(radio.switch_time_s >= 0, "switch time must be non-negative");

  require(power.rx_w >= 0 && power.tx_w >= 0 && power.idle_w >= 0 &&
              power.sleep_w >= 0 && power.switch_w >= 0,
          "power levels must be non-negative");
  require(power.idle_w > power.sleep_w,
          "idle power must exceed sleep power (Eq. 7 break-even)");

  require(protocol.alpha >= 0.0 && protocol.alpha <= 1.0,
          "alpha must lie in [0,1]");
  require(protocol.xi_timeout_s > 0, "ξ timeout must be positive");
  require(protocol.xi_update_cooldown_s >= 0,
          "ξ update cooldown must be non-negative");
  require(protocol.ftd_drop_threshold > 0.0 &&
              protocol.ftd_drop_threshold <= 1.0,
          "FTD drop threshold must lie in (0,1]");
  require(protocol.delivery_threshold_r > 0.0 &&
              protocol.delivery_threshold_r < 1.0,
          "delivery threshold R must lie in (0,1)");
  require(protocol.queue_capacity > 0, "queue capacity must be positive");
  require(protocol.idle_cycles_before_sleep > 0, "L must be positive");
  require(protocol.retry_gap_slots > 0, "retry gap must be positive");
  require(protocol.max_retry_gap_slots >= protocol.retry_gap_slots,
          "max retry gap must be >= base gap");
  require(protocol.lone_retry_s > 0, "lone retry pause must be positive");

  require(sleep.history_cycles > 0, "S must be positive");
  require(sleep.buffer_threshold_h > 0.0 && sleep.buffer_threshold_h < 1.0,
          "sleep buffer threshold H must lie in (0,1)");
  require(sleep.important_ftd > 0.0 && sleep.important_ftd <= 1.0,
          "important-FTD bound must lie in (0,1]");
  require(sleep.t_min_floor_s >= 0, "T_min floor must be non-negative");

  require(contention.tau_max_slots >= 1, "τ_max must be at least one slot");
  require(contention.tau_cap_slots >= contention.tau_max_slots,
          "τ_max search cap must be >= initial τ_max");
  require(contention.rts_collision_target > 0.0 &&
              contention.rts_collision_target < 1.0,
          "RTS collision target must lie in (0,1)");
  require(contention.cts_window_slots >= 1, "W must be at least one slot");
  require(contention.cts_window_cap >= contention.cts_window_slots,
          "W search cap must be >= initial W");
  require(contention.cts_collision_target > 0.0 &&
              contention.cts_collision_target < 1.0,
          "CTS collision target must lie in (0,1)");

  require(scenario.field_m > 0, "field edge must be positive");
  require(scenario.zones_per_side > 0, "zone grid must be non-empty");
  require(scenario.num_sensors > 0, "need at least one sensor");
  require(scenario.num_sinks > 0, "need at least one sink");
  require(scenario.speed_min_mps >= 0, "speed must be non-negative");
  require(scenario.speed_max_mps >= scenario.speed_min_mps,
          "speed_max must be >= speed_min");
  require(scenario.zone_exit_prob >= 0.0 && scenario.zone_exit_prob <= 1.0,
          "zone exit probability must lie in [0,1]");
  require(scenario.home_return_prob >= 0.0 &&
              scenario.home_return_prob <= 1.0,
          "home return probability must lie in [0,1]");
  require(scenario.leg_mean_s > 0, "mean leg time must be positive");
  require(scenario.mobility != MobilityKind::kWaypoint ||
              scenario.speed_min_mps > 0,
          "waypoint mobility needs speed_min > 0 (RWP stall)");
  require(scenario.mobility != MobilityKind::kPatrol ||
              scenario.speed_max_mps > 0,
          "patrol mobility needs speed_max > 0");
  require(scenario.mobility != MobilityKind::kTrace ||
              !scenario.trace_path.empty(),
          "trace mobility needs scenario.trace_path");
  require(scenario.mobility_step_s > 0, "mobility step must be positive");
  require(scenario.data_interval_s > 0, "data interval must be positive");
  require(scenario.duration_s > 0, "duration must be positive");
  require(scenario.warmup_s >= 0 && scenario.warmup_s < scenario.duration_s,
          "warm-up must lie within the run");

  require(faults.invariant_stride >= 1,
          "invariant stride must be at least 1");
}

}  // namespace dftmsn
