// EINTR/partial-I/O-hardened socket helpers shared by every TCP
// listener in the tree (the status server and the sweep dispatcher).
// All sockets are opened close-on-exec so spawned workers do not
// inherit listener fds. Errors surface as NetError (std::runtime_error)
// naming the failing call and errno text; transient conditions (EINTR,
// EAGAIN on accept) are retried or reported as "no progress" instead.
#pragma once

#include <poll.h>

#include <cstddef>
#include <stdexcept>
#include <string>

#include <sys/types.h>

namespace dftmsn {
namespace net {

class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// Opens a TCP listener bound to `bind_addr:port` (numeric IPv4 or
/// "localhost"; port 0 picks an ephemeral port). Returns the listening
/// fd. Throws NetError on failure.
int listen_tcp(const std::string& bind_addr, int port, int backlog);

/// The locally bound port of a socket fd (after listen_tcp with port 0).
int bound_port(int fd);

/// Connects to `host:port` (numeric IPv4 or "localhost"). Returns the
/// connected fd. Throws NetError on failure.
int connect_tcp(const std::string& host, int port);

/// accept(2) with EINTR retry and CLOEXEC on the returned fd. Returns
/// -1 when no connection could be accepted this round (EAGAIN,
/// ECONNABORTED, transient resource exhaustion); throws only on
/// unrecoverable listener errors.
int accept_retry(int listen_fd);

/// poll(2) with EINTR retry. Returns poll's count (>= 0).
int poll_retry(pollfd* fds, nfds_t nfds, int timeout_ms);

/// One recv(2) with EINTR retry. Returns bytes read, 0 on orderly EOF,
/// or -1 with errno set (including EAGAIN/EWOULDBLOCK).
ssize_t recv_some(int fd, void* buf, std::size_t len);

/// Reads exactly `len` bytes, polling up to `timeout_s` seconds total.
/// Returns false on a clean EOF before the first byte; throws NetError
/// on mid-stream EOF, socket error, or deadline expiry.
bool read_full(int fd, void* buf, std::size_t len, double timeout_s);

/// Writes all `len` bytes (MSG_NOSIGNAL, EINTR/short-write retry).
/// Throws NetError if the peer is gone or the socket errors.
void write_full(int fd, const void* data, std::size_t len);

}  // namespace net
}  // namespace dftmsn
