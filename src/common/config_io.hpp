// Textual configuration: every Config field is addressable by a dotted
// key ("scenario.num_sinks", "protocol.alpha", ...). Supports
// key=value override strings (CLI) and simple config files (one
// assignment per line, '#' comments). Unknown keys are hard errors —
// typos must not silently run the default scenario.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"

namespace dftmsn {

/// Applies one "section.field=value" assignment. Throws
/// std::invalid_argument on unknown keys or unparsable values.
void apply_config_override(Config& config, const std::string& assignment);

/// Applies a list of assignments in order.
void apply_config_overrides(Config& config,
                            const std::vector<std::string>& assignments);

/// Loads assignments from a file (blank lines and '#' comments ignored).
void load_config_file(Config& config, const std::string& path);

/// All recognized keys with their current values — the `--help` listing.
std::vector<std::string> list_config_keys(const Config& config);

}  // namespace dftmsn
