// Textual configuration: every Config field is addressable by a dotted
// key ("scenario.num_sinks", "protocol.alpha", ...). Supports
// key=value override strings (CLI) and simple config files (one
// assignment per line, '#' comments). Unknown keys are hard errors —
// typos must not silently run the default scenario.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

/// Applies one "section.field=value" assignment. Throws
/// std::invalid_argument on unknown keys or unparsable values.
void apply_config_override(Config& config, const std::string& assignment);

/// Applies a list of assignments in order.
void apply_config_overrides(Config& config,
                            const std::vector<std::string>& assignments);

/// Loads assignments from a file (blank lines and '#' comments ignored).
void load_config_file(Config& config, const std::string& path);

/// All recognized keys with their current values — the `--help` listing.
std::vector<std::string> list_config_keys(const Config& config);

/// Serializes every registered key into `w` ("config" section) with
/// double-typed values as IEEE-754 bit patterns. The textual form above
/// truncates doubles to stream precision; this form round-trips a Config
/// *bit for bit*, which the worker protocol needs — a child process that
/// reconstructed a subtly different Config would follow a different
/// trajectory and fail its checkpoint verification instead of reproducing
/// the parent's replication.
void save_config_exact(const Config& config, snapshot::Writer& w);

/// Inverse of save_config_exact. Throws std::invalid_argument on keys
/// this build does not register (config drift between writer and reader).
void load_config_exact(Config& config, snapshot::Reader& r);

}  // namespace dftmsn
