#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace dftmsn {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      --busy_;
      if (queue_.empty() && busy_ == 0) all_idle_.notify_all();
    }
  }
}

int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int resolve_jobs(int requested) {
  return requested <= 0 ? hardware_jobs() : requested;
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const int workers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, jobs)), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Dynamic scheduling over one shared counter: run lengths vary a lot
  // across (config, seed) points, so static slicing would leave workers
  // idle at the tail. Which worker claims which index never matters —
  // body(i) depends only on i.
  std::atomic<std::size_t> next{0};
  ThreadPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace dftmsn
