// Run-time tracing: structured event records emitted by instrumentation
// probes and consumed by TraceSink implementations (in-memory recorder,
// CSV writer). Tracing is opt-in and costs nothing when no sink is
// installed.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace dftmsn {

enum class TraceEventType {
  kContactStart,   ///< two nodes entered radio range
  kContactEnd,     ///< ...and left it again
  kDataTx,         ///< a DATA frame was transmitted
  kDataRx,         ///< a DATA frame was received by a sensor
  kDelivery,       ///< a DATA frame reached a sink
  kDrop,           ///< a queued copy was discarded
  kSleep,          ///< a node turned its radio off
  kWake,           ///< ...and on again
};

const char* trace_event_name(TraceEventType t);

/// One trace record. Fields beyond (type, time, node) are event-specific;
/// unused ones are left at their defaults.
struct TraceEvent {
  TraceEventType type;
  SimTime time = 0.0;
  NodeId node = kInvalidNode;   ///< primary node
  NodeId peer = kInvalidNode;   ///< counterpart (contact peer, receiver...)
  MessageId message = 0;
  double value = 0.0;           ///< event-specific scalar (FTD, duration...)
};

/// Consumer interface.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

}  // namespace dftmsn
