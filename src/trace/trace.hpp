// Run-time tracing: structured event records emitted by instrumentation
// probes and consumed by TraceSink implementations (in-memory recorder,
// CSV writer). Tracing is opt-in and costs nothing when no sink is
// installed.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace dftmsn {

enum class TraceEventType {
  kContactStart,   ///< two nodes entered radio range
  kContactEnd,     ///< ...and left it again
  kDataTx,         ///< a DATA frame was transmitted
  kDataRx,         ///< a DATA frame was received by a sensor
  kDelivery,       ///< a DATA frame reached a sink
  kDrop,           ///< a queued copy was discarded
  kSleep,          ///< a node turned its radio off
  kWake,           ///< ...and on again
  // MAC handshake (Sec. 3.2); `peer`/`value` usage noted per event.
  kRtsTx,          ///< sender finished its preamble and sent the RTS
  kCtsTx,          ///< a receiver answered in its CTS contention slot
  kRtsCollision,   ///< expected an RTS, heard a collision instead
  kCtsCollision,   ///< a CTS contention slot collided at the sender
  kAckRx,          ///< sender accepted a slotted ACK (peer = the receiver)
  kScheduleTx,     ///< sender broadcast the SCHEDULE (value = #receivers)
  // Time-series sampler rows (telemetry::TimeSeriesSampler).
  kSampleXi,          ///< value = node's ξ at sample time
  kSampleBuffer,      ///< value = data-queue occupancy
  kSampleRadio,       ///< value = RadioState as a numeric code
  kSampleDeliveries,  ///< value = cumulative unique deliveries (network-wide)
};

const char* trace_event_name(TraceEventType t);

/// One trace record. Fields beyond (type, time, node) are event-specific;
/// unused ones are left at their defaults.
struct TraceEvent {
  TraceEventType type;
  SimTime time = 0.0;
  NodeId node = kInvalidNode;   ///< primary node
  NodeId peer = kInvalidNode;   ///< counterpart (contact peer, receiver...)
  MessageId message = 0;
  double value = 0.0;           ///< event-specific scalar (FTD, duration...)
};

/// Consumer interface.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

}  // namespace dftmsn
