#include "trace/contact_analysis.hpp"

#include <stdexcept>

namespace dftmsn {

ContactStats analyze_contacts(const std::vector<TraceEvent>& events,
                              NodeId first_sink_id) {
  ContactStats out;
  // Last end-time per pair, for inter-contact gaps.
  std::unordered_map<std::uint64_t, SimTime> last_end;
  const auto pair_key = [](NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };

  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kContactStart) {
      const auto it = last_end.find(pair_key(e.node, e.peer));
      if (it != last_end.end()) {
        out.inter_contact_s.add(e.time - it->second);
      }
      continue;
    }
    if (e.type != TraceEventType::kContactEnd) continue;

    ++out.contacts;
    out.duration_s.add(e.value);
    last_end[pair_key(e.node, e.peer)] = e.time;
    ++out.contacts_per_node[e.node];
    ++out.contacts_per_node[e.peer];
    const bool with_sink = e.node >= first_sink_id || e.peer >= first_sink_id;
    if (with_sink) {
      const NodeId sensor = e.node >= first_sink_id ? e.peer : e.node;
      if (sensor < first_sink_id) ++out.sink_contacts_per_node[sensor];
    }
  }
  return out;
}

std::unordered_map<NodeId, double> sink_contact_rates(
    const ContactStats& stats, NodeId first_sink_id, NodeId num_sensors,
    SimTime horizon) {
  if (horizon <= 0) throw std::invalid_argument("sink_contact_rates: horizon");
  if (num_sensors > first_sink_id)
    throw std::invalid_argument("sink_contact_rates: sensor/sink id overlap");
  std::unordered_map<NodeId, double> rates;
  for (NodeId i = 0; i < num_sensors; ++i) {
    const auto it = stats.sink_contacts_per_node.find(i);
    const double n =
        it == stats.sink_contacts_per_node.end()
            ? 0.0
            : static_cast<double>(it->second);
    rates[i] = n / horizon;
  }
  return rates;
}

}  // namespace dftmsn
