#include "trace/contact_probe.hpp"

#include <stdexcept>
#include <vector>

namespace dftmsn {

ContactProbe::ContactProbe(Simulator& sim, const MobilityManager& mobility,
                           double range_m, double sample_period_s,
                           TraceSink& sink)
    : sim_(sim),
      mobility_(mobility),
      range_m_(range_m),
      period_s_(sample_period_s),
      sink_(sink) {
  if (range_m <= 0) throw std::invalid_argument("ContactProbe: range <= 0");
  if (sample_period_s <= 0)
    throw std::invalid_argument("ContactProbe: period <= 0");
}

void ContactProbe::start() {
  if (started_) return;
  started_ = true;
  sim_.schedule_in(period_s_, [this] { sample(); });
}

void ContactProbe::sample() {
  const auto n = static_cast<NodeId>(mobility_.node_count());
  const SimTime now = sim_.now();

  // Mark everything unseen, then walk current pairs.
  std::vector<std::uint64_t> still_active;
  for (NodeId a = 0; a < n; ++a) {
    for (const NodeId b : mobility_.neighbors_of(a, range_m_)) {
      if (b <= a) continue;
      const std::uint64_t k = key(a, b);
      still_active.push_back(k);
      if (active_.emplace(k, now).second) {
        sink_.record(TraceEvent{TraceEventType::kContactStart, now, a, b, 0,
                                0.0});
      }
    }
  }

  // Close contacts that no longer exist.
  std::erase_if(active_, [&](const auto& kv) {
    for (const std::uint64_t k : still_active) {
      if (k == kv.first) return false;
    }
    const auto a = static_cast<NodeId>(kv.first >> 32);
    const auto b = static_cast<NodeId>(kv.first & 0xffffffffu);
    sink_.record(TraceEvent{TraceEventType::kContactEnd, now, a, b, 0,
                            now - kv.second});
    return true;
  });

  sim_.schedule_in(period_s_, [this] { sample(); });
}

void ContactProbe::finish() {
  const SimTime now = sim_.now();
  for (const auto& [k, start] : active_) {
    const auto a = static_cast<NodeId>(k >> 32);
    const auto b = static_cast<NodeId>(k & 0xffffffffu);
    sink_.record(
        TraceEvent{TraceEventType::kContactEnd, now, a, b, 0, now - start});
  }
  active_.clear();
}

}  // namespace dftmsn
