#include "trace/recorder.hpp"

#include <algorithm>
#include <stdexcept>

namespace dftmsn {

std::size_t TraceRecorder::count(TraceEventType type) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [type](const TraceEvent& e) { return e.type == type; }));
}

CsvTraceSink::CsvTraceSink(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvTraceSink: cannot open " + path);
  out_ << "type,time,node,peer,message,value\n";
}

void CsvTraceSink::record(const TraceEvent& event) {
  out_ << trace_event_name(event.type) << ',' << event.time << ','
       << event.node << ',' << event.peer << ',' << event.message << ','
       << event.value << '\n';
  ++written_;
}

}  // namespace dftmsn
