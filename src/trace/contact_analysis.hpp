// Post-run analysis of contact traces: contact/inter-contact duration
// statistics and per-node contact rates — the connectivity fingerprint of
// a DFT-MSN scenario (and the ground truth the ξ gradient tries to learn).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "stats/summary.hpp"
#include "trace/recorder.hpp"

namespace dftmsn {

struct ContactStats {
  std::size_t contacts = 0;          ///< completed contact episodes
  Summary duration_s;                ///< per-episode durations
  Summary inter_contact_s;           ///< gaps between episodes of one pair
  std::unordered_map<NodeId, std::size_t> contacts_per_node;
  std::unordered_map<NodeId, std::size_t> sink_contacts_per_node;
};

/// Reduces CONTACT_START/END events. Nodes with id >= `first_sink_id`
/// are sinks for the per-node sink-contact tally.
ContactStats analyze_contacts(const std::vector<TraceEvent>& events,
                              NodeId first_sink_id);

/// Per-node sink-contact *rate* (episodes per simulated second), the
/// quantity a node's delivery probability ξ is meant to track. Nodes
/// without any sink contact are included with rate 0.
std::unordered_map<NodeId, double> sink_contact_rates(
    const ContactStats& stats, NodeId first_sink_id, NodeId num_sensors,
    SimTime horizon);

}  // namespace dftmsn
