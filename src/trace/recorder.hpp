// TraceSink implementations: an in-memory recorder (analysis, tests) and
// a streaming CSV writer (offline tooling).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace dftmsn {

/// Buffers every event in memory; the analyzers consume it afterwards.
class TraceRecorder final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t count(TraceEventType type) const;
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Streams events to a CSV file: type,time,node,peer,message,value.
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(const std::string& path);

  void record(const TraceEvent& event) override;

  [[nodiscard]] std::size_t written() const { return written_; }

 private:
  std::ofstream out_;
  std::size_t written_ = 0;
};

/// Fan-out: forwards each event to several sinks.
class TeeTraceSink final : public TraceSink {
 public:
  void add(TraceSink& sink) { sinks_.push_back(&sink); }

  void record(const TraceEvent& event) override {
    for (TraceSink* s : sinks_) s->record(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace dftmsn
