#include "trace/trace.hpp"

namespace dftmsn {

const char* trace_event_name(TraceEventType t) {
  switch (t) {
    case TraceEventType::kContactStart: return "CONTACT_START";
    case TraceEventType::kContactEnd: return "CONTACT_END";
    case TraceEventType::kDataTx: return "DATA_TX";
    case TraceEventType::kDataRx: return "DATA_RX";
    case TraceEventType::kDelivery: return "DELIVERY";
    case TraceEventType::kDrop: return "DROP";
    case TraceEventType::kSleep: return "SLEEP";
    case TraceEventType::kWake: return "WAKE";
    case TraceEventType::kRtsTx: return "RTS_TX";
    case TraceEventType::kCtsTx: return "CTS_TX";
    case TraceEventType::kRtsCollision: return "RTS_COLLISION";
    case TraceEventType::kCtsCollision: return "CTS_COLLISION";
    case TraceEventType::kAckRx: return "ACK_RX";
    case TraceEventType::kScheduleTx: return "SCHEDULE_TX";
    case TraceEventType::kSampleXi: return "SAMPLE_XI";
    case TraceEventType::kSampleBuffer: return "SAMPLE_BUFFER";
    case TraceEventType::kSampleRadio: return "SAMPLE_RADIO";
    case TraceEventType::kSampleDeliveries: return "SAMPLE_DELIVERIES";
  }
  return "?";
}

}  // namespace dftmsn
