#include "trace/trace.hpp"

namespace dftmsn {

const char* trace_event_name(TraceEventType t) {
  switch (t) {
    case TraceEventType::kContactStart: return "CONTACT_START";
    case TraceEventType::kContactEnd: return "CONTACT_END";
    case TraceEventType::kDataTx: return "DATA_TX";
    case TraceEventType::kDataRx: return "DATA_RX";
    case TraceEventType::kDelivery: return "DELIVERY";
    case TraceEventType::kDrop: return "DROP";
    case TraceEventType::kSleep: return "SLEEP";
    case TraceEventType::kWake: return "WAKE";
  }
  return "?";
}

}  // namespace dftmsn
