// Samples the mobility state on a fixed period and emits CONTACT_START /
// CONTACT_END trace events whenever a pair of nodes enters/leaves radio
// range. A pure observer: protocols are unaffected.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"
#include "mobility/mobility_manager.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace dftmsn {

class ContactProbe {
 public:
  /// Watches all registered nodes; a contact is an (a < b) pair within
  /// `range_m`. `sample_period_s` bounds the timing resolution.
  ContactProbe(Simulator& sim, const MobilityManager& mobility,
               double range_m, double sample_period_s, TraceSink& sink);

  /// Starts sampling. Call once, after all nodes are registered.
  void start();

  /// Emits CONTACT_END for every still-open contact (call at end of run
  /// so duration statistics include the tail).
  void finish();

  [[nodiscard]] std::size_t open_contacts() const { return active_.size(); }

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void sample();

  Simulator& sim_;
  const MobilityManager& mobility_;
  double range_m_;
  double period_s_;
  TraceSink& sink_;
  bool started_ = false;
  std::unordered_map<std::uint64_t, SimTime> active_;  ///< pair -> start time
};

}  // namespace dftmsn
