#include "stats/csv.hpp"

#include <stdexcept>

namespace dftmsn {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> columns)
    : out_(path), columns_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (columns.empty()) throw std::invalid_argument("CsvWriter: no columns");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::vector<double>(values));
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace dftmsn
