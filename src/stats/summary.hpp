// Streaming summary statistics (Welford) with confidence intervals, used
// to aggregate replicated simulation runs.
#pragma once

#include <cstddef>

namespace dftmsn {

class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Half-width of the ~95% normal-approximation confidence interval
  /// (1.96 · s/√n); 0 with fewer than two samples.
  [[nodiscard]] double ci95_half_width() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dftmsn
