// Run-level metric collection: message life-cycle events, drops, MAC
// activity. The experiment runner combines these with channel counters
// and energy meters into the paper's three headline metrics.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"
#include "core/ftd_queue.hpp"
#include "net/message.hpp"
#include "snapshot/snapshot_io.hpp"
#include "telemetry/registry.hpp"

namespace dftmsn {

class Metrics {
 public:
  /// Messages generated before `warmup_end` are excluded from ratios.
  explicit Metrics(SimTime warmup_end = 0.0) : warmup_end_(warmup_end) {}

  /// A sensor generated a fresh message.
  void on_generated(const Message& m);

  /// A copy of message `m` arrived at a sink. Only the first arrival of
  /// each id counts toward the delivery ratio and delay.
  void on_delivered(const Message& m, SimTime at);

  /// A queued copy was discarded.
  void on_dropped(const Message& m, DropReason reason);

  /// MAC bookkeeping hooks.
  void on_attempt() { ++attempts_; }
  void on_attempt_failed() { ++failed_attempts_; }
  void on_data_tx(std::size_t receiver_count) {
    ++data_transmissions_;
    receivers_scheduled_ += receiver_count;
  }

  // --- results -------------------------------------------------------
  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  [[nodiscard]] std::uint64_t delivered_unique() const {
    return delivered_unique_;
  }
  [[nodiscard]] std::uint64_t delivered_copies() const {
    return delivered_copies_;
  }
  [[nodiscard]] double delivery_ratio() const;
  [[nodiscard]] double mean_delay_s() const;
  [[nodiscard]] double mean_hops() const;
  [[nodiscard]] std::uint64_t drops(DropReason reason) const;
  /// Full drop breakdown, keyed on the reason itself (JSON report).
  [[nodiscard]] const std::unordered_map<DropReason, std::uint64_t,
                                         DropReasonHash>&
  drops_by_reason() const {
    return drops_;
  }
  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }
  [[nodiscard]] std::uint64_t failed_attempts() const {
    return failed_attempts_;
  }
  [[nodiscard]] std::uint64_t data_transmissions() const {
    return data_transmissions_;
  }
  [[nodiscard]] double mean_receivers_per_tx() const;

  /// Per-source message counts (diagnostics: delivery fairness by node).
  struct SourceCounts {
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
  };
  [[nodiscard]] const std::unordered_map<NodeId, SourceCounts>& per_source()
      const {
    return per_source_;
  }

  /// Jain's fairness index over per-source delivery ratios r_i =
  /// delivered_i / generated_i (sources with generated == 0 excluded):
  /// J = (Σ r_i)² / (n · Σ r_i²), in (0, 1], 1 = perfectly fair.
  /// Returns 0 when no source generated anything or all ratios are 0.
  [[nodiscard]] double jain_fairness_index() const;

  /// Resolves the delivery histograms from `registry` (nullptr unbinds);
  /// while bound, on_delivered() also feeds delivery.delay_s and
  /// delivery.hops. Pure observation — binding never changes any counter.
  void bind_telemetry(telemetry::Registry* registry);

  /// Snapshot: every counter plus the dedupe sets/maps, the unordered
  /// containers written in ascending key order for a canonical byte stream.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  SimTime warmup_end_;
  std::uint64_t generated_ = 0;
  std::uint64_t delivered_unique_ = 0;
  std::uint64_t delivered_copies_ = 0;
  double total_delay_ = 0.0;
  std::uint64_t total_hops_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t failed_attempts_ = 0;
  std::uint64_t data_transmissions_ = 0;
  std::uint64_t receivers_scheduled_ = 0;
  std::unordered_set<MessageId> counted_;    ///< generated post-warmup
  std::unordered_set<MessageId> delivered_;  ///< first-arrival dedupe
  std::unordered_map<DropReason, std::uint64_t, DropReasonHash> drops_;
  std::unordered_map<NodeId, SourceCounts> per_source_;

  // Telemetry probes (nullptr when telemetry is disabled).
  telemetry::Histogram* h_delay_ = nullptr;
  telemetry::Histogram* h_hops_ = nullptr;
};

}  // namespace dftmsn
