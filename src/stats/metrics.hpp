// Run-level metric collection: message life-cycle events, drops, MAC
// activity. The experiment runner combines these with channel counters
// and energy meters into the paper's three headline metrics.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"
#include "core/ftd_queue.hpp"
#include "net/message.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

class Metrics {
 public:
  /// Messages generated before `warmup_end` are excluded from ratios.
  explicit Metrics(SimTime warmup_end = 0.0) : warmup_end_(warmup_end) {}

  /// A sensor generated a fresh message.
  void on_generated(const Message& m);

  /// A copy of message `m` arrived at a sink. Only the first arrival of
  /// each id counts toward the delivery ratio and delay.
  void on_delivered(const Message& m, SimTime at);

  /// A queued copy was discarded.
  void on_dropped(const Message& m, DropReason reason);

  /// MAC bookkeeping hooks.
  void on_attempt() { ++attempts_; }
  void on_attempt_failed() { ++failed_attempts_; }
  void on_data_tx(std::size_t receiver_count) {
    ++data_transmissions_;
    receivers_scheduled_ += receiver_count;
  }

  // --- results -------------------------------------------------------
  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  [[nodiscard]] std::uint64_t delivered_unique() const {
    return delivered_unique_;
  }
  [[nodiscard]] std::uint64_t delivered_copies() const {
    return delivered_copies_;
  }
  [[nodiscard]] double delivery_ratio() const;
  [[nodiscard]] double mean_delay_s() const;
  [[nodiscard]] double mean_hops() const;
  [[nodiscard]] std::uint64_t drops(DropReason reason) const;
  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }
  [[nodiscard]] std::uint64_t failed_attempts() const {
    return failed_attempts_;
  }
  [[nodiscard]] std::uint64_t data_transmissions() const {
    return data_transmissions_;
  }
  [[nodiscard]] double mean_receivers_per_tx() const;

  /// Per-source message counts (diagnostics: delivery fairness by node).
  struct SourceCounts {
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
  };
  [[nodiscard]] const std::unordered_map<NodeId, SourceCounts>& per_source()
      const {
    return per_source_;
  }

  /// Snapshot: every counter plus the dedupe sets/maps, the unordered
  /// containers written in ascending key order for a canonical byte stream.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  SimTime warmup_end_;
  std::uint64_t generated_ = 0;
  std::uint64_t delivered_unique_ = 0;
  std::uint64_t delivered_copies_ = 0;
  double total_delay_ = 0.0;
  std::uint64_t total_hops_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t failed_attempts_ = 0;
  std::uint64_t data_transmissions_ = 0;
  std::uint64_t receivers_scheduled_ = 0;
  std::unordered_set<MessageId> counted_;    ///< generated post-warmup
  std::unordered_set<MessageId> delivered_;  ///< first-arrival dedupe
  std::unordered_map<int, std::uint64_t> drops_;
  std::unordered_map<NodeId, SourceCounts> per_source_;
};

}  // namespace dftmsn
