// Tiny CSV writer used by the benchmark harnesses to dump series that
// regenerate the paper's figures.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace dftmsn {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Appends one data row; must match the header arity.
  void row(std::initializer_list<double> values);
  void row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace dftmsn
