#include "stats/metrics.hpp"

namespace dftmsn {

void Metrics::on_generated(const Message& m) {
  if (m.created < warmup_end_) return;
  ++generated_;
  counted_.insert(m.id);
  ++per_source_[m.source].generated;
}

void Metrics::on_delivered(const Message& m, SimTime at) {
  if (!counted_.contains(m.id)) return;  // warm-up message
  ++delivered_copies_;
  if (!delivered_.insert(m.id).second) return;  // duplicate arrival
  ++delivered_unique_;
  total_delay_ += at - m.created;
  total_hops_ += static_cast<std::uint64_t>(m.hops);
  ++per_source_[m.source].delivered;
}

void Metrics::on_dropped(const Message& m, DropReason reason) {
  if (!counted_.contains(m.id)) return;
  ++drops_[static_cast<int>(reason)];
}

double Metrics::delivery_ratio() const {
  if (generated_ == 0) return 0.0;
  return static_cast<double>(delivered_unique_) /
         static_cast<double>(generated_);
}

double Metrics::mean_delay_s() const {
  if (delivered_unique_ == 0) return 0.0;
  return total_delay_ / static_cast<double>(delivered_unique_);
}

double Metrics::mean_hops() const {
  if (delivered_unique_ == 0) return 0.0;
  return static_cast<double>(total_hops_) /
         static_cast<double>(delivered_unique_);
}

std::uint64_t Metrics::drops(DropReason reason) const {
  const auto it = drops_.find(static_cast<int>(reason));
  return it == drops_.end() ? 0 : it->second;
}

double Metrics::mean_receivers_per_tx() const {
  if (data_transmissions_ == 0) return 0.0;
  return static_cast<double>(receivers_scheduled_) /
         static_cast<double>(data_transmissions_);
}

}  // namespace dftmsn
