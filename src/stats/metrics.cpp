#include "stats/metrics.hpp"

#include <algorithm>
#include <vector>

#include "telemetry/probes.hpp"

namespace dftmsn {

namespace {

template <typename Set>
std::vector<typename Set::key_type> sorted_keys(const Set& s) {
  std::vector<typename Set::key_type> keys(s.begin(), s.end());
  std::sort(keys.begin(), keys.end());
  return keys;
}

template <typename Map>
std::vector<typename Map::key_type> sorted_map_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void Metrics::on_generated(const Message& m) {
  if (m.created < warmup_end_) return;
  ++generated_;
  counted_.insert(m.id);
  ++per_source_[m.source].generated;
}

void Metrics::on_delivered(const Message& m, SimTime at) {
  if (!counted_.contains(m.id)) return;  // warm-up message
  ++delivered_copies_;
  if (!delivered_.insert(m.id).second) return;  // duplicate arrival
  ++delivered_unique_;
  total_delay_ += at - m.created;
  total_hops_ += static_cast<std::uint64_t>(m.hops);
  ++per_source_[m.source].delivered;
  DFTMSN_PROBE_HIST(h_delay_, at - m.created);
  DFTMSN_PROBE_HIST(h_hops_, static_cast<double>(m.hops));
}

void Metrics::on_dropped(const Message& m, DropReason reason) {
  if (!counted_.contains(m.id)) return;
  ++drops_[reason];
}

double Metrics::delivery_ratio() const {
  if (generated_ == 0) return 0.0;
  return static_cast<double>(delivered_unique_) /
         static_cast<double>(generated_);
}

double Metrics::mean_delay_s() const {
  if (delivered_unique_ == 0) return 0.0;
  return total_delay_ / static_cast<double>(delivered_unique_);
}

double Metrics::mean_hops() const {
  if (delivered_unique_ == 0) return 0.0;
  return static_cast<double>(total_hops_) /
         static_cast<double>(delivered_unique_);
}

std::uint64_t Metrics::drops(DropReason reason) const {
  const auto it = drops_.find(reason);
  return it == drops_.end() ? 0 : it->second;
}

double Metrics::jain_fairness_index() const {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (const auto& [node, c] : per_source_) {
    if (c.generated == 0) continue;
    const double r =
        static_cast<double>(c.delivered) / static_cast<double>(c.generated);
    sum += r;
    sum_sq += r * r;
    ++n;
  }
  if (n == 0 || sum_sq == 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

void Metrics::bind_telemetry(telemetry::Registry* registry) {
  if (registry == nullptr) {
    h_delay_ = nullptr;
    h_hops_ = nullptr;
    return;
  }
  h_delay_ = registry->histogram("delivery.delay_s", 0.0, 7200.0, 72);
  h_hops_ = registry->histogram("delivery.hops", 0.0, 16.0, 16);
}

double Metrics::mean_receivers_per_tx() const {
  if (data_transmissions_ == 0) return 0.0;
  return static_cast<double>(receivers_scheduled_) /
         static_cast<double>(data_transmissions_);
}

void Metrics::save_state(snapshot::Writer& w) const {
  w.begin_section("metrics");
  w.f64(warmup_end_);
  w.u64(generated_);
  w.u64(delivered_unique_);
  w.u64(delivered_copies_);
  w.f64(total_delay_);
  w.u64(total_hops_);
  w.u64(attempts_);
  w.u64(failed_attempts_);
  w.u64(data_transmissions_);
  w.u64(receivers_scheduled_);

  const auto counted = sorted_keys(counted_);
  w.size(counted.size());
  for (const MessageId id : counted) w.u64(id);

  const auto delivered = sorted_keys(delivered_);
  w.size(delivered.size());
  for (const MessageId id : delivered) w.u64(id);

  const auto drop_keys = sorted_map_keys(drops_);
  w.size(drop_keys.size());
  for (const DropReason k : drop_keys) {
    w.i64(static_cast<int>(k));
    w.u64(drops_.at(k));
  }

  const auto sources = sorted_map_keys(per_source_);
  w.size(sources.size());
  for (const NodeId id : sources) {
    const SourceCounts& c = per_source_.at(id);
    w.u32(id);
    w.u64(c.generated);
    w.u64(c.delivered);
  }
  w.end_section();
}

void Metrics::load_state(snapshot::Reader& r) {
  r.begin_section("metrics");
  warmup_end_ = r.f64();
  generated_ = r.u64();
  delivered_unique_ = r.u64();
  delivered_copies_ = r.u64();
  total_delay_ = r.f64();
  total_hops_ = r.u64();
  attempts_ = r.u64();
  failed_attempts_ = r.u64();
  data_transmissions_ = r.u64();
  receivers_scheduled_ = r.u64();

  counted_.clear();
  for (std::size_t i = 0, n = r.size(); i < n; ++i) counted_.insert(r.u64());

  delivered_.clear();
  for (std::size_t i = 0, n = r.size(); i < n; ++i) delivered_.insert(r.u64());

  drops_.clear();
  for (std::size_t i = 0, n = r.size(); i < n; ++i) {
    const auto k = static_cast<DropReason>(r.i64());
    drops_[k] = r.u64();
  }

  per_source_.clear();
  for (std::size_t i = 0, n = r.size(); i < n; ++i) {
    const NodeId id = r.u32();
    SourceCounts c;
    c.generated = r.u64();
    c.delivered = r.u64();
    per_source_[id] = c;
  }
  r.end_section();
}

}  // namespace dftmsn
