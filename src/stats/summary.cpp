#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace dftmsn {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const { return n_ ? mean_ : 0.0; }

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return min_; }

double Summary::max() const { return max_; }

double Summary::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace dftmsn
