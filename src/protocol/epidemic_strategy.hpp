// EPIDEMIC (flooding) baseline ([5]): replicate to every neighbour with
// buffer room that does not already hold the message. Best-possible
// delivery ratio/delay at maximal transmission and buffer cost.
#pragma once

#include "protocol/forwarding_strategy.hpp"

namespace dftmsn {

class EpidemicStrategy final : public ForwardingStrategy {
 public:
  /// All sensors advertise the same mid-range metric so that qualification
  /// cannot be gated on a gradient (sinks still advertise 1.0).
  static constexpr double kFlatMetric = 0.5;

  [[nodiscard]] double local_metric() const override { return kFlatMetric; }

  [[nodiscard]] bool qualifies_as_receiver(const RtsInfo& rts,
                                           const FtdQueue& queue) const override;

  [[nodiscard]] std::vector<ScheduledReceiver> select_receivers(
      double message_ftd,
      const std::vector<Candidate>& candidates) const override;

  TransmissionOutcome on_transmission_complete(
      double message_ftd, const std::vector<ScheduledReceiver>& acked,
      SimTime now) override;

  void on_idle_timeout() override {}

  /// Flooded copies carry no meaningful FTD.
  [[nodiscard]] double receive_ftd(double) const override { return 0.0; }
};

}  // namespace dftmsn
