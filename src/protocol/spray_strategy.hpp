// SWIM-style controlled replication ([13,14], surveyed in Sec. 2): the
// source distributes a fixed number of copies to the first nodes it
// meets (no gradient — SWIM assumes every node is equally likely to meet
// the sink); carriers hold their copy until they meet a sink directly.
//
// The paper deliberately did not simulate SWIM because its uniform-
// mobility assumption fails in DFT-MSN ("different sensor nodes have
// different delivery probabilities"). We implement it as an extension
// baseline precisely to quantify that failure.
//
// Implementation note: the copy's FTD field doubles as the spray state —
// a source copy starts at 0 and gains kSprayStep per handed-out copy;
// once it crosses kCarrierFtd the copy (like every received copy, which
// is born at kCarrierFtd) is in the "wait" phase: only sinks qualify as
// receivers for it. This reuses the queue/threshold machinery unchanged.
#pragma once

#include "protocol/forwarding_strategy.hpp"

namespace dftmsn {

class SprayStrategy final : public ForwardingStrategy {
 public:
  /// FTD value marking a wait-phase (carrier) copy.
  static constexpr double kCarrierFtd = 0.5;
  /// FTD increment per copy sprayed; ~kCarrierFtd/kSprayStep copies are
  /// distributed before the source itself enters the wait phase.
  static constexpr double kSprayStep = 0.085;  // ~6 copies
  /// All sensors advertise this flat metric (no gradient in SWIM).
  static constexpr double kFlatMetric = 0.5;

  [[nodiscard]] double local_metric() const override { return kFlatMetric; }

  [[nodiscard]] bool qualifies_as_receiver(const RtsInfo& rts,
                                           const FtdQueue& queue) const override;

  [[nodiscard]] std::vector<ScheduledReceiver> select_receivers(
      double message_ftd,
      const std::vector<Candidate>& candidates) const override;

  TransmissionOutcome on_transmission_complete(
      double message_ftd, const std::vector<ScheduledReceiver>& acked,
      SimTime now) override;

  void on_idle_timeout() override {}

  /// Received copies are wait-phase carriers.
  [[nodiscard]] double receive_ftd(double) const override {
    return kCarrierFtd;
  }
};

}  // namespace dftmsn
