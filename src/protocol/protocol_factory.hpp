// Builds the (strategy, MAC options) pair for each evaluated protocol.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/config.hpp"
#include "protocol/forwarding_strategy.hpp"
#include "protocol/mac_common.hpp"

namespace dftmsn {

/// Fresh forwarding strategy instance for one sensor node.
std::unique_ptr<ForwardingStrategy> make_strategy(ProtocolKind kind,
                                                  const Config& config);

/// MAC option block for the protocol variant:
///   OPT      — adaptive sleeping + adaptive τ_max/W
///   NOOPT    — fixed sleeping period, fixed τ_max/W
///   NOSLEEP  — adaptive contention, radios never sleep
///   ZBR      — OPT's MAC options, ZebraNet forwarding
///   DIRECT / EPIDEMIC — OPT's MAC options, baseline forwarding
MacOptions make_mac_options(ProtocolKind kind, const Config& config);

/// Parses "OPT", "NOOPT", ... (case-insensitive); nullopt when unknown.
std::optional<ProtocolKind> parse_protocol_kind(const std::string& name);

}  // namespace dftmsn
