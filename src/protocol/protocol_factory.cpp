#include "protocol/protocol_factory.hpp"

#include <algorithm>
#include <cctype>

#include "protocol/direct_strategy.hpp"
#include "protocol/epidemic_strategy.hpp"
#include "protocol/ftd_strategy.hpp"
#include "protocol/history_strategy.hpp"
#include "protocol/spray_strategy.hpp"

namespace dftmsn {

std::unique_ptr<ForwardingStrategy> make_strategy(ProtocolKind kind,
                                                  const Config& config) {
  switch (kind) {
    case ProtocolKind::kOpt:
    case ProtocolKind::kNoOpt:
    case ProtocolKind::kNoSleep:
      return std::make_unique<FtdStrategy>(config.protocol);
    case ProtocolKind::kZbr:
      return std::make_unique<HistoryStrategy>(config.protocol);
    case ProtocolKind::kDirect:
      return std::make_unique<DirectStrategy>();
    case ProtocolKind::kEpidemic:
      return std::make_unique<EpidemicStrategy>();
    case ProtocolKind::kSwim:
      return std::make_unique<SprayStrategy>();
  }
  return nullptr;
}

MacOptions make_mac_options(ProtocolKind kind, const Config& config) {
  MacOptions opt;
  opt.sleeping_enabled = config.sleep.enabled;
  opt.adaptive_sleep = true;
  opt.adaptive_contention = true;

  switch (kind) {
    case ProtocolKind::kOpt:
    case ProtocolKind::kZbr:
    case ProtocolKind::kDirect:
    case ProtocolKind::kEpidemic:
    case ProtocolKind::kSwim:
      break;
    case ProtocolKind::kNoOpt:
      opt.adaptive_sleep = false;
      opt.adaptive_contention = false;
      break;
    case ProtocolKind::kNoSleep:
      opt.sleeping_enabled = false;
      break;
  }
  return opt;
}

std::optional<ProtocolKind> parse_protocol_kind(const std::string& name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "OPT") return ProtocolKind::kOpt;
  if (upper == "NOOPT") return ProtocolKind::kNoOpt;
  if (upper == "NOSLEEP") return ProtocolKind::kNoSleep;
  if (upper == "ZBR") return ProtocolKind::kZbr;
  if (upper == "DIRECT") return ProtocolKind::kDirect;
  if (upper == "EPIDEMIC") return ProtocolKind::kEpidemic;
  if (upper == "SWIM") return ProtocolKind::kSwim;
  return std::nullopt;
}

}  // namespace dftmsn
