#include "protocol/epidemic_strategy.hpp"

#include <algorithm>

namespace dftmsn {

bool EpidemicStrategy::qualifies_as_receiver(const RtsInfo& rts,
                                             const FtdQueue& queue) const {
  return !queue.contains(rts.message_id) &&
         queue.available_space_for(0.0) > 0;
}

std::vector<ScheduledReceiver> EpidemicStrategy::select_receivers(
    double, const std::vector<Candidate>& candidates) const {
  std::vector<ScheduledReceiver> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    if (c.buffer_space == 0) continue;
    out.push_back(ScheduledReceiver{c.id, c.metric, 0.0, c.is_sink});
  }
  return out;
}

TransmissionOutcome EpidemicStrategy::on_transmission_complete(
    double, const std::vector<ScheduledReceiver>& acked, SimTime) {
  // The sender keeps replicating until a sink takes the copy.
  const bool to_sink = std::any_of(acked.begin(), acked.end(),
                                   [](const auto& r) { return r.is_sink; });
  return {to_sink ? TransmissionOutcome::Disposition::kRemove
                  : TransmissionOutcome::Disposition::kKeep,
          0.0};
}

}  // namespace dftmsn
