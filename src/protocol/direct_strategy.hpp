// DIRECT baseline ([5]): a sensor holds its data until it meets a sink;
// sensors never relay for each other. Lowest overhead, lowest delivery
// ratio in sparse networks.
#pragma once

#include "protocol/forwarding_strategy.hpp"

namespace dftmsn {

class DirectStrategy final : public ForwardingStrategy {
 public:
  [[nodiscard]] double local_metric() const override { return 0.0; }

  /// Sensors never accept relayed traffic.
  [[nodiscard]] bool qualifies_as_receiver(const RtsInfo&,
                                           const FtdQueue&) const override {
    return false;
  }

  /// Only sinks are ever scheduled.
  [[nodiscard]] std::vector<ScheduledReceiver> select_receivers(
      double message_ftd,
      const std::vector<Candidate>& candidates) const override;

  TransmissionOutcome on_transmission_complete(
      double message_ftd, const std::vector<ScheduledReceiver>& acked,
      SimTime now) override;

  void on_idle_timeout() override {}
};

}  // namespace dftmsn
