// The paper's forwarding scheme: delivery-probability gradient (Eq. 1),
// FTD-based multicast with the Sec. 3.2.2 greedy receiver selection and
// the Eq. (2)/(3) FTD bookkeeping.
#pragma once

#include <memory>

#include "common/config.hpp"
#include "core/delivery_probability.hpp"
#include "protocol/forwarding_strategy.hpp"

namespace dftmsn {

class FtdStrategy final : public ForwardingStrategy {
 public:
  explicit FtdStrategy(const ProtocolConfig& cfg);

  [[nodiscard]] double local_metric() const override;

  [[nodiscard]] bool qualifies_as_receiver(
      const RtsInfo& rts, const FtdQueue& queue) const override;

  [[nodiscard]] std::vector<ScheduledReceiver> select_receivers(
      double message_ftd,
      const std::vector<Candidate>& candidates) const override;

  TransmissionOutcome on_transmission_complete(
      double message_ftd, const std::vector<ScheduledReceiver>& acked,
      SimTime now) override;

  void on_idle_timeout() override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  [[nodiscard]] const DeliveryProbability& xi() const { return xi_; }

 private:
  ProtocolConfig cfg_;
  DeliveryProbability xi_;
  SimTime last_metric_update_ = -1e18;  ///< rate-limit for Eq. (1) updates
};

}  // namespace dftmsn
