#include "protocol/crosslayer_mac.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/cts_window_optimizer.hpp"
#include "core/listen_window_optimizer.hpp"
#include "snapshot/state_codec.hpp"
#include "telemetry/probes.hpp"

namespace dftmsn {

const char* mac_state_name(MacState s) {
  switch (s) {
    case MacState::kIdle: return "IDLE";
    case MacState::kSleeping: return "SLEEPING";
    case MacState::kListening: return "LISTENING";
    case MacState::kTxPreamble: return "TX_PREAMBLE";
    case MacState::kTxRts: return "TX_RTS";
    case MacState::kCollectCts: return "COLLECT_CTS";
    case MacState::kTxSchedule: return "TX_SCHEDULE";
    case MacState::kTxData: return "TX_DATA";
    case MacState::kWaitAcks: return "WAIT_ACKS";
    case MacState::kRxAwaitRts: return "RX_AWAIT_RTS";
    case MacState::kRxAwaitSchedule: return "RX_AWAIT_SCHEDULE";
    case MacState::kRxAwaitData: return "RX_AWAIT_DATA";
    case MacState::kDead: return "DEAD";
  }
  return "?";
}

namespace {
// Minimum seconds between two evaluations of the contention optimizers;
// the analytic models are polynomial in the neighbour count and need not
// run every cycle.
constexpr double kContentionUpdatePeriod = 10.0;
// The Eq. (10) cell model is evaluated over at most this many contenders;
// beyond that the collision probability is dominated by the closest
// competitors anyway and the O(m^2) cost stops paying for itself.
constexpr std::size_t kMaxContendersModeled = 8;
}  // namespace

CrossLayerMac::CrossLayerMac(NodeId id, Simulator& sim, Channel& channel,
                             Radio& radio, FtdQueue& queue,
                             std::unique_ptr<ForwardingStrategy> strategy,
                             const Config& config, const MacOptions& options,
                             NodeId first_sink_id, Metrics& metrics,
                             RandomStream rng)
    : id_(id),
      sim_(sim),
      channel_(channel),
      radio_(radio),
      queue_(queue),
      strategy_(std::move(strategy)),
      cfg_(config),
      options_(options),
      first_sink_id_(first_sink_id),
      metrics_(metrics),
      rng_(rng),
      timing_(config.radio),
      sleep_ctl_(config.sleep,
                 // SleepController only reads the model once to derive
                 // T_min; a temporary suffices.
                 EnergyModel{config.power}, config.radio.switch_time_s),
      neighbors_(options.neighbor_ttl_s),
      tau_max_(config.contention.tau_max_slots),
      cts_window_(config.contention.cts_window_slots) {}

void CrossLayerMac::set_telemetry(telemetry::Registry* registry,
                                  telemetry::Profiler* profiler) {
  profiler_ = profiler;
  if (registry == nullptr) {
    h_queue_occ_ = h_xi_tx_ = h_ftd_tx_ = h_tau_ = h_sleep_ = nullptr;
    c_rts_tx_ = c_cts_tx_ = c_schedule_tx_ = c_ack_rx_ = c_rts_coll_ =
        c_cts_coll_ = nullptr;
    return;
  }
  // ξ and FTD live in [0, 1]; the exact value 1.0 lands in the overflow
  // bin (documented in docs/observability.md).
  h_queue_occ_ = registry->histogram("queue.occupancy", 0.0, 64.0, 64);
  h_xi_tx_ = registry->histogram("protocol.xi_at_tx", 0.0, 1.0, 20);
  h_ftd_tx_ = registry->histogram("protocol.ftd_at_tx", 0.0, 1.0, 20);
  h_tau_ = registry->histogram("mac.tau_slots", 0.0, 64.0, 64);
  h_sleep_ = registry->histogram("mac.sleep_interval_s", 0.0, 300.0, 60);
  c_rts_tx_ = registry->counter("mac.rts_tx");
  c_cts_tx_ = registry->counter("mac.cts_tx");
  c_schedule_tx_ = registry->counter("mac.schedule_tx");
  c_ack_rx_ = registry->counter("mac.ack_rx");
  c_rts_coll_ = registry->counter("mac.rts_collisions");
  c_cts_coll_ = registry->counter("mac.cts_collisions");
}

Frame CrossLayerMac::make_control(FramePayload payload) const {
  return Frame{id_, cfg_.radio.control_bits, std::move(payload)};
}

bool CrossLayerMac::can_transmit() const {
  return radio_.state() == RadioState::kIdle && !channel_.busy(id_);
}

SimTime CrossLayerMac::force_transmit(Frame frame) {
  if (radio_.state() == RadioState::kRx) {
    // Abandon the overlapping reception: we are committed to transmitting.
    channel_.forget(id_);
  }
  if (radio_.state() != RadioState::kIdle) return 0.0;
  return channel_.transmit(id_, std::move(frame));
}

void CrossLayerMac::start() {
  // Desynchronize node start-up to avoid a thundering herd at t=0.
  schedule_next_cycle(rng_.uniform(0.0, 1.0));
  xi_timer_ = sim_.schedule_in(cfg_.protocol.xi_timeout_s,
                               [this] { xi_decay_tick(); });
}

void CrossLayerMac::enqueue(Message m) {
  const auto dropped =
      queue_.insert(QueuedMessage{m, 0.0, sim_.now()}, rng_.uniform01());
  if (dropped) {
    metrics_.on_dropped(dropped->msg, dropped->reason);
    DFTMSN_PROBE_TRACE(trace_, TraceEventType::kDrop, sim_.now(), id_,
                       kInvalidNode, dropped->msg.id,
                       static_cast<double>(dropped->reason));
  }
  DFTMSN_PROBE_HIST(h_queue_occ_, static_cast<double>(queue_.size()));
}

void CrossLayerMac::crash(bool wipe_queue) {
  if (state_ == MacState::kDead) return;
  timer_.cancel();
  aux_timer_.cancel();
  xi_timer_.cancel();
  state_ = MacState::kDead;
  radio_.force_down();
  channel_.set_node_failed(id_, true);
  channel_.forget(id_);
  if (wipe_queue) {
    for (const auto& lost : queue_.wipe()) {
      metrics_.on_dropped(lost.msg, lost.reason);
      DFTMSN_PROBE_TRACE(trace_, TraceEventType::kDrop, sim_.now(), id_,
                         kInvalidNode, lost.msg.id,
                         static_cast<double>(lost.reason));
    }
  }
}

void CrossLayerMac::recover() {
  if (state_ != MacState::kDead) return;
  channel_.set_node_failed(id_, false);
  radio_.force_up();
  state_ = MacState::kIdle;
  recent_activity_.clear();
  consecutive_failures_ = 0;
  schedule_next_cycle(rng_.uniform(0.0, 1.0));
  xi_timer_ = sim_.schedule_in(cfg_.protocol.xi_timeout_s,
                               [this] { xi_decay_tick(); });
}

void CrossLayerMac::xi_decay_tick() {
  // Eq. (1), timeout branch — applied on a fixed Δ cadence rather than
  // only after transmission-free intervals. Without the unconditional
  // anchor, nodes that relay continuously among themselves never decay
  // and their ξ inflates in closed loops far from any sink (DESIGN.md).
  strategy_->on_idle_timeout();
  xi_timer_ = sim_.schedule_in(cfg_.protocol.xi_timeout_s,
                               [this] { xi_decay_tick(); });
}

// --------------------------------------------------------------------
// Sender side
// --------------------------------------------------------------------

void CrossLayerMac::schedule_next_cycle(SimTime delay) {
  timer_.cancel();
  timer_ = sim_.schedule_in(delay, [this] { begin_cycle(); });
}

void CrossLayerMac::begin_cycle() {
  if (state_ != MacState::kIdle) return;

  // Someone is on the air (possibly mid-frame toward us): stay quiet.
  if (!can_transmit()) {
    schedule_next_cycle(2.0 * timing_.slot_s);
    return;
  }

  if (queue_.empty()) {
    // Nothing to send: this still counts as an (inactive) working cycle
    // so that an idle node eventually satisfies the sleep condition.
    finish_cycle(false);
    return;
  }

  if (!channel_.anyone_in_range(id_)) {
    // Lone-sender fast path: nobody can hear the preamble/RTS, so skip
    // the frame exchange but account for it — the attempt still counts
    // as a failed working cycle and its TX energy is booked analytically.
    ++mac_stats_.cycles;
    metrics_.on_attempt();
    radio_.charge_extra(
        RadioState::kTx,
        2.0 * timing_.slot_s * (cfg_.power.tx_w - cfg_.power.idle_w));
    fail_cycle();
    return;
  }

  ++mac_stats_.cycles;
  metrics_.on_attempt();
  state_ = MacState::kListening;
  const int sigma =
      ListenWindowOptimizer::sigma(strategy_->local_metric(), tau_max_);
  const int tau = rng_.uniform_int(1, sigma);
  DFTMSN_PROBE_HIST(h_tau_, static_cast<double>(tau));
  timer_ = sim_.schedule_in(tau * timing_.slot_s, [this] { on_listen_done(); });
}

void CrossLayerMac::on_listen_done() {
  if (state_ != MacState::kListening) return;
  if (!can_transmit()) {
    // The channel was grabbed before our listen window ran out.
    state_ = MacState::kRxAwaitRts;
    timer_ = sim_.schedule_in(timing_.data_s + timing_.guard_s,
                              [this] { resume_idle(); });
    return;
  }

  // Commit to transmitting one turnaround slot from now. From this point
  // the node is deaf: a contender whose listen window ends in the same
  // slot also commits, and the two preambles collide (the Sec. 4.2
  // scenario the τ_max optimizer exists for).
  state_ = MacState::kTxPreamble;
  timer_ = sim_.schedule_in(timing_.slot_s, [this] {
    if (state_ != MacState::kTxPreamble) return;
    if (queue_.empty()) {  // drained while committing (unlikely)
      fail_cycle();
      return;
    }
    const QueuedMessage& head = queue_.head();
    inflight_msg_ = head.msg;
    inflight_ftd_ = head.ftd;
    const SimTime dur = force_transmit(make_control(PreambleFrame{}));
    if (dur == 0.0) {
      fail_cycle();
      return;
    }
    timer_ = sim_.schedule_in(dur, [this] { on_preamble_done(); });
  });
}

void CrossLayerMac::on_preamble_done() {
  if (state_ != MacState::kTxPreamble) return;
  state_ = MacState::kTxRts;
  const double xi = strategy_->local_metric();
  const SimTime dur = force_transmit(make_control(
      RtsFrame{xi, inflight_ftd_, cts_window_, inflight_msg_.id}));
  if (dur == 0.0) {
    fail_cycle();
    return;
  }
  DFTMSN_PROBE_HIST(h_xi_tx_, xi);
  DFTMSN_PROBE_HIST(h_ftd_tx_, inflight_ftd_);
  DFTMSN_PROBE_COUNT(c_rts_tx_);
  DFTMSN_PROBE_TRACE(trace_, TraceEventType::kRtsTx, sim_.now(), id_,
                     kInvalidNode, inflight_msg_.id, inflight_ftd_);
  timer_ = sim_.schedule_in(dur, [this] { on_rts_done(); });
}

void CrossLayerMac::on_rts_done() {
  if (state_ != MacState::kTxRts) return;
  state_ = MacState::kCollectCts;
  cts_candidates_.clear();
  timer_ = sim_.schedule_in(timing_.cts_window(cts_window_),
                            [this] { on_cts_window_end(); });
}

void CrossLayerMac::on_cts_window_end() {
  if (state_ != MacState::kCollectCts) return;
  scheduled_ = strategy_->select_receivers(inflight_ftd_, cts_candidates_);
  if (scheduled_.empty()) {
    fail_cycle();
    return;
  }

  ScheduleFrame sched;
  sched.entries.reserve(scheduled_.size());
  for (const ScheduledReceiver& r : scheduled_)
    sched.entries.push_back(ScheduleEntry{r.id, r.ftd_for_copy});
  sched.nav_duration =
      timing_.data_s +
      (static_cast<double>(scheduled_.size()) + 1.0) * timing_.slot_s;

  state_ = MacState::kTxSchedule;
  const SimTime dur = force_transmit(make_control(std::move(sched)));
  if (dur == 0.0) {
    fail_cycle();
    return;
  }
  DFTMSN_PROBE_COUNT(c_schedule_tx_);
  DFTMSN_PROBE_TRACE(trace_, TraceEventType::kScheduleTx, sim_.now(), id_,
                     kInvalidNode, inflight_msg_.id,
                     static_cast<double>(scheduled_.size()));
  timer_ = sim_.schedule_in(dur, [this] { on_schedule_done(); });
}

void CrossLayerMac::on_schedule_done() {
  if (state_ != MacState::kTxSchedule) return;
  state_ = MacState::kTxData;
  const SimTime dur = force_transmit(
      Frame{id_, inflight_msg_.bits, DataFrame{inflight_msg_}});
  if (dur == 0.0) {
    fail_cycle();
    return;
  }
  timer_ = sim_.schedule_in(dur, [this] { on_data_done(); });
}

void CrossLayerMac::on_data_done() {
  if (state_ != MacState::kTxData) return;
  state_ = MacState::kWaitAcks;
  acked_.clear();
  timer_ =
      sim_.schedule_in(timing_.ack_window(static_cast<int>(scheduled_.size())),
                       [this] { on_ack_window_end(); });
}

void CrossLayerMac::on_ack_window_end() {
  if (state_ != MacState::kWaitAcks) return;

  std::vector<ScheduledReceiver> acked;
  for (const ScheduledReceiver& r : scheduled_) {
    if (acked_.contains(r.id)) acked.push_back(r);
  }
  if (acked.empty()) {
    // Lost DATA or all ACKs collided: the copy stays untouched (Sec. 3.2.2
    // removes unacknowledged receivers from Φ; with Φ empty nothing moved).
    fail_cycle();
    return;
  }

  const TransmissionOutcome outcome =
      strategy_->on_transmission_complete(inflight_ftd_, acked, sim_.now());
  metrics_.on_data_tx(acked.size());
  ++mac_stats_.data_tx_ok;
  last_data_tx_ = sim_.now();
  DFTMSN_PROBE_TRACE(trace_, TraceEventType::kDataTx, sim_.now(), id_,
                     kInvalidNode, inflight_msg_.id,
                     static_cast<double>(acked.size()));

  if (outcome.disposition == TransmissionOutcome::Disposition::kRemove) {
    queue_.remove(inflight_msg_.id);
  } else {
    const auto dropped = queue_.update_ftd(inflight_msg_.id, outcome.new_ftd,
                                           cfg_.protocol.ftd_drop_threshold);
    if (dropped) {
      metrics_.on_dropped(dropped->msg, dropped->reason);
      DFTMSN_PROBE_TRACE(trace_, TraceEventType::kDrop, sim_.now(), id_,
                         kInvalidNode, dropped->msg.id,
                         static_cast<double>(dropped->reason));
    }
  }
  finish_cycle(true);
}

void CrossLayerMac::fail_cycle() {
  metrics_.on_attempt_failed();
  finish_cycle(false);
}

void CrossLayerMac::finish_cycle(bool transmitted) {
  state_ = MacState::kIdle;
  timer_.cancel();
  aux_timer_.cancel();

  sleep_ctl_.record_cycle(transmitted);
  note_activity(transmitted);
  consecutive_failures_ = transmitted ? 0 : consecutive_failures_ + 1;
  maybe_recompute_contention();

  if (should_sleep()) {
    go_to_sleep();
    return;
  }
  if (queue_.empty()) {
    schedule_next_cycle(options_.idle_poll_s);
  } else if (transmitted) {
    schedule_next_cycle(2.0 * timing_.slot_s);
  } else if (!channel_.anyone_in_range(id_)) {
    schedule_next_cycle(cfg_.protocol.lone_retry_s);
  } else {
    schedule_next_cycle(backoff_delay());
  }
}

SimTime CrossLayerMac::backoff_delay() {
  // Deterministic slot-granular gap (Sec. 3.2.1 restarts the asynchronous
  // phase right away). Keeping the gap jitter-free is essential: colliding
  // contenders must re-contend synchronously so that the σ = ξ·τ_max draw
  // — the paper's collision-avoidance mechanism — decides the outcome.
  const int gap = std::min(
      cfg_.protocol.retry_gap_slots * (1 + consecutive_failures_ / 3),
      cfg_.protocol.max_retry_gap_slots);
  return gap * timing_.slot_s;
}

void CrossLayerMac::note_activity(bool active) {
  recent_activity_.push_back(active);
  while (recent_activity_.size() >
         static_cast<std::size_t>(cfg_.protocol.idle_cycles_before_sleep))
    recent_activity_.pop_front();
}

bool CrossLayerMac::should_sleep() const {
  if (!options_.sleeping_enabled) return false;
  if (recent_activity_.size() <
      static_cast<std::size_t>(cfg_.protocol.idle_cycles_before_sleep))
    return false;
  return std::none_of(recent_activity_.begin(), recent_activity_.end(),
                      [](bool b) { return b; });
}

SimTime CrossLayerMac::sleep_period() {
  if (!options_.adaptive_sleep) return options_.fixed_sleep_s;
  return sleep_ctl_.sleep_period(
      queue_.count_more_important_than(cfg_.sleep.important_ftd),
      queue_.capacity());
}

void CrossLayerMac::go_to_sleep() {
  ++mac_stats_.sleeps;
  state_ = MacState::kSleeping;
  const SimTime period =
      std::max(sleep_period(), 2.0 * cfg_.radio.switch_time_s);
  DFTMSN_PROBE_HIST(h_sleep_, period);
  DFTMSN_PROBE_TRACE(trace_, TraceEventType::kSleep, sim_.now(), id_,
                     kInvalidNode, 0, period);
  channel_.forget(id_);
  radio_.sleep();
  timer_ = sim_.schedule_in(period, [this] { wake_up(); });
}

void CrossLayerMac::wake_up() {
  if (state_ != MacState::kSleeping) return;
  radio_.wake([this] {
    DFTMSN_PROBE_TRACE(trace_, TraceEventType::kWake, sim_.now(), id_,
                       kInvalidNode, 0, 0.0);
    state_ = MacState::kIdle;
    // Fresh L-cycle budget: the node genuinely "goes through the two
    // phases" after waking (Sec. 3.2). Without this, the first failed
    // post-wake attempt immediately re-satisfies the sleep condition and
    // the duty cycle collapses to a single 50 ms attempt per period.
    recent_activity_.clear();
    begin_cycle();
  });
}

void CrossLayerMac::maybe_recompute_contention() {
  if (!options_.adaptive_contention) return;
  const SimTime now = sim_.now();
  if (now - last_contention_update_ < kContentionUpdatePeriod) return;
  last_contention_update_ = now;

  // τ_max (Eq. 13): contenders = live neighbours + self, capped for cost.
  std::vector<double> xis = neighbors_.live_metrics(now);
  if (xis.size() > kMaxContendersModeled) xis.resize(kMaxContendersModeled);
  xis.push_back(strategy_->local_metric());
  tau_max_ = ListenWindowOptimizer::min_tau_max(
      xis, cfg_.contention.rts_collision_target,
      cfg_.contention.tau_cap_slots);

  // W (Eq. 14): expected repliers = neighbours that would qualify.
  const int repliers = std::max<std::size_t>(
      1, neighbors_.count_better_than(strategy_->local_metric(), now));
  cts_window_ = CtsWindowOptimizer::min_window(
      repliers, cfg_.contention.cts_collision_target,
      cfg_.contention.cts_window_cap);
}

// --------------------------------------------------------------------
// Receiver side
// --------------------------------------------------------------------

void CrossLayerMac::resume_idle(double extra_delay_slots) {
  state_ = MacState::kIdle;
  timer_.cancel();
  aux_timer_.cancel();
  schedule_next_cycle((extra_delay_slots + rng_.uniform(0.0, 2.0)) *
                      timing_.slot_s);
}

void CrossLayerMac::on_channel_busy() {
  if (state_ == MacState::kListening) {
    // Sec. 3.2.1: activity during the listen period aborts the attempt;
    // the node turns receiver for whatever is coming.
    timer_.cancel();
    state_ = MacState::kRxAwaitRts;
    timer_ = sim_.schedule_in(timing_.data_s + 3.0 * timing_.slot_s,
                              [this] { resume_idle(); });
  }
}

void CrossLayerMac::on_channel_idle() {}

void CrossLayerMac::on_collision() {
  ++mac_stats_.rx_collisions;
  if (state_ == MacState::kRxAwaitRts) {
    DFTMSN_PROBE_COUNT(c_rts_coll_);
    DFTMSN_PROBE_TRACE(trace_, TraceEventType::kRtsCollision, sim_.now(), id_,
                       kInvalidNode, 0, 0.0);
    // The expected preamble/RTS was garbled; give the air a moment.
    resume_idle(2.0);
    return;
  }
  if (state_ == MacState::kCollectCts) {
    // A contention slot garbled at us: that CTS (and its sender) is lost.
    DFTMSN_PROBE_COUNT(c_cts_coll_);
    DFTMSN_PROBE_TRACE(trace_, TraceEventType::kCtsCollision, sim_.now(), id_,
                       kInvalidNode, inflight_msg_.id, 0.0);
  }
  // In kCollectCts / kWaitAcks a collision simply loses that reply; in
  // kRxAwaitSchedule / kRxAwaitData the timeout recovers.
}

void CrossLayerMac::on_frame_received(const Frame& frame) {
  telemetry::ScopedTimer timer(profiler_,
                               telemetry::Subsystem::kMacHandshake);
  if (frame.is<PreambleFrame>()) {
    if (state_ == MacState::kIdle || state_ == MacState::kRxAwaitRts) {
      timer_.cancel();
      state_ = MacState::kRxAwaitRts;
      timer_ = sim_.schedule_in(3.0 * timing_.slot_s + timing_.guard_s,
                                [this] { resume_idle(); });
    }
    return;
  }
  if (frame.is<RtsFrame>()) {
    handle_rts(frame);
    return;
  }
  if (frame.is<CtsFrame>()) {
    handle_cts(frame);
    return;
  }
  if (frame.is<ScheduleFrame>()) {
    handle_schedule(frame);
    return;
  }
  if (frame.is<DataFrame>()) {
    handle_data(frame);
    // Overhearing someone else's DATA while waiting for an RTS that is
    // clearly not coming: free the receiver state promptly.
    if (state_ == MacState::kRxAwaitRts) resume_idle(1.0);
    return;
  }
  if (frame.is<AckFrame>()) {
    handle_ack(frame);
    if (state_ == MacState::kRxAwaitRts) resume_idle(1.0);
    return;
  }
}

void CrossLayerMac::handle_rts(const Frame& frame) {
  const auto& rts = frame.as<RtsFrame>();
  neighbors_.observe(frame.sender, rts.sender_metric, sim_.now());

  if (state_ != MacState::kRxAwaitRts && state_ != MacState::kIdle) return;
  timer_.cancel();

  const RtsInfo info{frame.sender, rts.sender_metric, rts.message_ftd,
                     rts.message_id};
  const int w = std::max(1, rts.contention_window);

  if (!strategy_->qualifies_as_receiver(info, queue_)) {
    // Not a candidate: sit out the CTS window. If a SCHEDULE follows we
    // will overhear it from kIdle and extend the deferral by its NAV; if
    // the sender found no receivers the channel frees up right away.
    state_ = MacState::kIdle;
    schedule_next_cycle((w + 3.0) * timing_.slot_s);
    return;
  }

  current_rts_ = info;
  state_ = MacState::kRxAwaitSchedule;

  // CTS in a uniformly random slot of the contention window (Sec. 4.3).
  const int slot = rng_.uniform_int(1, w);
  aux_timer_ = sim_.schedule_in((slot - 1) * timing_.slot_s,
                                [this] { send_cts(); });
  // Give the sender the whole window plus room for SCHEDULE.
  timer_ = sim_.schedule_in((w + 4.0) * timing_.slot_s + timing_.guard_s,
                            [this] { resume_idle(); });
}

void CrossLayerMac::send_cts() {
  if (state_ != MacState::kRxAwaitSchedule) return;
  // Committed at the slot boundary: two receivers that drew the same slot
  // both transmit and their CTSs collide at the sender (Eq. 14).
  ++mac_stats_.cts_sent;
  const SimTime dur = force_transmit(
      make_control(CtsFrame{current_rts_.sender, strategy_->local_metric(),
                            queue_.available_space_for(
                                current_rts_.message_ftd)}));
  if (dur > 0.0) {
    DFTMSN_PROBE_COUNT(c_cts_tx_);
    DFTMSN_PROBE_TRACE(trace_, TraceEventType::kCtsTx, sim_.now(), id_,
                       current_rts_.sender, current_rts_.message_id, 0.0);
  }
}

void CrossLayerMac::handle_cts(const Frame& frame) {
  const auto& cts = frame.as<CtsFrame>();
  neighbors_.observe(frame.sender, cts.receiver_metric, sim_.now());

  if (state_ == MacState::kCollectCts && cts.rts_sender == id_) {
    cts_candidates_.push_back(Candidate{frame.sender, cts.receiver_metric,
                                        cts.buffer_space,
                                        is_sink_id(frame.sender)});
    return;
  }
  // Overheard CTS for someone else: NAV — defer our own attempts past the
  // upcoming data exchange.
  if (state_ == MacState::kIdle) {
    schedule_next_cycle(timing_.data_s + 6.0 * timing_.slot_s);
  }
}

void CrossLayerMac::handle_schedule(const Frame& frame) {
  const auto& sched = frame.as<ScheduleFrame>();

  if (state_ == MacState::kRxAwaitSchedule &&
      frame.sender == current_rts_.sender) {
    timer_.cancel();
    aux_timer_.cancel();
    for (std::size_t k = 0; k < sched.entries.size(); ++k) {
      if (sched.entries[k].receiver == id_) {
        my_sched_ftd_ = sched.entries[k].ftd;
        my_ack_slot_ = static_cast<int>(k) + 1;
        state_ = MacState::kRxAwaitData;
        timer_ = sim_.schedule_in(timing_.data_s + 2.0 * timing_.slot_s,
                                  [this] { resume_idle(); });
        return;
      }
    }
    // Qualified but not chosen: honour the NAV.
    state_ = MacState::kIdle;
    schedule_next_cycle(sched.nav_duration);
    return;
  }

  // Overheard someone else's SCHEDULE: NAV.
  if (state_ == MacState::kIdle || state_ == MacState::kRxAwaitRts) {
    state_ = MacState::kIdle;
    schedule_next_cycle(sched.nav_duration);
  }
}

void CrossLayerMac::handle_data(const Frame& frame) {
  if (state_ != MacState::kRxAwaitData ||
      frame.sender != current_rts_.sender)
    return;
  timer_.cancel();

  const auto& data = frame.as<DataFrame>();
  Message copy = data.message;
  copy.hops += 1;
  const auto dropped =
      queue_.insert(QueuedMessage{copy, strategy_->receive_ftd(my_sched_ftd_),
                                  sim_.now()},
                    rng_.uniform01());
  if (dropped) {
    metrics_.on_dropped(dropped->msg, dropped->reason);
    DFTMSN_PROBE_TRACE(trace_, TraceEventType::kDrop, sim_.now(), id_,
                       kInvalidNode, dropped->msg.id,
                       static_cast<double>(dropped->reason));
  }
  DFTMSN_PROBE_HIST(h_queue_occ_, static_cast<double>(queue_.size()));
  DFTMSN_PROBE_TRACE(trace_, TraceEventType::kDataRx, sim_.now(), id_,
                     frame.sender, copy.id, 0.0);

  ++mac_stats_.data_received;
  note_activity(true);  // served as a receiver (Sec. 3.2 sleep rule)

  // ACK in our assigned slot (k·t_ack after the data, Sec. 3.2.2).
  inflight_msg_ = copy;  // remembered for the ACK's message id
  aux_timer_ = sim_.schedule_in((my_ack_slot_ - 1) * timing_.slot_s,
                                [this] { send_ack(); });
  timer_ = sim_.schedule_in((my_ack_slot_ + 1) * timing_.slot_s,
                            [this] { resume_idle(); });
}

void CrossLayerMac::send_ack() {
  if (state_ != MacState::kRxAwaitData) return;
  force_transmit(
      make_control(AckFrame{current_rts_.sender, inflight_msg_.id}));
}

void CrossLayerMac::handle_ack(const Frame& frame) {
  const auto& ack = frame.as<AckFrame>();
  if (state_ == MacState::kWaitAcks && ack.data_sender == id_ &&
      ack.message_id == inflight_msg_.id) {
    acked_.insert(frame.sender);
    DFTMSN_PROBE_COUNT(c_ack_rx_);
    DFTMSN_PROBE_TRACE(trace_, TraceEventType::kAckRx, sim_.now(), id_,
                       frame.sender, ack.message_id, 0.0);
  }
}

void CrossLayerMac::save_state(snapshot::Writer& w) const {
  w.begin_section("mac");
  w.u8(static_cast<std::uint8_t>(state_));
  w.boolean(timer_.pending());
  w.boolean(aux_timer_.pending());
  w.boolean(xi_timer_.pending());

  sleep_ctl_.save_state(w);
  neighbors_.save_state(w);
  w.i64(tau_max_);
  w.i64(cts_window_);
  w.f64(last_contention_update_);

  snapshot::save(w, inflight_msg_);
  w.f64(inflight_ftd_);
  w.size(cts_candidates_.size());
  for (const Candidate& c : cts_candidates_) {
    w.u32(c.id);
    w.f64(c.metric);
    w.size(c.buffer_space);
    w.boolean(c.is_sink);
  }
  w.size(scheduled_.size());
  for (const ScheduledReceiver& s : scheduled_) {
    w.u32(s.id);
    w.f64(s.metric);
    w.f64(s.ftd_for_copy);
    w.boolean(s.is_sink);
  }
  {
    std::vector<NodeId> acked(acked_.begin(), acked_.end());
    std::sort(acked.begin(), acked.end());
    w.size(acked.size());
    for (const NodeId id : acked) w.u32(id);
  }
  w.i64(consecutive_failures_);

  w.u32(current_rts_.sender);
  w.f64(current_rts_.sender_metric);
  w.f64(current_rts_.message_ftd);
  w.u64(current_rts_.message_id);
  w.f64(my_sched_ftd_);
  w.i64(my_ack_slot_);

  w.size(recent_activity_.size());
  for (const bool b : recent_activity_) w.boolean(b);
  w.f64(last_data_tx_);

  w.u64(mac_stats_.cycles);
  w.u64(mac_stats_.sleeps);
  w.u64(mac_stats_.cts_sent);
  w.u64(mac_stats_.data_received);
  w.u64(mac_stats_.rx_collisions);
  w.u64(mac_stats_.data_tx_ok);

  rng_.save_state(w);
  strategy_->save_state(w);
  queue_.save_state(w);
  w.end_section();
}

}  // namespace dftmsn
