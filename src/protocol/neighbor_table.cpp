#include "protocol/neighbor_table.hpp"

#include <stdexcept>

namespace dftmsn {

NeighborTable::NeighborTable(double ttl_s) : ttl_s_(ttl_s) {
  if (ttl_s <= 0) throw std::invalid_argument("NeighborTable: ttl <= 0");
}

void NeighborTable::observe(NodeId id, double metric, SimTime now) {
  entries_[id] = Entry{metric, now};
}

std::vector<double> NeighborTable::live_metrics(SimTime now) const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    if (live(e, now)) out.push_back(e.metric);
  }
  return out;
}

std::size_t NeighborTable::count_better_than(double metric,
                                             SimTime now) const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_) {
    if (live(e, now) && e.metric > metric) ++n;
  }
  return n;
}

std::size_t NeighborTable::live_count(SimTime now) const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_) {
    if (live(e, now)) ++n;
  }
  return n;
}

void NeighborTable::expire(SimTime now) {
  std::erase_if(entries_,
                [&](const auto& kv) { return !live(kv.second, now); });
}

}  // namespace dftmsn
