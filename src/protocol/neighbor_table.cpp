#include "protocol/neighbor_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace dftmsn {

NeighborTable::NeighborTable(double ttl_s) : ttl_s_(ttl_s) {
  if (ttl_s <= 0) throw std::invalid_argument("NeighborTable: ttl <= 0");
}

void NeighborTable::observe(NodeId id, double metric, SimTime now) {
  entries_[id] = Entry{metric, now};
}

std::vector<double> NeighborTable::live_metrics(SimTime now) const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    if (live(e, now)) out.push_back(e.metric);
  }
  return out;
}

std::size_t NeighborTable::count_better_than(double metric,
                                             SimTime now) const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_) {
    if (live(e, now) && e.metric > metric) ++n;
  }
  return n;
}

std::size_t NeighborTable::live_count(SimTime now) const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_) {
    if (live(e, now)) ++n;
  }
  return n;
}

void NeighborTable::expire(SimTime now) {
  std::erase_if(entries_,
                [&](const auto& kv) { return !live(kv.second, now); });
}

void NeighborTable::save_state(snapshot::Writer& w) const {
  w.begin_section("neighbor_table");
  w.f64(ttl_s_);
  std::vector<NodeId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, e] : entries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.size(ids.size());
  for (const NodeId id : ids) {
    const Entry& e = entries_.at(id);
    w.u32(id);
    w.f64(e.metric);
    w.f64(e.last_seen);
  }
  w.end_section();
}

void NeighborTable::load_state(snapshot::Reader& r) {
  r.begin_section("neighbor_table");
  ttl_s_ = r.f64();
  entries_.clear();
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = r.u32();
    const double metric = r.f64();
    const SimTime last_seen = r.f64();
    entries_[id] = Entry{metric, last_seen};
  }
  r.end_section();
}

}  // namespace dftmsn
