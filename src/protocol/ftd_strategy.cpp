#include "protocol/ftd_strategy.hpp"

#include <algorithm>

#include "core/ftd.hpp"

namespace dftmsn {

FtdStrategy::FtdStrategy(const ProtocolConfig& cfg)
    : cfg_(cfg), xi_(cfg.alpha) {}

double FtdStrategy::local_metric() const { return xi_.value(); }

bool FtdStrategy::qualifies_as_receiver(const RtsInfo& rts,
                                        const FtdQueue& queue) const {
  // Sec. 3.2.1: a qualified receiver has strictly higher delivery
  // probability and buffer room for a message at the advertised FTD.
  return xi_.value() > rts.sender_metric &&
         queue.available_space_for(rts.message_ftd) > 0;
}

std::vector<ScheduledReceiver> FtdStrategy::select_receivers(
    double message_ftd, const std::vector<Candidate>& candidates) const {
  const Selection sel = dftmsn::select_receivers(
      xi_.value(), message_ftd, cfg_.delivery_threshold_r, candidates);

  std::vector<double> phi_xis;
  phi_xis.reserve(sel.receivers.size());
  for (const Candidate& c : sel.receivers) phi_xis.push_back(c.metric);

  std::vector<ScheduledReceiver> out;
  out.reserve(sel.receivers.size());
  for (std::size_t j = 0; j < sel.receivers.size(); ++j) {
    const Candidate& c = sel.receivers[j];
    out.push_back(ScheduledReceiver{
        c.id, c.metric,
        receiver_copy_ftd(message_ftd, xi_.value(), phi_xis, j), c.is_sink});
  }
  return out;
}

TransmissionOutcome FtdStrategy::on_transmission_complete(
    double message_ftd, const std::vector<ScheduledReceiver>& acked,
    SimTime now) {
  if (acked.empty()) return {TransmissionOutcome::Disposition::kKeep,
                             message_ftd};

  // Eq. (3) over the receivers that actually acknowledged.
  std::vector<double> xis;
  xis.reserve(acked.size());
  double best_xi = 0.0;
  for (const ScheduledReceiver& r : acked) {
    const double xi = r.is_sink ? 1.0 : r.metric;
    xis.push_back(xi);
    best_xi = std::max(best_xi, xi);
  }
  const double new_ftd = sender_ftd_after_multicast(message_ftd, xis);

  // Eq. (1), transmission branch, using the best receiver. Rate-limited:
  // a burst of transmissions within one contact is a single delivery
  // opportunity, not n independent ones (DESIGN.md).
  if (now - last_metric_update_ >= cfg_.xi_update_cooldown_s) {
    xi_.on_transmission(best_xi);
    last_metric_update_ = now;
  }

  return {TransmissionOutcome::Disposition::kKeep, new_ftd};
}

void FtdStrategy::on_idle_timeout() { xi_.on_timeout(); }

void FtdStrategy::save_state(snapshot::Writer& w) const {
  w.begin_section("strategy");
  xi_.save_state(w);
  w.f64(last_metric_update_);
  w.end_section();
}

void FtdStrategy::load_state(snapshot::Reader& r) {
  r.begin_section("strategy");
  xi_.load_state(r);
  last_metric_update_ = r.f64();
  r.end_section();
}

}  // namespace dftmsn
