#include "protocol/mac_common.hpp"

namespace dftmsn {

const char* protocol_kind_name(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kOpt: return "OPT";
    case ProtocolKind::kNoOpt: return "NOOPT";
    case ProtocolKind::kNoSleep: return "NOSLEEP";
    case ProtocolKind::kZbr: return "ZBR";
    case ProtocolKind::kDirect: return "DIRECT";
    case ProtocolKind::kEpidemic: return "EPIDEMIC";
    case ProtocolKind::kSwim: return "SWIM";
  }
  return "?";
}

}  // namespace dftmsn
