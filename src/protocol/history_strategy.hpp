// ZBR: ZebraNet's history-based forwarding ([12], as described in Sec. 5).
// Each node tracks an EWMA of its past success at delivering data packets
// *directly* to a sink; when a sensor meets others, it replicates the
// packet to every neighbour with a higher success rate (history-restricted
// flooding — ZebraNet propagates copies, it does not do custody transfer).
// There is no FTD bookkeeping and no selective subset: this is the
// "inefficient transmission control" the paper contrasts OPT against.
//
// Nodes that have never met a sink all sit at history 0; the paper notes
// their transmissions "become random". We reproduce that by using a
// non-strict comparison (>=) so zero-history nodes still exchange packets
// (a random walk), matching the observed inefficiency.
#pragma once

#include "common/config.hpp"
#include "core/delivery_probability.hpp"
#include "protocol/forwarding_strategy.hpp"

namespace dftmsn {

class HistoryStrategy final : public ForwardingStrategy {
 public:
  explicit HistoryStrategy(const ProtocolConfig& cfg);

  [[nodiscard]] double local_metric() const override;

  [[nodiscard]] bool qualifies_as_receiver(
      const RtsInfo& rts, const FtdQueue& queue) const override;

  [[nodiscard]] std::vector<ScheduledReceiver> select_receivers(
      double message_ftd,
      const std::vector<Candidate>& candidates) const override;

  TransmissionOutcome on_transmission_complete(
      double message_ftd, const std::vector<ScheduledReceiver>& acked,
      SimTime now) override;

  void on_idle_timeout() override;

  /// Copies carry no FTD in ZBR; queue order degenerates to FIFO.
  [[nodiscard]] double receive_ftd(double) const override { return 0.0; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  ProtocolConfig cfg_;
  DeliveryProbability history_;  ///< EWMA of direct-sink delivery success
  SimTime last_metric_update_ = -1e18;  ///< same rate-limit as FtdStrategy
};

}  // namespace dftmsn
