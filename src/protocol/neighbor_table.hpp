// Soft-state table of recently overheard neighbours and their advertised
// metrics, built from RTS/CTS frames (Sec. 3.2.1). Feeds the τ_max and W
// optimizers of Sec. 4.2/4.3.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

class NeighborTable {
 public:
  /// Entries not refreshed within `ttl_s` are dropped on the next query.
  explicit NeighborTable(double ttl_s);

  /// Records/refreshes a neighbour sighting at time `now`.
  void observe(NodeId id, double metric, SimTime now);

  /// Metrics of all live entries as of `now` (unordered).
  [[nodiscard]] std::vector<double> live_metrics(SimTime now) const;

  /// Number of live entries whose metric exceeds `metric` — the expected
  /// count of qualified CTS repliers for the W optimizer.
  [[nodiscard]] std::size_t count_better_than(double metric,
                                              SimTime now) const;

  [[nodiscard]] std::size_t live_count(SimTime now) const;

  /// Drops expired entries (also done lazily by the queries).
  void expire(SimTime now);

  /// Snapshot: every entry, written in ascending id order so the byte
  /// stream is independent of hash-map iteration order.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct Entry {
    double metric;
    SimTime last_seen;
  };

  [[nodiscard]] bool live(const Entry& e, SimTime now) const {
    return now - e.last_seen <= ttl_s_;
  }

  double ttl_s_;
  std::unordered_map<NodeId, Entry> entries_;
};

}  // namespace dftmsn
