#include "protocol/direct_strategy.hpp"

#include <algorithm>

namespace dftmsn {

std::vector<ScheduledReceiver> DirectStrategy::select_receivers(
    double, const std::vector<Candidate>& candidates) const {
  // Hand the message to one sink (one suffices: it is delivered).
  const auto sink = std::find_if(candidates.begin(), candidates.end(),
                                 [](const Candidate& c) { return c.is_sink; });
  if (sink == candidates.end()) return {};
  return {ScheduledReceiver{sink->id, sink->metric, 1.0, true}};
}

TransmissionOutcome DirectStrategy::on_transmission_complete(
    double, const std::vector<ScheduledReceiver>& acked, SimTime) {
  const bool delivered = std::any_of(acked.begin(), acked.end(),
                                     [](const auto& r) { return r.is_sink; });
  return {delivered ? TransmissionOutcome::Disposition::kRemove
                    : TransmissionOutcome::Disposition::kKeep,
          0.0};
}

}  // namespace dftmsn
