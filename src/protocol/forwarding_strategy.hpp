// Strategy interface separating the *forwarding decision logic* from the
// two-phase MAC machinery. The paper's FTD multicast scheme (OPT/NOOPT/
// NOSLEEP), ZebraNet's history scheme (ZBR) and the classic baselines
// (DIRECT, EPIDEMIC) are all instances plugged into the same MAC.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/ftd_queue.hpp"
#include "core/receiver_selection.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

/// Decoded contents of a received RTS, as seen by a potential receiver.
struct RtsInfo {
  NodeId sender = kInvalidNode;
  double sender_metric = 0.0;
  double message_ftd = 0.0;
  MessageId message_id = 0;
};

/// One receiver chosen for the SCHEDULE frame.
struct ScheduledReceiver {
  NodeId id = kInvalidNode;
  double metric = 0.0;
  double ftd_for_copy = 0.0;  ///< Eq. (2) value carried in the SCHEDULE
  bool is_sink = false;
};

/// What to do with the sender's local copy once the ACKs are in.
struct TransmissionOutcome {
  enum class Disposition { kKeep, kRemove };
  Disposition disposition = Disposition::kKeep;
  double new_ftd = 0.0;  ///< meaningful when kKeep (checked against the drop threshold)
};

class ForwardingStrategy {
 public:
  virtual ~ForwardingStrategy() = default;

  /// Metric this node advertises in its RTS/CTS frames (ξ for the paper's
  /// scheme, the direct-sink history value for ZBR, ...). Always in [0,1].
  [[nodiscard]] virtual double local_metric() const = 0;

  /// Receiver side: should this node answer the RTS with a CTS?
  /// `queue` is the node's own data queue (for the buffer-space check).
  [[nodiscard]] virtual bool qualifies_as_receiver(
      const RtsInfo& rts, const FtdQueue& queue) const = 0;

  /// Sender side: choose the receiver set Φ (and per-copy FTDs) from the
  /// neighbours that answered CTS.
  [[nodiscard]] virtual std::vector<ScheduledReceiver> select_receivers(
      double message_ftd, const std::vector<Candidate>& candidates) const = 0;

  /// Sender side, after the ACK window: update the local metric and decide
  /// the fate of the local copy. `acked` holds only receivers whose ACK
  /// arrived; `now` is the simulation clock (metric updates are
  /// rate-limited per contact, see ProtocolConfig::xi_update_cooldown_s).
  virtual TransmissionOutcome on_transmission_complete(
      double message_ftd, const std::vector<ScheduledReceiver>& acked,
      SimTime now) = 0;

  /// Called when the Δ no-transmission timer expires (Eq. 1 decay, or the
  /// variant's equivalent).
  virtual void on_idle_timeout() = 0;

  /// FTD to attach to a copy received with `scheduled_ftd` in the SCHEDULE.
  [[nodiscard]] virtual double receive_ftd(double scheduled_ftd) const {
    return scheduled_ftd;
  }

  /// Snapshot of strategy-local state. Stateless strategies (DIRECT,
  /// EPIDEMIC, SWIM) keep the default empty section; stateful ones (the
  /// ξ gradient, ZBR history) override both.
  virtual void save_state(snapshot::Writer& w) const {
    w.begin_section("strategy");
    w.end_section();
  }
  virtual void load_state(snapshot::Reader& r) {
    r.begin_section("strategy");
    r.end_section();
  }
};

}  // namespace dftmsn
