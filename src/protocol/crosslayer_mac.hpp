// The two-phase cross-layer data delivery protocol (Sec. 3.2), as a
// per-sensor event-driven state machine:
//
//   asynchronous phase:  [listen τ_i] -> PREAMBLE -> RTS -> [CTS window W]
//   synchronous phase:   SCHEDULE -> DATA -> [slotted ACKs]
//
// plus the Sec. 4 optimizations: adaptive periodic sleeping (Eq. 6),
// adaptive listen window τ_max (Eq. 13) and adaptive CTS window W
// (Eq. 14). The forwarding decisions themselves are delegated to a
// ForwardingStrategy so the same MAC hosts OPT/NOOPT/NOSLEEP, ZBR and
// the DIRECT/EPIDEMIC baselines.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "core/ftd_queue.hpp"
#include "core/sleep_controller.hpp"
#include "net/frame.hpp"
#include "phy/channel.hpp"
#include "protocol/forwarding_strategy.hpp"
#include "protocol/mac_common.hpp"
#include "protocol/neighbor_table.hpp"
#include "sim/random.hpp"
#include "stats/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/registry.hpp"
#include "trace/trace.hpp"

namespace dftmsn {

enum class MacState {
  kIdle,            ///< awake, between cycles
  kSleeping,
  kListening,       ///< async phase: counting idle listen slots
  kTxPreamble,
  kTxRts,
  kCollectCts,      ///< waiting out the contention window
  kTxSchedule,
  kTxData,
  kWaitAcks,
  kRxAwaitRts,      ///< heard activity; expecting an RTS
  kRxAwaitSchedule, ///< answered (or about to answer) CTS
  kRxAwaitData,     ///< listed in a SCHEDULE; expecting the DATA
  kDead,            ///< crashed / radio outage (fault injection)
};

const char* mac_state_name(MacState s);

class CrossLayerMac final : public ChannelListener {
 public:
  /// Per-MAC diagnostic counters (global protocol metrics live in Metrics).
  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t sleeps = 0;
    std::uint64_t cts_sent = 0;
    std::uint64_t data_received = 0;
    std::uint64_t rx_collisions = 0;
    /// Acknowledged data transmissions — the only events that may *raise*
    /// the strategy metric ξ (the InvariantChecker keys off this).
    std::uint64_t data_tx_ok = 0;
  };

  /// Node ids >= `first_sink_id` are sinks. The MAC does not own the
  /// radio/queue/strategy lifetimes beyond the owning SensorNode's.
  CrossLayerMac(NodeId id, Simulator& sim, Channel& channel, Radio& radio,
                FtdQueue& queue, std::unique_ptr<ForwardingStrategy> strategy,
                const Config& config, const MacOptions& options,
                NodeId first_sink_id, Metrics& metrics, RandomStream rng);

  /// Kicks off the first working cycle and the ξ-decay timer. Call once.
  void start();

  // --- telemetry (pure observers; nullptr = disabled, the default) ----
  /// Resolves this MAC's instrument pointers from `registry` and installs
  /// `profiler` for the frame-handling hot path. Probing through the
  /// resolved pointers never touches the RNG or event queue, so enabling
  /// telemetry leaves the protocol trajectory bit-identical.
  void set_telemetry(telemetry::Registry* registry,
                     telemetry::Profiler* profiler);

  /// Installs a trace sink for per-event records (handshake, sleep/wake,
  /// data movement, drops). nullptr uninstalls.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Traffic entry point: a freshly sensed message enters the data queue.
  void enqueue(Message m);

  // --- fault injection -----------------------------------------------
  /// Kills the node: every timer dies, the radio is forced down, the
  /// channel marks the node failed, and — when `wipe_queue` (a real
  /// crash, not a radio outage) — the buffered copies are lost and
  /// reported as kNodeFailure drops. No-op if already dead. Peers are not
  /// notified: a mid-handshake death looks to them like silence, and
  /// their CTS/SCHEDULE/ACK timeouts recover.
  void crash(bool wipe_queue);

  /// Rejoins a dead node: radio back up, fresh working cycle and ξ-decay
  /// timer, activity history cleared (same as a post-sleep restart).
  /// No-op if not dead.
  void recover();

  [[nodiscard]] bool dead() const { return state_ == MacState::kDead; }

  // --- ChannelListener ----------------------------------------------
  void on_frame_received(const Frame& frame) override;
  void on_collision() override;
  void on_channel_busy() override;
  void on_channel_idle() override;

  // --- introspection (tests, benches) --------------------------------
  [[nodiscard]] MacState state() const { return state_; }
  [[nodiscard]] const ForwardingStrategy& strategy() const {
    return *strategy_;
  }
  [[nodiscard]] const FtdQueue& queue() const { return queue_; }
  [[nodiscard]] int tau_max() const { return tau_max_; }
  [[nodiscard]] int cts_window() const { return cts_window_; }
  [[nodiscard]] const NeighborTable& neighbors() const { return neighbors_; }
  [[nodiscard]] const Stats& stats() const { return mac_stats_; }
  [[nodiscard]] const SleepController& sleep_controller() const {
    return sleep_ctl_;
  }

  /// Snapshot of the full FSM: protocol state, timer-pending flags, cycle
  /// context, contention windows, stats and the rng. Save-only — the
  /// pending timer callbacks live in the event queue, so a checkpoint is
  /// restored by deterministic replay (see snapshot_io.hpp).
  void save_state(snapshot::Writer& w) const;

 private:
  // Sender-side cycle progression.
  void begin_cycle();
  void on_listen_done();
  void on_preamble_done();
  void on_rts_done();
  void on_cts_window_end();
  void on_schedule_done();
  void on_data_done();
  void on_ack_window_end();
  void fail_cycle();
  void finish_cycle(bool transmitted);

  // Receiver-side handlers.
  void handle_rts(const Frame& frame);
  void handle_cts(const Frame& frame);
  void handle_schedule(const Frame& frame);
  void handle_data(const Frame& frame);
  void handle_ack(const Frame& frame);
  void send_cts();
  void send_ack();
  void resume_idle(double extra_delay_slots = 1.0);

  // Housekeeping.
  void schedule_next_cycle(SimTime delay);
  void go_to_sleep();
  void wake_up();
  [[nodiscard]] bool should_sleep() const;
  [[nodiscard]] SimTime sleep_period();
  [[nodiscard]] SimTime backoff_delay();
  void note_activity(bool active);
  void maybe_recompute_contention();
  void xi_decay_tick();
  [[nodiscard]] bool can_transmit() const;

  /// Committed transmission: a node that has decided to send (end of its
  /// listen window, its CTS/ACK slot, or mid-sequence) transmits even if
  /// a frame started arriving within the last turnaround slot — that is
  /// precisely how same-slot contenders collide in the paper's model
  /// (Eqs. 10-12, 14). An in-progress reception is abandoned. Returns the
  /// airtime, or 0 if the radio cannot transmit at all (asleep/switching).
  SimTime force_transmit(Frame frame);
  [[nodiscard]] bool is_sink_id(NodeId n) const { return n >= first_sink_id_; }
  [[nodiscard]] Frame make_control(FramePayload payload) const;

  // --- wiring ---------------------------------------------------------
  NodeId id_;
  Simulator& sim_;
  Channel& channel_;
  Radio& radio_;
  FtdQueue& queue_;
  std::unique_ptr<ForwardingStrategy> strategy_;
  const Config& cfg_;
  MacOptions options_;
  NodeId first_sink_id_;
  Metrics& metrics_;
  RandomStream rng_;
  MacTiming timing_;

  // --- protocol state ---------------------------------------------------
  MacState state_ = MacState::kIdle;
  EventHandle timer_;      ///< primary FSM progression / timeout
  EventHandle aux_timer_;  ///< slotted CTS/ACK transmissions
  EventHandle xi_timer_;

  SleepController sleep_ctl_;
  NeighborTable neighbors_;
  int tau_max_;
  int cts_window_;
  SimTime last_contention_update_ = -1e18;

  // Sender-side cycle context.
  Message inflight_msg_;
  double inflight_ftd_ = 0.0;
  std::vector<Candidate> cts_candidates_;
  std::vector<ScheduledReceiver> scheduled_;
  std::unordered_set<NodeId> acked_;
  int consecutive_failures_ = 0;

  // Receiver-side context.
  RtsInfo current_rts_;
  double my_sched_ftd_ = 0.0;
  int my_ack_slot_ = 0;

  // Sleep bookkeeping (Sec. 3.2: idle for the past L transmissions).
  std::deque<bool> recent_activity_;
  SimTime last_data_tx_ = 0.0;

  Stats mac_stats_;

  // Telemetry probes (nullptr when disabled; see set_telemetry).
  telemetry::Profiler* profiler_ = nullptr;
  TraceSink* trace_ = nullptr;
  telemetry::Histogram* h_queue_occ_ = nullptr;
  telemetry::Histogram* h_xi_tx_ = nullptr;
  telemetry::Histogram* h_ftd_tx_ = nullptr;
  telemetry::Histogram* h_tau_ = nullptr;
  telemetry::Histogram* h_sleep_ = nullptr;
  telemetry::Counter* c_rts_tx_ = nullptr;
  telemetry::Counter* c_cts_tx_ = nullptr;
  telemetry::Counter* c_schedule_tx_ = nullptr;
  telemetry::Counter* c_ack_rx_ = nullptr;
  telemetry::Counter* c_rts_coll_ = nullptr;
  telemetry::Counter* c_cts_coll_ = nullptr;
};

}  // namespace dftmsn
