#include "protocol/spray_strategy.hpp"

#include <algorithm>

namespace dftmsn {

bool SprayStrategy::qualifies_as_receiver(const RtsInfo& rts,
                                          const FtdQueue& queue) const {
  // Only spray-phase copies are accepted (wait-phase copies move to
  // sinks only, and the sink answers RTS itself). A node never takes a
  // second copy of the same message.
  return rts.message_ftd < kCarrierFtd && !queue.contains(rts.message_id) &&
         queue.available_space_for(kCarrierFtd) > 0;
}

std::vector<ScheduledReceiver> SprayStrategy::select_receivers(
    double message_ftd, const std::vector<Candidate>& candidates) const {
  std::vector<ScheduledReceiver> out;
  // A sink always takes the message, whatever the phase.
  for (const Candidate& c : candidates) {
    if (c.is_sink) {
      out.push_back(ScheduledReceiver{c.id, c.metric, 1.0, true});
      return out;  // delivered; no further spraying needed this round
    }
  }
  if (message_ftd >= kCarrierFtd) return out;  // wait phase: sinks only

  // Spray phase: hand copies to every responder within the remaining
  // budget (each costs kSprayStep of budget).
  const int remaining = static_cast<int>(
      (kCarrierFtd - message_ftd) / kSprayStep + 1e-9) + 1;
  for (const Candidate& c : candidates) {
    if (static_cast<int>(out.size()) >= remaining) break;
    if (c.buffer_space == 0) continue;
    out.push_back(ScheduledReceiver{c.id, c.metric, kCarrierFtd, false});
  }
  return out;
}

TransmissionOutcome SprayStrategy::on_transmission_complete(
    double message_ftd, const std::vector<ScheduledReceiver>& acked,
    SimTime) {
  const bool to_sink = std::any_of(acked.begin(), acked.end(),
                                   [](const auto& r) { return r.is_sink; });
  if (to_sink) return {TransmissionOutcome::Disposition::kRemove, 0.0};
  if (acked.empty())
    return {TransmissionOutcome::Disposition::kKeep, message_ftd};
  // Budget spent: one step per copy that actually landed. The copy never
  // exceeds the wait-phase marker (and so never hits the drop threshold:
  // SWIM carriers keep their copy until a sink takes it).
  const double new_ftd = std::min(
      kCarrierFtd, message_ftd + kSprayStep * static_cast<double>(acked.size()));
  return {TransmissionOutcome::Disposition::kKeep, new_ftd};
}

}  // namespace dftmsn
