// Shared MAC parameters and the per-variant option block.
#pragma once

#include <string>

#include "common/config.hpp"

namespace dftmsn {

/// The four protocols the paper evaluates, plus three classic baselines
/// implemented as extensions (SWIM is the controlled-replication scheme
/// the paper declined to simulate; see SprayStrategy).
enum class ProtocolKind {
  kOpt,
  kNoOpt,
  kNoSleep,
  kZbr,
  kDirect,
  kEpidemic,
  kSwim,
};

const char* protocol_kind_name(ProtocolKind k);

/// Per-variant knobs applied on top of the common Config. The factory
/// (protocol_factory.hpp) fills these per ProtocolKind.
struct MacOptions {
  bool sleeping_enabled = true;     ///< false for NOSLEEP
  bool adaptive_sleep = true;       ///< Eq. (6) T_i; false = fixed period (NOOPT)
  double fixed_sleep_s = 5.0;        ///< NOOPT's constant sleeping period
  bool adaptive_contention = true;  ///< optimize τ_max (Eq. 13) and W (Eq. 14)
  double neighbor_ttl_s = 60.0;     ///< soft-state lifetime of table entries
  double idle_poll_s = 1.0;         ///< cycle cadence when the queue is empty
};

/// MAC-level timing derived from the radio config. All contention windows
/// are quantized to control-packet slots.
struct MacTiming {
  double slot_s;        ///< one control-packet airtime
  double data_s;        ///< one data-message airtime
  double guard_s;       ///< margin appended to every wait-for-reply window

  explicit MacTiming(const RadioConfig& radio)
      : slot_s(radio.control_tx_time()),
        data_s(radio.data_tx_time()),
        guard_s(0.5 * radio.control_tx_time()) {}

  /// Sender-side wait after the RTS: W slots of CTS opportunity + guard.
  [[nodiscard]] double cts_window(int w_slots) const {
    return w_slots * slot_s + guard_s;
  }
  /// Sender-side wait after the DATA: one ACK slot per receiver + guard.
  [[nodiscard]] double ack_window(int receivers) const {
    return receivers * slot_s + guard_s;
  }
};

}  // namespace dftmsn
