#include "protocol/history_strategy.hpp"

#include <algorithm>

namespace dftmsn {

HistoryStrategy::HistoryStrategy(const ProtocolConfig& cfg)
    : cfg_(cfg), history_(cfg.alpha) {}

double HistoryStrategy::local_metric() const { return history_.value(); }

bool HistoryStrategy::qualifies_as_receiver(const RtsInfo& rts,
                                            const FtdQueue& queue) const {
  // Non-strict so that the all-zero-history regime still forwards (random
  // walk; see the class comment). Duplicate copies are pointless with
  // single-copy handoff, hence the contains() check.
  return history_.value() >= rts.sender_metric &&
         !queue.contains(rts.message_id) && queue.available_space_for(0.0) > 0;
}

std::vector<ScheduledReceiver> HistoryStrategy::select_receivers(
    double, const std::vector<Candidate>& candidates) const {
  // Replicate to every qualified responder — no subset selection, no
  // redundancy control (contrast with the Sec. 3.2.2 greedy algorithm).
  std::vector<ScheduledReceiver> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    if (c.buffer_space == 0) continue;
    out.push_back(ScheduledReceiver{c.id, c.metric, 0.0, c.is_sink});
  }
  return out;
}

TransmissionOutcome HistoryStrategy::on_transmission_complete(
    double, const std::vector<ScheduledReceiver>& acked, SimTime now) {
  if (acked.empty()) return {TransmissionOutcome::Disposition::kKeep, 0.0};
  // ZebraNet history counts *direct* sink deliveries only. Rate-limited
  // the same way as FtdStrategy so a queue drained in one sink contact
  // counts as one success observation.
  const bool to_sink = std::any_of(acked.begin(), acked.end(),
                                   [](const auto& r) { return r.is_sink; });
  if (to_sink && now - last_metric_update_ >= cfg_.xi_update_cooldown_s) {
    history_.on_transmission(1.0);
    last_metric_update_ = now;
  }
  // Copies propagate; the local one is released only once a sink took it.
  return {to_sink ? TransmissionOutcome::Disposition::kRemove
                  : TransmissionOutcome::Disposition::kKeep,
          0.0};
}

void HistoryStrategy::on_idle_timeout() { history_.on_timeout(); }

void HistoryStrategy::save_state(snapshot::Writer& w) const {
  w.begin_section("strategy");
  history_.save_state(w);
  w.f64(last_metric_update_);
  w.end_section();
}

void HistoryStrategy::load_state(snapshot::Reader& r) {
  r.begin_section("strategy");
  history_.load_state(r);
  last_metric_update_ = r.f64();
  r.end_section();
}

}  // namespace dftmsn
