#include "traffic/poisson_source.hpp"

#include <stdexcept>
#include <utility>

namespace dftmsn {

PoissonSource::PoissonSource(Simulator& sim, MessageIdAllocator& ids,
                             NodeId source, double mean_interval_s,
                             std::size_t bits, RandomStream rng, Sink sink)
    : sim_(sim),
      ids_(ids),
      source_(source),
      mean_interval_s_(mean_interval_s),
      bits_(bits),
      rng_(rng),
      sink_(std::move(sink)) {
  if (mean_interval_s <= 0)
    throw std::invalid_argument("PoissonSource: mean interval <= 0");
  if (!sink_) throw std::invalid_argument("PoissonSource: null sink");
}

void PoissonSource::start() {
  pending_ = sim_.schedule_in(rng_.exponential(mean_interval_s_),
                              [this] { fire(); });
}

void PoissonSource::stop() {
  stopped_ = true;
  pending_.cancel();
}

void PoissonSource::resume() {
  if (!stopped_) return;
  stopped_ = false;
  pending_ = sim_.schedule_in(rng_.exponential(mean_interval_s_),
                              [this] { fire(); });
}

void PoissonSource::fire() {
  if (stopped_) return;
  Message m;
  m.id = ids_.next();
  m.source = source_;
  m.created = sim_.now();
  m.bits = bits_;
  ++generated_;
  sink_(m);
  pending_ = sim_.schedule_in(rng_.exponential(mean_interval_s_),
                              [this] { fire(); });
}

void PoissonSource::save_state(snapshot::Writer& w) const {
  w.begin_section("poisson_source");
  w.u64(static_cast<std::uint64_t>(generated_));
  w.boolean(stopped_);
  w.boolean(pending_.pending());
  rng_.save_state(w);
  w.end_section();
}

}  // namespace dftmsn
