// Poisson data generation (Sec. 5: mean inter-arrival 120 s per sensor).
// Each firing hands a fresh Message to the owning node's callback.
#pragma once

#include <cstddef>
#include <functional>

#include "net/message.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

/// Process-wide message-id allocator for one simulation run.
class MessageIdAllocator {
 public:
  MessageId next() { return next_++; }

  void save_state(snapshot::Writer& w) const {
    w.begin_section("message_ids");
    w.u64(next_);
    w.end_section();
  }
  void load_state(snapshot::Reader& r) {
    r.begin_section("message_ids");
    next_ = r.u64();
    r.end_section();
  }

 private:
  MessageId next_ = 1;
};

class PoissonSource {
 public:
  using Sink = std::function<void(Message)>;

  /// Generates `bits`-sized messages from `source` with exponential
  /// inter-arrival of the given mean, delivering each to `sink`.
  PoissonSource(Simulator& sim, MessageIdAllocator& ids, NodeId source,
                double mean_interval_s, std::size_t bits, RandomStream rng,
                Sink sink);

  /// Schedules the first arrival. Call once.
  void start();

  /// Stops future arrivals.
  void stop();

  /// Restarts a stopped source with a fresh exponential draw (node
  /// recovery after a crash). No-op if the source was never stopped.
  void resume();

  [[nodiscard]] std::size_t generated() const { return generated_; }

  /// Snapshot: counters, stop flag, whether an arrival is pending, and the
  /// inter-arrival rng. Save-only — the pending arrival itself lives in
  /// the event queue and is restored by replay (see snapshot_io.hpp).
  void save_state(snapshot::Writer& w) const;

 private:
  void fire();

  Simulator& sim_;
  MessageIdAllocator& ids_;
  NodeId source_;
  double mean_interval_s_;
  std::size_t bits_;
  RandomStream rng_;
  Sink sink_;
  EventHandle pending_;
  std::size_t generated_ = 0;
  bool stopped_ = false;
};

}  // namespace dftmsn
