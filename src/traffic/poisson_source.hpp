// Poisson data generation (Sec. 5: mean inter-arrival 120 s per sensor).
// Each firing hands a fresh Message to the owning node's callback.
#pragma once

#include <cstddef>
#include <functional>

#include "net/message.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace dftmsn {

/// Process-wide message-id allocator for one simulation run.
class MessageIdAllocator {
 public:
  MessageId next() { return next_++; }

 private:
  MessageId next_ = 1;
};

class PoissonSource {
 public:
  using Sink = std::function<void(Message)>;

  /// Generates `bits`-sized messages from `source` with exponential
  /// inter-arrival of the given mean, delivering each to `sink`.
  PoissonSource(Simulator& sim, MessageIdAllocator& ids, NodeId source,
                double mean_interval_s, std::size_t bits, RandomStream rng,
                Sink sink);

  /// Schedules the first arrival. Call once.
  void start();

  /// Stops future arrivals.
  void stop();

  /// Restarts a stopped source with a fresh exponential draw (node
  /// recovery after a crash). No-op if the source was never stopped.
  void resume();

  [[nodiscard]] std::size_t generated() const { return generated_; }

 private:
  void fire();

  Simulator& sim_;
  MessageIdAllocator& ids_;
  NodeId source_;
  double mean_interval_s_;
  std::size_t bits_;
  RandomStream rng_;
  Sink sink_;
  EventHandle pending_;
  std::size_t generated_ = 0;
  bool stopped_ = false;
};

}  // namespace dftmsn
