// MAC-layer frames exchanged over the channel. A Frame is a tagged union
// (std::variant) of the six frame kinds of the cross-layer protocol:
// PREAMBLE, RTS, CTS, SCHEDULE, DATA, ACK.
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace dftmsn {

/// Channel-occupation announcement preceding an RTS (Sec. 3.2.1).
struct PreambleFrame {};

/// Request-To-Send: carries the sender's delivery probability, the FTD of
/// the message about to be sent, and the CTS contention window length.
struct RtsFrame {
  double sender_metric = 0.0;  ///< ξ_i (or the variant's history metric)
  double message_ftd = 0.0;    ///< F_i^M
  int contention_window = 16;  ///< W, in slots
  MessageId message_id = 0;    ///< id of the message about to be multicast
};

/// Clear-To-Send from a qualified receiver: its own delivery probability
/// and available buffer space for messages at the advertised FTD.
struct CtsFrame {
  NodeId rts_sender = kInvalidNode;  ///< which RTS this answers
  double receiver_metric = 0.0;      ///< ξ_j
  std::size_t buffer_space = 0;      ///< B_j(F_i^M)
};

/// Per-receiver entry of a SCHEDULE frame: the FTD the receiver must
/// attach to its copy (Eq. 2) and, implicitly by position, its ACK slot.
struct ScheduleEntry {
  NodeId receiver = kInvalidNode;
  double ftd = 0.0;
};

/// Transmission schedule opening the synchronous phase. Non-listed
/// overhearers use `nav_duration` to defer (NAV).
struct ScheduleFrame {
  std::vector<ScheduleEntry> entries;
  double nav_duration = 0.0;  ///< seconds the channel stays reserved
};

/// The multicast data message itself.
struct DataFrame {
  Message message;
};

/// Slotted acknowledgement from receiver k of the schedule.
struct AckFrame {
  NodeId data_sender = kInvalidNode;
  MessageId message_id = 0;
};

using FramePayload = std::variant<PreambleFrame, RtsFrame, CtsFrame,
                                  ScheduleFrame, DataFrame, AckFrame>;

struct Frame {
  NodeId sender = kInvalidNode;
  std::size_t bits = 50;
  FramePayload payload;

  template <typename T>
  [[nodiscard]] bool is() const {
    return std::holds_alternative<T>(payload);
  }
  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::get<T>(payload);
  }
};

/// Human-readable frame kind, for logs and tests.
std::string frame_type_name(const Frame& f);

/// True for DATA frames (used by the channel's traffic accounting).
bool is_data_frame(const Frame& f);

}  // namespace dftmsn
