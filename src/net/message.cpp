#include "net/message.hpp"

// Message/QueuedMessage are plain data; this TU exists so the module has a
// home for future out-of-line helpers and keeps the build graph uniform.
