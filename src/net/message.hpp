// Data messages (Layer-3 payload) and their queued form.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace dftmsn {

/// One sensed datum. All copies replicated through the network share the
/// same id; per-copy state (the FTD) lives outside this struct.
struct Message {
  MessageId id = 0;
  NodeId source = kInvalidNode;
  SimTime created = 0.0;
  std::size_t bits = 1000;
  int hops = 0;  ///< hops taken by *this copy* so far

  bool operator==(const Message& o) const {
    return id == o.id && source == o.source;
  }
};

/// A copy of a message held in a sensor's data queue, together with its
/// fault-tolerance degree (FTD, Sec. 3.1.2): the probability that at least
/// one other copy reaches a sink. Lower FTD = more important.
struct QueuedMessage {
  Message msg;
  double ftd = 0.0;
  SimTime enqueued = 0.0;
};

}  // namespace dftmsn
