#include "net/frame.hpp"

namespace dftmsn {

std::string frame_type_name(const Frame& f) {
  struct Visitor {
    std::string operator()(const PreambleFrame&) const { return "PREAMBLE"; }
    std::string operator()(const RtsFrame&) const { return "RTS"; }
    std::string operator()(const CtsFrame&) const { return "CTS"; }
    std::string operator()(const ScheduleFrame&) const { return "SCHEDULE"; }
    std::string operator()(const DataFrame&) const { return "DATA"; }
    std::string operator()(const AckFrame&) const { return "ACK"; }
  };
  return std::visit(Visitor{}, f.payload);
}

bool is_data_frame(const Frame& f) { return f.is<DataFrame>(); }

}  // namespace dftmsn
