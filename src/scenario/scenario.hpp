// Scenario library: named, seeded generators for whole evaluation worlds.
//
// Each generator emits a Config (field, population, traffic, speed caps)
// plus a motion trace driving every sensor (MobilityKind::kTrace), so
// protocol rankings can be compared across qualitatively different
// worlds — not just the paper's one synthetic field. Generation is a pure
// function of (name, seed): the same pair always yields a byte-identical
// trace and an identical Config (conformance-suite enforced).
//
// Catalog (full parameters in docs/scenarios.md):
//   dense-urban   Manhattan-grid street walkers, dense population
//   sparse-rural  wide field, few nodes, long slow legs with pauses
//   convoy        vehicle columns looping shared routes at speed
//   mass-event    stadium flow: gather -> mill -> evacuate
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "mobility/motion_trace.hpp"

namespace dftmsn {

struct GeneratedScenario {
  Config config;      ///< mobility == kTrace; trace_path left empty
  MotionTrace trace;  ///< one track per sensor, covering the duration
};

/// All registered scenario names, in registration order.
std::vector<std::string> scenario_names();

[[nodiscard]] bool is_scenario_name(const std::string& name);

/// One-line description for help listings; empty for unknown names.
std::string scenario_description(const std::string& name);

/// Generates the scenario deterministically from (name, seed). Throws
/// std::invalid_argument for unknown names.
GeneratedScenario generate_scenario(const std::string& name,
                                    std::uint64_t seed);

/// Generates, writes the trace to `dir`/<name>_seed<seed>.trc, and
/// returns the Config with scenario.trace_path pointing at it — ready to
/// run (World, run_specs, sweeps, worker processes).
Config materialize_scenario(const std::string& name, std::uint64_t seed,
                            const std::string& dir);

}  // namespace dftmsn
