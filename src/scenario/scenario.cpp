#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/random.hpp"

namespace dftmsn {
namespace {

/// Builds one node's waypoint track: every move_to appends a sample at
/// the arrival time, so the track is the polyline itself (TraceMobility
/// interpolates between samples — no dense resampling).
class TrackBuilder {
 public:
  TrackBuilder(double field_edge, Vec2 start) : field_(field_edge) {
    track_.push_back({0.0, clamp(start)});
  }

  [[nodiscard]] double time() const { return track_.back().t; }
  [[nodiscard]] Vec2 pos() const { return track_.back().pos; }

  /// Travels in a straight line to `dest` (clamped into the field) at
  /// `speed` m/s. Zero-length legs are skipped (duplicate timestamps are
  /// invalid trace records).
  void move_to(Vec2 dest, double speed) {
    dest = clamp(dest);
    const double dist = distance(pos(), dest);
    const double dt = dist / speed;
    if (dt < 1e-9) return;
    track_.push_back({time() + dt, dest});
  }

  /// Stands still for `seconds`.
  void hold(double seconds) {
    if (seconds < 1e-9) return;
    track_.push_back({time() + seconds, pos()});
  }

  MotionTrack take() { return std::move(track_); }

 private:
  [[nodiscard]] Vec2 clamp(Vec2 p) const {
    return {std::min(std::max(p.x, 0.0), field_),
            std::min(std::max(p.y, 0.0), field_)};
  }

  double field_;
  MotionTrack track_;
};

// ---------------------------------------------------------------------------
// dense-urban: pedestrians on a Manhattan street grid. Nodes walk from
// intersection to intersection along the streets, turning randomly.

GeneratedScenario gen_dense_urban(std::uint64_t seed) {
  GeneratedScenario out;
  Config& c = out.config;
  c.scenario.field_m = 120.0;
  c.scenario.zones_per_side = 6;
  c.scenario.num_sensors = 80;
  c.scenario.num_sinks = 3;
  c.scenario.duration_s = 2000.0;
  c.scenario.data_interval_s = 60.0;
  c.scenario.speed_min_mps = 0.6;
  c.scenario.speed_max_mps = 1.8;
  c.scenario.mobility = MobilityKind::kTrace;
  c.scenario.seed = seed;

  const int blocks = 6;  // street pitch = field/blocks = 20 m
  const double pitch = c.scenario.field_m / blocks;
  RandomSource src(seed);
  for (int node = 0; node < c.scenario.num_sensors; ++node) {
    RandomStream rng = src.stream("scenario-dense-urban",
                                  static_cast<std::uint64_t>(node));
    int ix = rng.uniform_int(0, blocks);
    int iy = rng.uniform_int(0, blocks);
    TrackBuilder tb(c.scenario.field_m, {ix * pitch, iy * pitch});
    while (tb.time() < c.scenario.duration_s) {
      // Step to a random adjacent intersection along a street.
      const bool horizontal = rng.bernoulli(0.5);
      int& axis = horizontal ? ix : iy;
      if (axis == 0)
        axis = 1;
      else if (axis == blocks)
        axis = blocks - 1;
      else
        axis += rng.bernoulli(0.5) ? 1 : -1;
      tb.move_to({ix * pitch, iy * pitch},
                 rng.uniform(c.scenario.speed_min_mps,
                             c.scenario.speed_max_mps));
    }
    out.trace.tracks.push_back(tb.take());
  }
  return out;
}

// ---------------------------------------------------------------------------
// sparse-rural: a wide, thinly populated field. Long straight legs at
// low speed with occasional rests — contacts are rare and short.

GeneratedScenario gen_sparse_rural(std::uint64_t seed) {
  GeneratedScenario out;
  Config& c = out.config;
  c.scenario.field_m = 400.0;
  c.scenario.zones_per_side = 8;
  c.scenario.num_sensors = 30;
  c.scenario.num_sinks = 1;
  c.scenario.duration_s = 3000.0;
  c.scenario.data_interval_s = 180.0;
  c.scenario.speed_min_mps = 0.5;
  c.scenario.speed_max_mps = 2.0;
  c.scenario.mobility = MobilityKind::kTrace;
  c.scenario.seed = seed;

  RandomSource src(seed);
  for (int node = 0; node < c.scenario.num_sensors; ++node) {
    RandomStream rng = src.stream("scenario-sparse-rural",
                                  static_cast<std::uint64_t>(node));
    TrackBuilder tb(c.scenario.field_m,
                    {rng.uniform(0.0, c.scenario.field_m),
                     rng.uniform(0.0, c.scenario.field_m)});
    while (tb.time() < c.scenario.duration_s) {
      tb.move_to({rng.uniform(0.0, c.scenario.field_m),
                  rng.uniform(0.0, c.scenario.field_m)},
                 rng.uniform(c.scenario.speed_min_mps,
                             c.scenario.speed_max_mps));
      if (rng.bernoulli(0.5)) tb.hold(rng.uniform(10.0, 60.0));
    }
    out.trace.tracks.push_back(tb.take());
  }
  return out;
}

// ---------------------------------------------------------------------------
// convoy: three vehicle columns, each looping its own shared route at
// near-constant speed. Vehicles in a column start staggered by a headway
// and carry a small fixed lateral jitter, so the column stays a column.

GeneratedScenario gen_convoy(std::uint64_t seed) {
  GeneratedScenario out;
  Config& c = out.config;
  c.scenario.field_m = 300.0;
  c.scenario.zones_per_side = 5;
  c.scenario.num_sensors = 24;  // 3 convoys x 8 vehicles
  c.scenario.num_sinks = 2;
  c.scenario.duration_s = 2000.0;
  c.scenario.data_interval_s = 90.0;
  c.scenario.speed_min_mps = 0.0;
  c.scenario.speed_max_mps = 10.0;
  c.scenario.mobility = MobilityKind::kTrace;
  c.scenario.seed = seed;

  constexpr int kConvoys = 3;
  constexpr int kVehicles = 8;
  constexpr int kRoutePoints = 5;
  constexpr double kHeadwayS = 5.0;
  RandomSource src(seed);
  for (int convoy = 0; convoy < kConvoys; ++convoy) {
    RandomStream route_rng = src.stream("scenario-convoy-route",
                                        static_cast<std::uint64_t>(convoy));
    std::vector<Vec2> route;
    for (int p = 0; p < kRoutePoints; ++p)
      route.push_back({route_rng.uniform(0.0, c.scenario.field_m),
                       route_rng.uniform(0.0, c.scenario.field_m)});

    for (int v = 0; v < kVehicles; ++v) {
      const int node = convoy * kVehicles + v;
      RandomStream rng = src.stream("scenario-convoy",
                                    static_cast<std::uint64_t>(node));
      const Vec2 jitter{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
      const double speed = 8.0 + rng.uniform(-0.5, 0.5);
      TrackBuilder tb(c.scenario.field_m, route[0] + jitter);
      tb.hold(v * kHeadwayS);  // staggered start forms the column
      std::size_t next = 1;
      while (tb.time() < c.scenario.duration_s) {
        tb.move_to(route[next] + jitter, speed);
        next = (next + 1) % route.size();
      }
      out.trace.tracks.push_back(tb.take());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// mass-event: stadium/evacuation flow. Everyone gathers near the field
// center, mills around the venue, then streams out to the boundary.

GeneratedScenario gen_mass_event(std::uint64_t seed) {
  GeneratedScenario out;
  Config& c = out.config;
  c.scenario.field_m = 200.0;
  c.scenario.zones_per_side = 5;
  c.scenario.num_sensors = 100;
  c.scenario.num_sinks = 4;
  c.scenario.duration_s = 1500.0;
  c.scenario.data_interval_s = 60.0;
  c.scenario.speed_min_mps = 0.5;
  c.scenario.speed_max_mps = 3.0;
  c.scenario.mobility = MobilityKind::kTrace;
  c.scenario.seed = seed;

  const double edge = c.scenario.field_m;
  const Vec2 center{edge / 2.0, edge / 2.0};
  RandomSource src(seed);
  for (int node = 0; node < c.scenario.num_sensors; ++node) {
    RandomStream rng = src.stream("scenario-mass-event",
                                  static_cast<std::uint64_t>(node));
    const auto venue_point = [&](double radius) {
      constexpr double kTau = 6.283185307179586;
      const Vec2 dir = unit_from_angle(rng.uniform(0.0, kTau));
      return center + dir * rng.uniform(0.0, radius);
    };
    TrackBuilder tb(edge, {rng.uniform(0.0, edge), rng.uniform(0.0, edge)});
    // Gather: walk from wherever you are to a seat near the center.
    tb.move_to(venue_point(30.0), rng.uniform(0.8, 1.5));
    // Mill about the venue until the event lets out.
    const double evac_at = 900.0 + rng.uniform(0.0, 120.0);
    while (tb.time() < evac_at) {
      tb.move_to(venue_point(35.0), rng.uniform(0.5, 1.2));
      tb.hold(rng.uniform(5.0, 40.0));
    }
    // Evacuate: pick a boundary exit and leave briskly, then stay there
    // (the after-last clamp keeps the node parked at its exit).
    const double coord = rng.uniform(0.0, edge);
    const Vec2 exits[4] = {
        {coord, 0.0}, {coord, edge}, {0.0, coord}, {edge, coord}};
    tb.move_to(exits[rng.uniform_int(0, 3)], rng.uniform(1.5, 3.0));
    out.trace.tracks.push_back(tb.take());
  }
  return out;
}

// ---------------------------------------------------------------------------

struct ScenarioEntry {
  const char* name;
  const char* description;
  GeneratedScenario (*generate)(std::uint64_t seed);
};

constexpr ScenarioEntry kScenarios[] = {
    {"dense-urban", "Manhattan-grid street walkers, dense population",
     gen_dense_urban},
    {"sparse-rural", "wide field, few nodes, long slow legs with pauses",
     gen_sparse_rural},
    {"convoy", "vehicle columns looping shared routes at speed", gen_convoy},
    {"mass-event", "stadium flow: gather, mill, evacuate", gen_mass_event},
};

const ScenarioEntry* find_scenario(const std::string& name) {
  for (const ScenarioEntry& e : kScenarios)
    if (name == e.name) return &e;
  return nullptr;
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> out;
  for (const ScenarioEntry& e : kScenarios) out.emplace_back(e.name);
  return out;
}

bool is_scenario_name(const std::string& name) {
  return find_scenario(name) != nullptr;
}

std::string scenario_description(const std::string& name) {
  const ScenarioEntry* e = find_scenario(name);
  return e ? e->description : "";
}

GeneratedScenario generate_scenario(const std::string& name,
                                    std::uint64_t seed) {
  const ScenarioEntry* e = find_scenario(name);
  if (!e) throw std::invalid_argument("unknown scenario: " + name);
  GeneratedScenario out = e->generate(seed);
  out.trace.validate();
  // The emitted config is complete except for trace_path (set by
  // materialize_scenario); validate everything else now.
  Config check = out.config;
  check.scenario.trace_path = "(unmaterialized)";
  check.validate();
  return out;
}

Config materialize_scenario(const std::string& name, std::uint64_t seed,
                            const std::string& dir) {
  GeneratedScenario gen = generate_scenario(name, seed);
  const std::string path =
      dir + "/" + name + "_seed" + std::to_string(seed) + ".trc";
  save_motion_trace(path, gen.trace);
  gen.config.scenario.trace_path = path;
  return gen.config;
}

}  // namespace dftmsn
