// Shared broadcast medium. A transmission is heard by every awake node in
// range; two transmissions overlapping at a receiver corrupt each other
// (no capture). Also provides carrier sense (busy/idle edges) and global
// traffic/collision accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "mobility/mobility_manager.hpp"
#include "net/frame.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot_io.hpp"
#include "telemetry/profiler.hpp"

namespace dftmsn {

/// Callbacks a node's MAC receives from the channel.
class ChannelListener {
 public:
  virtual ~ChannelListener() = default;

  /// A frame finished arriving cleanly.
  virtual void on_frame_received(const Frame& frame) = 0;

  /// A reception finished but was corrupted by an overlapping transmission.
  virtual void on_collision() = 0;

  /// Carrier sense: the channel at this node just became busy / idle.
  virtual void on_channel_busy() = 0;
  virtual void on_channel_idle() = 0;
};

class Channel {
 public:
  struct Counters {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t collisions = 0;      ///< corrupted receptions
    std::uint64_t data_bits_sent = 0;
    std::uint64_t control_bits_sent = 0;
    std::uint64_t faults_corrupted = 0;  ///< receptions killed by fault injection
  };

  /// Fault-injection hook: consulted once per otherwise-clean reception at
  /// frame end; returning true corrupts that reception (the receiver sees
  /// a collision). Calls happen in deterministic event order, so a seeded
  /// hook keeps runs reproducible.
  using CorruptionHook = std::function<bool(NodeId sender, NodeId receiver)>;

  Channel(Simulator& sim, const MobilityManager& mobility, double range_m,
          double bandwidth_bps);

  /// Registers a node. Ids must be added in order 0,1,2,...
  void attach(NodeId id, Radio& radio, ChannelListener& listener);

  /// Broadcasts `frame` from `sender` (radio must be IDLE). Returns the
  /// transmission duration. The sender's radio is held in TX for that long.
  SimTime transmit(NodeId sender, Frame frame);

  /// Airtime of a frame of `bits` bits.
  [[nodiscard]] SimTime tx_duration(std::size_t bits) const;

  /// Carrier sense query: is any transmission audible at `id` right now?
  [[nodiscard]] bool busy(NodeId id) const;

  /// True if any node (regardless of radio state) is within radio range
  /// of `id` — the lone-sender fast-path check.
  [[nodiscard]] bool anyone_in_range(NodeId id) const;

  /// Clears `id`'s reception state (call just before putting its radio to
  /// sleep; an in-progress reception is abandoned without callbacks).
  void forget(NodeId id);

  /// Marks `id` dead/alive (FaultInjector). A failed node hears nothing,
  /// and a transmission whose sender fails mid-frame arrives corrupted at
  /// every receiver (the frame tail was never sent).
  void set_node_failed(NodeId id, bool failed);
  [[nodiscard]] bool node_failed(NodeId id) const;

  /// Installs (or clears, with nullptr) the fault-injection corruption
  /// hook. At most one hook is active at a time.
  void set_corruption_hook(CorruptionHook hook);

  /// Wall-clock profiler for the per-transmit audience scan (telemetry;
  /// nullptr = disabled, never perturbs the simulation).
  void set_profiler(telemetry::Profiler* profiler) { profiler_ = profiler; }

  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Snapshot: counters, fault flags, tx-id allocator and every node's
  /// reception bookkeeping. load_state requires the same node population
  /// to be attached already; in-flight finish_tx events are replayed from
  /// the event queue (see snapshot_io.hpp).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  using TxId = std::uint64_t;

  struct ActiveTx {
    TxId id;
    NodeId sender;
    Frame frame;
  };

  /// Per-node reception bookkeeping.
  struct NodeRx {
    Radio* radio = nullptr;
    ChannelListener* listener = nullptr;
    std::vector<TxId> hearing;       ///< transmissions currently audible
    TxId locked = 0;                 ///< frame being decoded (0 = none)
    bool locked_clean = false;
  };

  void finish_tx(TxId id, NodeId sender, const Frame& frame,
                 std::vector<NodeId> audience);

  static bool erase_value(std::vector<TxId>& v, TxId value);

  Simulator& sim_;
  const MobilityManager& mobility_;
  double range_m_;
  double bandwidth_bps_;
  std::vector<NodeId> scratch_neighbors_;  ///< per-transmit query reuse
  std::vector<NodeRx> nodes_;
  std::vector<char> failed_;  ///< parallel to nodes_: 1 = crashed/outage
  TxId next_tx_id_ = 1;
  Counters counters_;
  CorruptionHook corruption_hook_;
  telemetry::Profiler* profiler_ = nullptr;
};

}  // namespace dftmsn
