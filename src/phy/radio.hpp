// Per-node radio finite-state machine. The MAC drives sleep/wake (through
// the SWITCHING state, which costs 4x listening power); the Channel drives
// IDLE <-> RX/TX while frames are in flight.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "phy/energy_meter.hpp"
#include "sim/simulator.hpp"

namespace dftmsn {

class Radio {
 public:
  /// The radio starts awake (IDLE) at the simulator's current time.
  Radio(Simulator& sim, const EnergyModel& model, double switch_time_s);

  [[nodiscard]] RadioState state() const { return meter_.state(); }

  /// Awake = can hear or emit frames right now.
  [[nodiscard]] bool awake() const {
    const RadioState s = state();
    return s == RadioState::kIdle || s == RadioState::kRx ||
           s == RadioState::kTx;
  }

  [[nodiscard]] bool asleep() const { return state() == RadioState::kSleep; }

  /// IDLE -> SWITCHING -> SLEEP. Precondition: state is IDLE.
  void sleep();

  /// SLEEP -> SWITCHING -> IDLE; `on_awake` fires once IDLE is reached.
  /// Precondition: state is SLEEP.
  void wake(std::function<void()> on_awake);

  // --- Channel-driven transitions -----------------------------------
  void begin_tx();  ///< IDLE -> TX
  void end_tx();    ///< TX -> IDLE
  void begin_rx();  ///< IDLE -> RX
  void end_rx();    ///< RX -> IDLE

  // --- Fault injection -----------------------------------------------
  /// Forces the radio down from *any* state (node crash / radio outage).
  /// While forced down the radio sits in SLEEP; the completion of any
  /// in-flight sleep()/wake() switch is invalidated, so a stale switch
  /// event can neither resurrect a dead node nor re-sleep a recovered one.
  void force_down();

  /// Ends a force_down(): the radio returns to IDLE immediately (the
  /// recovering MAC re-desynchronizes itself, so no switch delay here).
  /// Precondition: forced_down().
  void force_up();

  [[nodiscard]] bool forced_down() const { return forced_down_; }

  /// Closes the energy accounting at `now` (end of run).
  void finalize_energy(SimTime now) { meter_.finalize(now); }

  /// Books analytically-computed extra energy (lone-sender fast path).
  void charge_extra(RadioState s, double joules) {
    meter_.add_extra(s, joules);
  }

  [[nodiscard]] const EnergyMeter& meter() const { return meter_; }

  /// Snapshot: FSM flags, fault epoch and the energy meter. Save-only —
  /// a pending sleep/wake switch completion lives in the event queue, so
  /// restoration happens by replay (see snapshot_io.hpp).
  void save_state(snapshot::Writer& w) const;

 private:
  void set_state(RadioState next);
  void require_state(RadioState expected, const char* op) const;

  Simulator& sim_;
  double switch_time_s_;
  EnergyMeter meter_;
  bool forced_down_ = false;
  std::uint64_t epoch_ = 0;  ///< bumped by force_down(); stale switches no-op
};

}  // namespace dftmsn
