#include "phy/radio.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace dftmsn {

Radio::Radio(Simulator& sim, const EnergyModel& model, double switch_time_s)
    : sim_(sim),
      switch_time_s_(switch_time_s),
      meter_(model, RadioState::kIdle, sim.now()) {}

void Radio::set_state(RadioState next) {
  meter_.on_state_change(next, sim_.now());
}

void Radio::require_state(RadioState expected, const char* op) const {
  if (state() != expected)
    throw std::logic_error(std::string("Radio: ") + op + " while " +
                           radio_state_name(state()));
}

void Radio::sleep() {
  require_state(RadioState::kIdle, "sleep()");
  set_state(RadioState::kSwitching);
  sim_.schedule_in(switch_time_s_, [this, e = epoch_] {
    if (epoch_ != e) return;  // node crashed mid-switch
    set_state(RadioState::kSleep);
  });
}

void Radio::wake(std::function<void()> on_awake) {
  require_state(RadioState::kSleep, "wake()");
  set_state(RadioState::kSwitching);
  sim_.schedule_in(switch_time_s_, [this, e = epoch_,
                                    cb = std::move(on_awake)] {
    if (epoch_ != e) return;  // node crashed mid-switch
    set_state(RadioState::kIdle);
    if (cb) cb();
  });
}

void Radio::force_down() {
  if (forced_down_) return;
  forced_down_ = true;
  ++epoch_;  // invalidate any in-flight sleep()/wake() completion
  set_state(RadioState::kSleep);
}

void Radio::force_up() {
  if (!forced_down_)
    throw std::logic_error("Radio: force_up() without force_down()");
  forced_down_ = false;
  set_state(RadioState::kIdle);
}

void Radio::begin_tx() {
  require_state(RadioState::kIdle, "begin_tx()");
  set_state(RadioState::kTx);
}

void Radio::end_tx() {
  require_state(RadioState::kTx, "end_tx()");
  set_state(RadioState::kIdle);
}

void Radio::begin_rx() {
  require_state(RadioState::kIdle, "begin_rx()");
  set_state(RadioState::kRx);
}

void Radio::end_rx() {
  require_state(RadioState::kRx, "end_rx()");
  set_state(RadioState::kIdle);
}

void Radio::save_state(snapshot::Writer& w) const {
  w.begin_section("radio");
  w.boolean(forced_down_);
  w.u64(epoch_);
  meter_.save_state(w);
  w.end_section();
}

}  // namespace dftmsn
