#include "phy/energy_model.hpp"

namespace dftmsn {

const char* radio_state_name(RadioState s) {
  switch (s) {
    case RadioState::kSleep: return "SLEEP";
    case RadioState::kIdle: return "IDLE";
    case RadioState::kRx: return "RX";
    case RadioState::kTx: return "TX";
    case RadioState::kSwitching: return "SWITCHING";
  }
  return "?";
}

double EnergyModel::power(RadioState s) const {
  switch (s) {
    case RadioState::kSleep: return power_.sleep_w;
    case RadioState::kIdle: return power_.idle_w;
    case RadioState::kRx: return power_.rx_w;
    case RadioState::kTx: return power_.tx_w;
    case RadioState::kSwitching: return power_.switch_w;
  }
  return 0.0;
}

double EnergyModel::min_sleep_for_saving(double switch_time_s) const {
  const double delta = power_.idle_w - power_.sleep_w;
  return 2.0 * power_.switch_w * switch_time_s / delta;
}

}  // namespace dftmsn
