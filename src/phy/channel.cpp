#include "phy/channel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dftmsn {

Channel::Channel(Simulator& sim, const MobilityManager& mobility,
                 double range_m, double bandwidth_bps)
    : sim_(sim),
      mobility_(mobility),
      range_m_(range_m),
      bandwidth_bps_(bandwidth_bps) {
  if (range_m <= 0) throw std::invalid_argument("Channel: range <= 0");
  if (bandwidth_bps <= 0) throw std::invalid_argument("Channel: bandwidth <= 0");
}

void Channel::attach(NodeId id, Radio& radio, ChannelListener& listener) {
  if (id != nodes_.size())
    throw std::invalid_argument("Channel: nodes must attach in id order");
  nodes_.push_back(NodeRx{&radio, &listener, {}, 0, false});
  failed_.push_back(0);
}

void Channel::set_node_failed(NodeId id, bool failed) {
  failed_.at(id) = failed ? 1 : 0;
}

bool Channel::node_failed(NodeId id) const { return failed_.at(id) != 0; }

void Channel::set_corruption_hook(CorruptionHook hook) {
  corruption_hook_ = std::move(hook);
}

SimTime Channel::tx_duration(std::size_t bits) const {
  return static_cast<double>(bits) / bandwidth_bps_;
}

bool Channel::busy(NodeId id) const { return !nodes_.at(id).hearing.empty(); }

bool Channel::anyone_in_range(NodeId id) const {
  return mobility_.any_neighbor_within(id, range_m_);
}

bool Channel::erase_value(std::vector<TxId>& v, TxId value) {
  const auto it = std::find(v.begin(), v.end(), value);
  if (it == v.end()) return false;
  v.erase(it);
  return true;
}

void Channel::forget(NodeId id) {
  NodeRx& n = nodes_.at(id);
  if (n.locked != 0 && n.radio->state() == RadioState::kRx) n.radio->end_rx();
  n.locked = 0;
  n.locked_clean = false;
  n.hearing.clear();
}

SimTime Channel::transmit(NodeId sender, Frame frame) {
  NodeRx& s = nodes_.at(sender);
  frame.sender = sender;
  const SimTime duration = tx_duration(frame.bits);
  const TxId id = next_tx_id_++;

  ++counters_.frames_sent;
  if (is_data_frame(frame)) {
    counters_.data_bits_sent += frame.bits;
  } else {
    counters_.control_bits_sent += frame.bits;
  }

  s.radio->begin_tx();  // throws if the radio is not IDLE (MAC bug)

  telemetry::ScopedTimer scan_timer(profiler_,
                                    telemetry::Subsystem::kChannelScan);

  // Audience snapshot at frame start: awake nodes in range that are not
  // themselves transmitting. A node that wakes mid-frame misses it.
  mobility_.neighbors_of(sender, range_m_, scratch_neighbors_);
  std::vector<NodeId> audience;
  for (const NodeId nb : scratch_neighbors_) {
    if (nb >= nodes_.size()) continue;
    if (failed_[nb]) continue;
    NodeRx& n = nodes_[nb];
    const RadioState st = n.radio->state();
    if (st != RadioState::kIdle && st != RadioState::kRx) continue;
    audience.push_back(nb);

    const bool was_quiet = n.hearing.empty();
    n.hearing.push_back(id);
    if (was_quiet) {
      // The node locks onto this frame and starts decoding it.
      n.locked = id;
      n.locked_clean = true;
      n.radio->begin_rx();
      n.listener->on_channel_busy();
    } else {
      // Overlap: both the locked frame and this one are corrupted.
      n.locked_clean = false;
    }
  }

  sim_.schedule_in(duration, [this, id, sender, frame = std::move(frame),
                              audience = std::move(audience)]() mutable {
    finish_tx(id, sender, frame, std::move(audience));
  });
  return duration;
}

void Channel::finish_tx(TxId id, NodeId sender, const Frame& frame,
                        std::vector<NodeId> audience) {
  // A sender that crashed mid-frame already had its radio forced down; the
  // frame tail was never emitted, so every reception of it is corrupt.
  const bool sender_died = failed_.at(sender) != 0;
  Radio& sender_radio = *nodes_.at(sender).radio;
  if (sender_radio.state() == RadioState::kTx) sender_radio.end_tx();

  for (const NodeId nb : audience) {
    NodeRx& n = nodes_.at(nb);
    // If the node slept (or crashed) meanwhile, forget() wiped its
    // bookkeeping.
    if (!erase_value(n.hearing, id)) continue;

    if (n.locked == id) {
      const bool clean = n.locked_clean;
      n.locked = 0;
      n.locked_clean = false;
      if (n.radio->state() == RadioState::kRx) n.radio->end_rx();
      // Deliver only if still in range at frame end (link survived), the
      // sender lived through the frame, and fault injection spared it.
      const bool in_range =
          mobility_.distance_between(sender, nb) <= range_m_;
      bool corrupted_by_fault = false;
      if (clean && in_range && !sender_died && corruption_hook_ &&
          corruption_hook_(sender, nb)) {
        corrupted_by_fault = true;
        ++counters_.faults_corrupted;
      }
      if (clean && in_range && !sender_died && !corrupted_by_fault) {
        ++counters_.frames_delivered;
        n.listener->on_frame_received(frame);
      } else {
        ++counters_.collisions;
        n.listener->on_collision();
      }
    }
    if (n.hearing.empty() && n.radio->awake()) n.listener->on_channel_idle();
  }
}

void Channel::save_state(snapshot::Writer& w) const {
  w.begin_section("channel");
  w.u64(counters_.frames_sent);
  w.u64(counters_.frames_delivered);
  w.u64(counters_.collisions);
  w.u64(counters_.data_bits_sent);
  w.u64(counters_.control_bits_sent);
  w.u64(counters_.faults_corrupted);
  w.u64(next_tx_id_);
  w.size(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeRx& n = nodes_[i];
    w.boolean(failed_[i] != 0);
    w.u64(n.locked);
    w.boolean(n.locked_clean);
    w.size(n.hearing.size());
    for (const TxId tx : n.hearing) w.u64(tx);
  }
  w.end_section();
}

void Channel::load_state(snapshot::Reader& r) {
  r.begin_section("channel");
  counters_.frames_sent = r.u64();
  counters_.frames_delivered = r.u64();
  counters_.collisions = r.u64();
  counters_.data_bits_sent = r.u64();
  counters_.control_bits_sent = r.u64();
  counters_.faults_corrupted = r.u64();
  next_tx_id_ = r.u64();
  const std::size_t n_nodes = r.size();
  if (n_nodes != nodes_.size())
    throw snapshot::SnapshotError("channel: node population mismatch");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeRx& n = nodes_[i];
    failed_[i] = r.boolean() ? 1 : 0;
    n.locked = r.u64();
    n.locked_clean = r.boolean();
    n.hearing.resize(r.size());
    for (TxId& tx : n.hearing) tx = r.u64();
  }
  r.end_section();
}

}  // namespace dftmsn
