#include "phy/energy_meter.hpp"

#include <numeric>
#include <stdexcept>

namespace dftmsn {

EnergyMeter::EnergyMeter(const EnergyModel& model, RadioState initial,
                         SimTime start)
    : model_(model), state_(initial), last_change_(start) {}

void EnergyMeter::accumulate(SimTime now) {
  if (now < last_change_)
    throw std::invalid_argument("EnergyMeter: time went backwards");
  const double dt = now - last_change_;
  joules_[index(state_)] += dt * model_.power(state_);
  seconds_[index(state_)] += dt;
  last_change_ = now;
}

void EnergyMeter::on_state_change(RadioState next, SimTime now) {
  accumulate(now);
  state_ = next;
}

void EnergyMeter::finalize(SimTime now) { accumulate(now); }

void EnergyMeter::add_extra(RadioState s, double joules) {
  joules_[index(s)] += joules;
}

double EnergyMeter::total_joules() const {
  return std::accumulate(joules_.begin(), joules_.end(), 0.0);
}

double EnergyMeter::joules_in(RadioState s) const { return joules_[index(s)]; }

double EnergyMeter::seconds_in(RadioState s) const {
  return seconds_[index(s)];
}

void EnergyMeter::save_state(snapshot::Writer& w) const {
  w.begin_section("energy_meter");
  w.u8(static_cast<std::uint8_t>(state_));
  w.f64(last_change_);
  for (double j : joules_) w.f64(j);
  for (double s : seconds_) w.f64(s);
  w.end_section();
}

void EnergyMeter::load_state(snapshot::Reader& r) {
  r.begin_section("energy_meter");
  state_ = static_cast<RadioState>(r.u8());
  last_change_ = r.f64();
  for (double& j : joules_) j = r.f64();
  for (double& s : seconds_) s = r.f64();
  r.end_section();
}

}  // namespace dftmsn
