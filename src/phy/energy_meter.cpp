#include "phy/energy_meter.hpp"

#include <numeric>
#include <stdexcept>

namespace dftmsn {

EnergyMeter::EnergyMeter(const EnergyModel& model, RadioState initial,
                         SimTime start)
    : model_(model), state_(initial), last_change_(start) {}

void EnergyMeter::accumulate(SimTime now) {
  if (now < last_change_)
    throw std::invalid_argument("EnergyMeter: time went backwards");
  const double dt = now - last_change_;
  joules_[index(state_)] += dt * model_.power(state_);
  seconds_[index(state_)] += dt;
  last_change_ = now;
}

void EnergyMeter::on_state_change(RadioState next, SimTime now) {
  accumulate(now);
  state_ = next;
}

void EnergyMeter::finalize(SimTime now) { accumulate(now); }

void EnergyMeter::add_extra(RadioState s, double joules) {
  joules_[index(s)] += joules;
}

double EnergyMeter::total_joules() const {
  return std::accumulate(joules_.begin(), joules_.end(), 0.0);
}

double EnergyMeter::joules_in(RadioState s) const { return joules_[index(s)]; }

double EnergyMeter::seconds_in(RadioState s) const {
  return seconds_[index(s)];
}

}  // namespace dftmsn
