// Maps radio states to power draw (Berkeley-mote numbers by default) and
// provides the Eq. (7) sleep break-even helper.
#pragma once

#include "common/config.hpp"

namespace dftmsn {

enum class RadioState { kSleep, kIdle, kRx, kTx, kSwitching };

const char* radio_state_name(RadioState s);

class EnergyModel {
 public:
  explicit EnergyModel(const PowerConfig& power) : power_(power) {}

  /// Instantaneous power draw (watts) in the given state.
  [[nodiscard]] double power(RadioState s) const;

  /// Minimum sleeping period for a net energy saving (Eq. 7 intent):
  /// sleeping must recoup the energy of two radio transitions,
  ///   T_min = 2 * P_change * t_switch / (P_idle - P_sleep).
  [[nodiscard]] double min_sleep_for_saving(double switch_time_s) const;

  [[nodiscard]] const PowerConfig& config() const { return power_; }

 private:
  PowerConfig power_;
};

}  // namespace dftmsn
