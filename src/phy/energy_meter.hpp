// Integrates a node's radio power over time, broken down per state.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"
#include "phy/energy_model.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

class EnergyMeter {
 public:
  /// Starts metering at `start` in the given state.
  EnergyMeter(const EnergyModel& model, RadioState initial, SimTime start);

  /// Records a state change at time `now` (accumulates the elapsed span
  /// in the previous state first). `now` must be non-decreasing.
  void on_state_change(RadioState next, SimTime now);

  /// Closes the current span at `now` without changing state, so totals
  /// are exact at the moment of the query (call at end of run).
  void finalize(SimTime now);

  /// Books extra energy onto a state's account without a state change
  /// (used by the lone-sender fast path: the preamble+RTS airtime is
  /// charged analytically instead of simulating the frames).
  void add_extra(RadioState s, double joules);

  /// Joules consumed so far (up to the last recorded change/finalize).
  [[nodiscard]] double total_joules() const;

  /// Joules spent in one particular state.
  [[nodiscard]] double joules_in(RadioState s) const;

  /// Seconds spent in one particular state.
  [[nodiscard]] double seconds_in(RadioState s) const;

  [[nodiscard]] RadioState state() const { return state_; }

  /// Snapshot: current state, last transition time and per-state totals.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  static constexpr std::size_t kStates = 5;
  static std::size_t index(RadioState s) { return static_cast<std::size_t>(s); }

  void accumulate(SimTime now);

  const EnergyModel& model_;
  RadioState state_;
  SimTime last_change_;
  std::array<double, kStates> joules_{};
  std::array<double, kStates> seconds_{};
};

}  // namespace dftmsn
