// FTD-sorted data queue (Sec. 3.1.2): lowest FTD (most important) at the
// head; tail-drop on overflow; threshold-drop of well-replicated copies.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

/// Why a queued copy was discarded (metrics accounting).
enum class DropReason {
  kOverflow,        ///< queue full, lowest-importance tail evicted
  kFtdThreshold,    ///< FTD exceeded the configured threshold
  kDelivered,       ///< copy reached a sink (FTD = 1)
  kNodeFailure,     ///< holding node crashed (fault injection)
};
inline constexpr std::size_t kDropReasonCount = 4;

const char* drop_reason_name(DropReason r);

/// std::hash has no enum-class specialization we can rely on pre-C++23
/// everywhere; keying unordered containers on DropReason goes through this.
struct DropReasonHash {
  std::size_t operator()(DropReason r) const noexcept {
    return static_cast<std::size_t>(r);
  }
};

/// Ordering discipline — kFtdSorted reproduces the paper; the others exist
/// for the ABL-QUEUE ablation.
enum class QueueDiscipline { kFtdSorted, kFifo, kRandomDrop };

class FtdQueue {
 public:
  struct DropRecord {
    Message msg;
    DropReason reason;
  };

  explicit FtdQueue(std::size_t capacity,
                    QueueDiscipline discipline = QueueDiscipline::kFtdSorted);

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }

  /// Inserts a copy at its FTD position. If the same message id is already
  /// queued, the two copies merge keeping the smaller FTD (returns nullopt,
  /// reports a duplicate via the return flag of `contains`). If the queue
  /// overflows, returns the evicted entry.
  /// `random01` feeds the kRandomDrop discipline (pass any value for others).
  std::optional<DropRecord> insert(QueuedMessage qm, double random01 = 0.0);

  /// Head of the queue (smallest FTD). Precondition: !empty().
  [[nodiscard]] const QueuedMessage& head() const;

  /// Removes and returns the head. Precondition: !empty().
  QueuedMessage pop_head();

  /// Replaces the head's FTD (after a multicast, Eq. 3) and re-sorts.
  /// If the new FTD exceeds `drop_threshold`, the head is dropped instead;
  /// the dropped entry is returned.
  std::optional<DropRecord> update_head_ftd(double new_ftd,
                                            double drop_threshold);

  /// Same as update_head_ftd but addressed by message id (the in-flight
  /// message may no longer be at the head when the ACKs arrive). No-op
  /// returning nullopt if the id is no longer queued.
  std::optional<DropRecord> update_ftd(MessageId id, double new_ftd,
                                       double drop_threshold);

  /// Removes the head entirely (e.g., single-copy schemes after handoff).
  void remove_head();

  /// Removes a message by id wherever it sits; true if found.
  bool remove(MessageId id);

  /// B(F) of the paper: slots empty or holding messages with FTD > F.
  [[nodiscard]] std::size_t available_space_for(double ftd) const;

  /// Number of queued messages with FTD strictly below `bound` (the K_i^F
  /// of Eq. 5).
  [[nodiscard]] std::size_t count_more_important_than(double bound) const;

  [[nodiscard]] bool contains(MessageId id) const;

  /// Re-targets the capacity (fault injection: buffer pressure). Shrinking
  /// below the current occupancy evicts from the tail — the least
  /// important copies first under kFtdSorted, the newest arrivals
  /// otherwise — and returns the evictions for metrics accounting.
  std::vector<DropRecord> set_capacity(std::size_t capacity);

  /// Empties the queue (node crash: RAM contents are lost), returning
  /// every entry as a kNodeFailure drop, head first.
  std::vector<DropRecord> wipe();

  /// TEST-ONLY: overwrites the stored FTD of `id`'s queued copy without
  /// re-sorting or range checks — deliberately corrupts queue state so
  /// tests can prove the runtime InvariantChecker catches real
  /// violations. Returns false if the id is not queued.
  bool poison_ftd_for_test(MessageId id, double ftd);

  /// Read-only view of the queue, head first.
  [[nodiscard]] const std::vector<QueuedMessage>& items() const {
    return items_;
  }

  /// Snapshot: capacity, discipline and every queued copy in order.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  std::size_t position_for(double ftd) const;

  std::size_t capacity_;
  QueueDiscipline discipline_;
  std::vector<QueuedMessage> items_;  ///< ascending FTD (kFtdSorted) or arrival order
};

}  // namespace dftmsn
