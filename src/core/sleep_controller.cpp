#include "core/sleep_controller.hpp"

#include <algorithm>

namespace dftmsn {

SleepController::SleepController(const SleepConfig& cfg,
                                 const EnergyModel& energy,
                                 double radio_switch_time_s)
    : cfg_(cfg),
      t_min_(std::max(cfg.t_min_floor_s,
                      energy.min_sleep_for_saving(radio_switch_time_s))) {}

void SleepController::record_cycle(bool transmitted) {
  history_.push_back(transmitted);
  while (history_.size() > static_cast<std::size_t>(cfg_.history_cycles))
    history_.pop_front();
}

double SleepController::rho() const {
  const double s = static_cast<double>(cfg_.history_cycles);
  const auto successes =
      static_cast<double>(std::count(history_.begin(), history_.end(), true));
  if (successes == 0.0) return 1.0 / s;
  return successes / s;
}

double SleepController::alpha(std::size_t important_count,
                              std::size_t buffer_capacity) const {
  if (buffer_capacity == 0) return 0.0;
  return static_cast<double>(important_count) /
         static_cast<double>(buffer_capacity);
}

double SleepController::sleep_period(std::size_t important_count,
                                     std::size_t buffer_capacity) const {
  const double r = rho();
  const double a = alpha(important_count, buffer_capacity);
  // Eq. (6). The denominator 1 - H + α shrinks the period when the buffer
  // fills with important messages (α >= H) and stretches it when idle.
  const double period = t_min_ / r / (1.0 - cfg_.buffer_threshold_h + a);
  return std::clamp(period, t_min_, t_max());
}

double SleepController::t_max() const {
  // Eq. (8): worst case ρ = 1/S and an empty buffer (α = 0).
  return t_min_ * static_cast<double>(cfg_.history_cycles) /
         (1.0 - cfg_.buffer_threshold_h);
}

void SleepController::save_state(snapshot::Writer& w) const {
  w.begin_section("sleep_controller");
  w.size(history_.size());
  for (const bool b : history_) w.boolean(b);
  w.end_section();
}

void SleepController::load_state(snapshot::Reader& r) {
  r.begin_section("sleep_controller");
  history_.clear();
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) history_.push_back(r.boolean());
  r.end_section();
}

}  // namespace dftmsn
