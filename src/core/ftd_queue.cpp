#include "core/ftd_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <stdexcept>

#include "snapshot/state_codec.hpp"

namespace dftmsn {

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kOverflow: return "overflow";
    case DropReason::kFtdThreshold: return "ftd_threshold";
    case DropReason::kDelivered: return "delivered";
    case DropReason::kNodeFailure: return "node_failure";
  }
  return "?";
}

FtdQueue::FtdQueue(std::size_t capacity, QueueDiscipline discipline)
    : capacity_(capacity), discipline_(discipline) {
  if (capacity == 0) throw std::invalid_argument("FtdQueue: capacity == 0");
}

std::size_t FtdQueue::position_for(double ftd) const {
  // First position whose FTD exceeds `ftd` — equal-FTD messages keep
  // arrival order (stable).
  const auto it = std::upper_bound(
      items_.begin(), items_.end(), ftd,
      [](double value, const QueuedMessage& q) { return value < q.ftd; });
  return static_cast<std::size_t>(it - items_.begin());
}

std::optional<FtdQueue::DropRecord> FtdQueue::insert(QueuedMessage qm,
                                                     double random01) {
  // Merge duplicate copies, keeping the smaller (more conservative) FTD.
  for (auto& existing : items_) {
    if (existing.msg.id == qm.msg.id) {
      if (qm.ftd < existing.ftd) {
        const Message kept = existing.msg;
        remove(kept.id);
        qm.msg = kept;  // keep original hop/creation bookkeeping
        return insert(std::move(qm), random01);
      }
      return std::nullopt;
    }
  }

  std::optional<DropRecord> dropped;
  if (full()) {
    switch (discipline_) {
      case QueueDiscipline::kFtdSorted: {
        // Evict the least important (tail). If the newcomer is itself the
        // least important, it is the one dropped.
        if (qm.ftd >= items_.back().ftd) {
          return DropRecord{qm.msg, DropReason::kOverflow};
        }
        dropped = DropRecord{items_.back().msg, DropReason::kOverflow};
        items_.pop_back();
        break;
      }
      case QueueDiscipline::kFifo: {
        // Newest loses.
        return DropRecord{qm.msg, DropReason::kOverflow};
      }
      case QueueDiscipline::kRandomDrop: {
        const std::size_t victim =
            std::min(items_.size() - 1,
                     static_cast<std::size_t>(random01 * items_.size()));
        dropped = DropRecord{items_[victim].msg, DropReason::kOverflow};
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(victim));
        break;
      }
    }
  }

  if (discipline_ == QueueDiscipline::kFtdSorted) {
    const std::size_t pos = position_for(qm.ftd);
    items_.insert(items_.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(qm));
  } else {
    items_.push_back(std::move(qm));
  }
  return dropped;
}

const QueuedMessage& FtdQueue::head() const {
  if (items_.empty()) throw std::logic_error("FtdQueue: head() on empty queue");
  return items_.front();
}

QueuedMessage FtdQueue::pop_head() {
  if (items_.empty())
    throw std::logic_error("FtdQueue: pop_head() on empty queue");
  QueuedMessage out = std::move(items_.front());
  items_.erase(items_.begin());
  return out;
}

std::optional<FtdQueue::DropRecord> FtdQueue::update_head_ftd(
    double new_ftd, double drop_threshold) {
  if (items_.empty())
    throw std::logic_error("FtdQueue: update_head_ftd() on empty queue");
  return update_ftd(items_.front().msg.id, new_ftd, drop_threshold);
}

std::optional<FtdQueue::DropRecord> FtdQueue::update_ftd(
    MessageId id, double new_ftd, double drop_threshold) {
  const auto it =
      std::find_if(items_.begin(), items_.end(),
                   [id](const QueuedMessage& q) { return q.msg.id == id; });
  if (it == items_.end()) return std::nullopt;
  QueuedMessage qm = std::move(*it);
  items_.erase(it);
  qm.ftd = new_ftd;
  if (new_ftd >= 1.0) return DropRecord{qm.msg, DropReason::kDelivered};
  if (new_ftd > drop_threshold)
    return DropRecord{qm.msg, DropReason::kFtdThreshold};
  insert(std::move(qm));
  return std::nullopt;
}

void FtdQueue::remove_head() {
  if (items_.empty())
    throw std::logic_error("FtdQueue: remove_head() on empty queue");
  items_.erase(items_.begin());
}

bool FtdQueue::remove(MessageId id) {
  const auto it =
      std::find_if(items_.begin(), items_.end(),
                   [id](const QueuedMessage& q) { return q.msg.id == id; });
  if (it == items_.end()) return false;
  items_.erase(it);
  return true;
}

std::size_t FtdQueue::available_space_for(double ftd) const {
  std::size_t occupied_by_important = 0;
  for (const auto& q : items_) {
    if (q.ftd <= ftd) ++occupied_by_important;
  }
  assert(occupied_by_important <= capacity_);
  return capacity_ - occupied_by_important;
}

std::size_t FtdQueue::count_more_important_than(double bound) const {
  std::size_t n = 0;
  for (const auto& q : items_) {
    if (q.ftd < bound) ++n;
  }
  return n;
}

std::vector<FtdQueue::DropRecord> FtdQueue::set_capacity(
    std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("FtdQueue: capacity == 0");
  capacity_ = capacity;
  std::vector<DropRecord> evicted;
  while (items_.size() > capacity_) {
    evicted.push_back(DropRecord{items_.back().msg, DropReason::kOverflow});
    items_.pop_back();
  }
  return evicted;
}

std::vector<FtdQueue::DropRecord> FtdQueue::wipe() {
  std::vector<DropRecord> lost;
  lost.reserve(items_.size());
  for (const QueuedMessage& q : items_)
    lost.push_back(DropRecord{q.msg, DropReason::kNodeFailure});
  items_.clear();
  return lost;
}

bool FtdQueue::poison_ftd_for_test(MessageId id, double ftd) {
  for (QueuedMessage& q : items_) {
    if (q.msg.id == id) {
      q.ftd = ftd;
      return true;
    }
  }
  return false;
}

bool FtdQueue::contains(MessageId id) const {
  return std::any_of(items_.begin(), items_.end(),
                     [id](const QueuedMessage& q) { return q.msg.id == id; });
}

void FtdQueue::save_state(snapshot::Writer& w) const {
  w.begin_section("ftd_queue");
  w.size(capacity_);
  w.u8(static_cast<std::uint8_t>(discipline_));
  w.size(items_.size());
  for (const QueuedMessage& q : items_) snapshot::save(w, q);
  w.end_section();
}

void FtdQueue::load_state(snapshot::Reader& r) {
  r.begin_section("ftd_queue");
  capacity_ = r.size();
  discipline_ = static_cast<QueueDiscipline>(r.u8());
  items_.resize(r.size());
  for (QueuedMessage& q : items_) snapshot::load(r, q);
  r.end_section();
}

}  // namespace dftmsn
