#include "core/listen_window_optimizer.hpp"

#include <algorithm>
#include <cmath>

namespace dftmsn {

int ListenWindowOptimizer::sigma(double xi, int tau_max) {
  const double clamped_xi = std::clamp(xi, kXiFloor, 1.0);
  const int s = static_cast<int>(std::lround(clamped_xi * tau_max));
  return std::max(1, s);
}

double ListenWindowOptimizer::grasp_probability(std::span<const double> xis,
                                                std::size_t i, int tau_max) {
  const int sigma_i = sigma(xis[i], tau_max);
  double p = 0.0;
  for (int tau = 1; tau <= sigma_i; ++tau) {
    // Probability every other contender picks a strictly larger slot
    // (Eq. 11: θ_ij = σ_j - τ_i when σ_j > τ_i, else 0).
    double others_larger = 1.0;
    for (std::size_t j = 0; j < xis.size(); ++j) {
      if (j == i) continue;
      const int sigma_j = sigma(xis[j], tau_max);
      const double theta = sigma_j > tau ? sigma_j - tau : 0.0;
      others_larger *= theta / sigma_j;
      if (others_larger == 0.0) break;
    }
    p += others_larger / sigma_i;
  }
  return p;
}

double ListenWindowOptimizer::collision_probability(
    std::span<const double> xis, int tau_max) {
  if (xis.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < xis.size(); ++i)
    sum += grasp_probability(xis, i, tau_max);
  return std::clamp(1.0 - sum, 0.0, 1.0);
}

int ListenWindowOptimizer::min_tau_max(std::span<const double> xis,
                                       double target, int cap) {
  if (xis.size() < 2) return 1;
  // γ decreases (essentially monotonically) in τ_max: gallop to bracket
  // the answer, then binary-search. O(log cap) evaluations instead of cap.
  if (collision_probability(xis, 1) <= target) return 1;
  int lo = 1, hi = 2;
  while (hi < cap && collision_probability(xis, hi) > target) {
    lo = hi;
    hi = std::min(cap, hi * 2);
  }
  if (collision_probability(xis, hi) > target) return cap;
  while (lo + 1 < hi) {
    const int mid = (lo + hi) / 2;
    if (collision_probability(xis, mid) <= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace dftmsn
