// Greedy receiver-subset selection of the synchronous phase (Sec. 3.2.2):
// walk candidates in decreasing delivery probability, adding qualified
// ones until the aggregate delivery probability of the message reaches R.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace dftmsn {

/// A neighbour that answered CTS.
struct Candidate {
  NodeId id = kInvalidNode;
  double metric = 0.0;            ///< advertised delivery probability ξ
  std::size_t buffer_space = 0;   ///< B(F) it reported
  bool is_sink = false;           ///< high-end sink node (ξ = 1)
};

struct Selection {
  std::vector<Candidate> receivers;  ///< Φ, in schedule (ACK-slot) order
  double aggregate_probability = 0.0;
};

/// Implements the paper's pseudo-code. `sender_metric` is ξ_i,
/// `message_ftd` is F_i^M, `threshold_r` is R. Candidates may arrive in
/// any order; they are sorted by decreasing metric internally.
Selection select_receivers(double sender_metric, double message_ftd,
                           double threshold_r,
                           std::vector<Candidate> candidates);

}  // namespace dftmsn
