// Fault-tolerance-degree arithmetic (Sec. 3.1.2, Eqs. 2-3). The FTD of a
// message copy is the probability that at least one *other* copy reaches
// a sink; importance decreases as FTD grows.
#pragma once

#include <span>

namespace dftmsn {

/// Eq. (2): FTD attached to the copy handed to receiver j when sender i
/// (delivery prob `sender_xi`, current copy FTD `sender_ftd`) multicasts
/// to the receiver set Φ whose delivery probabilities are `phi_xis`.
///   F_j = 1 - (1 - F_i)(1 - ξ_i) · Π_{m∈Φ, m≠j} (1 - ξ_m)
/// `j` indexes into `phi_xis`.
double receiver_copy_ftd(double sender_ftd, double sender_xi,
                         std::span<const double> phi_xis, std::size_t j);

/// Eq. (3): the sender's own copy FTD after the multicast:
///   F_i' = 1 - (1 - F_i) · Π_{m∈Φ} (1 - ξ_m)
double sender_ftd_after_multicast(double sender_ftd,
                                  std::span<const double> phi_xis);

/// Aggregate delivery probability used by the Sec. 3.2.2 selection loop:
///   1 - (1 - F_i) · Π_{m∈Φ} (1 - ξ_m)
/// (identical in form to Eq. 3; named separately for intent).
double aggregate_delivery_probability(double message_ftd,
                                      std::span<const double> phi_xis);

}  // namespace dftmsn
