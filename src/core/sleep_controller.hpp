// Periodic-sleeping optimizer (Sec. 4.1, Eqs. 4-8). Decides how long a
// node sleeps based on its recent transmission success rate ρ and the
// importance-weighted occupancy of its buffer α.
#pragma once

#include <cstddef>
#include <deque>

#include "common/config.hpp"
#include "phy/energy_model.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

class SleepController {
 public:
  /// `radio_switch_time_s` feeds the Eq. (7) break-even bound for T_min.
  SleepController(const SleepConfig& cfg, const EnergyModel& energy,
                  double radio_switch_time_s);

  /// Records the outcome of one working cycle (did the node transmit
  /// successfully?). Keeps the last S cycles.
  void record_cycle(bool transmitted);

  /// ρ_i of Eq. (4): fraction of the last S cycles with a successful
  /// transmission; 1/S when none (so T_i stays finite).
  [[nodiscard]] double rho() const;

  /// α_i of Eq. (5): K^F / K, given the count of queued messages more
  /// important than F̄ and the total buffer capacity K.
  [[nodiscard]] double alpha(std::size_t important_count,
                             std::size_t buffer_capacity) const;

  /// T_i of Eq. (6): max(T_min, T_min · (1/ρ) · 1/(1 - H + α)).
  [[nodiscard]] double sleep_period(std::size_t important_count,
                                    std::size_t buffer_capacity) const;

  /// Effective T_min: Eq. (7) break-even bound, raised to the configured
  /// floor (see DESIGN.md).
  [[nodiscard]] double t_min() const { return t_min_; }

  /// T_max (Eq. 8): Eq. (6) evaluated at the worst case ρ = 1/S, α = 0.
  [[nodiscard]] double t_max() const;

  [[nodiscard]] const SleepConfig& config() const { return cfg_; }

  /// Snapshot: the cycle-outcome history (cfg_/t_min_ are config-derived).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  SleepConfig cfg_;
  double t_min_;
  std::deque<bool> history_;  ///< most recent cycle at the back
};

}  // namespace dftmsn
