// Nodal delivery probability ξ (Sec. 3.1.1, Eq. 1): an EWMA of the
// node's recent ability to push messages toward a sink.
#pragma once

#include "snapshot/snapshot_io.hpp"

namespace dftmsn {

class DeliveryProbability {
 public:
  /// `alpha` in [0,1] is the EWMA weight of Eq. (1); higher = shorter memory.
  explicit DeliveryProbability(double alpha, double initial = 0.0);

  /// Current ξ in [0,1].
  [[nodiscard]] double value() const { return xi_; }

  /// Eq. (1), transmission branch: ξ <- (1-α)ξ + α·ξ_k, where ξ_k is the
  /// delivery probability of the receiver the message went to (1 for a
  /// sink). With multicast we pass the best receiver's ξ (see DESIGN.md).
  void on_transmission(double receiver_xi);

  /// Eq. (1), timeout branch: ξ <- (1-α)ξ. Called when the no-transmission
  /// timer (interval Δ) expires.
  void on_timeout();

  [[nodiscard]] double alpha() const { return alpha_; }

  /// Snapshot: ξ only (α is config-derived).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  double alpha_;
  double xi_;
};

}  // namespace dftmsn
