#include "core/ftd.hpp"

#include <algorithm>
#include <stdexcept>

namespace dftmsn {
namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

double receiver_copy_ftd(double sender_ftd, double sender_xi,
                         std::span<const double> phi_xis, std::size_t j) {
  if (j >= phi_xis.size())
    throw std::out_of_range("receiver_copy_ftd: j outside Φ");
  double survive = (1.0 - clamp01(sender_ftd)) * (1.0 - clamp01(sender_xi));
  for (std::size_t m = 0; m < phi_xis.size(); ++m) {
    if (m == j) continue;
    survive *= 1.0 - clamp01(phi_xis[m]);
  }
  return 1.0 - survive;
}

double sender_ftd_after_multicast(double sender_ftd,
                                  std::span<const double> phi_xis) {
  double survive = 1.0 - clamp01(sender_ftd);
  for (const double xi : phi_xis) survive *= 1.0 - clamp01(xi);
  return 1.0 - survive;
}

double aggregate_delivery_probability(double message_ftd,
                                      std::span<const double> phi_xis) {
  return sender_ftd_after_multicast(message_ftd, phi_xis);
}

}  // namespace dftmsn
