#include "core/receiver_selection.hpp"

#include <algorithm>

#include "core/ftd.hpp"

namespace dftmsn {

Selection select_receivers(double sender_metric, double message_ftd,
                           double threshold_r,
                           std::vector<Candidate> candidates) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.metric > b.metric;
                   });

  Selection out;
  std::vector<double> xis;
  for (const Candidate& c : candidates) {
    if (c.metric > sender_metric && c.buffer_space > 0) {
      out.receivers.push_back(c);
      xis.push_back(c.metric);
    }
    out.aggregate_probability = aggregate_delivery_probability(message_ftd, xis);
    if (out.aggregate_probability > threshold_r) break;
  }
  return out;
}

}  // namespace dftmsn
