// CTS contention-window optimizer (Sec. 4.3, Eq. 14). With n qualified
// neighbours each picking a uniform slot in [1, W], the probability that
// all slots are distinct is the birthday-problem permanent
//   C(W, n) · n! / Wⁿ = W! / ((W-n)! · Wⁿ),
// and γ_o is its complement. The optimizer returns the smallest W meeting
// a target γ_o.
#pragma once

namespace dftmsn {

class CtsWindowOptimizer {
 public:
  /// γ_o of Eq. (14) for `n` repliers in a window of `W` slots.
  /// n <= 1 yields 0; n > W yields 1 (pigeonhole).
  static double collision_probability(int window, int repliers);

  /// Smallest W in [max(1, repliers), cap] with γ_o <= target; `cap` if
  /// unattainable.
  static int min_window(int repliers, double target, int cap);

  /// Expected number of repliers whose CTS survives (lands in a slot no
  /// one else picked): n · ((W-1)/W)^(n-1). Used by tests and benches.
  static double expected_survivors(int window, int repliers);
};

}  // namespace dftmsn
