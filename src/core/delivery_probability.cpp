#include "core/delivery_probability.hpp"

#include <algorithm>
#include <stdexcept>

namespace dftmsn {

DeliveryProbability::DeliveryProbability(double alpha, double initial)
    : alpha_(alpha), xi_(initial) {
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("DeliveryProbability: alpha outside [0,1]");
  if (initial < 0.0 || initial > 1.0)
    throw std::invalid_argument("DeliveryProbability: initial outside [0,1]");
}

void DeliveryProbability::on_transmission(double receiver_xi) {
  const double rx = std::clamp(receiver_xi, 0.0, 1.0);
  xi_ = (1.0 - alpha_) * xi_ + alpha_ * rx;
}

void DeliveryProbability::on_timeout() { xi_ = (1.0 - alpha_) * xi_; }

void DeliveryProbability::save_state(snapshot::Writer& w) const {
  w.begin_section("delivery_probability");
  w.f64(xi_);
  w.end_section();
}

void DeliveryProbability::load_state(snapshot::Reader& r) {
  r.begin_section("delivery_probability");
  xi_ = r.f64();
  r.end_section();
}

}  // namespace dftmsn
