#include "core/cts_window_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dftmsn {

double CtsWindowOptimizer::collision_probability(int window, int repliers) {
  if (window < 1) throw std::invalid_argument("CtsWindowOptimizer: W < 1");
  if (repliers < 0)
    throw std::invalid_argument("CtsWindowOptimizer: repliers < 0");
  if (repliers <= 1) return 0.0;
  if (repliers > window) return 1.0;
  // All-distinct probability computed multiplicatively to avoid factorial
  // overflow: Π_{k=0}^{n-1} (W-k)/W.
  double distinct = 1.0;
  for (int k = 0; k < repliers; ++k)
    distinct *= static_cast<double>(window - k) / window;
  return std::clamp(1.0 - distinct, 0.0, 1.0);
}

int CtsWindowOptimizer::min_window(int repliers, double target, int cap) {
  const int start = std::max(1, repliers);
  for (int w = start; w <= cap; ++w) {
    if (collision_probability(w, repliers) <= target) return w;
  }
  return cap;
}

double CtsWindowOptimizer::expected_survivors(int window, int repliers) {
  if (window < 1) throw std::invalid_argument("CtsWindowOptimizer: W < 1");
  if (repliers <= 0) return 0.0;
  const double p_alone =
      std::pow(static_cast<double>(window - 1) / window, repliers - 1);
  return repliers * p_alone;
}

}  // namespace dftmsn
