// RTS collision-avoidance optimizer (Sec. 4.2, Eqs. 9-13). Models an
// independent cell of m contenders, each listening for τ_j ~ U{1..σ_j}
// slots with σ_j = ξ_j · τ_max; the shortest listener wins the channel.
// Finds the minimum τ_max keeping the collision probability γ under H.
#pragma once

#include <span>
#include <vector>

namespace dftmsn {

class ListenWindowOptimizer {
 public:
  /// Effective floor on ξ inside Eq. (9). With σ_j = ξ_j·τ_max taken
  /// literally, two contenders with ξ ≈ 0 both get σ = 1 and collide on
  /// *every* attempt, deadlocking a contact window. Flooring the metric
  /// keeps the paper's lower-ξ-listens-less property while letting the
  /// τ_max optimizer restore randomization (see DESIGN.md).
  static constexpr double kXiFloor = 0.1;

  /// σ_j of Eq. (9), quantized to slots and clamped to >= 1.
  static int sigma(double xi, int tau_max);

  /// P_i of Eq. (10): probability that contender `i` (index into `xis`)
  /// grasps the channel, i.e. its listen period strictly undercuts every
  /// other contender's.
  static double grasp_probability(std::span<const double> xis, std::size_t i,
                                  int tau_max);

  /// γ of Eq. (12): probability that no contender uniquely grasps the
  /// channel (two or more tie on the minimum slot).
  static double collision_probability(std::span<const double> xis,
                                      int tau_max);

  /// Eq. (13): smallest τ_max in [1, cap] with γ <= target; returns `cap`
  /// if the target is unattainable (γ still decreases monotonically).
  static int min_tau_max(std::span<const double> xis, double target, int cap);

  /// Monte-Carlo estimate of γ for validation (`draws` independent cells,
  /// `rng01` must yield U[0,1) numbers).
  template <typename Rng>
  static double collision_probability_mc(std::span<const double> xis,
                                         int tau_max, int draws, Rng&& rng01) {
    if (xis.size() < 2) return 0.0;
    int collisions = 0;
    std::vector<int> sigmas;
    sigmas.reserve(xis.size());
    for (const double xi : xis) sigmas.push_back(sigma(xi, tau_max));
    for (int d = 0; d < draws; ++d) {
      int best = 1 << 30;
      int best_count = 0;
      for (const int s : sigmas) {
        const int tau = 1 + static_cast<int>(rng01() * s);
        if (tau < best) {
          best = tau;
          best_count = 1;
        } else if (tau == best) {
          ++best_count;
        }
      }
      if (best_count != 1) ++collisions;
    }
    return static_cast<double>(collisions) / draws;
  }
};

}  // namespace dftmsn
