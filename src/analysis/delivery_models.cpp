#include "analysis/delivery_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dftmsn {

double direct_delivery_probability(double lambda_sink, double residual_s) {
  if (lambda_sink < 0) throw std::invalid_argument("direct: lambda < 0");
  if (residual_s <= 0) return 0.0;
  return 1.0 - std::exp(-lambda_sink * residual_s);
}

double direct_delivery_ratio(double lambda_sink, double horizon_s) {
  if (lambda_sink < 0) throw std::invalid_argument("direct: lambda < 0");
  if (horizon_s <= 0) throw std::invalid_argument("direct: horizon <= 0");
  const double lt = lambda_sink * horizon_s;
  if (lt < 1e-12) return 0.0;
  return 1.0 - (1.0 - std::exp(-lt)) / lt;
}

double direct_delivery_ratio_heterogeneous(std::span<const double> lambdas,
                                           double horizon_s) {
  if (lambdas.empty())
    throw std::invalid_argument("direct heterogeneous: empty population");
  double sum = 0.0;
  for (const double lambda : lambdas)
    sum += direct_delivery_ratio(lambda, horizon_s);
  return sum / static_cast<double>(lambdas.size());
}

double epidemic_delivery_probability(double beta, double lambda_sink,
                                     std::size_t carriers,
                                     double residual_s, double dt) {
  if (beta < 0 || lambda_sink < 0)
    throw std::invalid_argument("epidemic: negative rate");
  if (carriers == 0) throw std::invalid_argument("epidemic: no carriers");
  if (dt <= 0) throw std::invalid_argument("epidemic: dt <= 0");
  if (residual_s <= 0) return 0.0;

  const double n = static_cast<double>(carriers);
  double infected = 1.0;      // the source holds the first copy
  double log_survive = 0.0;   // log P(no copy has met a sink yet)
  for (double t = 0.0; t < residual_s; t += dt) {
    const double step = std::min(dt, residual_s - t);
    log_survive -= lambda_sink * infected * step;
    infected += beta * infected * (n - infected) * step;
    infected = std::min(infected, n);
  }
  return 1.0 - std::exp(log_survive);
}

double epidemic_delivery_ratio(double beta, double lambda_sink,
                               std::size_t carriers, double horizon_s,
                               double dt) {
  if (horizon_s <= 0) throw std::invalid_argument("epidemic: horizon <= 0");
  // Average P(delivered | residual = horizon - g) over g ~ U[0, horizon],
  // sampled at 32 quadrature points.
  constexpr int kPoints = 32;
  double sum = 0.0;
  for (int i = 0; i < kPoints; ++i) {
    const double residual = horizon_s * (i + 0.5) / kPoints;
    sum += epidemic_delivery_probability(beta, lambda_sink, carriers,
                                         residual, dt);
  }
  return sum / kPoints;
}

double estimate_pairwise_contact_rate(std::size_t episodes,
                                      std::size_t nodes, double horizon_s) {
  if (nodes < 2) throw std::invalid_argument("contact rate: nodes < 2");
  if (horizon_s <= 0) throw std::invalid_argument("contact rate: horizon");
  const double pairs = static_cast<double>(nodes) *
                       static_cast<double>(nodes - 1) / 2.0;
  return static_cast<double>(episodes) / (pairs * horizon_s);
}

}  // namespace dftmsn
