// Analytic delivery models for the two basic schemes the authors analyzed
// with queuing models in their prior work ([5]: direct transmission and
// flooding), in the standard exponential inter-contact framework of DTN
// theory. Used to sanity-check the simulator (bench/model_validation) and
// to size scenarios without running them.
#pragma once

#include <cstddef>
#include <span>

namespace dftmsn {

/// Direct transmission: a source holds its message until it meets a sink;
/// sink meetings form a Poisson process with rate `lambda_sink` (1/s).
/// Probability that a single message, generated at time g, is delivered
/// by the horizon T: 1 - exp(-λ (T - g)).
double direct_delivery_probability(double lambda_sink, double residual_s);

/// Expected delivery ratio over messages generated uniformly in [0, T]:
///   1 - (1 - e^{-λT}) / (λT).
double direct_delivery_ratio(double lambda_sink, double horizon_s);

/// Heterogeneous-population version: each source has its own
/// sink-contact rate (equal traffic per source). By Jensen's inequality
/// this is strictly below the homogeneous formula at the mean rate —
/// the quantitative reason the mean-field model overestimates DFT-MSN
/// direct delivery when contact rates are skewed.
double direct_delivery_ratio_heterogeneous(std::span<const double> lambdas,
                                           double horizon_s);

/// Epidemic (flooding) delivery probability for one message in a
/// population of `n` potential carriers, pairwise contact rate `beta`
/// (1/s per pair) and per-carrier sink-contact rate `lambda_sink`:
/// infection spreads as dI/dt = beta·I·(n−I); delivery hazard is
/// λ·I(t). Evaluated by explicit integration over `residual_s` seconds
/// with step `dt`.
double epidemic_delivery_probability(double beta, double lambda_sink,
                                     std::size_t carriers,
                                     double residual_s, double dt = 1.0);

/// Expected epidemic delivery ratio over uniform generation in [0, T]
/// (numeric average of the probability above).
double epidemic_delivery_ratio(double beta, double lambda_sink,
                               std::size_t carriers, double horizon_s,
                               double dt = 1.0);

/// Pairwise contact-rate estimate from observed totals: `episodes`
/// completed contacts among `nodes` nodes over `horizon_s` seconds
/// => β = episodes / (C(nodes,2) · horizon).
double estimate_pairwise_contact_rate(std::size_t episodes,
                                      std::size_t nodes, double horizon_s);

}  // namespace dftmsn
