#include "analysis/lifetime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dftmsn {

double BatteryModel::lifetime_s(double mean_power_w) const {
  if (mean_power_w < 0)
    throw std::invalid_argument("BatteryModel: negative power");
  if (mean_power_w == 0) return std::numeric_limits<double>::infinity();
  return capacity_joules / mean_power_w;
}

LifetimeStats estimate_lifetimes(const BatteryModel& battery,
                                 const std::vector<double>& mean_power_w,
                                 double death_fraction) {
  if (mean_power_w.empty())
    throw std::invalid_argument("estimate_lifetimes: empty population");
  if (death_fraction <= 0.0 || death_fraction > 1.0)
    throw std::invalid_argument("estimate_lifetimes: bad death fraction");

  std::vector<double> lifetimes;
  lifetimes.reserve(mean_power_w.size());
  for (const double p : mean_power_w)
    lifetimes.push_back(battery.lifetime_s(p));
  std::sort(lifetimes.begin(), lifetimes.end());

  LifetimeStats out;
  out.min_s = lifetimes.front();
  out.median_s = lifetimes[lifetimes.size() / 2];
  out.max_s = lifetimes.back();
  // Network lifetime: the death_fraction-quantile death time (the k-th
  // node death where k = ceil(fraction * n)).
  const auto k = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(
          0, static_cast<std::ptrdiff_t>(
                 std::ceil(death_fraction *
                           static_cast<double>(lifetimes.size()))) -
                 1));
  out.network_lifetime_s = lifetimes[std::min(k, lifetimes.size() - 1)];
  return out;
}

}  // namespace dftmsn
