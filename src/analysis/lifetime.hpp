// Battery-lifetime estimation: the paper's Sec. 4 motivation is
// "prolonging the lifetime of individual sensors and accordingly the
// entire DFT-MSN". This module turns measured per-node power rates into
// lifetime estimates under a finite battery budget.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace dftmsn {

/// A coin-cell/AA-class energy budget. Default: 2 x AA alkaline
/// (~2800 mAh at 3 V) with 70% usable capacity ~ 21 kJ.
struct BatteryModel {
  double capacity_joules = 21'000.0;

  /// Lifetime in seconds at a constant power draw (watts).
  [[nodiscard]] double lifetime_s(double mean_power_w) const;
};

struct LifetimeStats {
  double min_s = 0.0;          ///< first node to die
  double median_s = 0.0;
  double max_s = 0.0;
  double network_lifetime_s = 0.0;  ///< time until `death_fraction` died
};

/// Per-node lifetimes from measured mean power draws (watts), plus the
/// network lifetime defined as the instant a `death_fraction` of nodes
/// has exhausted its battery (paper-style network-level metric).
LifetimeStats estimate_lifetimes(const BatteryModel& battery,
                                 const std::vector<double>& mean_power_w,
                                 double death_fraction = 0.2);

}  // namespace dftmsn
