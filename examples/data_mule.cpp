// Data-MULE scenario (Sec. 2, category 2 of the paper's survey): mostly
// static environmental sensors, no fixed sink in radio range of anyone —
// instead a mule-carried sink (a bus) patrols a fixed circuit and picks
// data up opportunistically.
//
// This example shows the library's low-level API: hand-assembling a
// world from MobilityManager + Channel + CrossLayerMac + SinkNode with a
// custom mobility model (PatrolMobility), something the high-level World
// does not do for you.
//
//   ./data_mule [duration_seconds]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "mobility/mobility_manager.hpp"
#include "mobility/patrol_mobility.hpp"
#include "mobility/zone_mobility.hpp"
#include "node/sink_node.hpp"
#include "phy/channel.hpp"
#include "protocol/crosslayer_mac.hpp"
#include "protocol/protocol_factory.hpp"
#include "traffic/poisson_source.hpp"

using namespace dftmsn;

int main(int argc, char** argv) {
  Config cfg;
  cfg.scenario.duration_s = argc > 1 ? std::atof(argv[1]) : 20'000.0;
  const int kSensors = 60;
  const NodeId kMuleId = kSensors;  // the mule-carried sink

  Simulator sim;
  EnergyModel energy(cfg.power);
  RandomSource rngs(424242);
  ZoneGrid grid(cfg.scenario.field_m, cfg.scenario.zones_per_side);
  MobilityManager mobility(sim, cfg.scenario.mobility_step_s);
  Metrics metrics(0.0);
  MessageIdAllocator ids;

  // Sensors: near-static (speed <= 0.3 m/s), scattered over the field.
  RandomStream place = rngs.stream("placement");
  ZoneMobility::Params slow;
  slow.speed_min = 0.0;
  slow.speed_max = 0.3;
  for (NodeId i = 0; i < static_cast<NodeId>(kSensors); ++i) {
    const Vec2 start{place.uniform(0.0, grid.field_edge()),
                     place.uniform(0.0, grid.field_edge())};
    mobility.add_node(i, std::make_unique<ZoneMobility>(
                             grid, slow, start, rngs.stream("mob", i)));
  }

  // The mule: a bus looping the field perimeter at 8 m/s, pausing 30 s at
  // each corner "stop".
  const double e = grid.field_edge();
  mobility.add_node(
      kMuleId, std::make_unique<PatrolMobility>(
                   std::vector<Vec2>{{5, 5}, {e - 5, 5}, {e - 5, e - 5},
                                     {5, e - 5}},
                   8.0, 30.0));

  Channel channel(sim, mobility, cfg.radio.range_m, cfg.radio.bandwidth_bps);

  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::unique_ptr<FtdQueue>> queues;
  std::vector<std::unique_ptr<CrossLayerMac>> macs;
  std::vector<std::unique_ptr<PoissonSource>> sources;
  for (NodeId i = 0; i < static_cast<NodeId>(kSensors); ++i) {
    radios.push_back(
        std::make_unique<Radio>(sim, energy, cfg.radio.switch_time_s));
    queues.push_back(
        std::make_unique<FtdQueue>(cfg.protocol.queue_capacity));
    macs.push_back(std::make_unique<CrossLayerMac>(
        i, sim, channel, *radios[i], *queues[i],
        make_strategy(ProtocolKind::kOpt, cfg), cfg,
        make_mac_options(ProtocolKind::kOpt, cfg), kMuleId, metrics,
        rngs.stream("mac", i)));
    channel.attach(i, *radios[i], *macs[i]);
    CrossLayerMac* mac = macs.back().get();
    sources.push_back(std::make_unique<PoissonSource>(
        sim, ids, i, cfg.scenario.data_interval_s, cfg.radio.data_bits,
        rngs.stream("traffic", i), [mac, &metrics](Message m) {
          metrics.on_generated(m);
          mac->enqueue(m);
        }));
  }
  SinkNode mule(kMuleId, sim, channel, energy, cfg, metrics,
                rngs.stream("sink"));
  channel.attach(kMuleId, mule.radio(), mule);

  mobility.start();
  for (auto& m : macs) m->start();
  for (auto& s : sources) s->start();

  std::cout << "Data-MULE: " << kSensors
            << " near-static sensors, one bus-mounted sink patrolling the "
               "perimeter ("
            << cfg.scenario.duration_s << " s)\n\n";

  sim.run_until(cfg.scenario.duration_s);

  double joules = 0.0;
  for (auto& r : radios) {
    r->finalize_energy(sim.now());
    joules += r->meter().total_joules();
  }
  std::cout << "messages generated : " << metrics.generated()
            << "\nmessages collected : " << metrics.delivered_unique() << " ("
            << metrics.delivery_ratio() * 100.0 << " %)"
            << "\nmean pickup delay  : " << metrics.mean_delay_s() << " s"
            << "\nmean relay hops    : " << metrics.mean_hops()
            << "\nmean sensor power  : "
            << joules / sim.now() / kSensors * 1e3 << " mW\n\n";
  std::cout << "Sensors near the patrol route deliver directly; interior\n"
               "sensors rely on the delivery-probability gradient that\n"
               "forms toward the route — the cross-layer protocol turns a\n"
               "single mule into whole-field coverage.\n";
  return 0;
}
