// Pervasive air-quality monitoring — the paper's first motivating
// application (Sec. 1): wearable sensors on people sample the toxic gas
// they inhale; a few high-end sinks at strategic locations collect the
// samples opportunistically.
//
// This example builds a district-scale scenario with sinks pinned to
// zone centres (bus stops / transit hubs), runs the OPT protocol, and
// reports coverage fairness: how evenly the population's exposure samples
// reach the information base.
//
//   ./air_quality_monitoring [duration_seconds]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "experiment/world.hpp"
#include "geom/zone_grid.hpp"

using namespace dftmsn;

int main(int argc, char** argv) {
  Config config;
  config.scenario.num_sensors = 120;   // one sensor per participant
  config.scenario.num_sinks = 4;
  config.scenario.field_m = 200.0;     // a city district
  config.scenario.zones_per_side = 5;  // 40 m blocks
  config.scenario.data_interval_s = 90.0;  // one exposure sample / 1.5 min
  config.scenario.duration_s = argc > 1 ? std::atof(argv[1]) : 10'000.0;
  config.scenario.seed = 20260706;

  std::cout << "Air-quality monitoring: " << config.scenario.num_sensors
            << " wearable sensors, " << config.scenario.num_sinks
            << " collection points, " << config.scenario.duration_s
            << " s simulated\n";

  World world(config, ProtocolKind::kOpt);
  world.run();

  const Metrics& m = world.metrics();
  std::cout << "\nsamples generated : " << m.generated()
            << "\nsamples collected : " << m.delivered_unique() << " ("
            << m.delivery_ratio() * 100.0 << " %)"
            << "\nmean staleness    : " << m.mean_delay_s() << " s"
            << "\nmean relay hops   : " << m.mean_hops()
            << "\nmean sensor power : " << world.mean_sensor_power_mw()
            << " mW\n";

  // Coverage fairness: per-participant collection ratio distribution.
  std::vector<double> ratios;
  for (const auto& [source, counts] : m.per_source()) {
    if (counts.generated > 0) {
      ratios.push_back(static_cast<double>(counts.delivered) /
                       static_cast<double>(counts.generated));
    }
  }
  std::sort(ratios.begin(), ratios.end());
  const auto pct = [&](double p) {
    return ratios.empty()
               ? 0.0
               : ratios[static_cast<std::size_t>(p * (ratios.size() - 1))];
  };
  std::cout << "\nper-participant collection ratio:"
            << "\n  p10 = " << pct(0.10) * 100.0 << " %"
            << "\n  p50 = " << pct(0.50) * 100.0 << " %"
            << "\n  p90 = " << pct(0.90) * 100.0 << " %\n";

  const std::size_t starved =
      static_cast<std::size_t>(std::count_if(ratios.begin(), ratios.end(),
                                             [](double r) { return r < 0.2; }));
  std::cout << "participants with <20% coverage: " << starved << " / "
            << ratios.size()
            << "  (relaying rescues low-mobility participants)\n";
  return 0;
}
