// Flu-virus tracking — the paper's second motivating application (Sec. 1):
// sensors worn by people collect flu-virus samples; the information base
// is updated periodically, so data is useful as long as it arrives within
// an epidemiological reporting window.
//
// This example runs the scenario incrementally and reports, at each
// reporting deadline, how much of the data generated in the last window
// has already arrived — contrasting the cross-layer protocol against
// DIRECT transmission (no relaying).
//
//   ./flu_tracking [windows]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "experiment/world.hpp"

using namespace dftmsn;

namespace {

void run_protocol(ProtocolKind kind, int windows, double window_s) {
  Config config;
  config.scenario.num_sensors = 100;
  config.scenario.num_sinks = 2;  // clinic + pharmacy collection points
  config.scenario.duration_s = windows * window_s;
  config.scenario.seed = 7;

  World world(config, kind);
  std::cout << "\n--- " << protocol_kind_name(kind) << " ---\n";
  std::cout << std::setw(10) << "window" << std::setw(14) << "generated"
            << std::setw(14) << "collected" << std::setw(12) << "ratio%"
            << std::setw(12) << "delay(s)" << '\n';

  std::uint64_t prev_gen = 0, prev_del = 0;
  for (int wdw = 1; wdw <= windows; ++wdw) {
    world.run_until(wdw * window_s);
    const Metrics& m = world.metrics();
    const std::uint64_t gen = m.generated() - prev_gen;
    const std::uint64_t del = m.delivered_unique() - prev_del;
    prev_gen = m.generated();
    prev_del = m.delivered_unique();
    std::cout << std::setw(10) << wdw << std::setw(14) << gen
              << std::setw(14) << del << std::setw(12) << std::fixed
              << std::setprecision(1)
              << (gen ? 100.0 * static_cast<double>(del) /
                            static_cast<double>(gen)
                      : 0.0)
              << std::setw(12) << std::setprecision(0) << m.mean_delay_s()
              << '\n';
  }
  const Metrics& m = world.metrics();
  std::cout << "total: " << m.delivered_unique() << "/" << m.generated()
            << " samples (" << std::setprecision(1)
            << m.delivery_ratio() * 100.0 << " %), mean sensor power "
            << std::setprecision(3) << world.mean_sensor_power_mw()
            << " mW\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int windows = argc > 1 ? std::atoi(argv[1]) : 5;
  const double window_s = 2000.0;

  std::cout << "Flu-virus tracking: periodic information-base updates every "
            << window_s << " s over " << windows << " windows.\n"
            << "Note: collections within a window can include samples "
               "generated in earlier windows (delay tolerance).";

  run_protocol(ProtocolKind::kOpt, windows, window_s);
  run_protocol(ProtocolKind::kDirect, windows, window_s);
  return 0;
}
