// Quickstart: build the paper's default DFT-MSN scenario (100 wearable
// sensors, 3 sinks, 150x150 m field), run the OPT protocol for a short
// horizon, and print the headline metrics.
//
//   ./quickstart [duration_seconds]
#include <cstdlib>
#include <iostream>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"

int main(int argc, char** argv) {
  dftmsn::Config config;  // paper defaults (Sec. 5)
  config.scenario.duration_s = argc > 1 ? std::atof(argv[1]) : 2000.0;
  config.scenario.seed = 1;

  std::cout << "DFT-MSN quickstart: " << config.scenario.num_sensors
            << " sensors, " << config.scenario.num_sinks << " sinks, "
            << config.scenario.field_m << " m field, "
            << config.scenario.duration_s << " s simulated\n\n";

  const dftmsn::RunResult r =
      dftmsn::run_once(config, dftmsn::ProtocolKind::kOpt);

  std::cout << "delivery ratio     : " << r.delivery_ratio * 100.0 << " %\n"
            << "mean nodal power   : " << r.mean_power_mw << " mW\n"
            << "mean delivery delay: " << r.mean_delay_s << " s\n"
            << "mean hops          : " << r.mean_hops << "\n"
            << "messages generated : " << r.generated << "\n"
            << "messages delivered : " << r.delivered << "\n"
            << "data transmissions : " << r.data_transmissions << "\n"
            << "collisions         : " << r.collisions << "\n"
            << "sim events         : " << r.events_executed << "\n";
  return 0;
}
