// Connectivity fingerprint of a DFT-MSN scenario: runs the default world
// with a ContactProbe attached and reports contact / inter-contact
// statistics plus the per-node sink-contact rate distribution — the
// ground-truth heterogeneity that the protocol's delivery probability ξ
// is designed to learn (and that makes relaying worthwhile at all).
//
//   ./connectivity_report [duration_seconds]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "experiment/world.hpp"
#include "trace/contact_analysis.hpp"
#include "trace/contact_probe.hpp"
#include "trace/recorder.hpp"

using namespace dftmsn;

int main(int argc, char** argv) {
  Config config;
  config.scenario.duration_s = argc > 1 ? std::atof(argv[1]) : 10'000.0;
  config.scenario.seed = 11;

  World world(config, ProtocolKind::kOpt);
  TraceRecorder trace;
  ContactProbe probe(world.sim(), world.mobility(), config.radio.range_m,
                     1.0, trace);
  probe.start();
  world.run();
  probe.finish();

  const ContactStats stats =
      analyze_contacts(trace.events(), world.first_sink_id());

  std::cout << "Connectivity fingerprint (" << config.scenario.num_sensors
            << " sensors, " << config.scenario.num_sinks << " sinks, "
            << config.scenario.duration_s << " s):\n\n"
            << "contact episodes     : " << stats.contacts << "\n"
            << "mean contact duration: " << stats.duration_s.mean() << " s (max "
            << stats.duration_s.max() << ")\n"
            << "mean inter-contact   : " << stats.inter_contact_s.mean()
            << " s\n";

  const auto rates =
      sink_contact_rates(stats, world.first_sink_id(),
                         world.first_sink_id(), config.scenario.duration_s);
  std::vector<double> per_hour;
  std::size_t never = 0;
  for (const auto& [node, r] : rates) {
    per_hour.push_back(r * 3600.0);
    never += r == 0.0 ? 1 : 0;
  }
  std::sort(per_hour.begin(), per_hour.end());
  const auto pct = [&](double p) {
    return per_hour[static_cast<std::size_t>(p * (per_hour.size() - 1))];
  };
  std::cout << "\nper-sensor sink contacts per hour:"
            << "\n  p10 = " << pct(0.10) << "\n  p50 = " << pct(0.50)
            << "\n  p90 = " << pct(0.90)
            << "\n  sensors that never met a sink: " << never << " / "
            << per_hour.size() << "\n\n";
  std::cout << "The wide p10-p90 spread is the per-node heterogeneity the\n"
               "delivery-probability gradient exploits: low-rate sensors\n"
               "depend on high-rate ones to relay their data.\n";

  // Delivery cross-check: messages from never-contact sensors can only
  // arrive via relays.
  const auto& per_source = world.metrics().per_source();
  std::uint64_t rescued = 0;
  for (const auto& [node, r] : rates) {
    if (r > 0.0) continue;
    const auto it = per_source.find(node);
    if (it != per_source.end()) rescued += it->second.delivered;
  }
  std::cout << "messages delivered for never-met-a-sink sensors: " << rescued
            << " (all via relaying)\n";
  return 0;
}
