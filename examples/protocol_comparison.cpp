// Side-by-side comparison of every implemented delivery protocol on the
// paper's default scenario: the four evaluated variants (OPT, NOOPT,
// NOSLEEP, ZBR) plus the two classic DTN baselines (DIRECT, EPIDEMIC).
//
//   ./protocol_comparison [duration_seconds]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "experiment/runner.hpp"

using namespace dftmsn;

int main(int argc, char** argv) {
  Config config;
  config.scenario.duration_s = argc > 1 ? std::atof(argv[1]) : 8000.0;
  config.scenario.seed = 99;

  std::cout << "Protocol comparison on the default DFT-MSN scenario ("
            << config.scenario.num_sensors << " sensors, "
            << config.scenario.num_sinks << " sinks, "
            << config.scenario.duration_s << " s):\n\n";

  std::cout << std::setw(10) << "protocol" << std::setw(10) << "ratio%"
            << std::setw(12) << "power_mW" << std::setw(11) << "delay_s"
            << std::setw(8) << "hops" << std::setw(12) << "data_tx"
            << std::setw(12) << "collisions" << '\n';

  const std::vector<ProtocolKind> all{
      ProtocolKind::kOpt,    ProtocolKind::kNoOpt,    ProtocolKind::kNoSleep,
      ProtocolKind::kZbr,    ProtocolKind::kDirect,
      ProtocolKind::kEpidemic, ProtocolKind::kSwim};

  for (const ProtocolKind kind : all) {
    const RunResult r = run_once(config, kind);
    std::cout << std::setw(10) << protocol_kind_name(kind) << std::fixed
              << std::setw(10) << std::setprecision(2)
              << r.delivery_ratio * 100.0 << std::setw(12)
              << std::setprecision(3) << r.mean_power_mw << std::setw(11)
              << std::setprecision(1) << r.mean_delay_s << std::setw(8)
              << std::setprecision(2) << r.mean_hops << std::setw(12)
              << r.data_transmissions << std::setw(12) << r.collisions
              << '\n';
  }

  std::cout << "\nExpected shape (paper Fig. 2): OPT leads delivery at the\n"
               "lowest power; NOSLEEP burns an order of magnitude more\n"
               "energy; ZBR delivers least; EPIDEMIC collapses under\n"
               "contention and buffer pressure.\n";
  return 0;
}
