// Fault-scenario regression tests: crashes mid-protocol, sink outages,
// mass die-off. Under every scenario the protocol must degrade gracefully
// (never violate an invariant), and runs must stay deterministic — the
// same seed gives bit-identical summaries for any worker count.
#include <gtest/gtest.h>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "faults/invariant_checker.hpp"

namespace dftmsn {
namespace {

Config small_config(std::uint64_t seed = 1) {
  Config c;
  c.scenario.num_sensors = 30;
  c.scenario.num_sinks = 2;
  c.scenario.duration_s = 1500.0;
  c.scenario.seed = seed;
  return c;
}

void expect_equal_results(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.drops_node_failure, b.drops_node_failure);
  EXPECT_EQ(a.frames_fault_corrupted, b.frames_fault_corrupted);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_DOUBLE_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_DOUBLE_EQ(a.mean_delay_s, b.mean_delay_s);
}

TEST(FaultScenario, CrashesDuringHandshakesKeepInvariants) {
  // A dense staccato of crash/recover cycles across the whole run: many
  // land mid-handshake (between a node's RTS and its ACK window), which
  // peers must absorb through their ordinary timeouts. The invariant
  // checker runs after every event.
  Config c = small_config(21);
  c.faults.check_invariants = true;
  c.faults.plan =
      "crash@150:frac=0.2,for=100;crash@350:frac=0.3,for=150;"
      "crash@600:frac=0.25,for=100;crash@850:frac=0.3,for=200;"
      "crash@1200:frac=0.2,for=100";
  World w(c, ProtocolKind::kOpt);
  EXPECT_NO_THROW(w.run());
  const FaultInjector::Counters& fc = w.fault_injector()->counters();
  EXPECT_GT(fc.crashes, 0u);
  EXPECT_EQ(fc.recoveries, fc.crashes);  // every for= window closed in time
  const double ratio = w.metrics().delivery_ratio();
  EXPECT_GE(ratio, 0.0);
  EXPECT_LE(ratio, 1.0);
}

TEST(FaultScenario, CrashedNodesStayDownUntilRecovery) {
  Config c = small_config(22);
  c.faults.plan = "crash@200:node=4;outage@200:node=9,for=400;recover@700:node=4";
  World w(c, ProtocolKind::kOpt);

  w.run_until(300.0);
  EXPECT_TRUE(w.sensors()[4]->down());
  EXPECT_TRUE(w.sensors()[9]->down());
  // The hard crash wiped node 4's buffer; the outage preserved node 9's.
  EXPECT_TRUE(w.sensors()[4]->queue().empty());

  w.run_until(800.0);
  EXPECT_FALSE(w.sensors()[4]->down());
  EXPECT_FALSE(w.sensors()[9]->down());
  EXPECT_NO_THROW(w.run());
}

TEST(FaultScenario, SinkOutageDegradesDelivery) {
  // One sink, knocked out for most of the run: messages must pile up (or
  // die) instead of being delivered, so delivery strictly degrades
  // relative to the fault-free twin of the same seed.
  Config c = small_config(23);
  c.scenario.num_sinks = 1;
  Config faulty = c;
  faulty.faults.plan = "outage@100:node=30,for=1300";
  faulty.faults.check_invariants = true;

  const RunResult baseline = run_once(c, ProtocolKind::kOpt);
  const RunResult degraded = run_once(faulty, ProtocolKind::kOpt);
  EXPECT_GT(baseline.delivered, 0u);
  EXPECT_LT(degraded.delivered, baseline.delivered);
}

TEST(FaultScenario, MassDieOffDegradesButStaysSane) {
  // The acceptance scenario: half the sensors die at T/2 and stay dead.
  Config c = small_config(24);
  Config faulty = c;
  faulty.faults.plan = "crash@750:frac=0.5";
  faulty.faults.check_invariants = true;

  const RunResult baseline = run_once(c, ProtocolKind::kOpt);
  const RunResult degraded = run_once(faulty, ProtocolKind::kOpt);

  // 15 sensors crashed; their buffered copies were lost, their sensing
  // stopped, and no invariant broke along the way.
  EXPECT_EQ(degraded.faults_injected, 15u);
  EXPECT_GT(degraded.drops_node_failure, 0u);
  EXPECT_LT(degraded.generated, baseline.generated);
  EXPECT_LE(degraded.delivered, baseline.delivered);
  EXPECT_GE(degraded.delivery_ratio, 0.0);
  EXPECT_LE(degraded.delivery_ratio, 1.0);
}

TEST(FaultScenario, LossBurstCorruptsFramesDeterministically) {
  Config c = small_config(25);
  c.faults.plan = "loss@100:prob=0.8,for=600";
  c.faults.check_invariants = true;
  const RunResult a = run_once(c, ProtocolKind::kOpt);
  const RunResult b = run_once(c, ProtocolKind::kOpt);
  EXPECT_GT(a.frames_fault_corrupted, 0u);
  expect_equal_results(a, b);
}

TEST(FaultScenario, BufferPressureForcesOverflowDrops) {
  Config c = small_config(26);
  c.faults.check_invariants = true;  // occupancy <= clamped capacity, too
  Config faulty = c;
  faulty.faults.plan = "pressure@300:frac=1.0,capacity=1,for=1000";

  const RunResult baseline = run_once(c, ProtocolKind::kOpt);
  const RunResult squeezed = run_once(faulty, ProtocolKind::kOpt);
  EXPECT_GT(squeezed.drops_overflow, baseline.drops_overflow);
}

TEST(FaultScenario, SummariesBitIdenticalAcrossJobs) {
  // The acceptance criterion: a faulty, invariant-checked batch reduces
  // to the same bits no matter how many workers execute it.
  Config c = small_config(27);
  c.faults.plan =
      "crash@750:frac=0.3,for=300;loss@200:prob=0.3,for=200;"
      "pressure@500:frac=0.5,capacity=2,for=300";
  c.faults.check_invariants = true;

  std::vector<RunSpec> specs;
  for (std::uint64_t r = 0; r < 4; ++r) {
    RunSpec s;
    s.config = c;
    s.config.scenario.seed = c.scenario.seed + r;
    s.kind = ProtocolKind::kOpt;
    specs.push_back(s);
  }
  const std::vector<RunResult> serial = run_specs(specs, 1);
  const std::vector<RunResult> parallel = run_specs(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_equal_results(serial[i], parallel[i]);
  }
}

TEST(FaultScenario, PlanValidatedAgainstPopulation) {
  Config c = small_config(28);
  c.faults.plan = "crash@100:node=99";  // only 32 nodes exist
  EXPECT_THROW(World(c, ProtocolKind::kOpt), std::invalid_argument);

  c.faults.plan = "pressure@100:node=31,capacity=1,for=10";  // node 31 = sink
  EXPECT_THROW(World(c, ProtocolKind::kOpt), std::invalid_argument);
}

TEST(FaultScenario, AllProtocolsSurviveTheGauntlet) {
  // Every strategy must tolerate the full fault menu with the checker on.
  const ProtocolKind kinds[] = {ProtocolKind::kOpt,      ProtocolKind::kNoOpt,
                                ProtocolKind::kNoSleep,  ProtocolKind::kZbr,
                                ProtocolKind::kDirect,
                                ProtocolKind::kEpidemic, ProtocolKind::kSwim};
  Config c = small_config(29);
  c.scenario.duration_s = 800.0;
  c.faults.plan =
      "outage@100:frac=0.2,for=150;crash@300:frac=0.2,for=200;"
      "loss@50:prob=0.3,for=300;pressure@400:frac=0.3,capacity=2,for=200";
  c.faults.check_invariants = true;
  for (ProtocolKind kind : kinds) {
    SCOPED_TRACE(protocol_kind_name(kind));
    EXPECT_NO_THROW(run_once(c, kind));
  }
}

TEST(FaultScenario, GatedOutProcessDrillsAreTrajectoryInvisible) {
  // On an attempt past its attempts= gate, a segv/abort/die event is
  // scheduled but fires as a no-op — so all three plans (and no plan at
  // all, modulo the event count) must produce the same trajectory. This
  // is what lets a supervisor retry a segv'd replication and get the
  // numbers of a crash-free run.
  Config base = small_config(31);
  base.scenario.duration_s = 800.0;
  base.faults.attempt = 1;  // past the attempts=1 gate

  Config die = base;
  die.faults.plan = "die@300:attempts=1";
  Config segv = base;
  segv.faults.plan = "segv@300:attempts=1";
  Config abrt = base;
  abrt.faults.plan = "abort@300:attempts=1";

  const RunResult rd = run_once(die, ProtocolKind::kOpt);
  const RunResult rs = run_once(segv, ProtocolKind::kOpt);
  const RunResult ra = run_once(abrt, ProtocolKind::kOpt);
  expect_equal_results(rd, rs);
  expect_equal_results(rd, ra);
}

}  // namespace
}  // namespace dftmsn
