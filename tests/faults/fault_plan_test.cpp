// Unit tests of the fault-plan spec parser.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/fault_plan.hpp"

namespace dftmsn {
namespace {

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_TRUE(parse_fault_plan(" ; ;").empty());
}

TEST(FaultPlan, ParsesCompositePlan) {
  const FaultPlan plan = parse_fault_plan(
      "crash@600:frac=0.3,for=200; outage@200:node=5,for=100;"
      "loss@300:prob=0.5,for=50; pressure@400:frac=0.2,capacity=5,for=150;"
      "recover@900:node=7");
  ASSERT_EQ(plan.events.size(), 5u);

  const FaultEvent& crash = plan.events[0];
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(crash.at, 600.0);
  EXPECT_TRUE(crash.targets_fraction());
  EXPECT_DOUBLE_EQ(crash.frac, 0.3);
  EXPECT_DOUBLE_EQ(crash.duration, 200.0);

  const FaultEvent& outage = plan.events[1];
  EXPECT_EQ(outage.kind, FaultKind::kOutage);
  EXPECT_FALSE(outage.targets_fraction());
  EXPECT_EQ(outage.node, 5u);
  EXPECT_DOUBLE_EQ(outage.duration, 100.0);

  const FaultEvent& loss = plan.events[2];
  EXPECT_EQ(loss.kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(loss.prob, 0.5);

  const FaultEvent& pressure = plan.events[3];
  EXPECT_EQ(pressure.kind, FaultKind::kPressure);
  EXPECT_EQ(pressure.capacity, 5u);

  const FaultEvent& recover = plan.events[4];
  EXPECT_EQ(recover.kind, FaultKind::kRecover);
  EXPECT_EQ(recover.node, 7u);
}

TEST(FaultPlan, ToleratesWhitespace) {
  const FaultPlan plan =
      parse_fault_plan("  crash @ 10 : node = 3  ;  loss@2:prob=0.1,for=5 ");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].node, 3u);
}

TEST(FaultPlan, RejectsMalformedEvents) {
  // Each spec violates one grammar or cross-argument rule.
  const char* bad[] = {
      "boom@10:node=1",              // unknown kind
      "crash:node=1",                // missing @time
      "crash@10",                    // missing :args
      "crash@-5:node=1",             // negative time
      "crash@abc:node=1",            // non-numeric time
      "crash@10:prob=0.5",           // crash without a target
      "crash@10:node=1,frac=0.5",    // conflicting targets
      "crash@10:node=-2",            // bad node id
      "recover@10:node=1,for=5",     // recover takes no duration
      "outage@10:node=1",            // outage needs for=
      "outage@10:node=1,for=0",      // non-positive duration
      "loss@10:prob=0.5",            // loss needs for=
      "loss@10:for=5",               // loss needs prob=
      "loss@10:prob=1.5,for=5",      // prob out of range
      "loss@10:node=1,prob=0.5,for=5",  // loss is channel-wide
      "pressure@10:frac=0.5,for=5",  // pressure needs capacity=
      "pressure@10:frac=0.5,capacity=0,for=5",  // capacity >= 1
      "pressure@10:frac=0.5,capacity=4",        // pressure needs for=
      "crash@10:frac=1.5",           // frac out of range
      "crash@10:node",               // arg without '='
      "crash@10:bogus=1,node=2",     // unknown argument
  };
  for (const char* spec : bad)
    EXPECT_THROW(parse_fault_plan(spec), std::invalid_argument) << spec;
}

TEST(FaultPlan, ErrorMessagesNameTheOffendingEvent) {
  try {
    parse_fault_plan("crash@10:node=1;outage@20:node=2");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("outage@20:node=2"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace dftmsn
