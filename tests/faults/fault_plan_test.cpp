// Unit tests of the fault-plan spec parser.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/fault_plan.hpp"

namespace dftmsn {
namespace {

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_TRUE(parse_fault_plan(" ; ;").empty());
}

TEST(FaultPlan, ParsesCompositePlan) {
  const FaultPlan plan = parse_fault_plan(
      "crash@600:frac=0.3,for=200; outage@200:node=5,for=100;"
      "loss@300:prob=0.5,for=50; pressure@400:frac=0.2,capacity=5,for=150;"
      "recover@900:node=7");
  ASSERT_EQ(plan.events.size(), 5u);

  const FaultEvent& crash = plan.events[0];
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(crash.at, 600.0);
  EXPECT_TRUE(crash.targets_fraction());
  EXPECT_DOUBLE_EQ(crash.frac, 0.3);
  EXPECT_DOUBLE_EQ(crash.duration, 200.0);

  const FaultEvent& outage = plan.events[1];
  EXPECT_EQ(outage.kind, FaultKind::kOutage);
  EXPECT_FALSE(outage.targets_fraction());
  EXPECT_EQ(outage.node, 5u);
  EXPECT_DOUBLE_EQ(outage.duration, 100.0);

  const FaultEvent& loss = plan.events[2];
  EXPECT_EQ(loss.kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(loss.prob, 0.5);

  const FaultEvent& pressure = plan.events[3];
  EXPECT_EQ(pressure.kind, FaultKind::kPressure);
  EXPECT_EQ(pressure.capacity, 5u);

  const FaultEvent& recover = plan.events[4];
  EXPECT_EQ(recover.kind, FaultKind::kRecover);
  EXPECT_EQ(recover.node, 7u);
}

TEST(FaultPlan, ToleratesWhitespace) {
  const FaultPlan plan =
      parse_fault_plan("  crash @ 10 : node = 3  ;  loss@2:prob=0.1,for=5 ");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].node, 3u);
}

TEST(FaultPlan, RejectsMalformedEvents) {
  // Each spec violates one grammar or cross-argument rule.
  const char* bad[] = {
      "boom@10:node=1",              // unknown kind
      "crash:node=1",                // missing @time
      "crash@10",                    // missing :args
      "crash@-5:node=1",             // negative time
      "crash@abc:node=1",            // non-numeric time
      "crash@10:prob=0.5",           // crash without a target
      "crash@10:node=1,frac=0.5",    // conflicting targets
      "crash@10:node=-2",            // bad node id
      "recover@10:node=1,for=5",     // recover takes no duration
      "outage@10:node=1",            // outage needs for=
      "outage@10:node=1,for=0",      // non-positive duration
      "loss@10:prob=0.5",            // loss needs for=
      "loss@10:for=5",               // loss needs prob=
      "loss@10:prob=1.5,for=5",      // prob out of range
      "loss@10:node=1,prob=0.5,for=5",  // loss is channel-wide
      "pressure@10:frac=0.5,for=5",  // pressure needs capacity=
      "pressure@10:frac=0.5,capacity=0,for=5",  // capacity >= 1
      "pressure@10:frac=0.5,capacity=4",        // pressure needs for=
      "crash@10:frac=1.5",           // frac out of range
      "crash@10:node",               // arg without '='
      "crash@10:bogus=1,node=2",     // unknown argument
  };
  for (const char* spec : bad)
    EXPECT_THROW(parse_fault_plan(spec), std::invalid_argument) << spec;
}

TEST(FaultPlan, ErrorMessagesNameTheOffendingEvent) {
  try {
    parse_fault_plan("crash@10:node=1;outage@20:node=2");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("outage@20:node=2"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultPlan, RejectsDuplicateArgumentKeys) {
  const char* bad[] = {
      "crash@10:node=1,node=2",
      "crash@10:frac=0.1,frac=0.2",
      "outage@10:node=1,for=5,for=9",
      "loss@10:prob=0.5,prob=0.5,for=5",
      "hang@10:attempts=1,attempts=2",
  };
  for (const char* spec : bad)
    EXPECT_THROW(parse_fault_plan(spec), std::invalid_argument) << spec;
  try {
    parse_fault_plan("crash@10:node=1,node=2");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate argument 'node'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("crash@10:node=1,node=2"), std::string::npos) << what;
  }
}

TEST(FaultPlan, RejectsNonFiniteNumbers) {
  // NaN compares false against every range bound, so without an explicit
  // isfinite() check "frac=nan" would sail through validation.
  const char* bad[] = {
      "crash@10:frac=nan",
      "crash@nan:node=1",
      "crash@inf:node=1",
      "loss@10:prob=nan,for=5",
      "outage@10:node=1,for=inf",
  };
  for (const char* spec : bad)
    EXPECT_THROW(parse_fault_plan(spec), std::invalid_argument) << spec;
  try {
    parse_fault_plan("crash@10:frac=nan");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlan, ParsesHangAndDie) {
  const FaultPlan plan =
      parse_fault_plan("hang@100;hang@200:attempts=2,for=0.5;die@300;"
                       "die@400:attempts=1");
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kHang);
  EXPECT_EQ(plan.events[0].attempts, 0);  // unbounded: hangs every attempt
  EXPECT_EQ(plan.events[1].kind, FaultKind::kHang);
  EXPECT_EQ(plan.events[1].attempts, 2);
  EXPECT_DOUBLE_EQ(plan.events[1].duration, 0.5);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kDie);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kDie);
  EXPECT_EQ(plan.events[3].attempts, 1);
}

TEST(FaultPlan, RejectsBadHangAndDieArguments) {
  const char* bad[] = {
      "hang@10:node=1",       // hang/die are whole-run, not per-node
      "hang@10:frac=0.5",
      "die@10:for=5",         // die is instantaneous
      "die@10:node=1",
      "hang@10:attempts=0",   // attempts must be >= 1
      "hang@10:attempts=-1",
      "hang@10:attempts=x",
      "crash@10:node=1,attempts=2",  // attempts= only gates process drills
  };
  for (const char* spec : bad)
    EXPECT_THROW(parse_fault_plan(spec), std::invalid_argument) << spec;
}

TEST(FaultPlan, ParsesSegvAndAbort) {
  const FaultPlan plan =
      parse_fault_plan("segv@100;segv@200:attempts=1;abort@300;"
                       "abort@400:attempts=2");
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSegv);
  EXPECT_EQ(plan.events[0].attempts, 0);  // unbounded: kills every attempt
  EXPECT_EQ(plan.events[1].kind, FaultKind::kSegv);
  EXPECT_EQ(plan.events[1].attempts, 1);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kAbort);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kAbort);
  EXPECT_EQ(plan.events[3].attempts, 2);
  EXPECT_STREQ(fault_kind_name(FaultKind::kSegv), "segv");
  EXPECT_STREQ(fault_kind_name(FaultKind::kAbort), "abort");
}

TEST(FaultPlan, RejectsBadSegvAndAbortArguments) {
  const char* bad[] = {
      "segv@10:node=1",   // run-wide, not per-node
      "segv@10:frac=0.5",
      "segv@10:for=5",    // instantaneous
      "abort@10:node=1",
      "abort@10:frac=0.5",
      "abort@10:for=5",
      "segv@10:attempts=0",
      "abort@10:attempts=-1",
  };
  for (const char* spec : bad)
    EXPECT_THROW(parse_fault_plan(spec), std::invalid_argument) << spec;
}

}  // namespace
}  // namespace dftmsn
