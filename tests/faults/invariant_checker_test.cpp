// Runtime invariant checking: enabling the checker must not change a run,
// clean runs (all presets) must pass, and deliberately corrupted state
// must be caught with node/message context.
#include <gtest/gtest.h>

#include <string>

#include "experiment/presets.hpp"
#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "faults/invariant_checker.hpp"

namespace dftmsn {
namespace {

Config small_config(std::uint64_t seed = 1) {
  Config c;
  c.scenario.num_sensors = 30;
  c.scenario.num_sinks = 2;
  c.scenario.duration_s = 1500.0;
  c.scenario.seed = seed;
  return c;
}

TEST(InvariantChecker, CleanRunPassesEveryEvent) {
  Config c = small_config();
  c.faults.check_invariants = true;
  World w(c, ProtocolKind::kOpt);
  ASSERT_NE(w.invariant_checker(), nullptr);
  EXPECT_NO_THROW(w.run());
  EXPECT_GT(w.invariant_checker()->sweeps_run(), 0u);
}

TEST(InvariantChecker, DisabledByDefault) {
  World w(small_config(), ProtocolKind::kOpt);
  EXPECT_EQ(w.invariant_checker(), nullptr);
  EXPECT_EQ(w.fault_injector(), nullptr);
}

TEST(InvariantChecker, ObservationDoesNotPerturbTheRun) {
  // The checker hooks in outside the event queue, so the event stream —
  // and therefore every metric — must be bit-identical with it on or off.
  Config plain = small_config(11);
  Config checked = plain;
  checked.faults.check_invariants = true;
  const RunResult a = run_once(plain, ProtocolKind::kOpt);
  const RunResult b = run_once(checked, ProtocolKind::kOpt);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_DOUBLE_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_DOUBLE_EQ(a.mean_delay_s, b.mean_delay_s);
  EXPECT_GT(b.invariant_sweeps, 0u);
}

TEST(InvariantChecker, StrideThrottlesFullSweeps) {
  Config every = small_config(3);
  every.scenario.duration_s = 300.0;
  every.faults.check_invariants = true;
  Config sparse = every;
  sparse.faults.invariant_stride = 1000;

  World we(every, ProtocolKind::kOpt);
  World ws(sparse, ProtocolKind::kOpt);
  we.run();
  ws.run();
  EXPECT_GT(we.invariant_checker()->sweeps_run(),
            100 * ws.invariant_checker()->sweeps_run());
}

TEST(InvariantChecker, PassesOnAllPresets) {
  for (const std::string& name : scenario_preset_names()) {
    Config c = *scenario_preset(name);
    c.scenario.duration_s = 300.0;
    c.faults.check_invariants = true;
    World w(c, ProtocolKind::kOpt);
    EXPECT_NO_THROW(w.run()) << "preset " << name;
    EXPECT_GT(w.invariant_checker()->sweeps_run(), 0u) << "preset " << name;
  }
}

/// Runs until some sensor holds a queued copy, returning its index.
std::size_t run_until_some_queue_nonempty(World& w) {
  for (double t = 100.0; t <= 1500.0; t += 100.0) {
    w.run_until(t);
    for (std::size_t i = 0; i < w.sensors().size(); ++i)
      if (!w.sensors()[i]->queue().empty()) return i;
  }
  ADD_FAILURE() << "no sensor ever buffered a message";
  return 0;
}

TEST(InvariantChecker, CatchesPoisonedFtdWithContext) {
  Config c = small_config(5);
  c.faults.check_invariants = true;
  World w(c, ProtocolKind::kOpt);
  const std::size_t victim = run_until_some_queue_nonempty(w);

  FtdQueue& queue = w.sensors()[victim]->mutable_queue();
  const MessageId msg = queue.items().front().msg.id;
  ASSERT_TRUE(queue.poison_ftd_for_test(msg, 1.5));

  try {
    w.run_until(c.scenario.duration_s);
    FAIL() << "poisoned FTD went undetected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.node, w.sensors()[victim]->id());
    EXPECT_EQ(v.message, msg);
    EXPECT_NE(std::string(v.what()).find("outside [0,1]"), std::string::npos)
        << v.what();
  }
}

TEST(InvariantChecker, CatchesDeliveredCopyStillQueued) {
  Config c = small_config(6);
  c.faults.check_invariants = true;
  World w(c, ProtocolKind::kOpt);
  const std::size_t victim = run_until_some_queue_nonempty(w);

  FtdQueue& queue = w.sensors()[victim]->mutable_queue();
  const MessageId msg = queue.items().front().msg.id;
  ASSERT_TRUE(queue.poison_ftd_for_test(msg, 1.0));

  try {
    w.run_until(c.scenario.duration_s);
    FAIL() << "FTD-1 copy went undetected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.node, w.sensors()[victim]->id());
    EXPECT_EQ(v.message, msg);
    EXPECT_NE(std::string(v.what()).find("still queued"), std::string::npos)
        << v.what();
  }
}

TEST(InvariantChecker, CatchesQueueOrderViolation) {
  Config c = small_config(7);
  c.faults.check_invariants = true;
  World w(c, ProtocolKind::kOpt);

  // Need two queued copies to break the ordering between them.
  std::size_t victim = 0;
  bool found = false;
  for (double t = 100.0; t <= 1500.0 && !found; t += 100.0) {
    w.run_until(t);
    for (std::size_t i = 0; i < w.sensors().size() && !found; ++i)
      if (w.sensors()[i]->queue().size() >= 2) {
        victim = i;
        found = true;
      }
  }
  ASSERT_TRUE(found) << "no sensor ever buffered two messages";

  // Push the head's FTD above its successor's (but below 1) so the only
  // broken invariant is the FTD-sorted ordering.
  FtdQueue& queue = w.sensors()[victim]->mutable_queue();
  const MessageId head = queue.items().front().msg.id;
  ASSERT_TRUE(queue.poison_ftd_for_test(head, 0.999));

  try {
    w.run_until(c.scenario.duration_s);
    FAIL() << "out-of-order queue went undetected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.node, w.sensors()[victim]->id());
    EXPECT_NE(std::string(v.what()).find("out of FTD order"),
              std::string::npos)
        << v.what();
  }
}

}  // namespace
}  // namespace dftmsn
