// SensorNode assembly tests: traffic wiring, queue-policy plumbing and
// radio/MAC ownership.
#include "node/sensor_node.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mobility/mobility_manager.hpp"

namespace dftmsn {
namespace {

class SensorNodeTest : public ::testing::Test {
 protected:
  SensorNodeTest() : mobility_(sim_, cfg_.scenario.mobility_step_s) {}

  SensorNode& build(ProtocolKind kind = ProtocolKind::kOpt) {
    mobility_.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
    channel_ = std::make_unique<Channel>(sim_, mobility_, cfg_.radio.range_m,
                                         cfg_.radio.bandwidth_bps);
    node_ = std::make_unique<SensorNode>(0, sim_, *channel_, energy_, cfg_,
                                         kind, 1, metrics_, ids_, rngs_);
    return *node_;
  }

  Config cfg_;
  Simulator sim_;
  EnergyModel energy_{PowerConfig{}};
  RandomSource rngs_{77};
  MobilityManager mobility_;
  Metrics metrics_{0.0};
  MessageIdAllocator ids_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<SensorNode> node_;
};

TEST_F(SensorNodeTest, TrafficFlowsIntoQueueAndMetrics) {
  cfg_.scenario.data_interval_s = 30.0;
  SensorNode& node = build();
  node.start();
  sim_.run_until(600.0);
  // ~20 expected arrivals; all counted and (being undeliverable) queued.
  EXPECT_GT(metrics_.generated(), 5u);
  EXPECT_EQ(node.queue().size(), metrics_.generated());
}

TEST_F(SensorNodeTest, QueuePolicyPlumbsThrough) {
  cfg_.protocol.queue_policy = QueuePolicy::kFifo;
  cfg_.protocol.queue_capacity = 17;
  SensorNode& node = build();
  EXPECT_EQ(node.queue().capacity(), 17u);
}

TEST_F(SensorNodeTest, NoTrafficBeforeStart) {
  SensorNode& node = build();
  sim_.run_until(500.0);
  EXPECT_EQ(metrics_.generated(), 0u);
  EXPECT_EQ(node.queue().size(), 0u);
}

TEST_F(SensorNodeTest, IdAndAccessorsAreWired) {
  SensorNode& node = build();
  EXPECT_EQ(node.id(), 0u);
  EXPECT_TRUE(node.radio().awake());
  EXPECT_EQ(node.mac().state(), MacState::kIdle);
}

TEST_F(SensorNodeTest, LoneNodeEventuallySleeps) {
  SensorNode& node = build();
  node.start();
  sim_.run_until(120.0);
  EXPECT_GE(node.mac().stats().sleeps, 1u);
}

}  // namespace
}  // namespace dftmsn
