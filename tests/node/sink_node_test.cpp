// Focused tests of the sink's receiver-side behaviour, driven by raw
// channel frames (no sensor MAC involved).
#include <gtest/gtest.h>

#include <memory>

#include "mobility/mobility_manager.hpp"
#include "node/sink_node.hpp"

namespace dftmsn {
namespace {

class DummyListener : public ChannelListener {
 public:
  void on_frame_received(const Frame& frame) override {
    received.push_back(frame);
  }
  void on_collision() override {}
  void on_channel_busy() override {}
  void on_channel_idle() override {}
  std::vector<Frame> received;
};

/// Node 0: a bare test driver; node 1: the sink. Both at distance 5.
class SinkTest : public ::testing::Test {
 protected:
  SinkTest() : mobility_(sim_, 0.5), metrics_(0.0) {
    mobility_.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
    mobility_.add_node(1, std::make_unique<StaticMobility>(Vec2{5, 0}));
    channel_ = std::make_unique<Channel>(sim_, mobility_, 10.0, 10'000.0);
    driver_radio_ = std::make_unique<Radio>(sim_, energy_, 0.002);
    channel_->attach(0, *driver_radio_, driver_);
    sink_ = std::make_unique<SinkNode>(1, sim_, *channel_, energy_, cfg_,
                                       metrics_, RandomStream{5});
    channel_->attach(1, sink_->radio(), *sink_);
  }

  Message msg(MessageId id) {
    Message m;
    m.id = id;
    m.source = 0;
    m.created = sim_.now();
    metrics_.on_generated(m);
    return m;
  }

  void send(FramePayload payload, std::size_t bits = 50) {
    channel_->transmit(0, Frame{0, bits, std::move(payload)});
    sim_.run_until(sim_.now() + 1.0);
  }

  /// Sends a frame and advances only a little, staying inside the sink's
  /// per-exchange give-up window (a real sender strings the frames of one
  /// exchange tens of milliseconds apart).
  void send_fast(FramePayload payload, std::size_t bits = 50) {
    channel_->transmit(0, Frame{0, bits, std::move(payload)});
    sim_.run_until(sim_.now() + 0.015);
  }

  Simulator sim_;
  EnergyModel energy_{PowerConfig{}};
  MobilityManager mobility_;
  Metrics metrics_;
  Config cfg_;  // must outlive the sink (SinkNode keeps a reference)
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<Radio> driver_radio_;
  DummyListener driver_;
  std::unique_ptr<SinkNode> sink_;
};

TEST_F(SinkTest, AnswersRtsWithCts) {
  send(RtsFrame{0.0, 0.0, 4, 1});
  ASSERT_GE(driver_.received.size(), 1u);
  const Frame& cts = driver_.received.front();
  ASSERT_TRUE(cts.is<CtsFrame>());
  EXPECT_EQ(cts.as<CtsFrame>().rts_sender, 0u);
  EXPECT_DOUBLE_EQ(cts.as<CtsFrame>().receiver_metric, 1.0);
  EXPECT_GT(cts.as<CtsFrame>().buffer_space, 0u);
}

TEST_F(SinkTest, CountsAnyHeardDataAsDelivered) {
  // Even without the RTS/SCHEDULE handshake, physically hearing the DATA
  // means the message reached the backbone.
  send(DataFrame{msg(1)}, 1000);
  EXPECT_EQ(sink_->data_heard(), 1u);
  EXPECT_EQ(metrics_.delivered_unique(), 1u);
}

TEST_F(SinkTest, DuplicateDataCountedOnce) {
  Message m = msg(2);
  send(DataFrame{m}, 1000);
  send(DataFrame{m}, 1000);
  EXPECT_EQ(sink_->data_heard(), 2u);
  EXPECT_EQ(metrics_.delivered_unique(), 1u);
}

TEST_F(SinkTest, AcksScheduledData) {
  send_fast(RtsFrame{0.0, 0.0, 4, 3});
  sim_.run_until(sim_.now() + 0.03);  // let the CTS window play out
  driver_.received.clear();
  ScheduleFrame sched;
  sched.entries.push_back(ScheduleEntry{1, 1.0});  // the sink is listed
  send_fast(std::move(sched));
  send(DataFrame{msg(3)}, 1000);
  bool got_ack = false;
  for (const Frame& f : driver_.received) {
    if (f.is<AckFrame>()) {
      got_ack = true;
      EXPECT_EQ(f.as<AckFrame>().data_sender, 0u);
      EXPECT_EQ(f.as<AckFrame>().message_id, 3u);
    }
  }
  EXPECT_TRUE(got_ack);
}

TEST_F(SinkTest, NoAckWhenNotScheduled) {
  send(RtsFrame{0.0, 0.0, 4, 4});
  driver_.received.clear();
  ScheduleFrame sched;
  sched.entries.push_back(ScheduleEntry{99, 1.0});  // someone else
  send(std::move(sched));
  send(DataFrame{msg(4)}, 1000);
  for (const Frame& f : driver_.received) {
    EXPECT_FALSE(f.is<AckFrame>());
  }
  // ...but the overheard data still counts as delivered.
  EXPECT_EQ(metrics_.delivered_unique(), 1u);
}

TEST_F(SinkTest, SinkRadioStaysAwake) {
  send(RtsFrame{0.0, 0.0, 4, 5});
  sim_.run_until(sim_.now() + 100.0);
  EXPECT_TRUE(sink_->radio().awake());
}

TEST_F(SinkTest, HopCountIncrementedAtDelivery) {
  Message m = msg(6);
  m.hops = 2;
  send(DataFrame{m}, 1000);
  EXPECT_EQ(metrics_.delivered_unique(), 1u);
  EXPECT_DOUBLE_EQ(metrics_.mean_hops(), 3.0);
}

}  // namespace
}  // namespace dftmsn
