// Shared test fixture: deterministic synthetic motion traces, for suites
// that exercise MobilityKind::kTrace without depending on the scenario
// library (spatial-index oracle, checkpoint round-trips, ...).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "mobility/motion_trace.hpp"
#include "sim/random.hpp"

namespace dftmsn::testutil {

/// Random-waypoint-style polylines: every node starts somewhere in the
/// field x field square at t=0 and hops to fresh uniform waypoints until
/// the track covers [0, duration_s]. Same arguments -> same trace.
inline MotionTrace make_test_trace(std::size_t num_nodes, double field,
                                   double duration_s, std::uint64_t seed) {
  MotionTrace trace;
  const RandomSource src(seed);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    RandomStream rs = src.stream("test-trace", n);
    MotionTrack track;
    track.push_back({0.0, {rs.uniform(0.0, field), rs.uniform(0.0, field)}});
    double t = 0.0;
    while (t < duration_s) {
      t += rs.uniform(5.0, 40.0);
      track.push_back({t, {rs.uniform(0.0, field), rs.uniform(0.0, field)}});
    }
    trace.tracks.push_back(std::move(track));
  }
  return trace;
}

/// Writes make_test_trace(...) to `path` and returns `path`.
inline std::string write_test_trace(std::string path, std::size_t num_nodes,
                                    double field, double duration_s,
                                    std::uint64_t seed) {
  save_motion_trace(path, make_test_trace(num_nodes, field, duration_s, seed));
  return path;
}

}  // namespace dftmsn::testutil
