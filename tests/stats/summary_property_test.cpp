// Property tests for the Summary (Welford + CI) math the parallel
// experiment engine reduces with: invariants that must hold for *any*
// input sequence, checked over seeded random sequences, plus the n=0/1
// edge cases the reduction hits on empty/degenerate batches.
#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace dftmsn {
namespace {

std::vector<double> random_sequence(std::uint64_t seed, std::size_t n,
                                    double lo, double hi) {
  RandomStream rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(lo, hi));
  return xs;
}

TEST(SummaryProperty, MeanBoundedByMinAndMax) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto xs = random_sequence(seed, 50, -1e3, 1e3);
    Summary s;
    for (double x : xs) s.add(x);
    EXPECT_LE(s.min(), s.mean()) << seed;
    EXPECT_GE(s.max(), s.mean()) << seed;
    EXPECT_EQ(s.min(), *std::min_element(xs.begin(), xs.end())) << seed;
    EXPECT_EQ(s.max(), *std::max_element(xs.begin(), xs.end())) << seed;
  }
}

TEST(SummaryProperty, VarianceNonNegativeAndZeroForConstant) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto xs = random_sequence(seed, 40, -50.0, 50.0);
    Summary s;
    for (double x : xs) s.add(x);
    EXPECT_GE(s.variance(), 0.0) << seed;
    EXPECT_GE(s.stddev(), 0.0) << seed;
  }
  Summary constant;
  for (int i = 0; i < 10; ++i) constant.add(3.25);
  EXPECT_DOUBLE_EQ(constant.variance(), 0.0);
  EXPECT_DOUBLE_EQ(constant.ci95_half_width(), 0.0);
}

TEST(SummaryProperty, CiShrinksAsSamplesAccumulate) {
  // For a repeating pattern (stable spread), the 1.96·s/√n half-width
  // must be monotonically non-increasing as n grows in pattern periods.
  const std::vector<double> pattern{1.0, 5.0, 9.0, 5.0};
  Summary s;
  double previous = 1e300;
  for (int period = 0; period < 30; ++period) {
    for (double x : pattern) s.add(x);
    const double hw = s.ci95_half_width();
    if (period >= 1) {  // needs at least two periods for a stable s
      EXPECT_LE(hw, previous + 1e-12) << "period " << period;
    }
    previous = hw;
  }
  EXPECT_GT(previous, 0.0);
}

TEST(SummaryProperty, CiHalfWidthMatchesClosedForm) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto xs = random_sequence(seed, 25, 0.0, 10.0);
    Summary s;
    double sum = 0.0;
    for (double x : xs) {
      s.add(x);
      sum += x;
    }
    const double mean = sum / static_cast<double>(xs.size());
    double sq = 0.0;
    for (double x : xs) sq += (x - mean) * (x - mean);
    const double sample_sd = std::sqrt(sq / static_cast<double>(xs.size() - 1));
    const double expected =
        1.96 * sample_sd / std::sqrt(static_cast<double>(xs.size()));
    EXPECT_NEAR(s.ci95_half_width(), expected, 1e-9) << seed;
  }
}

TEST(SummaryProperty, MeanMatchesNaiveSum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto xs = random_sequence(seed, 64, -10.0, 10.0);
    Summary s;
    double sum = 0.0;
    for (double x : xs) {
      s.add(x);
      sum += x;
    }
    EXPECT_NEAR(s.mean(), sum / static_cast<double>(xs.size()), 1e-12) << seed;
  }
}

TEST(SummaryProperty, EdgeCasesEmptyAndSingle) {
  // n=0: the reduction of an empty batch must be all-zeros, not NaN.
  Summary empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.variance(), 0.0);
  EXPECT_EQ(empty.stddev(), 0.0);
  EXPECT_EQ(empty.ci95_half_width(), 0.0);
  EXPECT_FALSE(std::isnan(empty.mean()));

  // n=1: zero spread, zero CI, mean = the sample.
  Summary one;
  one.add(-7.5);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_DOUBLE_EQ(one.mean(), -7.5);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
  EXPECT_DOUBLE_EQ(one.ci95_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(one.min(), -7.5);
  EXPECT_DOUBLE_EQ(one.max(), -7.5);
}

TEST(SummaryProperty, OrderInvariantCountMinMax) {
  // count/min/max are order-invariant; mean is order-invariant up to FP
  // rounding (the engine never relies on more: it fixes ONE order).
  const auto xs = random_sequence(9, 30, -5.0, 5.0);
  auto reversed = xs;
  std::reverse(reversed.begin(), reversed.end());
  Summary fwd, rev;
  for (double x : xs) fwd.add(x);
  for (double x : reversed) rev.add(x);
  EXPECT_EQ(fwd.count(), rev.count());
  EXPECT_EQ(fwd.min(), rev.min());
  EXPECT_EQ(fwd.max(), rev.max());
  EXPECT_NEAR(fwd.mean(), rev.mean(), 1e-12);
  EXPECT_NEAR(fwd.variance(), rev.variance(), 1e-9);
}

}  // namespace
}  // namespace dftmsn
