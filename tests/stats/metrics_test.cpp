#include "stats/metrics.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

Message make_msg(MessageId id, NodeId source, SimTime created) {
  Message m;
  m.id = id;
  m.source = source;
  m.created = created;
  return m;
}

TEST(Metrics, EmptyRun) {
  Metrics m;
  EXPECT_EQ(m.generated(), 0u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_delay_s(), 0.0);
}

TEST(Metrics, DeliveryRatioCountsUniqueMessages) {
  Metrics m;
  m.on_generated(make_msg(1, 0, 10.0));
  m.on_generated(make_msg(2, 0, 20.0));
  m.on_delivered(make_msg(1, 0, 10.0), 110.0);
  m.on_delivered(make_msg(1, 0, 10.0), 150.0);  // duplicate copy
  EXPECT_EQ(m.delivered_unique(), 1u);
  EXPECT_EQ(m.delivered_copies(), 2u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.5);
}

TEST(Metrics, DelayUsesFirstArrivalOnly) {
  Metrics m;
  m.on_generated(make_msg(1, 0, 10.0));
  m.on_delivered(make_msg(1, 0, 10.0), 110.0);  // delay 100
  m.on_delivered(make_msg(1, 0, 10.0), 500.0);  // ignored
  EXPECT_DOUBLE_EQ(m.mean_delay_s(), 100.0);
}

TEST(Metrics, WarmupMessagesExcluded) {
  Metrics m(100.0);
  m.on_generated(make_msg(1, 0, 50.0));   // warm-up: ignored
  m.on_generated(make_msg(2, 0, 150.0));
  m.on_delivered(make_msg(1, 0, 50.0), 200.0);  // ignored
  m.on_delivered(make_msg(2, 0, 150.0), 250.0);
  EXPECT_EQ(m.generated(), 1u);
  EXPECT_EQ(m.delivered_unique(), 1u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 1.0);
}

TEST(Metrics, UnknownDeliveryIgnored) {
  Metrics m;
  m.on_delivered(make_msg(99, 0, 0.0), 10.0);
  EXPECT_EQ(m.delivered_unique(), 0u);
}

TEST(Metrics, DropAccounting) {
  Metrics m;
  m.on_generated(make_msg(1, 0, 0.0));
  m.on_generated(make_msg(2, 0, 0.0));
  m.on_dropped(make_msg(1, 0, 0.0), DropReason::kOverflow);
  m.on_dropped(make_msg(2, 0, 0.0), DropReason::kFtdThreshold);
  m.on_dropped(make_msg(2, 0, 0.0), DropReason::kFtdThreshold);
  EXPECT_EQ(m.drops(DropReason::kOverflow), 1u);
  EXPECT_EQ(m.drops(DropReason::kFtdThreshold), 2u);
  EXPECT_EQ(m.drops(DropReason::kDelivered), 0u);
}

TEST(Metrics, HopsAveragedOverDeliveries) {
  Metrics m;
  Message a = make_msg(1, 0, 0.0);
  Message b = make_msg(2, 0, 0.0);
  m.on_generated(a);
  m.on_generated(b);
  a.hops = 1;
  b.hops = 3;
  m.on_delivered(a, 10.0);
  m.on_delivered(b, 10.0);
  EXPECT_DOUBLE_EQ(m.mean_hops(), 2.0);
}

TEST(Metrics, AttemptAndTxCounters) {
  Metrics m;
  m.on_attempt();
  m.on_attempt();
  m.on_attempt_failed();
  m.on_data_tx(2);
  m.on_data_tx(4);
  EXPECT_EQ(m.attempts(), 2u);
  EXPECT_EQ(m.failed_attempts(), 1u);
  EXPECT_EQ(m.data_transmissions(), 2u);
  EXPECT_DOUBLE_EQ(m.mean_receivers_per_tx(), 3.0);
}

TEST(Metrics, PerSourceCounts) {
  Metrics m;
  m.on_generated(make_msg(1, 7, 0.0));
  m.on_generated(make_msg(2, 7, 0.0));
  m.on_generated(make_msg(3, 8, 0.0));
  m.on_delivered(make_msg(1, 7, 0.0), 5.0);
  const auto& ps = m.per_source();
  EXPECT_EQ(ps.at(7).generated, 2u);
  EXPECT_EQ(ps.at(7).delivered, 1u);
  EXPECT_EQ(ps.at(8).generated, 1u);
  EXPECT_EQ(ps.at(8).delivered, 0u);
}

}  // namespace
}  // namespace dftmsn
