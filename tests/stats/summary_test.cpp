#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dftmsn {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance (n-1): sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, Ci95Formula) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  const double expected = 1.96 * s.stddev() / 2.0;  // sqrt(4) = 2
  EXPECT_NEAR(s.ci95_half_width(), expected, 1e-12);
}

TEST(Summary, NegativeValues) {
  Summary s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Summary, NumericalStabilityLargeOffset) {
  // Welford's algorithm must not lose the variance under a large offset.
  Summary s;
  const double base = 1e9;
  for (double x : {base + 1.0, base + 2.0, base + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace dftmsn
