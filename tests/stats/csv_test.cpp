#include "stats/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace dftmsn {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_all() {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  std::string path_ = "csv_test_tmp.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row({1.0, 2.5});
    w.row({3.0, 4.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(read_all(), "a,b\n1,2.5\n3,4\n");
}

TEST_F(CsvTest, ArityMismatchThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), std::invalid_argument);
  EXPECT_THROW(w.row({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST_F(CsvTest, EmptyColumnsThrow) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace dftmsn
