// Cross-scenario conformance suite (ctest label tier1-scenario): golden
// Summary pins per scenario under OPT and ZBR at seed 42, jobs-1-vs-4
// bitwise equality over a mixed-scenario spec list, and checkpoint
// round-trip byte-identity under trace-driven mobility — so the scenario
// library locks protocol behaviour down across qualitatively different
// worlds, not just the paper's field.
//
// Regenerating the pins after an intentional behaviour change:
//   DFTMSN_PRINT_GOLDENS=1 ./tests/test_scenario
//       --gtest_filter='*GoldenSummaryPins*'   (one command line)
// and paste the printed kGoldens table over the one below.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/checkpoint.hpp"

namespace dftmsn {
namespace {

constexpr std::uint64_t kGoldenSeed = 42;
constexpr double kRelTol = 1e-12;

struct GoldenRow {
  const char* scenario;
  ProtocolKind kind;
  double delivery_ratio;
  double mean_delay_s;
  double mean_power_mw;
  std::uint64_t generated;
  std::uint64_t delivered;
  std::uint64_t collisions;
  std::uint64_t data_transmissions;
  std::uint64_t events_executed;
};

// Recorded with DFTMSN_PRINT_GOLDENS=1 (see header comment).
constexpr GoldenRow kGoldens[] = {
    {"dense-urban", ProtocolKind::kOpt, 0.74261922785768353, 343.55283013828426, 1.4175189338463596, 2642, 1962, 2047, 13408, 595093},
    {"dense-urban", ProtocolKind::kZbr, 0.7278576835730507, 345.02414422467126, 1.3260184849501608, 2642, 1923, 2218, 12108, 627863},
    {"sparse-rural", ProtocolKind::kOpt, 0.16510318949343339, 837.03332344080093, 0.88504229454434746, 533, 88, 2, 194, 54053},
    {"sparse-rural", ProtocolKind::kZbr, 0.13133208255159476, 690.78145044675853, 0.86724860356611244, 533, 70, 2, 117, 52443},
    {"convoy", ProtocolKind::kOpt, 0.03826086956521739, 773.38101296667821, 0.77897630177056021, 575, 22, 9, 100, 48716},
    {"convoy", ProtocolKind::kZbr, 0.043478260869565216, 891.13070634158964, 0.78445596385766159, 575, 25, 25, 175, 52070},
    {"mass-event", ProtocolKind::kOpt, 0.30959125859975717, 260.64308688111277, 5.5947151971875595, 2471, 765, 147040, 16915, 1221510},
    {"mass-event", ProtocolKind::kZbr, 0.15216511533791988, 378.09593074821163, 3.5029725600742214, 2471, 376, 85080, 5290, 817070},
};

void expect_rel(double actual, double golden, const std::string& what) {
  const double tol = std::abs(golden) * kRelTol;
  EXPECT_NEAR(actual, golden, tol) << what;
}

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b,
                          const std::string& label) {
  EXPECT_EQ(bits(a.delivery_ratio), bits(b.delivery_ratio)) << label;
  EXPECT_EQ(bits(a.mean_power_mw), bits(b.mean_power_mw)) << label;
  EXPECT_EQ(bits(a.mean_delay_s), bits(b.mean_delay_s)) << label;
  EXPECT_EQ(bits(a.mean_hops), bits(b.mean_hops)) << label;
  EXPECT_EQ(a.generated, b.generated) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.collisions, b.collisions) << label;
  EXPECT_EQ(a.attempts, b.attempts) << label;
  EXPECT_EQ(a.data_transmissions, b.data_transmissions) << label;
  EXPECT_EQ(a.drops_overflow, b.drops_overflow) << label;
  EXPECT_EQ(a.events_executed, b.events_executed) << label;
}

TEST(ScenarioConformance, GoldenSummaryPins) {
  const bool print = std::getenv("DFTMSN_PRINT_GOLDENS") != nullptr;
  for (const GoldenRow& g : kGoldens) {
    Config cfg = materialize_scenario(g.scenario, kGoldenSeed, ".");
    const RunResult r = run_once(cfg, g.kind);
    std::remove(cfg.scenario.trace_path.c_str());
    const std::string label =
        std::string(g.scenario) + "/" + protocol_kind_name(g.kind);
    if (print) {
      std::printf(
          "    {\"%s\", ProtocolKind::%s, %.17g, %.17g, %.17g, %llu, %llu, "
          "%llu, %llu, %llu},\n",
          g.scenario,
          g.kind == ProtocolKind::kOpt ? "kOpt" : "kZbr", r.delivery_ratio,
          r.mean_delay_s, r.mean_power_mw,
          static_cast<unsigned long long>(r.generated),
          static_cast<unsigned long long>(r.delivered),
          static_cast<unsigned long long>(r.collisions),
          static_cast<unsigned long long>(r.data_transmissions),
          static_cast<unsigned long long>(r.events_executed));
      continue;
    }
    expect_rel(r.delivery_ratio, g.delivery_ratio, label + " delivery_ratio");
    expect_rel(r.mean_delay_s, g.mean_delay_s, label + " mean_delay_s");
    expect_rel(r.mean_power_mw, g.mean_power_mw, label + " mean_power_mw");
    EXPECT_EQ(r.generated, g.generated) << label;
    EXPECT_EQ(r.delivered, g.delivered) << label;
    EXPECT_EQ(r.collisions, g.collisions) << label;
    EXPECT_EQ(r.data_transmissions, g.data_transmissions) << label;
    EXPECT_EQ(r.events_executed, g.events_executed) << label;
  }
}

TEST(ScenarioConformance, MixedScenarioBatchIsJobsInvariant) {
  // One spec per scenario, alternating protocols, durations trimmed: the
  // batch must reduce bit-identically whether run serially or on 4
  // threads (runner.hpp determinism contract, now across trace worlds).
  // Seed differs from the golden pins' so concurrently scheduled ctest
  // entries from this binary never remove each other's trace files.
  std::vector<RunSpec> specs;
  int i = 0;
  for (const std::string& name : scenario_names()) {
    RunSpec spec;
    spec.config = materialize_scenario(name, 43, ".");
    spec.config.scenario.duration_s =
        std::min(spec.config.scenario.duration_s, 500.0);
    spec.kind = (i++ % 2 == 0) ? ProtocolKind::kOpt : ProtocolKind::kZbr;
    specs.push_back(std::move(spec));
  }
  const std::vector<RunResult> serial = run_specs(specs, 1);
  const std::vector<RunResult> parallel = run_specs(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    expect_bitwise_equal(serial[s], parallel[s],
                         specs[s].config.scenario.trace_path + " jobs 1 vs 4");
    std::remove(specs[s].config.scenario.trace_path.c_str());
  }
}

TEST(ScenarioConformance, TraceCheckpointRoundTripIsByteIdentical) {
  // Snapshot a trace-driven scenario mid-flight; the resumed world must
  // replay onto the recorded bytes (resume_world verifies) and finish
  // with a bit-identical Summary.
  Config cfg = materialize_scenario("convoy", 44, ".");
  cfg.scenario.duration_s = 600.0;
  World reference(cfg, ProtocolKind::kOpt);
  reference.run_until(300.0);
  const std::vector<std::uint8_t> image = make_checkpoint(reference);
  reference.run();

  std::unique_ptr<World> resumed =
      resume_world(cfg, ProtocolKind::kOpt, image);
  resumed->run();
  expect_bitwise_equal(reduce_world(reference), reduce_world(*resumed),
                       "convoy checkpoint");
  std::remove(cfg.scenario.trace_path.c_str());
}

TEST(ScenarioConformance, StaleCheckpointFormatIsRejected) {
  // A checkpoint stamped with an older format version must be refused
  // with the one-line version message — never half-parsed. The digest is
  // recomputed after the patch so only the version check can fire.
  Config cfg = materialize_scenario("convoy", 45, ".");
  cfg.scenario.duration_s = 200.0;
  World world(cfg, ProtocolKind::kOpt);
  world.run_until(100.0);
  std::vector<std::uint8_t> image = make_checkpoint(world);
  std::remove(cfg.scenario.trace_path.c_str());

  image[8] = 2;  // u32 version little-endian, directly after the magic
  snapshot::StateHash h;
  h.update(image.data(), image.size() - 8);
  for (int i = 0; i < 8; ++i)
    image[image.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(h.value() >> (8 * i));
  try {
    read_checkpoint_meta(image, nullptr);
    FAIL() << "expected stale-version rejection";
  } catch (const snapshot::SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported format version 2"), std::string::npos)
        << what;
    EXPECT_NE(what.find("this build reads version 3"), std::string::npos)
        << what;
    EXPECT_EQ(what.find('\n'), std::string::npos) << "one-line error: " << what;
  }
}

}  // namespace
}  // namespace dftmsn
