// Scenario library: registry catalog, deterministic generation (same
// seed -> byte-identical trace, identical Config), physical sanity of
// every generated world, and a short invariant-checked World run per
// scenario.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config_io.hpp"
#include "experiment/world.hpp"
#include "geom/vec2.hpp"

namespace dftmsn {
namespace {

TEST(ScenarioRegistry, CatalogHasTheFourNamedWorlds) {
  const std::vector<std::string> names = scenario_names();
  const std::vector<std::string> expected{"dense-urban", "sparse-rural",
                                          "convoy", "mass-event"};
  EXPECT_EQ(names, expected);
  for (const std::string& name : names) {
    EXPECT_TRUE(is_scenario_name(name)) << name;
    EXPECT_FALSE(scenario_description(name).empty()) << name;
  }
  EXPECT_FALSE(is_scenario_name("downtown"));
  EXPECT_TRUE(scenario_description("downtown").empty());
  EXPECT_THROW(generate_scenario("downtown", 1), std::invalid_argument);
}

TEST(ScenarioGeneration, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  for (const std::string& name : scenario_names()) {
    const GeneratedScenario a = generate_scenario(name, 7);
    const GeneratedScenario b = generate_scenario(name, 7);
    EXPECT_EQ(encode_motion_trace(a.trace), encode_motion_trace(b.trace))
        << name << ": same seed must reproduce the trace byte for byte";
    EXPECT_EQ(list_config_keys(a.config), list_config_keys(b.config))
        << name << ": same seed must reproduce every config value";

    const GeneratedScenario c = generate_scenario(name, 8);
    EXPECT_NE(encode_motion_trace(a.trace), encode_motion_trace(c.trace))
        << name << ": a different seed must move somebody";
  }
}

TEST(ScenarioGeneration, WorldsSatisfyPhysicalSanityInvariants) {
  for (const std::string& name : scenario_names()) {
    const GeneratedScenario g = generate_scenario(name, 3);
    const ScenarioConfig& sc = g.config.scenario;
    EXPECT_EQ(sc.mobility, MobilityKind::kTrace) << name;
    EXPECT_GT(sc.num_sensors, 0) << name;
    EXPECT_GT(sc.num_sinks, 0) << name;
    EXPECT_GT(sc.duration_s, 0.0) << name;

    EXPECT_NO_THROW(g.trace.validate()) << name;
    ASSERT_EQ(g.trace.tracks.size(),
              static_cast<std::size_t>(sc.num_sensors))
        << name;

    // Every waypoint inside the field, every leg within the speed cap.
    const double vmax = sc.speed_max_mps * (1.0 + 1e-9);
    for (std::size_t n = 0; n < g.trace.tracks.size(); ++n) {
      const MotionTrack& track = g.trace.tracks[n];
      EXPECT_EQ(track.front().t, 0.0) << name << " node " << n;
      for (std::size_t i = 0; i < track.size(); ++i) {
        const Vec2& p = track[i].pos;
        ASSERT_GE(p.x, 0.0) << name << " node " << n << " sample " << i;
        ASSERT_LE(p.x, sc.field_m) << name << " node " << n << " sample " << i;
        ASSERT_GE(p.y, 0.0) << name << " node " << n << " sample " << i;
        ASSERT_LE(p.y, sc.field_m) << name << " node " << n << " sample " << i;
        if (i > 0) {
          const double dt = track[i].t - track[i - 1].t;
          const double dist =
              std::sqrt(distance2(track[i].pos, track[i - 1].pos));
          ASSERT_LE(dist, vmax * dt + 1e-9)
              << name << " node " << n << " sample " << i
              << ": implied speed " << dist / dt << " exceeds cap "
              << sc.speed_max_mps;
        }
      }
    }
  }
}

TEST(ScenarioGeneration, MaterializeWritesALoadableTrace) {
  const Config cfg = materialize_scenario("convoy", 5, ".");
  ASSERT_FALSE(cfg.scenario.trace_path.empty());
  EXPECT_NO_THROW(cfg.validate());
  const MotionTrace trace = load_motion_trace(cfg.scenario.trace_path);
  EXPECT_EQ(trace.tracks.size(),
            static_cast<std::size_t>(cfg.scenario.num_sensors));
  // Byte-identical to direct generation at the same seed.
  EXPECT_EQ(encode_motion_trace(trace),
            encode_motion_trace(generate_scenario("convoy", 5).trace));
  std::remove(cfg.scenario.trace_path.c_str());
}

TEST(ScenarioRun, ShortInvariantCheckedRunCompletesPerScenario) {
  for (const std::string& name : scenario_names()) {
    Config cfg = materialize_scenario(name, 11, ".");
    cfg.scenario.duration_s = std::min(cfg.scenario.duration_s, 300.0);
    cfg.faults.check_invariants = true;  // I1-I7 after every event
    World w(cfg, ProtocolKind::kOpt);
    EXPECT_NO_THROW(w.run()) << name;
    EXPECT_GT(w.metrics().generated(), 0u) << name;
    const double ratio = w.metrics().delivery_ratio();
    EXPECT_GE(ratio, 0.0) << name;
    EXPECT_LE(ratio, 1.0) << name;
    std::remove(cfg.scenario.trace_path.c_str());
  }
}

}  // namespace
}  // namespace dftmsn
