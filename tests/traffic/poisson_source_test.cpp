#include "traffic/poisson_source.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dftmsn {
namespace {

TEST(PoissonSource, InvalidArgsThrow) {
  Simulator sim;
  MessageIdAllocator ids;
  RandomSource rngs(1);
  EXPECT_THROW(PoissonSource(sim, ids, 0, 0.0, 1000, rngs.stream("t"),
                             [](Message) {}),
               std::invalid_argument);
  EXPECT_THROW(PoissonSource(sim, ids, 0, 10.0, 1000, rngs.stream("t"), {}),
               std::invalid_argument);
}

TEST(PoissonSource, GeneratesNothingBeforeStart) {
  Simulator sim;
  MessageIdAllocator ids;
  RandomSource rngs(2);
  int count = 0;
  PoissonSource src(sim, ids, 7, 10.0, 1000, rngs.stream("t"),
                    [&](Message) { ++count; });
  sim.run_until(1000.0);
  EXPECT_EQ(count, 0);
}

TEST(PoissonSource, MeanRateApproximatelyCorrect) {
  Simulator sim;
  MessageIdAllocator ids;
  RandomSource rngs(3);
  int count = 0;
  PoissonSource src(sim, ids, 7, 120.0, 1000, rngs.stream("t"),
                    [&](Message) { ++count; });
  src.start();
  sim.run_until(120'000.0);  // expect ~1000 arrivals
  EXPECT_NEAR(count, 1000, 120);
  EXPECT_EQ(src.generated(), static_cast<std::size_t>(count));
}

TEST(PoissonSource, MessagesCarrySourceAndTimestamp) {
  Simulator sim;
  MessageIdAllocator ids;
  RandomSource rngs(4);
  std::vector<Message> seen;
  PoissonSource src(sim, ids, 9, 50.0, 640, rngs.stream("t"),
                    [&](Message m) { seen.push_back(m); });
  src.start();
  sim.run_until(5000.0);
  ASSERT_GT(seen.size(), 10u);
  SimTime prev = -1.0;
  for (const Message& m : seen) {
    EXPECT_EQ(m.source, 9u);
    EXPECT_EQ(m.bits, 640u);
    EXPECT_GT(m.created, prev);  // strictly increasing timestamps
    prev = m.created;
    EXPECT_EQ(m.hops, 0);
  }
}

TEST(PoissonSource, IdsAreUniqueAcrossSources) {
  Simulator sim;
  MessageIdAllocator ids;
  RandomSource rngs(5);
  std::vector<MessageId> all;
  PoissonSource a(sim, ids, 0, 20.0, 100, rngs.stream("t", 0),
                  [&](Message m) { all.push_back(m.id); });
  PoissonSource b(sim, ids, 1, 20.0, 100, rngs.stream("t", 1),
                  [&](Message m) { all.push_back(m.id); });
  a.start();
  b.start();
  sim.run_until(2000.0);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(PoissonSource, StopHaltsGeneration) {
  Simulator sim;
  MessageIdAllocator ids;
  RandomSource rngs(6);
  int count = 0;
  PoissonSource src(sim, ids, 0, 10.0, 100, rngs.stream("t"),
                    [&](Message) { ++count; });
  src.start();
  sim.run_until(100.0);
  const int at_stop = count;
  EXPECT_GT(at_stop, 0);
  src.stop();
  sim.run_until(1000.0);
  EXPECT_EQ(count, at_stop);
}

}  // namespace
}  // namespace dftmsn
