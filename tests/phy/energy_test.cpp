#include <gtest/gtest.h>

#include "phy/energy_meter.hpp"
#include "phy/energy_model.hpp"

namespace dftmsn {
namespace {

TEST(EnergyModel, BerkeleyMoteDefaults) {
  const EnergyModel m{PowerConfig{}};
  EXPECT_DOUBLE_EQ(m.power(RadioState::kRx), 13.5e-3);
  EXPECT_DOUBLE_EQ(m.power(RadioState::kTx), 24.75e-3);
  EXPECT_DOUBLE_EQ(m.power(RadioState::kIdle), 13.5e-3);
  EXPECT_DOUBLE_EQ(m.power(RadioState::kSleep), 15e-6);
  EXPECT_DOUBLE_EQ(m.power(RadioState::kSwitching), 4.0 * 13.5e-3);
}

TEST(EnergyModel, BreakEvenFormula) {
  const EnergyModel m{PowerConfig{}};
  // Eq. (7): 2 * P_change * t_switch / (P_idle - P_sleep).
  const double expected = 2.0 * 54e-3 * 0.002 / (13.5e-3 - 15e-6);
  EXPECT_DOUBLE_EQ(m.min_sleep_for_saving(0.002), expected);
}

TEST(EnergyModel, StateNames) {
  EXPECT_STREQ(radio_state_name(RadioState::kSleep), "SLEEP");
  EXPECT_STREQ(radio_state_name(RadioState::kTx), "TX");
}

TEST(EnergyMeter, IntegratesSingleState) {
  const EnergyModel m{PowerConfig{}};
  EnergyMeter meter(m, RadioState::kIdle, 0.0);
  meter.finalize(10.0);
  EXPECT_DOUBLE_EQ(meter.total_joules(), 10.0 * 13.5e-3);
  EXPECT_DOUBLE_EQ(meter.seconds_in(RadioState::kIdle), 10.0);
}

TEST(EnergyMeter, SplitsAcrossStates) {
  const EnergyModel m{PowerConfig{}};
  EnergyMeter meter(m, RadioState::kIdle, 0.0);
  meter.on_state_change(RadioState::kTx, 4.0);
  meter.on_state_change(RadioState::kSleep, 6.0);
  meter.finalize(10.0);
  EXPECT_DOUBLE_EQ(meter.joules_in(RadioState::kIdle), 4.0 * 13.5e-3);
  EXPECT_DOUBLE_EQ(meter.joules_in(RadioState::kTx), 2.0 * 24.75e-3);
  EXPECT_DOUBLE_EQ(meter.joules_in(RadioState::kSleep), 4.0 * 15e-6);
  EXPECT_DOUBLE_EQ(meter.total_joules(), 4.0 * 13.5e-3 + 2.0 * 24.75e-3 +
                                             4.0 * 15e-6);
}

TEST(EnergyMeter, SeconcsPerState) {
  const EnergyModel m{PowerConfig{}};
  EnergyMeter meter(m, RadioState::kRx, 1.0);
  meter.on_state_change(RadioState::kIdle, 3.5);
  meter.finalize(5.0);
  EXPECT_DOUBLE_EQ(meter.seconds_in(RadioState::kRx), 2.5);
  EXPECT_DOUBLE_EQ(meter.seconds_in(RadioState::kIdle), 1.5);
}

TEST(EnergyMeter, TimeGoingBackwardsThrows) {
  const EnergyModel m{PowerConfig{}};
  EnergyMeter meter(m, RadioState::kIdle, 5.0);
  EXPECT_THROW(meter.on_state_change(RadioState::kTx, 4.0),
               std::invalid_argument);
}

TEST(EnergyMeter, ZeroDurationChangesAreFree) {
  const EnergyModel m{PowerConfig{}};
  EnergyMeter meter(m, RadioState::kIdle, 0.0);
  meter.on_state_change(RadioState::kTx, 0.0);
  meter.on_state_change(RadioState::kRx, 0.0);
  meter.finalize(0.0);
  EXPECT_DOUBLE_EQ(meter.total_joules(), 0.0);
  EXPECT_EQ(meter.state(), RadioState::kRx);
}

TEST(EnergyMeter, SleepMuchCheaperThanIdle) {
  const EnergyModel m{PowerConfig{}};
  EnergyMeter idle(m, RadioState::kIdle, 0.0);
  EnergyMeter sleep(m, RadioState::kSleep, 0.0);
  idle.finalize(1000.0);
  sleep.finalize(1000.0);
  // The whole premise of Sec. 4.1: sleeping is ~900x cheaper.
  EXPECT_GT(idle.total_joules() / sleep.total_joules(), 100.0);
}

}  // namespace
}  // namespace dftmsn
