// Channel x mobility interaction: reception requires the link to hold
// for the whole frame (audience fixed at start, range re-checked at end).
#include <gtest/gtest.h>

#include <memory>

#include "mobility/mobility_manager.hpp"
#include "mobility/patrol_mobility.hpp"
#include "phy/channel.hpp"

namespace dftmsn {
namespace {

class Recorder : public ChannelListener {
 public:
  void on_frame_received(const Frame&) override { ++received; }
  void on_collision() override { ++collisions; }
  void on_channel_busy() override {}
  void on_channel_idle() override {}
  int received = 0;
  int collisions = 0;
};

TEST(ChannelMobility, ReceiverLeavingMidFrameLosesIt) {
  Simulator sim;
  MobilityManager mob(sim, 0.01);  // fine-grained ticks for fast movers
  mob.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  // Receiver starts just inside range and races away at 150 m/s: after
  // the 100 ms data frame it sits ~15 m beyond the 10 m range.
  mob.add_node(1, std::make_unique<PatrolMobility>(
                      std::vector<Vec2>{{9.0, 0.0}, {1000.0, 0.0}}, 150.0));
  Channel ch(sim, mob, 10.0, 10'000.0);
  EnergyModel energy{PowerConfig{}};
  Radio r0(sim, energy, 0.002), r1(sim, energy, 0.002);
  Recorder l0, l1;
  ch.attach(0, r0, l0);
  ch.attach(1, r1, l1);
  mob.start();

  ch.transmit(0, Frame{0, 1000, DataFrame{Message{}}});  // 100 ms airtime
  sim.run_until(1.0);

  EXPECT_EQ(l1.received, 0);
  EXPECT_EQ(l1.collisions, 1);  // reception started, link broke
  EXPECT_EQ(ch.counters().collisions, 1u);
}

TEST(ChannelMobility, SlowReceiverKeepsTheFrame) {
  Simulator sim;
  MobilityManager mob(sim, 0.01);
  mob.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  mob.add_node(1, std::make_unique<PatrolMobility>(
                      std::vector<Vec2>{{9.0, 0.0}, {1000.0, 0.0}}, 5.0));
  Channel ch(sim, mob, 10.0, 10'000.0);
  EnergyModel energy{PowerConfig{}};
  Radio r0(sim, energy, 0.002), r1(sim, energy, 0.002);
  Recorder l0, l1;
  ch.attach(0, r0, l0);
  ch.attach(1, r1, l1);
  mob.start();

  ch.transmit(0, Frame{0, 1000, DataFrame{Message{}}});
  sim.run_until(1.0);

  // 5 m/s x 0.1 s = 0.5 m: still within range at frame end.
  EXPECT_EQ(l1.received, 1);
  EXPECT_EQ(l1.collisions, 0);
}

TEST(ChannelMobility, NodeEnteringMidFrameHearsNothing) {
  Simulator sim;
  MobilityManager mob(sim, 0.01);
  mob.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  // Starts out of range, arrives next to the sender during the frame.
  mob.add_node(1, std::make_unique<PatrolMobility>(
                      std::vector<Vec2>{{25.0, 0.0}, {2.0, 0.0}}, 200.0));
  Channel ch(sim, mob, 10.0, 10'000.0);
  EnergyModel energy{PowerConfig{}};
  Radio r0(sim, energy, 0.002), r1(sim, energy, 0.002);
  Recorder l0, l1;
  ch.attach(0, r0, l0);
  ch.attach(1, r1, l1);
  mob.start();

  ch.transmit(0, Frame{0, 1000, DataFrame{Message{}}});
  sim.run_until(1.0);

  // The audience is fixed at frame start: a latecomer misses the frame
  // entirely (it cannot have synchronized onto a partial transmission).
  EXPECT_EQ(l1.received, 0);
  EXPECT_EQ(l1.collisions, 0);
}

}  // namespace
}  // namespace dftmsn
