#include "phy/channel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/mobility_manager.hpp"

namespace dftmsn {
namespace {

/// Records every callback for assertions.
class RecordingListener : public ChannelListener {
 public:
  void on_frame_received(const Frame& frame) override {
    received.push_back(frame);
  }
  void on_collision() override { ++collisions; }
  void on_channel_busy() override { ++busy_edges; }
  void on_channel_idle() override { ++idle_edges; }

  std::vector<Frame> received;
  int collisions = 0;
  int busy_edges = 0;
  int idle_edges = 0;
};

Frame control_frame(std::size_t bits = 50) {
  return Frame{0, bits, PreambleFrame{}};
}

/// Hidden-terminal line: node 0 at x=0, node 1 at x=8, node 2 at x=16.
/// With 10 m range, 0-1 and 1-2 hear each other; 0-2 are mutually hidden.
class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : mobility_(sim_, 0.5) {
    const std::vector<Vec2> positions{{0, 0}, {8, 0}, {16, 0}};
    for (NodeId i = 0; i < 3; ++i) {
      mobility_.add_node(i, std::make_unique<StaticMobility>(positions[i]));
      radios_.push_back(std::make_unique<Radio>(sim_, model_, 0.002));
    }
    channel_ = std::make_unique<Channel>(sim_, mobility_, 10.0, 10'000.0);
    for (NodeId i = 0; i < 3; ++i) {
      channel_->attach(i, *radios_[i], listeners_[i]);
    }
  }

  Simulator sim_;
  EnergyModel model_{PowerConfig{}};
  MobilityManager mobility_;
  std::vector<std::unique_ptr<Radio>> radios_;
  RecordingListener listeners_[3];
  std::unique_ptr<Channel> channel_;
};

TEST_F(ChannelTest, TxDurationFromBits) {
  EXPECT_DOUBLE_EQ(channel_->tx_duration(50), 0.005);
  EXPECT_DOUBLE_EQ(channel_->tx_duration(1000), 0.1);
}

TEST_F(ChannelTest, CleanDeliveryWithinRangeOnly) {
  const SimTime dur = channel_->transmit(0, control_frame());
  EXPECT_DOUBLE_EQ(dur, 0.005);
  EXPECT_EQ(radios_[0]->state(), RadioState::kTx);
  EXPECT_EQ(radios_[1]->state(), RadioState::kRx);
  EXPECT_EQ(radios_[2]->state(), RadioState::kIdle);  // out of range
  sim_.run_all();
  EXPECT_EQ(radios_[0]->state(), RadioState::kIdle);
  ASSERT_EQ(listeners_[1].received.size(), 1u);
  EXPECT_EQ(listeners_[1].received[0].sender, 0u);
  EXPECT_EQ(listeners_[2].received.size(), 0u);
  EXPECT_EQ(listeners_[0].received.size(), 0u);  // no self-reception
  EXPECT_EQ(channel_->counters().frames_delivered, 1u);
}

TEST_F(ChannelTest, BusyIdleEdgesFire) {
  channel_->transmit(0, control_frame());
  EXPECT_EQ(listeners_[1].busy_edges, 1);
  EXPECT_TRUE(channel_->busy(1));
  EXPECT_FALSE(channel_->busy(2));
  sim_.run_all();
  EXPECT_EQ(listeners_[1].idle_edges, 1);
  EXPECT_FALSE(channel_->busy(1));
}

TEST_F(ChannelTest, HiddenTerminalsCollideAtMiddleNode) {
  // 0 and 2 cannot hear each other; both transmit; node 1 gets garbage.
  channel_->transmit(0, control_frame());
  channel_->transmit(2, control_frame());  // legal: node 2 heard nothing
  sim_.run_all();
  EXPECT_EQ(listeners_[1].received.size(), 0u);
  EXPECT_EQ(listeners_[1].collisions, 1);
  EXPECT_EQ(channel_->counters().collisions, 1u);
  EXPECT_EQ(radios_[1]->state(), RadioState::kIdle);  // recovered cleanly
}

TEST_F(ChannelTest, PartialOverlapAlsoCollides) {
  channel_->transmit(0, control_frame());
  sim_.schedule_in(0.002, [&] { channel_->transmit(2, control_frame()); });
  sim_.run_all();
  EXPECT_EQ(listeners_[1].received.size(), 0u);
  // Node 1 locked frame 0 (corrupted) and reports one collision; frame 2
  // was never locked.
  EXPECT_EQ(listeners_[1].collisions, 1);
}

TEST_F(ChannelTest, BackToBackFramesBothDeliver) {
  channel_->transmit(0, control_frame());
  sim_.schedule_in(0.005, [&] { channel_->transmit(0, control_frame()); });
  sim_.run_all();
  EXPECT_EQ(listeners_[1].received.size(), 2u);
  EXPECT_EQ(listeners_[1].collisions, 0);
}

TEST_F(ChannelTest, CarrierSensePreventsSameCellOverlap) {
  // Node 1 hears node 0's ongoing frame: its radio is RX, so a
  // carrier-sensing MAC (can_transmit) would defer; a buggy MAC that
  // transmits anyway gets a logic_error from the radio FSM.
  channel_->transmit(0, control_frame());
  EXPECT_THROW(channel_->transmit(1, control_frame()), std::logic_error);
}

TEST_F(ChannelTest, SleepingNodeMissesFrames) {
  radios_[1]->sleep();
  sim_.run_all();  // complete the switch
  ASSERT_TRUE(radios_[1]->asleep());
  channel_->transmit(0, control_frame());
  sim_.run_all();
  EXPECT_EQ(listeners_[1].received.size(), 0u);
}

TEST_F(ChannelTest, ForgetAbandonsReception) {
  channel_->transmit(0, control_frame());
  EXPECT_EQ(radios_[1]->state(), RadioState::kRx);
  channel_->forget(1);
  EXPECT_EQ(radios_[1]->state(), RadioState::kIdle);
  EXPECT_FALSE(channel_->busy(1));
  sim_.run_all();
  EXPECT_EQ(listeners_[1].received.size(), 0u);  // frame was abandoned
  EXPECT_EQ(listeners_[1].collisions, 0);
}

TEST_F(ChannelTest, SenderCannotDoubleTransmit) {
  channel_->transmit(0, control_frame());
  EXPECT_THROW(channel_->transmit(0, control_frame()), std::logic_error);
}

TEST_F(ChannelTest, CountersTrackBits) {
  channel_->transmit(0, control_frame(50));
  sim_.run_all();
  Frame data{0, 1000, DataFrame{Message{}}};
  channel_->transmit(0, std::move(data));
  sim_.run_all();
  EXPECT_EQ(channel_->counters().control_bits_sent, 50u);
  EXPECT_EQ(channel_->counters().data_bits_sent, 1000u);
  EXPECT_EQ(channel_->counters().frames_sent, 2u);
}

TEST_F(ChannelTest, FrameSenderFieldIsStamped) {
  Frame f = control_frame();
  f.sender = 42;  // bogus: transmit() must overwrite with the true sender
  channel_->transmit(0, std::move(f));
  sim_.run_all();
  ASSERT_EQ(listeners_[1].received.size(), 1u);
  EXPECT_EQ(listeners_[1].received[0].sender, 0u);
}

TEST_F(ChannelTest, BadConstructionThrows) {
  EXPECT_THROW(Channel(sim_, mobility_, 0.0, 10'000.0),
               std::invalid_argument);
  EXPECT_THROW(Channel(sim_, mobility_, 10.0, 0.0), std::invalid_argument);
}

TEST_F(ChannelTest, AttachOutOfOrderThrows) {
  Channel fresh(sim_, mobility_, 10.0, 10'000.0);
  Radio r(sim_, model_, 0.002);
  RecordingListener l;
  EXPECT_THROW(fresh.attach(1, r, l), std::invalid_argument);
}

}  // namespace
}  // namespace dftmsn
