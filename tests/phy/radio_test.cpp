#include "phy/radio.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace dftmsn {
namespace {

class RadioTest : public ::testing::Test {
 protected:
  Simulator sim_;
  EnergyModel model_{PowerConfig{}};
  Radio radio_{sim_, model_, 0.002};
};

TEST_F(RadioTest, StartsIdleAwake) {
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
  EXPECT_TRUE(radio_.awake());
  EXPECT_FALSE(radio_.asleep());
}

TEST_F(RadioTest, TxRoundTrip) {
  radio_.begin_tx();
  EXPECT_EQ(radio_.state(), RadioState::kTx);
  EXPECT_TRUE(radio_.awake());
  radio_.end_tx();
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
}

TEST_F(RadioTest, RxRoundTrip) {
  radio_.begin_rx();
  EXPECT_EQ(radio_.state(), RadioState::kRx);
  radio_.end_rx();
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
}

TEST_F(RadioTest, SleepGoesThroughSwitching) {
  radio_.sleep();
  EXPECT_EQ(radio_.state(), RadioState::kSwitching);
  EXPECT_FALSE(radio_.awake());
  sim_.run_all();
  EXPECT_EQ(radio_.state(), RadioState::kSleep);
  EXPECT_TRUE(radio_.asleep());
}

TEST_F(RadioTest, WakeGoesThroughSwitchingAndFiresCallback) {
  radio_.sleep();
  sim_.run_all();
  bool woke = false;
  radio_.wake([&] { woke = true; });
  EXPECT_EQ(radio_.state(), RadioState::kSwitching);
  EXPECT_FALSE(woke);
  sim_.run_all();
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
  EXPECT_TRUE(woke);
}

TEST_F(RadioTest, SwitchTakesConfiguredTime) {
  radio_.sleep();
  sim_.run_until(0.001);
  EXPECT_EQ(radio_.state(), RadioState::kSwitching);
  sim_.run_until(0.002);
  EXPECT_EQ(radio_.state(), RadioState::kSleep);
}

TEST_F(RadioTest, InvalidTransitionsThrow) {
  EXPECT_THROW(radio_.end_tx(), std::logic_error);
  EXPECT_THROW(radio_.end_rx(), std::logic_error);
  EXPECT_THROW(radio_.wake([] {}), std::logic_error);  // not asleep
  radio_.begin_tx();
  EXPECT_THROW(radio_.begin_rx(), std::logic_error);
  EXPECT_THROW(radio_.sleep(), std::logic_error);
  EXPECT_THROW(radio_.begin_tx(), std::logic_error);
}

TEST_F(RadioTest, SleepWhileRxThrows) {
  radio_.begin_rx();
  EXPECT_THROW(radio_.sleep(), std::logic_error);
}

TEST_F(RadioTest, EnergyAccountingFollowsStates) {
  sim_.schedule_in(1.0, [&] { radio_.begin_tx(); });
  sim_.schedule_in(2.0, [&] { radio_.end_tx(); });
  sim_.schedule_in(3.0, [&] { radio_.sleep(); });
  sim_.run_all();
  radio_.finalize_energy(5.0);
  const EnergyMeter& m = radio_.meter();
  EXPECT_DOUBLE_EQ(m.seconds_in(RadioState::kTx), 1.0);
  EXPECT_NEAR(m.seconds_in(RadioState::kSwitching), 0.002, 1e-9);
  EXPECT_NEAR(m.seconds_in(RadioState::kSleep), 5.0 - 3.0 - 0.002, 1e-9);
  EXPECT_DOUBLE_EQ(m.seconds_in(RadioState::kIdle), 2.0);
}

}  // namespace
}  // namespace dftmsn
