#include "mobility/mobility_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

namespace dftmsn {
namespace {

TEST(MobilityManager, InvalidStepThrows) {
  Simulator sim;
  EXPECT_THROW(MobilityManager(sim, 0.0), std::invalid_argument);
}

TEST(MobilityManager, NodesMustBeAddedInOrder) {
  Simulator sim;
  MobilityManager mm(sim, 0.5);
  mm.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  EXPECT_THROW(mm.add_node(2, std::make_unique<StaticMobility>(Vec2{0, 0})),
               std::invalid_argument);
  EXPECT_THROW(mm.add_node(1, nullptr), std::invalid_argument);
}

TEST(MobilityManager, PositionQuery) {
  Simulator sim;
  MobilityManager mm(sim, 0.5);
  mm.add_node(0, std::make_unique<StaticMobility>(Vec2{3.0, 4.0}));
  EXPECT_EQ(mm.position(0), (Vec2{3.0, 4.0}));
  EXPECT_THROW((void)mm.position(1), std::out_of_range);
}

TEST(MobilityManager, NeighborsWithinRange) {
  Simulator sim;
  MobilityManager mm(sim, 0.5);
  mm.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  mm.add_node(1, std::make_unique<StaticMobility>(Vec2{5, 0}));
  mm.add_node(2, std::make_unique<StaticMobility>(Vec2{20, 0}));
  const auto nb = mm.neighbors_of(0, 10.0);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(nb[0], 1u);
}

TEST(MobilityManager, NeighborsExcludeSelfIncludeBoundary) {
  Simulator sim;
  MobilityManager mm(sim, 0.5);
  mm.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  mm.add_node(1, std::make_unique<StaticMobility>(Vec2{10, 0}));  // exactly at range
  const auto nb = mm.neighbors_of(0, 10.0);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(nb[0], 1u);
}

TEST(MobilityManager, NodesInRangeOfPoint) {
  Simulator sim;
  MobilityManager mm(sim, 0.5);
  mm.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  mm.add_node(1, std::make_unique<StaticMobility>(Vec2{6, 0}));
  const auto in = mm.nodes_in_range({3.0, 0.0}, 4.0);
  EXPECT_EQ(in.size(), 2u);
}

TEST(MobilityManager, DistanceBetween) {
  Simulator sim;
  MobilityManager mm(sim, 0.5);
  mm.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  mm.add_node(1, std::make_unique<StaticMobility>(Vec2{3, 4}));
  EXPECT_DOUBLE_EQ(mm.distance_between(0, 1), 5.0);
}

/// A model that records how often it is stepped.
class CountingModel final : public MobilityModel {
 public:
  [[nodiscard]] Vec2 position() const override { return {}; }
  void step(double) override { ++steps; }
  int steps = 0;
};

TEST(MobilityManager, TickDrivesAllModels) {
  Simulator sim;
  MobilityManager mm(sim, 0.5);
  auto owned = std::make_unique<CountingModel>();
  CountingModel* counter = owned.get();
  mm.add_node(0, std::move(owned));
  mm.start();
  mm.start();  // idempotent
  sim.run_until(5.0);
  EXPECT_EQ(counter->steps, 10);
}

TEST(MobilityManager, NoTicksBeforeStart) {
  Simulator sim;
  MobilityManager mm(sim, 0.5);
  auto owned = std::make_unique<CountingModel>();
  CountingModel* counter = owned.get();
  mm.add_node(0, std::move(owned));
  sim.run_until(5.0);
  EXPECT_EQ(counter->steps, 0);
}

}  // namespace
}  // namespace dftmsn
