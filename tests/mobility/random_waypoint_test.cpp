#include "mobility/random_waypoint.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace dftmsn {
namespace {

RandomWaypoint::Params default_params() {
  RandomWaypoint::Params p;
  p.speed_min = 1.0;
  p.speed_max = 5.0;
  p.pause_max_s = 0.0;
  return p;
}

TEST(RandomWaypoint, StaysInsideField) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(1);
  RandomWaypoint m(grid, default_params(), {75.0, 75.0}, rngs.stream("m"));
  for (int step = 0; step < 50000; ++step) {
    m.step(0.5);
    const Vec2 p = m.position();
    ASSERT_GE(p.x, 0.0);
    ASSERT_LE(p.x, 150.0);
    ASSERT_GE(p.y, 0.0);
    ASSERT_LE(p.y, 150.0);
  }
}

TEST(RandomWaypoint, MovesTowardWaypoint) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(2);
  RandomWaypoint m(grid, default_params(), {75.0, 75.0}, rngs.stream("m"));
  const Vec2 target = m.waypoint();
  const double before = distance(m.position(), target);
  m.step(0.5);
  // Either approached the waypoint or already switched to a new one.
  if (m.waypoint() == target) {
    EXPECT_LT(distance(m.position(), target), before);
  }
}

TEST(RandomWaypoint, StepBoundedBySpeedMax) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(3);
  RandomWaypoint m(grid, default_params(), {10.0, 10.0}, rngs.stream("m"));
  for (int step = 0; step < 10000; ++step) {
    const Vec2 before = m.position();
    m.step(0.5);
    ASSERT_LE(distance(before, m.position()), 5.0 * 0.5 + 1e-9);
  }
}

TEST(RandomWaypoint, PausesAtWaypoints) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(4);
  RandomWaypoint::Params p = default_params();
  p.pause_max_s = 100.0;
  RandomWaypoint m(grid, p, {75.0, 75.0}, rngs.stream("m"));
  // Run long enough to hit a waypoint and observe a pause step (position
  // unchanged across a step at least once).
  bool paused = false;
  Vec2 prev = m.position();
  for (int step = 0; step < 200000 && !paused; ++step) {
    m.step(0.5);
    if (m.position() == prev) paused = true;
    prev = m.position();
  }
  EXPECT_TRUE(paused);
}

TEST(RandomWaypoint, CoversTheField) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(5);
  RandomWaypoint m(grid, default_params(), {0.0, 0.0}, rngs.stream("m"));
  bool left = false, right = false;
  for (int step = 0; step < 100000; ++step) {
    m.step(0.5);
    left |= m.position().x < 30.0;
    right |= m.position().x > 120.0;
  }
  EXPECT_TRUE(left);
  EXPECT_TRUE(right);
}

}  // namespace
}  // namespace dftmsn
