// Trace-driven mobility: interpolation against hand-computed positions,
// exact-sample hits, clamping outside the track, malformed-trace rejection
// naming the offending record, file round-trips, and cursor snapshots.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "../testutil/trace_fixtures.hpp"
#include "mobility/motion_trace.hpp"
#include "mobility/trace_mobility.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {
namespace {

std::shared_ptr<const MotionTrack> make_track(
    std::initializer_list<MotionSample> samples) {
  return std::make_shared<const MotionTrack>(samples);
}

// The canonical hand-checked track: three legs with distinct velocities.
//   t in [0,10]:  (0,0)   -> (10,0)   at 1 m/s along x
//   t in [10,30]: (10,0)  -> (10,40)  at 2 m/s along y
//   t in [30,40]: (10,40) -> (50,80)  diagonal
std::shared_ptr<const MotionTrack> reference_track() {
  return make_track({{0.0, {0.0, 0.0}},
                     {10.0, {10.0, 0.0}},
                     {30.0, {10.0, 40.0}},
                     {40.0, {50.0, 80.0}}});
}

TEST(TraceMobility, InterpolatesLinearlyBetweenSamples) {
  TraceMobility m(reference_track());
  m.step(2.5);  // t = 2.5, first leg, 25% in
  EXPECT_DOUBLE_EQ(m.position().x, 2.5);
  EXPECT_DOUBLE_EQ(m.position().y, 0.0);
  m.step(12.5);  // t = 15, second leg, 25% in
  EXPECT_DOUBLE_EQ(m.position().x, 10.0);
  EXPECT_DOUBLE_EQ(m.position().y, 10.0);
  m.step(20.0);  // t = 35, third leg, halfway
  EXPECT_DOUBLE_EQ(m.position().x, 30.0);
  EXPECT_DOUBLE_EQ(m.position().y, 60.0);
}

TEST(TraceMobility, ExactSampleHitsReturnTheSampleItself) {
  TraceMobility m(reference_track());
  EXPECT_DOUBLE_EQ(m.position().x, 0.0);  // t = 0 is sample 0
  m.step(10.0);                           // t = 10, exactly sample 1
  EXPECT_DOUBLE_EQ(m.position().x, 10.0);
  EXPECT_DOUBLE_EQ(m.position().y, 0.0);
  EXPECT_EQ(m.segment(), 1u);
  m.step(20.0);  // t = 30, exactly sample 2
  EXPECT_DOUBLE_EQ(m.position().x, 10.0);
  EXPECT_DOUBLE_EQ(m.position().y, 40.0);
  m.step(10.0);  // t = 40, exactly the last sample
  EXPECT_DOUBLE_EQ(m.position().x, 50.0);
  EXPECT_DOUBLE_EQ(m.position().y, 80.0);
}

TEST(TraceMobility, ClampsBeforeFirstAndAfterLastSample) {
  // Track that only starts at t = 5: the node stands at the first sample
  // until then, and parks at the last sample forever after.
  TraceMobility m(make_track({{5.0, {3.0, 4.0}}, {15.0, {13.0, 4.0}}}));
  EXPECT_DOUBLE_EQ(m.position().x, 3.0);  // t = 0 < first sample
  m.step(2.0);                            // t = 2, still before
  EXPECT_DOUBLE_EQ(m.position().x, 3.0);
  EXPECT_DOUBLE_EQ(m.position().y, 4.0);
  m.step(8.0);  // t = 10, mid-leg
  EXPECT_DOUBLE_EQ(m.position().x, 8.0);
  m.step(1000.0);  // far past the end
  EXPECT_DOUBLE_EQ(m.position().x, 13.0);
  EXPECT_DOUBLE_EQ(m.position().y, 4.0);
  m.step(1.0);  // stepping further stays parked
  EXPECT_DOUBLE_EQ(m.position().x, 13.0);
}

TEST(TraceMobility, ManySmallStepsMatchOneBigStep) {
  TraceMobility fine(reference_track());
  TraceMobility coarse(reference_track());
  for (int i = 0; i < 370; ++i) fine.step(0.1);
  coarse.step(37.0);
  EXPECT_NEAR(fine.position().x, coarse.position().x, 1e-9);
  EXPECT_NEAR(fine.position().y, coarse.position().y, 1e-9);
  EXPECT_EQ(fine.segment(), coarse.segment());
}

TEST(TraceMobility, SingleSampleTrackIsAFixedPoint) {
  TraceMobility m(make_track({{7.0, {1.0, 2.0}}}));
  for (const double dt : {0.0, 3.0, 10.0, 500.0}) {
    m.step(dt);
    EXPECT_DOUBLE_EQ(m.position().x, 1.0);
    EXPECT_DOUBLE_EQ(m.position().y, 2.0);
  }
}

// ---------------------------------------------------------------------------
// Validation: malformed traces are rejected naming node + sample.

void expect_invalid(const MotionTrace& trace, const std::string& fragment) {
  try {
    trace.validate();
    FAIL() << "expected rejection mentioning '" << fragment << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(MotionTrace, RejectsOutOfOrderTimestampsNamingTheRecord) {
  MotionTrace trace;
  trace.tracks.push_back({{0.0, {0.0, 0.0}}, {5.0, {1.0, 1.0}}});
  trace.tracks.push_back(
      {{0.0, {0.0, 0.0}}, {9.0, {1.0, 1.0}}, {8.0, {2.0, 2.0}}});
  expect_invalid(trace, "node 1 sample 2");
  // Equal timestamps are out of order too (strictly ascending required).
  trace.tracks[1][2].t = 9.0;
  expect_invalid(trace, "node 1 sample 2");
}

TEST(MotionTrace, RejectsNonFiniteValuesNamingTheRecord) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  MotionTrace trace;
  trace.tracks.push_back({{0.0, {0.0, 0.0}}, {5.0, {nan, 1.0}}});
  expect_invalid(trace, "node 0 sample 1");
  trace.tracks[0][1] = {nan, {1.0, 1.0}};
  expect_invalid(trace, "node 0 sample 1");
  trace.tracks[0][1] = {5.0, {1.0, inf}};
  expect_invalid(trace, "node 0 sample 1");
}

TEST(MotionTrace, RejectsEmptyTracks) {
  MotionTrace trace;
  trace.tracks.push_back({{0.0, {0.0, 0.0}}});
  trace.tracks.emplace_back();
  expect_invalid(trace, "node 1");
}

// ---------------------------------------------------------------------------
// Encode/decode and file round-trips.

MotionTrace sample_trace() {
  return testutil::make_test_trace(5, 100.0, 300.0, 99);
}

TEST(MotionTrace, EncodeDecodeRoundTripsExactly) {
  const MotionTrace trace = sample_trace();
  const auto image = encode_motion_trace(trace);
  const MotionTrace back = decode_motion_trace(image);
  ASSERT_EQ(back.tracks.size(), trace.tracks.size());
  for (std::size_t n = 0; n < trace.tracks.size(); ++n) {
    ASSERT_EQ(back.tracks[n].size(), trace.tracks[n].size());
    for (std::size_t i = 0; i < trace.tracks[n].size(); ++i) {
      EXPECT_EQ(back.tracks[n][i].t, trace.tracks[n][i].t);
      EXPECT_EQ(back.tracks[n][i].pos.x, trace.tracks[n][i].pos.x);
      EXPECT_EQ(back.tracks[n][i].pos.y, trace.tracks[n][i].pos.y);
    }
  }
  // Canonical encoding: re-encoding the decoded trace is byte-identical.
  EXPECT_EQ(encode_motion_trace(back), image);
}

TEST(MotionTrace, FileRoundTripAndErrorsNameThePath) {
  const std::string path = "trace_mobility_test.tmp.trc";
  save_motion_trace(path, sample_trace());
  EXPECT_EQ(encode_motion_trace(load_motion_trace(path)),
            encode_motion_trace(sample_trace()));

  try {
    load_motion_trace("no_such_trace_file.trc");
    FAIL() << "expected missing-file rejection";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_trace_file.trc"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(MotionTrace, DecodeRejectsCorruptImages) {
  auto image = encode_motion_trace(sample_trace());
  // Flip one payload byte: the trailing digest no longer matches.
  auto corrupt = image;
  corrupt[image.size() / 2] ^= 0x40;
  EXPECT_THROW(decode_motion_trace(corrupt), snapshot::SnapshotError);
  // Truncation.
  auto truncated = image;
  truncated.resize(image.size() - 9);
  EXPECT_THROW(decode_motion_trace(truncated), snapshot::SnapshotError);
  // Foreign magic (digest recomputed so only the magic check can fire).
  auto foreign = image;
  foreign[0] = 'X';
  snapshot::StateHash rehash;
  rehash.update(foreign.data(), foreign.size() - 8);
  for (int i = 0; i < 8; ++i)
    foreign[foreign.size() - 8 + i] =
        static_cast<std::uint8_t>(rehash.value() >> (8 * i));
  EXPECT_THROW(decode_motion_trace(foreign), snapshot::SnapshotError);
}

// ---------------------------------------------------------------------------
// Cursor snapshots.

TEST(TraceMobility, SnapshotRoundTripRestoresCursorExactly) {
  auto track = reference_track();
  TraceMobility m(track);
  m.step(17.25);  // mid-leg, non-trivial cursor
  snapshot::Writer w;
  m.save_state(w);

  TraceMobility restored(track);
  snapshot::Reader r(w.bytes());
  restored.load_state(r);
  EXPECT_EQ(restored.time(), m.time());
  EXPECT_EQ(restored.segment(), m.segment());
  EXPECT_EQ(restored.position().x, m.position().x);
  EXPECT_EQ(restored.position().y, m.position().y);

  // Both replicas keep evolving identically after the restore.
  m.step(9.5);
  restored.step(9.5);
  EXPECT_EQ(restored.position().x, m.position().x);
  EXPECT_EQ(restored.segment(), m.segment());
}

TEST(TraceMobility, LoadRejectsCursorBeyondTrack) {
  TraceMobility m(reference_track());
  snapshot::Writer w;
  w.begin_section("trace_mobility");
  w.f64(1.0);
  w.u64(99);  // cursor far past the 4-sample track
  w.end_section();
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(m.load_state(r), snapshot::SnapshotError);
}

}  // namespace
}  // namespace dftmsn
