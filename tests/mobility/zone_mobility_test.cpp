#include "mobility/zone_mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/random.hpp"

namespace dftmsn {
namespace {

ZoneMobility::Params paper_params() {
  ZoneMobility::Params p;
  p.speed_min = 0.0;
  p.speed_max = 5.0;
  p.exit_prob = 0.2;
  p.home_return_prob = 1.0;
  p.leg_mean_s = 30.0;
  return p;
}

TEST(ZoneMobility, StartsAtClampedPositionWithHomeZone) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(1);
  ZoneMobility m(grid, paper_params(), {35.0, 35.0}, rngs.stream("m"));
  EXPECT_EQ(m.home_zone(), 6);
  EXPECT_EQ(m.current_zone(), 6);
  EXPECT_EQ(m.position(), (Vec2{35.0, 35.0}));
}

TEST(ZoneMobility, OutOfFieldStartIsClamped) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(1);
  ZoneMobility m(grid, paper_params(), {-10.0, 200.0}, rngs.stream("m"));
  EXPECT_EQ(m.position(), (Vec2{0.0, 150.0}));
}

TEST(ZoneMobility, SpeedIsFixedPerNodeWithinBounds) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(2);
  for (int i = 0; i < 20; ++i) {
    ZoneMobility m(grid, paper_params(), {75.0, 75.0},
                   rngs.stream("m", static_cast<std::uint64_t>(i)));
    EXPECT_GE(m.speed(), 0.0);
    EXPECT_LE(m.speed(), 5.0);
  }
}

TEST(ZoneMobility, StaysInsideField) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(3);
  for (int node = 0; node < 10; ++node) {
    ZoneMobility m(grid, paper_params(), {75.0, 75.0},
                   rngs.stream("m", static_cast<std::uint64_t>(node)));
    for (int step = 0; step < 20000; ++step) {
      m.step(0.5);
      const Vec2 p = m.position();
      ASSERT_GE(p.x, 0.0);
      ASSERT_LE(p.x, 150.0);
      ASSERT_GE(p.y, 0.0);
      ASSERT_LE(p.y, 150.0);
    }
  }
}

TEST(ZoneMobility, StepDisplacementBoundedBySpeed) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(4);
  ZoneMobility m(grid, paper_params(), {75.0, 75.0}, rngs.stream("m"));
  for (int step = 0; step < 5000; ++step) {
    const Vec2 before = m.position();
    m.step(0.5);
    const double moved = distance(before, m.position());
    ASSERT_LE(moved, m.speed() * 0.5 + 1e-9);
  }
}

TEST(ZoneMobility, CurrentZoneTracksPosition) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(5);
  ZoneMobility m(grid, paper_params(), {75.0, 75.0}, rngs.stream("m"));
  for (int step = 0; step < 10000; ++step) {
    m.step(0.5);
    ASSERT_EQ(m.current_zone(), grid.zone_of(m.position()));
  }
}

TEST(ZoneMobility, ZeroExitProbabilityConfinesToHomeZone) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(6);
  ZoneMobility::Params p = paper_params();
  p.exit_prob = 0.0;
  p.speed_min = 2.0;  // keep it moving
  ZoneMobility m(grid, p, {75.0, 75.0}, rngs.stream("m"));
  for (int step = 0; step < 20000; ++step) {
    m.step(0.5);
    ASSERT_EQ(m.current_zone(), m.home_zone());
  }
}

TEST(ZoneMobility, FullExitProbabilityRoamsWidely) {
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(7);
  ZoneMobility::Params p = paper_params();
  p.exit_prob = 1.0;
  p.speed_min = 2.0;
  ZoneMobility m(grid, p, {75.0, 75.0}, rngs.stream("m"));
  std::map<ZoneId, int> visited;
  for (int step = 0; step < 50000; ++step) {
    m.step(0.5);
    visited[m.current_zone()]++;
  }
  EXPECT_GT(visited.size(), 15u);  // most of the 25 zones
}

TEST(ZoneMobility, HomeBiasRaisesHomeOccupancy) {
  // With the paper's 20%/100% rule, home occupancy must clearly exceed
  // the uniform 1/25 = 4% share (the Markov analysis gives ~17%).
  ZoneGrid grid(150.0, 5);
  RandomSource rngs(8);
  double home_frac = 0.0;
  const int nodes = 20, steps = 30000;
  for (int n = 0; n < nodes; ++n) {
    ZoneMobility::Params p = paper_params();
    p.speed_min = 1.0;  // avoid near-static nodes dominating the average
    ZoneMobility m(grid, p, {75.0, 75.0},
                   rngs.stream("m", static_cast<std::uint64_t>(n)));
    int home = 0;
    for (int s = 0; s < steps; ++s) {
      m.step(0.5);
      home += m.current_zone() == m.home_zone() ? 1 : 0;
    }
    home_frac += static_cast<double>(home) / steps;
  }
  home_frac /= nodes;
  EXPECT_GT(home_frac, 0.08);
}

}  // namespace
}  // namespace dftmsn
