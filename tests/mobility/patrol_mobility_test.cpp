#include "mobility/patrol_mobility.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

TEST(PatrolMobility, InvalidArgsThrow) {
  EXPECT_THROW(PatrolMobility({{0, 0}}, 1.0), std::invalid_argument);
  EXPECT_THROW(PatrolMobility({{0, 0}, {1, 0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(PatrolMobility({{0, 0}, {1, 0}}, 1.0, -1.0),
               std::invalid_argument);
}

TEST(PatrolMobility, StartsAtFirstWaypoint) {
  PatrolMobility m({{1, 2}, {5, 2}}, 1.0);
  EXPECT_EQ(m.position(), (Vec2{1, 2}));
  EXPECT_EQ(m.next_waypoint(), 1u);
}

TEST(PatrolMobility, TravelsAtConstantSpeed) {
  PatrolMobility m({{0, 0}, {10, 0}}, 2.0);
  m.step(1.0);
  EXPECT_NEAR(m.position().x, 2.0, 1e-9);
  m.step(2.5);
  EXPECT_NEAR(m.position().x, 7.0, 1e-9);
}

TEST(PatrolMobility, CyclesTheCircuit) {
  // Square of side 10 at 1 m/s: a full lap takes 40 s.
  PatrolMobility m({{0, 0}, {10, 0}, {10, 10}, {0, 10}}, 1.0);
  m.step(40.0);
  EXPECT_NEAR(distance(m.position(), {0, 0}), 0.0, 1e-9);
  m.step(15.0);  // 10 along the bottom + 5 up the right edge
  EXPECT_NEAR(m.position().x, 10.0, 1e-9);
  EXPECT_NEAR(m.position().y, 5.0, 1e-9);
}

TEST(PatrolMobility, DwellsAtWaypoints) {
  PatrolMobility m({{0, 0}, {10, 0}}, 1.0, 5.0);
  m.step(10.0);  // arrives exactly at the second waypoint
  EXPECT_NEAR(m.position().x, 10.0, 1e-9);
  m.step(4.0);  // still dwelling
  EXPECT_NEAR(m.position().x, 10.0, 1e-9);
  m.step(2.0);  // 1 s of dwell left, then 1 s of travel back
  EXPECT_NEAR(m.position().x, 9.0, 1e-9);
}

TEST(PatrolMobility, LargeStepSpansMultipleLegs) {
  PatrolMobility m({{0, 0}, {4, 0}, {4, 4}}, 2.0);
  // Perimeter legs: 4 + 4 + sqrt(32). One step covering the first two
  // legs plus 1 m of the diagonal return.
  m.step((4.0 + 4.0 + 1.0) / 2.0);
  EXPECT_NEAR(distance(m.position(), {4, 4}), 1.0, 1e-9);
}

}  // namespace
}  // namespace dftmsn
