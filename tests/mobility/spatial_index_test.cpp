// SpatialIndex equivalence suite: every grid-accelerated disc query must
// return exactly what the brute-force all-nodes scan returns — same nodes,
// same (ascending id) order — for every mobility kind and for adversarial
// geometries: nodes straddling cell borders, pairs at exactly the query
// range, positions clamped at field corners, ranges larger than the field
// and smaller than a cell.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "../testutil/trace_fixtures.hpp"
#include "experiment/world.hpp"
#include "geom/spatial_index.hpp"
#include "mobility/mobility_model.hpp"

namespace dftmsn {
namespace {

// ---------------------------------------------------------------------------
// Direct SpatialIndex vs brute force over its own cached positions.

std::vector<NodeId> brute_disc(const std::vector<Vec2>& pos, const Vec2& c,
                               double range, NodeId exclude) {
  std::vector<NodeId> out;
  const double r2 = range * range;
  for (NodeId id = 0; id < pos.size(); ++id) {
    if (id == exclude) continue;
    if (distance2(c, pos[id]) <= r2) out.push_back(id);
  }
  return out;
}

void expect_equivalent(const SpatialIndex& idx, const std::vector<Vec2>& pos,
                       const Vec2& center, double range, NodeId exclude) {
  std::vector<NodeId> got;
  idx.collect_in_disc(center, range, exclude, got);
  const std::vector<NodeId> want = brute_disc(pos, center, range, exclude);
  ASSERT_EQ(got, want) << "center=(" << center.x << "," << center.y
                       << ") range=" << range << " exclude=" << exclude;
  EXPECT_EQ(idx.any_in_disc(center, range, exclude), !want.empty());
}

TEST(SpatialIndex, RandomFieldMatchesBruteForce) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.0, 150.0);
  SpatialIndex idx(150.0, 10.0);
  std::vector<Vec2> pos;
  for (NodeId id = 0; id < 200; ++id) {
    pos.push_back({u(rng), u(rng)});
    idx.insert(id, pos.back());
  }
  std::uniform_real_distribution<double> ur(0.0, 40.0);
  for (int trial = 0; trial < 300; ++trial) {
    const Vec2 c{u(rng), u(rng)};
    expect_equivalent(idx, pos, c, ur(rng), rng() % 2 ? NodeId(rng() % 200)
                                                     : kInvalidNode);
  }
}

TEST(SpatialIndex, UpdateMovesNodesAcrossCells) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  SpatialIndex idx(100.0, 10.0);
  std::vector<Vec2> pos;
  for (NodeId id = 0; id < 64; ++id) {
    pos.push_back({u(rng), u(rng)});
    idx.insert(id, pos.back());
  }
  for (int step = 0; step < 50; ++step) {
    for (NodeId id = 0; id < 64; ++id) {
      pos[id] = {u(rng), u(rng)};  // teleport: worst case for bucket moves
      idx.update(id, pos[id]);
    }
    for (int trial = 0; trial < 20; ++trial)
      expect_equivalent(idx, pos, {u(rng), u(rng)}, u(rng) * 0.3,
                        NodeId(rng() % 64));
  }
}

TEST(SpatialIndex, CellBorderStraddling) {
  // Nodes placed exactly on cell boundaries (multiples of the cell edge)
  // and epsilon either side of them; query centered on a grid corner.
  SpatialIndex idx(100.0, 10.0);
  std::vector<Vec2> pos;
  NodeId id = 0;
  const double eps = 1e-9;
  for (double x : {20.0 - eps, 20.0, 20.0 + eps}) {
    for (double y : {30.0 - eps, 30.0, 30.0 + eps}) {
      pos.push_back({x, y});
      idx.insert(id++, pos.back());
    }
  }
  for (double range : {eps / 2, eps, 1.0, 10.0, 9.999999999}) {
    expect_equivalent(idx, pos, {20.0, 30.0}, range, kInvalidNode);
    expect_equivalent(idx, pos, {20.0 - eps, 30.0 + eps}, range, 0);
  }
}

TEST(SpatialIndex, ExactlyAtRangeIsIncluded) {
  // 5.0 + 10.0 = 15.0 exactly in binary floating point, so the pair's
  // distance2 is exactly range^2 — the <= boundary itself.
  SpatialIndex idx(100.0, 10.0);
  idx.insert(0, {5.0, 50.0});
  idx.insert(1, {15.0, 50.0});   // exactly range away along x
  idx.insert(2, {5.0, 60.0});    // exactly range away along y
  idx.insert(3, {5.0, 60.0 + 1e-12});  // just beyond
  std::vector<NodeId> got;
  idx.collect_in_disc({5.0, 50.0}, 10.0, 0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{1, 2}));
  const std::vector<Vec2> pos{{5.0, 50.0}, {15.0, 50.0}, {5.0, 60.0},
                              {5.0, 60.0 + 1e-12}};
  expect_equivalent(idx, pos, {5.0, 50.0}, 10.0, 0);
}

TEST(SpatialIndex, FieldCornersAndOutOfFieldQueries) {
  SpatialIndex idx(100.0, 10.0);
  const std::vector<Vec2> pos{{0.0, 0.0}, {100.0, 100.0}, {0.0, 100.0},
                              {100.0, 0.0}, {50.0, 50.0}};
  for (NodeId id = 0; id < pos.size(); ++id) idx.insert(id, pos[id]);
  // Query centers outside the field must clamp, not crash or miss.
  for (const Vec2& c : {Vec2{-5.0, -5.0}, Vec2{105.0, 105.0},
                        Vec2{-10.0, 50.0}, Vec2{50.0, 200.0}}) {
    for (double range : {1.0, 12.0, 80.0, 500.0})
      expect_equivalent(idx, pos, c, range, kInvalidNode);
  }
}

TEST(SpatialIndex, RangeLargerThanFieldCoversEveryone) {
  SpatialIndex idx(50.0, 10.0);
  std::vector<Vec2> pos;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 50.0);
  for (NodeId id = 0; id < 40; ++id) {
    pos.push_back({u(rng), u(rng)});
    idx.insert(id, pos.back());
  }
  std::vector<NodeId> got;
  idx.collect_in_disc({25.0, 25.0}, 1000.0, kInvalidNode, got);
  ASSERT_EQ(got.size(), 40u);
  for (NodeId id = 0; id < 40; ++id) EXPECT_EQ(got[id], id);
}

TEST(SpatialIndex, TinyRangeOnlyFindsCohabitants) {
  SpatialIndex idx(100.0, 10.0);
  idx.insert(0, {42.0, 42.0});
  idx.insert(1, {42.0, 42.0});  // same point
  idx.insert(2, {42.1, 42.0});
  std::vector<NodeId> got;
  idx.collect_in_disc({42.0, 42.0}, 0.0, 0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{1}));
  EXPECT_TRUE(idx.any_in_disc({42.0, 42.0}, 0.0, 0));
  EXPECT_FALSE(idx.any_in_disc({42.3, 42.0}, 0.05, kInvalidNode));
}

// ---------------------------------------------------------------------------
// MobilityManager: grid-accelerated queries vs the brute-force oracle for
// every mobility kind, sampled along a real World trajectory (sensors
// moving per model, static sinks included).

class SpatialIndexMobility : public ::testing::TestWithParam<MobilityKind> {};

TEST_P(SpatialIndexMobility, WorldQueriesMatchBruteForceOracle) {
  Config c;
  c.scenario.num_sensors = 40;
  c.scenario.num_sinks = 3;
  c.scenario.duration_s = 500.0;
  c.scenario.seed = 20240807;
  c.scenario.speed_min_mps = 0.5;  // waypoint rejects 0 (RWP stall)
  c.scenario.mobility = GetParam();
  if (GetParam() == MobilityKind::kTrace) {
    c.scenario.trace_path = testutil::write_test_trace(
        "spatial_index_test.tmp.trc", c.scenario.num_sensors,
        c.scenario.field_m, c.scenario.duration_s, c.scenario.seed);
  }
  World w(c, ProtocolKind::kOpt);
  const MobilityManager& mm = w.mobility();
  ASSERT_TRUE(mm.spatial_index_enabled());

  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> upos(0.0, c.scenario.field_m);
  for (const double t : {0.0, 3.7, 50.0, 211.9, 500.0}) {
    if (t > 0.0) w.run_until(t);
    for (NodeId id = 0; id < mm.node_count(); ++id) {
      for (const double range : {c.radio.range_m, 5.0, 75.0, 0.1}) {
        const auto got = mm.neighbors_of(id, range);
        const auto want = mm.neighbors_of_scan(id, range);
        ASSERT_EQ(got, want) << "kind=" << mobility_kind_name(GetParam())
                             << " t=" << t << " id=" << id
                             << " range=" << range;
        EXPECT_EQ(mm.any_neighbor_within(id, range), !want.empty());
      }
    }
    // Arbitrary-point queries (sink placement / diagnostics path).
    for (int trial = 0; trial < 25; ++trial) {
      const Vec2 p{upos(rng), upos(rng)};
      const double range = upos(rng) * 0.4;
      const auto got = mm.nodes_in_range(p, range);
      std::vector<NodeId> want;
      const double r2 = range * range;
      for (NodeId id = 0; id < mm.node_count(); ++id) {
        if (distance2(p, mm.position(id)) <= r2) want.push_back(id);
      }
      ASSERT_EQ(got, want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SpatialIndexMobility,
                         ::testing::Values(MobilityKind::kZone,
                                           MobilityKind::kWaypoint,
                                           MobilityKind::kPatrol,
                                           MobilityKind::kTrace),
                         [](const auto& info) {
                           return mobility_kind_name(info.param);
                         });

}  // namespace
}  // namespace dftmsn
