#include "core/delivery_probability.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

TEST(DeliveryProbability, StartsAtInitial) {
  DeliveryProbability xi(0.25);
  EXPECT_DOUBLE_EQ(xi.value(), 0.0);
  DeliveryProbability xi2(0.25, 0.5);
  EXPECT_DOUBLE_EQ(xi2.value(), 0.5);
}

TEST(DeliveryProbability, InvalidParamsThrow) {
  EXPECT_THROW(DeliveryProbability(-0.1), std::invalid_argument);
  EXPECT_THROW(DeliveryProbability(1.1), std::invalid_argument);
  EXPECT_THROW(DeliveryProbability(0.5, 2.0), std::invalid_argument);
}

TEST(DeliveryProbability, TransmissionToSink) {
  // Eq. (1): ξ <- (1-α)ξ + α·1 when the receiver is the sink.
  DeliveryProbability xi(0.25);
  xi.on_transmission(1.0);
  EXPECT_DOUBLE_EQ(xi.value(), 0.25);
  xi.on_transmission(1.0);
  EXPECT_DOUBLE_EQ(xi.value(), 0.4375);
}

TEST(DeliveryProbability, TransmissionToRelay) {
  DeliveryProbability xi(0.25, 0.4);
  xi.on_transmission(0.8);
  EXPECT_DOUBLE_EQ(xi.value(), 0.75 * 0.4 + 0.25 * 0.8);
}

TEST(DeliveryProbability, TimeoutDecay) {
  DeliveryProbability xi(0.25, 0.8);
  xi.on_timeout();
  EXPECT_DOUBLE_EQ(xi.value(), 0.6);
  xi.on_timeout();
  EXPECT_DOUBLE_EQ(xi.value(), 0.45);
}

TEST(DeliveryProbability, StaysInUnitInterval) {
  DeliveryProbability xi(0.9);
  for (int i = 0; i < 100; ++i) xi.on_transmission(1.0);
  EXPECT_LE(xi.value(), 1.0);
  for (int i = 0; i < 1000; ++i) xi.on_timeout();
  EXPECT_GE(xi.value(), 0.0);
}

TEST(DeliveryProbability, ReceiverXiClamped) {
  DeliveryProbability xi(0.5);
  xi.on_transmission(5.0);  // bogus input clamps to 1
  EXPECT_DOUBLE_EQ(xi.value(), 0.5);
  DeliveryProbability xi2(0.5, 0.4);
  xi2.on_transmission(-3.0);  // clamps to 0
  EXPECT_DOUBLE_EQ(xi2.value(), 0.2);
}

TEST(DeliveryProbability, AlphaZeroNeverMoves) {
  DeliveryProbability xi(0.0, 0.3);
  xi.on_transmission(1.0);
  xi.on_timeout();
  EXPECT_DOUBLE_EQ(xi.value(), 0.3);
}

TEST(DeliveryProbability, AlphaOneTracksReceiver) {
  DeliveryProbability xi(1.0, 0.3);
  xi.on_transmission(0.7);
  EXPECT_DOUBLE_EQ(xi.value(), 0.7);
  xi.on_timeout();
  EXPECT_DOUBLE_EQ(xi.value(), 0.0);
}

}  // namespace
}  // namespace dftmsn
