#include "core/listen_window_optimizer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"

namespace dftmsn {
namespace {

using LWO = ListenWindowOptimizer;

TEST(ListenWindow, SigmaQuantization) {
  EXPECT_EQ(LWO::sigma(1.0, 32), 32);
  EXPECT_EQ(LWO::sigma(0.5, 32), 16);
  // The ξ floor prevents the degenerate σ = 1 deadlock (see header).
  EXPECT_EQ(LWO::sigma(0.0, 32), static_cast<int>(LWO::kXiFloor * 32 + 0.5));
  EXPECT_GE(LWO::sigma(0.0, 1), 1);
}

TEST(ListenWindow, SingleContenderNeverCollides) {
  const std::vector<double> one{0.5};
  EXPECT_DOUBLE_EQ(LWO::collision_probability(one, 16), 0.0);
  EXPECT_EQ(LWO::min_tau_max(one, 0.1, 64), 1);
}

TEST(ListenWindow, TwoEqualContendersKnownValue) {
  // Both σ = 8: P(min unique) = 2 * Σ_τ (1/8)((8-τ)/8); collision is the
  // tie probability = 1/8.
  const std::vector<double> xis{0.25, 0.25};
  const double gamma = LWO::collision_probability(xis, 32);
  EXPECT_NEAR(gamma, 1.0 / 8.0, 1e-9);
}

TEST(ListenWindow, CollisionDecreasesWithTauMax) {
  const std::vector<double> xis{0.3, 0.5, 0.7};
  double prev = 1.0;
  for (int tau : {4, 8, 16, 32, 64, 128}) {
    const double g = LWO::collision_probability(xis, tau);
    EXPECT_LE(g, prev + 1e-9);
    prev = g;
  }
}

TEST(ListenWindow, CollisionIncreasesWithContenders) {
  std::vector<double> xis{0.5};
  double prev = 0.0;
  for (int m = 2; m <= 6; ++m) {
    xis.push_back(0.5);
    const double g = LWO::collision_probability(xis, 32);
    EXPECT_GE(g, prev - 1e-9);
    prev = g;
  }
}

TEST(ListenWindow, GraspProbabilitiesFormDistribution) {
  // Σ_i P_i + γ = 1 by definition (exactly one winner, or a tie).
  const std::vector<double> xis{0.2, 0.5, 0.9};
  double sum = 0.0;
  for (std::size_t i = 0; i < xis.size(); ++i)
    sum += LWO::grasp_probability(xis, i, 32);
  EXPECT_NEAR(sum + LWO::collision_probability(xis, 32), 1.0, 1e-9);
}

TEST(ListenWindow, LowerMetricGraspsMoreOften) {
  // The design goal of Eq. (9): low-ξ senders should win the channel.
  const std::vector<double> xis{0.2, 0.8};
  EXPECT_GT(LWO::grasp_probability(xis, 0, 64),
            LWO::grasp_probability(xis, 1, 64));
}

TEST(ListenWindow, MinTauMaxMeetsTarget) {
  const std::vector<double> xis{0.4, 0.6, 0.8};
  const int tau = LWO::min_tau_max(xis, 0.1, 256);
  EXPECT_LE(LWO::collision_probability(xis, tau), 0.1);
  if (tau > 1) {
    EXPECT_GT(LWO::collision_probability(xis, tau - 1), 0.1);
  }
}

TEST(ListenWindow, MinTauMaxReturnsCapWhenUnattainable) {
  // Two ξ=0 contenders sit at the σ floor: γ is constant in τ_max only up
  // to the floor scaling; with a tiny cap the target is unattainable.
  const std::vector<double> xis{0.0, 0.0};
  EXPECT_EQ(LWO::min_tau_max(xis, 1e-6, 4), 4);
}

TEST(ListenWindow, AnalyticMatchesMonteCarlo) {
  const std::vector<double> xis{0.3, 0.6, 0.9};
  RandomStream rng(99);
  const double mc = LWO::collision_probability_mc(
      xis, 32, 200000, [&] { return rng.uniform01(); });
  const double analytic = LWO::collision_probability(xis, 32);
  EXPECT_NEAR(mc, analytic, 0.01);
}

// --- parameterized sweep: min_tau_max consistency across populations ----

class TauSweep : public ::testing::TestWithParam<int> {};

TEST_P(TauSweep, BinarySearchAgreesWithLinearScan) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xis;
    const int m = rng.uniform_int(2, 5);
    for (int i = 0; i < m; ++i) xis.push_back(rng.uniform01());
    const double target = 0.05 + rng.uniform01() * 0.3;
    const int cap = 128;
    const int fast = LWO::min_tau_max(xis, target, cap);
    int slow = cap;
    for (int t = 1; t <= cap; ++t) {
      if (LWO::collision_probability(xis, t) <= target) {
        slow = t;
        break;
      }
    }
    // γ is not perfectly monotone under slot quantization; allow the
    // bracketed search to land within one quantization step.
    EXPECT_NEAR(fast, slow, 1.0) << "m=" << m << " target=" << target;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TauSweep, ::testing::Values(3, 13, 23));

}  // namespace
}  // namespace dftmsn
