#include "core/cts_window_optimizer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"

namespace dftmsn {
namespace {

using CWO = CtsWindowOptimizer;

TEST(CtsWindow, NoRepliersNoCollision) {
  EXPECT_DOUBLE_EQ(CWO::collision_probability(8, 0), 0.0);
  EXPECT_DOUBLE_EQ(CWO::collision_probability(8, 1), 0.0);
}

TEST(CtsWindow, MoreRepliersThanSlotsAlwaysCollide) {
  EXPECT_DOUBLE_EQ(CWO::collision_probability(3, 4), 1.0);
}

TEST(CtsWindow, BirthdayTwoRepliers) {
  // Two repliers in W slots collide with probability 1/W.
  EXPECT_NEAR(CWO::collision_probability(8, 2), 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(CWO::collision_probability(16, 2), 1.0 / 16.0, 1e-12);
}

TEST(CtsWindow, Eq14ClosedForm) {
  // γ_o = 1 - W!/(W-n)!/W^n; for W=4, n=3: 1 - (4*3*2)/64 = 0.625.
  EXPECT_NEAR(CWO::collision_probability(4, 3), 0.625, 1e-12);
}

TEST(CtsWindow, InvalidArgsThrow) {
  EXPECT_THROW(CWO::collision_probability(0, 2), std::invalid_argument);
  EXPECT_THROW(CWO::collision_probability(4, -1), std::invalid_argument);
}

TEST(CtsWindow, MonotoneInWindow) {
  double prev = 1.0;
  for (int w : {4, 8, 16, 32, 64}) {
    const double g = CWO::collision_probability(w, 4);
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(CtsWindow, MonotoneInRepliers) {
  double prev = 0.0;
  for (int n = 2; n <= 8; ++n) {
    const double g = CWO::collision_probability(16, n);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(CtsWindow, MinWindowMeetsTarget) {
  for (int n : {2, 3, 5, 8}) {
    const int w = CWO::min_window(n, 0.1, 1024);
    EXPECT_LE(CWO::collision_probability(w, n), 0.1);
    EXPECT_GT(CWO::collision_probability(w - 1, n), 0.1);
  }
}

TEST(CtsWindow, MinWindowHitsCapWhenUnattainable) {
  EXPECT_EQ(CWO::min_window(8, 1e-9, 32), 32);
}

TEST(CtsWindow, MinWindowSingleReplierIsOne) {
  EXPECT_EQ(CWO::min_window(1, 0.1, 64), 1);
  EXPECT_EQ(CWO::min_window(0, 0.1, 64), 1);
}

TEST(CtsWindow, ExpectedSurvivors) {
  EXPECT_DOUBLE_EQ(CWO::expected_survivors(8, 1), 1.0);
  // n=2, W=2: each survives iff the other picked differently: 2 * 1/2.
  EXPECT_NEAR(CWO::expected_survivors(2, 2), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CWO::expected_survivors(8, 0), 0.0);
}

TEST(CtsWindow, AnalyticMatchesMonteCarlo) {
  RandomStream rng(42);
  const int w = 8, n = 4, draws = 200000;
  int collided = 0;
  double survivor_sum = 0;
  std::vector<int> slots(n);
  for (int d = 0; d < draws; ++d) {
    for (int i = 0; i < n; ++i) slots[i] = rng.uniform_int(1, w);
    bool any_dup = false;
    int survivors = 0;
    for (int i = 0; i < n; ++i) {
      bool dup = false;
      for (int j = 0; j < n; ++j) {
        if (i != j && slots[i] == slots[j]) dup = true;
      }
      any_dup |= dup;
      survivors += dup ? 0 : 1;
    }
    collided += any_dup ? 1 : 0;
    survivor_sum += survivors;
  }
  EXPECT_NEAR(static_cast<double>(collided) / draws,
              CWO::collision_probability(w, n), 0.01);
  EXPECT_NEAR(survivor_sum / draws, CWO::expected_survivors(w, n), 0.02);
}

}  // namespace
}  // namespace dftmsn
