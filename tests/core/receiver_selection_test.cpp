#include "core/receiver_selection.hpp"

#include <gtest/gtest.h>

#include "core/ftd.hpp"
#include "sim/random.hpp"

namespace dftmsn {
namespace {

Candidate cand(NodeId id, double metric, std::size_t space = 5,
               bool sink = false) {
  return Candidate{id, metric, space, sink};
}

TEST(ReceiverSelection, EmptyCandidatesEmptySelection) {
  const Selection s = select_receivers(0.2, 0.0, 0.95, {});
  EXPECT_TRUE(s.receivers.empty());
  EXPECT_DOUBLE_EQ(s.aggregate_probability, 0.0);
}

TEST(ReceiverSelection, OnlyHigherMetricQualifies) {
  const Selection s =
      select_receivers(0.5, 0.0, 0.95,
                       {cand(1, 0.4), cand(2, 0.5), cand(3, 0.6)});
  ASSERT_EQ(s.receivers.size(), 1u);
  EXPECT_EQ(s.receivers[0].id, 3u);  // strictly higher only
}

TEST(ReceiverSelection, ZeroBufferSpaceDisqualifies) {
  const Selection s =
      select_receivers(0.1, 0.0, 0.95, {cand(1, 0.9, 0), cand(2, 0.5, 3)});
  ASSERT_EQ(s.receivers.size(), 1u);
  EXPECT_EQ(s.receivers[0].id, 2u);
}

TEST(ReceiverSelection, StopsOnceThresholdReached) {
  // A sink (ξ = 1) alone pushes the aggregate past any R < 1.
  const Selection s = select_receivers(
      0.0, 0.0, 0.95, {cand(1, 1.0, 5, true), cand(2, 0.9), cand(3, 0.8)});
  ASSERT_EQ(s.receivers.size(), 1u);
  EXPECT_EQ(s.receivers[0].id, 1u);
  EXPECT_TRUE(s.receivers[0].is_sink);
  EXPECT_DOUBLE_EQ(s.aggregate_probability, 1.0);
}

TEST(ReceiverSelection, AccumulatesUntilThreshold) {
  // Each candidate at 0.6: aggregate after two = 1 - 0.4^2 = 0.84; after
  // three = 0.936; after four = 0.9744 > 0.95.
  const Selection s = select_receivers(
      0.1, 0.0, 0.95,
      {cand(1, 0.6), cand(2, 0.6), cand(3, 0.6), cand(4, 0.6), cand(5, 0.6)});
  EXPECT_EQ(s.receivers.size(), 4u);
  EXPECT_GT(s.aggregate_probability, 0.95);
}

TEST(ReceiverSelection, ExistingFtdCountsTowardThreshold) {
  // With message FTD already 0.9, a single 0.6 receiver reaches
  // 1 - 0.1*0.4 = 0.96 > 0.95.
  const Selection s =
      select_receivers(0.1, 0.9, 0.95, {cand(1, 0.6), cand(2, 0.6)});
  EXPECT_EQ(s.receivers.size(), 1u);
}

TEST(ReceiverSelection, SortsByDescendingMetric) {
  const Selection s = select_receivers(
      0.0, 0.0, 0.9999, {cand(1, 0.3), cand(2, 0.7), cand(3, 0.5)});
  ASSERT_EQ(s.receivers.size(), 3u);
  EXPECT_EQ(s.receivers[0].id, 2u);
  EXPECT_EQ(s.receivers[1].id, 3u);
  EXPECT_EQ(s.receivers[2].id, 1u);
}

TEST(ReceiverSelection, AggregateMatchesFtdFormula) {
  const Selection s =
      select_receivers(0.0, 0.2, 0.9999, {cand(1, 0.5), cand(2, 0.4)});
  const std::vector<double> xis{0.5, 0.4};
  EXPECT_DOUBLE_EQ(s.aggregate_probability,
                   aggregate_delivery_probability(0.2, xis));
}

// --- property suite ----------------------------------------------------

class SelectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SelectionProperty, SelectionIsMinimalPrefixOfQualified) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 300; ++trial) {
    const double sender = rng.uniform01();
    const double ftd = rng.uniform01() * 0.8;
    const double r = 0.5 + rng.uniform01() * 0.49;
    std::vector<Candidate> cands;
    const int n = rng.uniform_int(0, 8);
    for (int i = 0; i < n; ++i) {
      cands.push_back(cand(static_cast<NodeId>(i), rng.uniform01(),
                           static_cast<std::size_t>(rng.uniform_int(0, 3))));
    }
    const Selection s = select_receivers(sender, ftd, r, cands);

    // Every selected receiver is qualified.
    for (const Candidate& c : s.receivers) {
      EXPECT_GT(c.metric, sender);
      EXPECT_GT(c.buffer_space, 0u);
    }
    // Removing the last selected receiver must leave the aggregate at or
    // below R (minimality of the greedy prefix).
    if (s.receivers.size() > 1 && s.aggregate_probability > r) {
      std::vector<double> xis;
      for (std::size_t i = 0; i + 1 < s.receivers.size(); ++i)
        xis.push_back(s.receivers[i].metric);
      EXPECT_LE(aggregate_delivery_probability(ftd, xis), r + 1e-12);
    }
    // Aggregate within [ftd, 1].
    EXPECT_GE(s.aggregate_probability + 1e-12, ftd * (s.receivers.empty() ? 0 : 1));
    EXPECT_LE(s.aggregate_probability, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionProperty,
                         ::testing::Values(7, 17, 27));

}  // namespace
}  // namespace dftmsn
