// Property-based tests of the paper's probability arithmetic: the FTD
// update rules (Eqs. 2-3) and the ξ EWMA (Eq. 1). Each property is
// exercised over a seeded random sample of inputs, so the checks cover
// the whole parameter space rather than hand-picked points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/delivery_probability.hpp"
#include "core/ftd.hpp"
#include "sim/random.hpp"

namespace dftmsn {
namespace {

constexpr int kTrials = 2000;
constexpr double kTol = 1e-12;

std::vector<double> random_xis(RandomStream& rng, int max_size) {
  std::vector<double> xis(static_cast<std::size_t>(
      rng.uniform_int(1, max_size)));
  for (double& x : xis) x = rng.uniform01();
  return xis;
}

// --- Eqs. 2-3: range ---------------------------------------------------

TEST(FtdProperty, ReceiverAndSenderFtdStayProbabilities) {
  RandomStream rng(101);
  for (int t = 0; t < kTrials; ++t) {
    const double f = rng.uniform01();
    const double xi = rng.uniform01();
    const std::vector<double> phi = random_xis(rng, 6);
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(phi.size()) - 1));

    const double fj = receiver_copy_ftd(f, xi, phi, j);
    EXPECT_GE(fj, 0.0);
    EXPECT_LE(fj, 1.0);

    const double fi = sender_ftd_after_multicast(f, phi);
    EXPECT_GE(fi, 0.0);
    EXPECT_LE(fi, 1.0);

    const double agg = aggregate_delivery_probability(f, phi);
    EXPECT_GE(agg, 0.0);
    EXPECT_LE(agg, 1.0);
  }
}

// --- Eqs. 2-3: monotonicity --------------------------------------------

TEST(FtdProperty, SenderFtdNeverDecreasesAcrossAMulticast) {
  // Eq. 3 multiplies the survival probability (1-F) by factors <= 1, so
  // handing out copies can only raise (never lower) the sender's FTD.
  RandomStream rng(102);
  for (int t = 0; t < kTrials; ++t) {
    const double f = rng.uniform01();
    const std::vector<double> phi = random_xis(rng, 6);
    EXPECT_GE(sender_ftd_after_multicast(f, phi), f - kTol);
  }
}

TEST(FtdProperty, FtdUpdatesMonotoneInSenderFtdAndReceiverXis) {
  RandomStream rng(103);
  for (int t = 0; t < kTrials; ++t) {
    const double f = rng.uniform01();
    const double f_hi = f + (1.0 - f) * rng.uniform01();
    std::vector<double> phi = random_xis(rng, 6);

    // Raising the incoming FTD raises every outcome.
    EXPECT_GE(sender_ftd_after_multicast(f_hi, phi),
              sender_ftd_after_multicast(f, phi) - kTol);

    // Raising any one receiver's ξ raises the sender's post-multicast FTD.
    const std::size_t m = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(phi.size()) - 1));
    const double before = sender_ftd_after_multicast(f, phi);
    phi[m] = phi[m] + (1.0 - phi[m]) * rng.uniform01();
    EXPECT_GE(sender_ftd_after_multicast(f, phi), before - kTol);
  }
}

TEST(FtdProperty, ReceiverCopyExcludesItsOwnXi) {
  // Eq. 2: F_j counts the *other* copies, so receiver j's own ξ must not
  // influence the FTD attached to its copy.
  RandomStream rng(104);
  for (int t = 0; t < kTrials; ++t) {
    const double f = rng.uniform01();
    const double xi = rng.uniform01();
    std::vector<double> phi = random_xis(rng, 6);
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(phi.size()) - 1));
    const double before = receiver_copy_ftd(f, xi, phi, j);
    phi[j] = rng.uniform01();
    EXPECT_NEAR(receiver_copy_ftd(f, xi, phi, j), before, kTol);
  }
}

// --- Eqs. 2-3: fixed points and absorbing states -----------------------

TEST(FtdProperty, EmptyReceiverSetIsAFixedPoint) {
  RandomStream rng(105);
  for (int t = 0; t < kTrials; ++t) {
    const double f = rng.uniform01();
    EXPECT_NEAR(sender_ftd_after_multicast(f, {}), f, kTol);
    EXPECT_NEAR(aggregate_delivery_probability(f, {}), f, kTol);
  }
}

TEST(FtdProperty, DeliveredStateIsAbsorbing) {
  // F = 1 (some copy surely reaches a sink) stays 1 through any update,
  // and a sink (ξ = 1) in Φ forces the sender's copy to F = 1.
  RandomStream rng(106);
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> phi = random_xis(rng, 6);
    EXPECT_NEAR(sender_ftd_after_multicast(1.0, phi), 1.0, kTol);

    phi[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(phi.size()) - 1))] = 1.0;
    EXPECT_NEAR(sender_ftd_after_multicast(rng.uniform01(), phi), 1.0, kTol);
  }
}

TEST(FtdProperty, AggregateMatchesSenderUpdateForm) {
  // Eq. 3 and the Sec. 3.2.2 aggregate share one formula by design; the
  // two entry points must agree exactly.
  RandomStream rng(107);
  for (int t = 0; t < kTrials; ++t) {
    const double f = rng.uniform01();
    const std::vector<double> phi = random_xis(rng, 6);
    EXPECT_DOUBLE_EQ(aggregate_delivery_probability(f, phi),
                     sender_ftd_after_multicast(f, phi));
  }
}

// --- Eq. 1: the ξ EWMA -------------------------------------------------

TEST(XiEwmaProperty, StaysAProbabilityUnderRandomHistories) {
  RandomStream rng(201);
  for (int t = 0; t < 200; ++t) {
    DeliveryProbability xi(rng.uniform01(), rng.uniform01());
    for (int step = 0; step < 100; ++step) {
      if (rng.bernoulli(0.5))
        xi.on_transmission(rng.uniform01());
      else
        xi.on_timeout();
      EXPECT_GE(xi.value(), 0.0);
      EXPECT_LE(xi.value(), 1.0);
    }
  }
}

TEST(XiEwmaProperty, PureDecayIsMonotoneNonIncreasing) {
  RandomStream rng(202);
  for (int t = 0; t < 200; ++t) {
    DeliveryProbability xi(rng.uniform01(), rng.uniform01());
    double prev = xi.value();
    for (int step = 0; step < 50; ++step) {
      xi.on_timeout();
      EXPECT_LE(xi.value(), prev + kTol);
      prev = xi.value();
    }
  }
}

TEST(XiEwmaProperty, DecayMatchesClosedForm) {
  RandomStream rng(203);
  for (int t = 0; t < 200; ++t) {
    const double alpha = rng.uniform01();
    const double start = rng.uniform01();
    DeliveryProbability xi(alpha, start);
    const int n = rng.uniform_int(1, 40);
    for (int step = 0; step < n; ++step) xi.on_timeout();
    EXPECT_NEAR(xi.value(), start * std::pow(1.0 - alpha, n), 1e-9);
  }
}

TEST(XiEwmaProperty, TransmissionContractsTowardReceiverXi) {
  // ξ' - ξ_k = (1-α)(ξ - ξ_k): each update shrinks the gap to the
  // receiver's ξ by exactly the memory factor, so ξ_k is the fixed point.
  RandomStream rng(204);
  for (int t = 0; t < kTrials; ++t) {
    const double alpha = rng.uniform01();
    const double target = rng.uniform01();
    DeliveryProbability xi(alpha, rng.uniform01());
    const double gap = xi.value() - target;
    xi.on_transmission(target);
    EXPECT_NEAR(xi.value() - target, (1.0 - alpha) * gap, 1e-9);
  }
}

TEST(XiEwmaProperty, FixedPointsAtAlphaExtremes) {
  RandomStream rng(205);
  for (int t = 0; t < 200; ++t) {
    const double start = rng.uniform01();
    DeliveryProbability frozen(0.0, start);   // α=0: infinite memory
    frozen.on_transmission(rng.uniform01());
    frozen.on_timeout();
    EXPECT_DOUBLE_EQ(frozen.value(), start);

    DeliveryProbability hot(1.0, start);      // α=1: no memory
    const double obs = rng.uniform01();
    hot.on_transmission(obs);
    EXPECT_DOUBLE_EQ(hot.value(), obs);
    hot.on_timeout();
    EXPECT_DOUBLE_EQ(hot.value(), 0.0);
  }
}

}  // namespace
}  // namespace dftmsn
