#include "core/sleep_controller.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

SleepConfig default_sleep() {
  SleepConfig cfg;
  cfg.history_cycles = 10;      // S
  cfg.buffer_threshold_h = 0.5; // H
  cfg.important_ftd = 0.5;
  cfg.t_min_floor_s = 1.0;
  return cfg;
}

EnergyModel default_energy() { return EnergyModel{PowerConfig{}}; }

TEST(SleepController, RhoWithEmptyHistoryIsOneOverS) {
  const EnergyModel e = default_energy();
  SleepController c(default_sleep(), e, 0.002);
  EXPECT_DOUBLE_EQ(c.rho(), 0.1);  // Eq. (4): s_i = 0 -> 1/S
}

TEST(SleepController, RhoCountsSuccessWindow) {
  const EnergyModel e = default_energy();
  SleepController c(default_sleep(), e, 0.002);
  for (int i = 0; i < 5; ++i) c.record_cycle(true);
  for (int i = 0; i < 5; ++i) c.record_cycle(false);
  EXPECT_DOUBLE_EQ(c.rho(), 0.5);
}

TEST(SleepController, HistorySlides) {
  const EnergyModel e = default_energy();
  SleepController c(default_sleep(), e, 0.002);
  for (int i = 0; i < 10; ++i) c.record_cycle(true);
  EXPECT_DOUBLE_EQ(c.rho(), 1.0);
  // Ten failures push all successes out of the S-window.
  for (int i = 0; i < 10; ++i) c.record_cycle(false);
  EXPECT_DOUBLE_EQ(c.rho(), 0.1);
}

TEST(SleepController, AlphaIsBufferImportanceFraction) {
  const EnergyModel e = default_energy();
  SleepController c(default_sleep(), e, 0.002);
  EXPECT_DOUBLE_EQ(c.alpha(50, 200), 0.25);  // Eq. (5)
  EXPECT_DOUBLE_EQ(c.alpha(0, 200), 0.0);
  EXPECT_DOUBLE_EQ(c.alpha(0, 0), 0.0);  // guard
}

TEST(SleepController, TMinRespectsFloorAndBreakEven) {
  const EnergyModel e = default_energy();
  // Eq. (7) break-even with mote numbers is ~16 ms; the 1 s floor wins.
  SleepController c(default_sleep(), e, 0.002);
  EXPECT_DOUBLE_EQ(c.t_min(), 1.0);

  // With a huge switch time the break-even dominates the floor.
  SleepController c2(default_sleep(), e, 10.0);
  EXPECT_GT(c2.t_min(), 1.0);
  EXPECT_DOUBLE_EQ(c2.t_min(), e.min_sleep_for_saving(10.0));
}

TEST(SleepController, SleepPeriodShrinksWithActivity) {
  const EnergyModel e = default_energy();
  SleepController busy(default_sleep(), e, 0.002);
  SleepController idle(default_sleep(), e, 0.002);
  for (int i = 0; i < 10; ++i) {
    busy.record_cycle(true);
    idle.record_cycle(false);
  }
  EXPECT_LT(busy.sleep_period(0, 200), idle.sleep_period(0, 200));
}

TEST(SleepController, SleepPeriodShrinksWithFullBuffer) {
  const EnergyModel e = default_energy();
  SleepController c(default_sleep(), e, 0.002);
  for (int i = 0; i < 3; ++i) c.record_cycle(false);
  // Eq. (6): larger α (more important messages) -> shorter period.
  EXPECT_GT(c.sleep_period(0, 200), c.sleep_period(150, 200));
}

TEST(SleepController, PeriodBoundedByTminAndTmax) {
  const EnergyModel e = default_energy();
  SleepController c(default_sleep(), e, 0.002);
  for (int i = 0; i < 10; ++i) c.record_cycle(true);
  // Fully busy: clamped to T_min.
  EXPECT_DOUBLE_EQ(c.sleep_period(200, 200), c.t_min());
  SleepController idle(default_sleep(), e, 0.002);
  for (int i = 0; i < 10; ++i) idle.record_cycle(false);
  EXPECT_LE(idle.sleep_period(0, 200), idle.t_max());
}

TEST(SleepController, TMaxMatchesEq8) {
  const EnergyModel e = default_energy();
  SleepController c(default_sleep(), e, 0.002);
  // Eq. (8): T_min * S / (1 - H) = 1 * 10 / 0.5 = 20 s.
  EXPECT_DOUBLE_EQ(c.t_max(), 20.0);
}

TEST(SleepController, Eq6Value) {
  const EnergyModel e = default_energy();
  SleepController c(default_sleep(), e, 0.002);
  for (int i = 0; i < 10; ++i) c.record_cycle(i < 5);  // rho = 0.5
  // Eq. (6): T_min / rho / (1 - H + alpha); alpha = 0.25.
  const double expected = 1.0 / 0.5 / (1.0 - 0.5 + 0.25);
  EXPECT_DOUBLE_EQ(c.sleep_period(50, 200), expected);
}

}  // namespace
}  // namespace dftmsn
