#include "core/ftd_queue.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace dftmsn {
namespace {

QueuedMessage qm(MessageId id, double ftd, SimTime at = 0.0) {
  Message m;
  m.id = id;
  m.source = 0;
  m.created = at;
  return QueuedMessage{m, ftd, at};
}

TEST(FtdQueue, ZeroCapacityThrows) {
  EXPECT_THROW(FtdQueue(0), std::invalid_argument);
}

TEST(FtdQueue, EmptyQueueGuards) {
  FtdQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.head(), std::logic_error);
  EXPECT_THROW(q.pop_head(), std::logic_error);
  EXPECT_THROW(q.remove_head(), std::logic_error);
  EXPECT_THROW(q.update_head_ftd(0.5, 0.9), std::logic_error);
}

TEST(FtdQueue, SortsAscendingByFtd) {
  FtdQueue q(10);
  q.insert(qm(1, 0.5));
  q.insert(qm(2, 0.1));
  q.insert(qm(3, 0.9));
  EXPECT_EQ(q.head().msg.id, 2u);
  EXPECT_DOUBLE_EQ(q.items()[0].ftd, 0.1);
  EXPECT_DOUBLE_EQ(q.items()[1].ftd, 0.5);
  EXPECT_DOUBLE_EQ(q.items()[2].ftd, 0.9);
}

TEST(FtdQueue, EqualFtdKeepsArrivalOrder) {
  FtdQueue q(10);
  q.insert(qm(1, 0.0));
  q.insert(qm(2, 0.0));
  q.insert(qm(3, 0.0));
  EXPECT_EQ(q.items()[0].msg.id, 1u);
  EXPECT_EQ(q.items()[1].msg.id, 2u);
  EXPECT_EQ(q.items()[2].msg.id, 3u);
}

TEST(FtdQueue, OverflowEvictsTail) {
  FtdQueue q(2);
  q.insert(qm(1, 0.5));
  q.insert(qm(2, 0.8));
  const auto dropped = q.insert(qm(3, 0.1));
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->msg.id, 2u);  // highest FTD evicted
  EXPECT_EQ(dropped->reason, DropReason::kOverflow);
  EXPECT_EQ(q.head().msg.id, 3u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(FtdQueue, OverflowRejectsLeastImportantNewcomer) {
  FtdQueue q(2);
  q.insert(qm(1, 0.1));
  q.insert(qm(2, 0.2));
  const auto dropped = q.insert(qm(3, 0.9));
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->msg.id, 3u);  // the newcomer is the least important
  EXPECT_EQ(q.size(), 2u);
}

TEST(FtdQueue, DuplicateMergeKeepsSmallerFtd) {
  FtdQueue q(10);
  q.insert(qm(1, 0.5));
  EXPECT_FALSE(q.insert(qm(1, 0.2)).has_value());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.head().ftd, 0.2);
  // A higher-FTD duplicate is absorbed without change.
  q.insert(qm(1, 0.9));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.head().ftd, 0.2);
}

TEST(FtdQueue, UpdateHeadFtdRepositions) {
  FtdQueue q(10);
  q.insert(qm(1, 0.1));
  q.insert(qm(2, 0.3));
  EXPECT_FALSE(q.update_head_ftd(0.5, 0.9).has_value());
  EXPECT_EQ(q.head().msg.id, 2u);
  EXPECT_EQ(q.items()[1].msg.id, 1u);
  EXPECT_DOUBLE_EQ(q.items()[1].ftd, 0.5);
}

TEST(FtdQueue, UpdateFtdAboveThresholdDrops) {
  FtdQueue q(10);
  q.insert(qm(1, 0.1));
  const auto dropped = q.update_head_ftd(0.95, 0.9);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->reason, DropReason::kFtdThreshold);
  EXPECT_TRUE(q.empty());
}

TEST(FtdQueue, UpdateFtdToOneMarksDelivered) {
  FtdQueue q(10);
  q.insert(qm(1, 0.1));
  const auto dropped = q.update_head_ftd(1.0, 0.9);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->reason, DropReason::kDelivered);
}

TEST(FtdQueue, UpdateFtdByMissingIdIsNoop) {
  FtdQueue q(10);
  q.insert(qm(1, 0.1));
  EXPECT_FALSE(q.update_ftd(99, 0.95, 0.9).has_value());
  EXPECT_EQ(q.size(), 1u);
}

TEST(FtdQueue, AvailableSpaceForPaperSemantics) {
  // B(F): slots empty or holding messages with FTD > F.
  FtdQueue q(3);
  q.insert(qm(1, 0.2));
  q.insert(qm(2, 0.6));
  EXPECT_EQ(q.available_space_for(0.1), 3u);  // both queued have higher FTD
  EXPECT_EQ(q.available_space_for(0.2), 2u);  // 0.2 counts as occupied
  EXPECT_EQ(q.available_space_for(0.7), 1u);
  q.insert(qm(3, 0.9));
  EXPECT_EQ(q.available_space_for(1.0), 0u);
}

TEST(FtdQueue, CountMoreImportantThan) {
  FtdQueue q(10);
  q.insert(qm(1, 0.1));
  q.insert(qm(2, 0.5));
  q.insert(qm(3, 0.8));
  EXPECT_EQ(q.count_more_important_than(0.5), 1u);
  EXPECT_EQ(q.count_more_important_than(0.9), 3u);
  EXPECT_EQ(q.count_more_important_than(0.05), 0u);
}

TEST(FtdQueue, RemoveById) {
  FtdQueue q(10);
  q.insert(qm(1, 0.1));
  q.insert(qm(2, 0.2));
  EXPECT_TRUE(q.remove(1));
  EXPECT_FALSE(q.remove(1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.contains(2));
  EXPECT_FALSE(q.contains(1));
}

TEST(FtdQueue, FifoDisciplineKeepsArrivalOrderAndRejectsNewcomer) {
  FtdQueue q(2, QueueDiscipline::kFifo);
  q.insert(qm(1, 0.9));
  q.insert(qm(2, 0.1));
  EXPECT_EQ(q.head().msg.id, 1u);  // arrival order, not FTD
  const auto dropped = q.insert(qm(3, 0.0));
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->msg.id, 3u);
}

TEST(FtdQueue, RandomDropEvictsSomeVictim) {
  FtdQueue q(2, QueueDiscipline::kRandomDrop);
  q.insert(qm(1, 0.1), 0.0);
  q.insert(qm(2, 0.2), 0.0);
  const auto dropped = q.insert(qm(3, 0.3), 0.99);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->msg.id, 2u);  // random01=0.99 selects the last slot
  EXPECT_EQ(q.size(), 2u);
}

// --- property suite ----------------------------------------------------

class FtdQueueProperty : public ::testing::TestWithParam<int> {};

TEST_P(FtdQueueProperty, InvariantsUnderRandomOperations) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()));
  FtdQueue q(16);
  MessageId next_id = 1;
  for (int op = 0; op < 2000; ++op) {
    const double roll = rng.uniform01();
    if (roll < 0.5) {
      q.insert(qm(next_id++, rng.uniform01()));
    } else if (roll < 0.7 && !q.empty()) {
      q.pop_head();
    } else if (roll < 0.9 && !q.empty()) {
      q.update_head_ftd(rng.uniform01(), 0.9);
    } else if (!q.empty()) {
      q.remove(q.items()[static_cast<std::size_t>(
                             rng.uniform_int(0, static_cast<int>(q.size()) - 1))]
                   .msg.id);
    }
    // Invariants: size bounded, FTD sorted, all FTDs within [0, 1].
    ASSERT_LE(q.size(), q.capacity());
    for (std::size_t i = 0; i + 1 < q.size(); ++i) {
      ASSERT_LE(q.items()[i].ftd, q.items()[i + 1].ftd);
    }
    for (const auto& item : q.items()) {
      ASSERT_GE(item.ftd, 0.0);
      ASSERT_LE(item.ftd, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtdQueueProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace dftmsn
