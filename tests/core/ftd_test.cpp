#include "core/ftd.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/random.hpp"

namespace dftmsn {
namespace {

TEST(Ftd, SenderUpdateSingleReceiver) {
  // Eq. (3) with one receiver: F' = 1 - (1-F)(1-ξ).
  const std::array<double, 1> xis{0.5};
  EXPECT_DOUBLE_EQ(sender_ftd_after_multicast(0.0, xis), 0.5);
  EXPECT_DOUBLE_EQ(sender_ftd_after_multicast(0.2, xis), 1.0 - 0.8 * 0.5);
}

TEST(Ftd, SenderUpdateToSinkReachesOne) {
  const std::array<double, 1> sink{1.0};
  EXPECT_DOUBLE_EQ(sender_ftd_after_multicast(0.0, sink), 1.0);
  EXPECT_DOUBLE_EQ(sender_ftd_after_multicast(0.7, sink), 1.0);
}

TEST(Ftd, SenderUpdateEmptyPhiIsIdentity) {
  EXPECT_DOUBLE_EQ(sender_ftd_after_multicast(0.35, {}), 0.35);
}

TEST(Ftd, ReceiverCopyExcludesSelf) {
  // Eq. (2): receiver j's copy covers the sender's copy (ξ_i) and the
  // other receivers, but not itself.
  const std::array<double, 2> xis{0.5, 0.4};
  const double f0 = receiver_copy_ftd(0.0, 0.3, xis, 0);
  // 1 - (1-0)(1-0.3)(1-0.4) = 1 - 0.7*0.6
  EXPECT_DOUBLE_EQ(f0, 1.0 - 0.7 * 0.6);
  const double f1 = receiver_copy_ftd(0.0, 0.3, xis, 1);
  EXPECT_DOUBLE_EQ(f1, 1.0 - 0.7 * 0.5);
}

TEST(Ftd, ReceiverCopySingleReceiverDependsOnSenderOnly) {
  const std::array<double, 1> xis{0.9};
  EXPECT_DOUBLE_EQ(receiver_copy_ftd(0.2, 0.1, xis, 0), 1.0 - 0.8 * 0.9);
}

TEST(Ftd, ReceiverCopyOutOfRangeThrows) {
  const std::array<double, 1> xis{0.5};
  EXPECT_THROW(receiver_copy_ftd(0.0, 0.0, xis, 1), std::out_of_range);
}

TEST(Ftd, AggregateMatchesSenderFormula) {
  const std::array<double, 3> xis{0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(aggregate_delivery_probability(0.1, xis),
                   sender_ftd_after_multicast(0.1, xis));
}

TEST(Ftd, InputsClamped) {
  const std::array<double, 1> bogus{1.7};
  EXPECT_DOUBLE_EQ(sender_ftd_after_multicast(-0.5, bogus), 1.0);
}

// --- property suite: invariants over random inputs --------------------

class FtdProperty : public ::testing::TestWithParam<int> {};

TEST_P(FtdProperty, ResultsStayInUnitIntervalAndMonotone) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const double f = rng.uniform01();
    const double xi_sender = rng.uniform01();
    const int n = rng.uniform_int(1, 6);
    std::vector<double> xis;
    for (int i = 0; i < n; ++i) xis.push_back(rng.uniform01());

    const double after = sender_ftd_after_multicast(f, xis);
    EXPECT_GE(after, 0.0);
    EXPECT_LE(after, 1.0);
    // Multicasting can only increase the FTD (more copies in flight).
    EXPECT_GE(after, f - 1e-12);

    for (std::size_t j = 0; j < xis.size(); ++j) {
      const double fj = receiver_copy_ftd(f, xi_sender, xis, j);
      EXPECT_GE(fj, 0.0);
      EXPECT_LE(fj, 1.0);
      // The copy's FTD is at least the message's previous FTD.
      EXPECT_GE(fj, f - 1e-12);
      // And at most the full aggregate including itself plus sender.
      std::vector<double> all = xis;
      all.push_back(xi_sender);
      EXPECT_LE(fj, sender_ftd_after_multicast(f, all) + 1e-12);
    }
  }
}

TEST_P(FtdProperty, ReceiverMoreConfidentWhenOthersStronger) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int trial = 0; trial < 100; ++trial) {
    const double f = rng.uniform01() * 0.5;
    const double xi_sender = rng.uniform01() * 0.5;
    std::vector<double> weak{0.1, 0.1};
    std::vector<double> strong{0.1, 0.9};
    // Receiver 0's copy FTD rises when receiver 1 is stronger.
    EXPECT_LE(receiver_copy_ftd(f, xi_sender, weak, 0),
              receiver_copy_ftd(f, xi_sender, strong, 0) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtdProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dftmsn
