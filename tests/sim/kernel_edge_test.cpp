// Edge cases of the simulation kernel that the basic suites do not hit:
// cancellation during execution, zero-delay chains, handle lifetimes.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace dftmsn {
namespace {

TEST(KernelEdge, CallbackCancelsLaterEvent) {
  Simulator sim;
  bool second_ran = false;
  EventHandle h = sim.schedule_in(2.0, [&] { second_ran = true; });
  sim.schedule_in(1.0, [&] { h.cancel(); });
  sim.run_all();
  EXPECT_FALSE(second_ran);
}

TEST(KernelEdge, CallbackReschedulesItself) {
  Simulator sim;
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 5) sim.schedule_in(1.0, tick);
  };
  sim.schedule_in(1.0, tick);
  sim.run_all();
  EXPECT_EQ(fires, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(KernelEdge, ZeroDelayChainsStayOrdered) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(1.0, [&] {
    order.push_back(1);
    sim.schedule_in(0.0, [&] {
      order.push_back(2);
      sim.schedule_in(0.0, [&] { order.push_back(3); });
    });
  });
  sim.schedule_in(1.0, [&] { order.push_back(4); });
  sim.run_all();
  // Same-timestamp FIFO: the pre-scheduled "4" precedes the chained 2, 3.
  EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
}

TEST(KernelEdge, HandleOutlivesQueue) {
  EventHandle h;
  {
    EventQueue q;
    h = q.schedule(1.0, [] {});
    EXPECT_TRUE(h.pending());
  }
  // The queue is gone; the handle must stay safe to use.
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(KernelEdge, CancelInsideOwnCallbackIsNoop) {
  Simulator sim;
  EventHandle h;
  bool ran = false;
  h = sim.schedule_in(1.0, [&] {
    ran = true;
    h.cancel();  // already firing: must be harmless
  });
  sim.run_all();
  EXPECT_TRUE(ran);
}

TEST(KernelEdge, ScheduleAtNowRunsThisRound) {
  Simulator sim;
  bool ran = false;
  sim.schedule_in(1.0, [&] {
    sim.schedule_at(sim.now(), [&] { ran = true; });
  });
  sim.run_all();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(KernelEdge, RunUntilRepeatedNoEvents) {
  Simulator sim;
  sim.run_until(10.0);
  sim.run_until(10.0);  // idempotent
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  sim.run_until(20.0);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(KernelEdge, ManyCancellationsDoNotLeakIntoExecution) {
  Simulator sim;
  int executed = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.schedule_in(1.0 + i * 0.001, [&] { ++executed; }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  sim.run_all();
  EXPECT_EQ(executed, 500);
  EXPECT_EQ(sim.events_executed(), 500u);
}

}  // namespace
}  // namespace dftmsn
