#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dftmsn {
namespace {

TEST(EventQueue, EmptyOnConstruction) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(fired.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(7.5, [] {});
  EXPECT_DOUBLE_EQ(q.pop_and_run(), 7.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelledEventSkippedAmongLive) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  EventHandle h = q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(3.0, [&] { fired.push_back(3); });
  h.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, HandleNotPendingAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule(1.0, [] {});
  q.pop_and_run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be a harmless no-op
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] {
    fired.push_back(1);
    q.schedule(2.0, [&] { fired.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  h.cancel();
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, SizeCountsOnlyLive) {
  EventQueue q;
  EventHandle h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  h.cancel();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ScheduledCountMonotone) {
  EventQueue q;
  EXPECT_EQ(q.scheduled_count(), 0u);
  q.schedule(1.0, [] {});
  q.schedule(1.0, [] {});
  EXPECT_EQ(q.scheduled_count(), 2u);
}

}  // namespace
}  // namespace dftmsn
