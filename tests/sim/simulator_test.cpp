#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dftmsn {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, ScheduleInAdvancesClock) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_in(2.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule_in(5.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventExactlyAtBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(i, [&] {
      ++count;
      if (count == 2) sim.stop();
    });
  }
  sim.run_all();
  EXPECT_EQ(count, 2);
  // A later run_all continues with the remaining events.
  sim.run_all();
  EXPECT_EQ(count, 5);
}

TEST(Simulator, NestedSchedulingKeepsCausality) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

}  // namespace
}  // namespace dftmsn
