#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dftmsn {
namespace {

TEST(RandomStream, Uniform01InRange) {
  RandomStream rs(42);
  for (int i = 0; i < 1000; ++i) {
    const double v = rs.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomStream, UniformRespectsBounds) {
  RandomStream rs(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rs.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RandomStream, UniformDegenerateIntervalReturnsBound) {
  RandomStream rs(7);
  EXPECT_DOUBLE_EQ(rs.uniform(1.5, 1.5), 1.5);
}

TEST(RandomStream, UniformIntInclusive) {
  RandomStream rs(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rs.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, ExponentialMeanRoughlyCorrect) {
  RandomStream rs(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rs.exponential(120.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 120.0, 5.0);
}

TEST(RandomStream, BernoulliExtremes) {
  RandomStream rs(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rs.bernoulli(0.0));
    EXPECT_TRUE(rs.bernoulli(1.0));
  }
}

TEST(RandomStream, InvalidArgumentsThrow) {
  RandomStream rs(1);
  EXPECT_THROW(rs.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rs.uniform_int(4, 1), std::invalid_argument);
  EXPECT_THROW(rs.exponential(0.0), std::invalid_argument);
}

TEST(RandomSource, SameNameIndexIsDeterministic) {
  RandomSource a(123), b(123);
  RandomStream s1 = a.stream("mobility", 7);
  RandomStream s2 = b.stream("mobility", 7);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(s1.uniform01(), s2.uniform01());
}

TEST(RandomSource, DifferentNamesDecorrelated) {
  RandomSource src(123);
  RandomStream s1 = src.stream("mobility", 0);
  RandomStream s2 = src.stream("traffic", 0);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1.uniform01() == s2.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomSource, DifferentSeedsDiffer) {
  RandomSource a(1), b(2);
  RandomStream s1 = a.stream("x");
  RandomStream s2 = b.stream("x");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1.uniform01() == s2.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomSource, DifferentIndicesDiffer) {
  RandomSource src(9);
  RandomStream s1 = src.stream("node", 0);
  RandomStream s2 = src.stream("node", 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1.uniform01() == s2.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace dftmsn
